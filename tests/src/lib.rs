//! Shared fixtures for the integration-test package.
//!
//! The actual integration tests live in `tests/tests/*.rs` and span
//! multiple workspace crates; this small library holds builders they
//! share so each test file stays focused on one claim.

#![forbid(unsafe_code)]

/// A standard small colony used across integration tests: big enough for
/// concentration to visibly kick in, small enough to run in CI seconds.
pub struct SmallColony {
    /// Number of ants.
    pub n: usize,
    /// Task demands.
    pub demands: Vec<u64>,
    /// Sigmoid steepness.
    pub lambda: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for SmallColony {
    fn default() -> Self {
        Self {
            n: 4000,
            demands: vec![400, 700, 300],
            lambda: 0.15,
            seed: 0xA17,
        }
    }
}

impl SmallColony {
    /// Starts a scenario builder preloaded with this fixture (sigmoid
    /// noise at the fixture's λ); tests chain their controller onto it.
    pub fn scenario(&self) -> antalloc_sim::ScenarioBuilder {
        antalloc_sim::SimConfig::builder(self.n, self.demands.clone())
            .noise(antalloc_noise::NoiseModel::Sigmoid {
                lambda: self.lambda,
            })
            .seed(self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_colony_satisfies_slack() {
        let c = SmallColony::default();
        let sum: u64 = c.demands.iter().sum();
        assert!(sum <= c.n as u64 / 2);
    }
}
