//! Every fenced snippet in `docs/SCENARIOS.md` must load: the scenario
//! reference is executable documentation, not prose that can rot.
//!
//! Each ```toml block is parsed with `Scenario::from_toml`, each
//! ```json block with `Scenario::from_json`, and every parsed scenario
//! is round-tripped through its own serializer — so the reference can
//! never document a key the codec does not accept, and the writer can
//! never emit a form the reference does not show.

use antalloc_sim::Scenario;

fn scenarios_md() -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("docs")
        .join("SCENARIOS.md");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Extracts the bodies of fenced code blocks with the given language.
fn fenced_blocks(text: &str, lang: &str) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in text.lines() {
        match &mut current {
            None => {
                if line.trim_end() == format!("```{lang}") {
                    current = Some(String::new());
                }
            }
            Some(body) => {
                if line.trim_end() == "```" {
                    blocks.push(current.take().unwrap());
                } else {
                    body.push_str(line);
                    body.push('\n');
                }
            }
        }
    }
    assert!(current.is_none(), "unterminated ```{lang} block");
    blocks
}

#[test]
fn every_toml_snippet_parses_and_roundtrips() {
    let doc = scenarios_md();
    let snippets = fenced_blocks(&doc, "toml");
    assert!(
        snippets.len() >= 13,
        "expected the reference to document at least 13 TOML scenarios, found {}",
        snippets.len()
    );
    for (i, snippet) in snippets.iter().enumerate() {
        let scenario = Scenario::from_toml(snippet).unwrap_or_else(|e| {
            panic!("SCENARIOS.md toml snippet {i} does not load: {e}\n---\n{snippet}")
        });
        let reparsed = Scenario::from_toml(&scenario.to_toml()).unwrap_or_else(|e| {
            panic!(
                "snippet {i} (`{:?}`) does not re-load from its own serialization: {e}",
                scenario.name
            )
        });
        assert_eq!(
            reparsed, scenario,
            "snippet {i} drifted through a round-trip"
        );
        // And the TOML/JSON codecs agree on every documented scenario.
        let via_json = Scenario::from_json(&scenario.to_json()).unwrap_or_else(|e| {
            panic!(
                "snippet {i} (`{:?}`) does not survive the JSON codec: {e}",
                scenario.name
            )
        });
        assert_eq!(via_json, scenario, "snippet {i} drifted through JSON");
    }
}

#[test]
fn every_json_snippet_parses_and_roundtrips() {
    let doc = scenarios_md();
    let snippets = fenced_blocks(&doc, "json");
    assert!(
        !snippets.is_empty(),
        "the reference documents the JSON form"
    );
    for (i, snippet) in snippets.iter().enumerate() {
        let scenario = Scenario::from_json(snippet).unwrap_or_else(|e| {
            panic!("SCENARIOS.md json snippet {i} does not load: {e}\n---\n{snippet}")
        });
        let reparsed = Scenario::from_json(&scenario.to_json()).unwrap();
        assert_eq!(
            reparsed, scenario,
            "json snippet {i} drifted through a round-trip"
        );
    }
}

#[test]
fn documented_scenarios_cover_the_new_timeline_sections() {
    // The reference must actually exercise the trigger and generator
    // tables (guards against the docs regressing to scripted-only).
    let doc = scenarios_md();
    let mut has_trigger = false;
    let mut has_generator = false;
    let mut has_mix = false;
    let mut has_arena = false;
    let mut has_proportional = false;
    let mut has_deficit_trigger = false;
    for snippet in fenced_blocks(&doc, "toml") {
        let scenario = Scenario::from_toml(&snippet).unwrap();
        has_trigger |= !scenario.config.timeline.triggers.is_empty();
        has_generator |= !scenario.config.timeline.generators.is_empty();
        has_mix |= scenario.config.controller.mix_parts().is_some();
        has_arena |= scenario.config.arena.is_some();
        has_proportional |= matches!(
            scenario.config.controller,
            antalloc_sim::ControllerSpec::Proportional(_)
        );
        has_deficit_trigger |= scenario
            .config
            .timeline
            .triggers
            .iter()
            .any(|t| format!("{:?}", t.when).contains("Deficit"));
    }
    assert!(has_trigger, "no documented scenario declares a trigger");
    assert!(has_generator, "no documented scenario declares a generator");
    assert!(has_mix, "no documented scenario declares a mix");
    assert!(has_arena, "no documented scenario declares an arena");
    assert!(
        has_proportional,
        "no documented scenario runs the proportional controller"
    );
    assert!(
        has_deficit_trigger,
        "no documented scenario declares a deficit trigger"
    );
}
