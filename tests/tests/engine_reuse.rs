//! Engine reuse: [`SyncEngine::reset_from`] must be indistinguishable
//! from building a fresh engine — bit-identical per-round traces and
//! final state — for every controller kind, for mixes, for
//! timeline-bearing configs, and across shape changes (`n` and `k`
//! growing or shrinking between jobs). This is the contract the sweep
//! fast path leans on when it recycles one engine across a million
//! runs.

use antalloc_core::{AntParams, ExactGreedyParams, PreciseAdversarialParams, PreciseSigmoidParams};
use antalloc_env::{Condition, Event, GenShock, Timeline, TimelineGen, Trigger};
use antalloc_noise::NoiseModel;
use antalloc_sim::{
    Checkpoint, ControllerSpec, FnObserver, NullObserver, RoundRecord, SimConfig, Sweep, SyncEngine,
};
use proptest::prelude::*;

/// Every banked controller kind, plus 2- and 4-way mixes — the full
/// set of bank layouts `reset_from` has to rebuild in place.
fn spec_for(which: usize) -> ControllerSpec {
    match which {
        0 => ControllerSpec::Ant(AntParams::new(1.0 / 16.0)),
        1 => ControllerSpec::AntDesync(AntParams::new(1.0 / 32.0)),
        2 => ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.05, 0.5)),
        3 => ControllerSpec::PreciseAdversarial(PreciseAdversarialParams::new(0.05, 0.5)),
        4 => ControllerSpec::Trivial,
        5 => ControllerSpec::ExactGreedy(ExactGreedyParams::default()),
        6 => ControllerSpec::Hysteresis {
            depth: 3,
            lazy: Some(0.5),
        },
        7 => ControllerSpec::Mix(vec![
            (2.0, ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
            (1.0, ControllerSpec::Trivial),
        ]),
        _ => ControllerSpec::Mix(vec![
            (1.0, ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
            (
                1.0,
                ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.05, 0.5)),
            ),
            (1.0, ControllerSpec::Trivial),
            (
                1.0,
                ControllerSpec::ExactGreedy(ExactGreedyParams::default()),
            ),
        ]),
    }
}

fn cfg_for(which: usize, n: usize, k: usize, seed: u64) -> SimConfig {
    // Hysteresis machines observe a single task.
    let k = if which == 6 { 1 } else { k };
    let demands: Vec<u64> = (0..k).map(|j| (n / (2 * k) + j + 1) as u64).collect();
    SimConfig::builder(n, demands)
        .noise(NoiseModel::Sigmoid { lambda: 1.5 })
        .controller(spec_for(which))
        .seed(seed)
        .build()
        .expect("valid scenario")
}

/// Per-round trace plus final state; equality here is the strongest
/// observable statement of "same engine".
#[derive(Debug, PartialEq, Eq)]
struct Trace {
    rounds: Vec<(u64, u64, u64)>,
    assignments: Vec<antalloc_env::Assignment>,
    loads: Vec<u32>,
    idle: u64,
}

fn trace(engine: &mut SyncEngine, rounds: u64) -> Trace {
    let mut per_round = Vec::new();
    let mut obs = FnObserver::new(|r: &RoundRecord<'_>| {
        per_round.push((r.round, r.instant_regret(), r.switches));
    });
    engine.run(rounds, &mut obs);
    Trace {
        rounds: per_round,
        assignments: engine.colony().assignments(),
        loads: engine.colony().loads().to_vec(),
        idle: engine.colony().idle_count(),
    }
}

/// An engine left in a deliberately unrelated state: different shape,
/// different controller, mid-run. `reset_from` must erase all of it.
fn dirty_engine(which: usize) -> SyncEngine {
    let decoy = cfg_for((which + 3) % 9, 173, 2, 0xDEC0);
    let mut engine = decoy.build();
    engine.run(17, &mut NullObserver);
    engine
}

proptest! {
    /// `reset_from` == fresh build, full-trace, for every bank layout.
    #[test]
    fn reset_matches_fresh_build_for_every_controller(
        which in 0usize..9,
        n in 60usize..200,
        seed: u64,
        rounds in 1u64..40,
    ) {
        let cfg = cfg_for(which, n, 3, seed);
        let mut fresh = cfg.build();
        let mut reused = dirty_engine(which);
        reused.reset_from(&cfg);
        prop_assert_eq!(trace(&mut fresh, rounds), trace(&mut reused, rounds));
    }

    /// Timeline-bearing configs: fixed events, a state-dependent
    /// trigger, and a generated shock schedule all recompile against
    /// the reset engine's seed and shape.
    #[test]
    fn reset_matches_fresh_build_with_timelines(
        pick in 0usize..8,
        seed: u64,
        rounds in 50u64..120,
    ) {
        // All kinds except Hysteresis, whose single-task constraint is
        // incompatible with this timeline's 3-task demand step.
        let which = [0, 1, 2, 3, 4, 5, 7, 8][pick];
        let n = 240usize;
        let mut cfg = cfg_for(which, n, 3, seed);
        cfg.timeline = Timeline::new()
            .at(7, Event::Kill { count: 40 })
            .at(23, Event::SetDemands(vec![50, 30, 20]))
            .at(41, Event::Spawn { count: 25 })
            .trigger(Trigger {
                when: Condition::RegretBelow {
                    threshold: (n / 6) as u64,
                    for_rounds: 5,
                },
                event: Event::Scramble,
                cooldown: 30,
                max_firings: 2,
            })
            .generate(TimelineGen {
                start: 10,
                until: 110,
                mean_gap: 25.0,
                shock: GenShock::Kill {
                    min_frac: 0.02,
                    max_frac: 0.05,
                },
            });
        let mut fresh = cfg.build();
        let mut reused = dirty_engine(which);
        reused.reset_from(&cfg);
        prop_assert_eq!(trace(&mut fresh, rounds), trace(&mut reused, rounds));
        prop_assert_eq!(fresh.trigger_states(), reused.trigger_states());
    }

    /// Checkpoint-restore into a *reused* engine: `restore_into` on a
    /// dirty engine must land in exactly the state `restore` builds
    /// from scratch, and both must continue bit-identically.
    #[test]
    fn restore_into_reused_engine_matches_restore(
        pick in 0usize..6,
        seed: u64,
        boundary in 1u64..20,
        tail in 1u64..30,
    ) {
        // Specs whose capture phase is <= 2, so every even round is a
        // capture point (Adversarial's 320-round phase and AntDesync's
        // approximate restores are out of scope; Hysteresis is
        // single-task, incompatible with this 3-task demand step).
        let which = [0, 2, 4, 5, 7, 8][pick];
        let mut cfg = cfg_for(which, 120, 3, seed);
        cfg.timeline = Timeline::new()
            .at(5, Event::Kill { count: 30 })
            .at(13, Event::SetDemands(vec![40, 20, 15]))
            .at(29, Event::Spawn { count: 20 });
        // Capture on an even round: every spec here has phase <= 2.
        let split = boundary * 2;

        let mut head = cfg.build();
        head.run(split, &mut NullObserver);
        let cp = Checkpoint::capture(&head).expect("phase boundary");

        let mut fresh = cp.restore();
        let mut reused = dirty_engine(which);
        cp.restore_into(&mut reused);
        prop_assert_eq!(trace(&mut fresh, tail), trace(&mut reused, tail));
    }
}

/// `n` and `k` grow and shrink across consecutive reuses of a single
/// engine — the shape churn an axis over colony size or task count
/// produces in a sweep.
#[test]
fn reset_handles_shape_changes_in_both_directions() {
    // (controller, n, k): grow n, shrink n, grow k, shrink k.
    let jobs = [
        (0usize, 300usize, 3usize),
        (7, 80, 2),
        (2, 500, 4),
        (5, 140, 2),
        (8, 450, 5),
    ];
    let mut reused: Option<SyncEngine> = None;
    for (i, &(which, n, k)) in jobs.iter().enumerate() {
        let cfg = cfg_for(which, n, k, 1000 + i as u64);
        let mut fresh = cfg.build();
        let mut engine = match reused.take() {
            Some(mut e) => {
                e.reset_from(&cfg);
                e
            }
            None => cfg.build(),
        };
        assert_eq!(
            trace(&mut fresh, 60),
            trace(&mut engine, 60),
            "job {i}: n = {n}, k = {k}"
        );
        reused = Some(engine);
    }
}

/// The user-facing knob: a sweep with engine reuse on (the default)
/// must produce outcomes identical to one with reuse off.
#[test]
fn sweep_outcomes_identical_with_and_without_engine_reuse() {
    let base = cfg_for(0, 200, 3, 7);
    let run = |reuse: bool| {
        Sweep::new(base.clone())
            .axis_labeled(
                "controller",
                [
                    ("ant", spec_for(0)),
                    ("sigmoid", spec_for(2)),
                    ("mix4", spec_for(8)),
                ],
                |cfg, spec| cfg.controller = spec.clone(),
            )
            .axis_labeled(
                "shock",
                [
                    ("none", Timeline::new()),
                    ("kill", Timeline::new().at(10, Event::Kill { count: 50 })),
                ],
                |cfg, timeline| cfg.timeline = timeline.clone(),
            )
            .seeds([1, 2, 3])
            .rounds(40)
            .warmup(10)
            .threads(3)
            .engine_reuse(reuse)
            .run()
            .expect("sweep runs")
    };
    let reused = run(true);
    let cold = run(false);
    assert_eq!(reused.len(), cold.len());
    for (a, b) in reused.iter().zip(&cold) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.params, b.params);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.final_regret, b.final_regret);
        assert_eq!(a.final_loads, b.final_loads);
        assert_eq!(a.summary.rounds(), b.summary.rounds());
        assert_eq!(a.summary.total_regret(), b.summary.total_regret());
        assert_eq!(
            a.summary.max_instant_regret(),
            b.summary.max_instant_regret()
        );
    }
}
