//! The bank-stepping contract: for **every** `ControllerSpec` variant,
//! the banked engine is bit-identical, round for round, to the per-ant
//! reference loop (the pre-bank engine semantics) — and mixed colonies
//! survive kill/spawn/checkpoint/restore with exact replays.

use antalloc_core::Controller as _;
use antalloc_env::{ColonyState, DemandVector, Event, Perturbation, Timeline};
use antalloc_noise::{FeedbackProbe, NoiseModel};
use antalloc_rng::{reserved, AntRng, StreamSeeder};
use antalloc_sim::{Checkpoint, ControllerSpec, FnObserver, NullObserver, RoundRecord, SimConfig};

use antalloc_core::{
    AntParams, ExactGreedyParams, PreciseAdversarialParams, PreciseSigmoidParams,
    ProportionalParams,
};

/// One round's observable outcome.
type Trace = Vec<(u64, Vec<u32>, u64, u64)>; // (round, loads, idle, switches)

/// Replays `cfg` with the pre-bank semantics: a flat `Vec<AnyController>`
/// stepped per ant, each through its own probe, decisions applied in ant
/// order as they are made. The controllers themselves are cloned out of
/// a freshly built engine (`reference_controllers`), so mixed-colony
/// membership matches by construction.
fn reference_trace(cfg: &SimConfig, rounds: u64) -> (Trace, Vec<u32>) {
    let demands = DemandVector::new(cfg.demands.clone());
    let seeder = StreamSeeder::new(cfg.seed);
    let mut colony = ColonyState::new(cfg.n, demands);
    let mut init_rng = seeder.stream(reserved::INIT);
    cfg.initial.apply(&mut colony, &mut init_rng);
    let mut controllers = {
        let engine = cfg.build();
        engine.reference_controllers()
    };
    let mut rngs: Vec<AntRng> = (0..cfg.n).map(|i| seeder.ant(i)).collect();
    let mut deficits = vec![0i64; colony.num_tasks()];
    let mut trace = Trace::new();
    let mut cursor = 0usize;
    let mut fired: Vec<Event> = Vec::new();
    for round in 1..=rounds {
        // The per-ant reference models the pure environment events
        // (demand rewrites); population shocks are exercised by the
        // dedicated timeline replay tests instead.
        fired.clear();
        cfg.timeline.fire_into(round, &mut cursor, &mut fired);
        for event in fired.drain(..) {
            match event {
                Event::SetDemands(new) => colony.demands_mut().set(&new),
                other => panic!("reference trace cannot apply {other:?}"),
            }
        }
        colony.deficits_into(&mut deficits);
        let prepared = cfg
            .noise
            .prepare(round, &deficits, colony.demands().as_slice());
        let mut switches = 0u64;
        for i in 0..controllers.len() {
            let mut probe = FeedbackProbe::new(&prepared, &mut rngs[i]);
            let next = controllers[i].step(&mut probe);
            if next != colony.assignment(i) {
                switches += 1;
                colony.apply(i, next);
            }
        }
        trace.push((
            round,
            colony.loads().to_vec(),
            colony.idle_count(),
            switches,
        ));
    }
    let final_loads = colony.loads().to_vec();
    (trace, final_loads)
}

/// Runs the banked engine and records the same observables.
fn banked_trace(cfg: &SimConfig, rounds: u64) -> (Trace, Vec<u32>) {
    let mut engine = cfg.build();
    let mut trace = Trace::new();
    {
        let mut obs = FnObserver::new(|r: &RoundRecord<'_>| {
            trace.push((r.round, r.loads.to_vec(), r.idle, r.switches));
        });
        engine.run(rounds, &mut obs);
    }
    let final_loads = engine.colony().loads().to_vec();
    (trace, final_loads)
}

fn every_spec() -> Vec<(ControllerSpec, usize)> {
    // (spec, task count) — hysteresis machines observe one task.
    vec![
        (ControllerSpec::Ant(AntParams::new(1.0 / 16.0)), 3),
        (ControllerSpec::AntDesync(AntParams::new(1.0 / 16.0)), 2),
        (
            ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.05, 0.5)),
            2,
        ),
        (
            ControllerSpec::PreciseAdversarial(PreciseAdversarialParams::new(0.05, 0.5)),
            2,
        ),
        (ControllerSpec::Trivial, 3),
        (ControllerSpec::ExactGreedy(ExactGreedyParams::default()), 2),
        (
            ControllerSpec::Proportional(ProportionalParams {
                gain: 0.25,
                deadband: 2,
            }),
            3,
        ),
        (
            ControllerSpec::Hysteresis {
                depth: 3,
                lazy: Some(0.5),
            },
            1,
        ),
        (
            ControllerSpec::Mix(vec![
                (2.0, ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
                (
                    1.0,
                    ControllerSpec::ExactGreedy(ExactGreedyParams::default()),
                ),
                (1.0, ControllerSpec::Trivial),
            ]),
            2,
        ),
        (
            ControllerSpec::Mix(vec![
                (1.0, ControllerSpec::AntDesync(AntParams::new(1.0 / 16.0))),
                (
                    1.0,
                    ControllerSpec::Hysteresis {
                        depth: 2,
                        lazy: None,
                    },
                ),
            ]),
            1,
        ),
        // Every SoA-banked kind at once: Ant, Precise Sigmoid, Trivial,
        // ExactGreedy and Proportional racing inside one colony.
        (
            ControllerSpec::Mix(vec![
                (1.0, ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
                (
                    1.0,
                    ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.05, 0.5)),
                ),
                (1.0, ControllerSpec::Trivial),
                (
                    1.0,
                    ControllerSpec::ExactGreedy(ExactGreedyParams::default()),
                ),
                (
                    1.0,
                    ControllerSpec::Proportional(ProportionalParams::default()),
                ),
            ]),
            2,
        ),
    ]
}

fn config_for(
    spec: &ControllerSpec,
    k: usize,
    n: usize,
    seed: u64,
    noise: NoiseModel,
) -> SimConfig {
    let demands: Vec<u64> = (0..k).map(|j| (n / (2 * k) + j + 1) as u64).collect();
    SimConfig::builder(n, demands)
        .noise(noise)
        .controller(spec.clone())
        .seed(seed)
        .build()
        .expect("valid scenario")
}

#[test]
fn bank_stepping_equals_per_ant_stepping_for_every_spec() {
    for (spec, k) in every_spec() {
        for seed in [1u64, 99] {
            let cfg = config_for(&spec, k, 120, seed, NoiseModel::Sigmoid { lambda: 2.0 });
            let (reference, ref_loads) = reference_trace(&cfg, 41);
            let (banked, bank_loads) = banked_trace(&cfg, 41);
            assert_eq!(reference, banked, "trace diverged: {spec:?} seed {seed}");
            assert_eq!(ref_loads, bank_loads, "{spec:?} seed {seed}");
        }
    }
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Random spec × noise × colony size × seed: bank-stepping must
        /// reproduce the per-ant reference round for round.
        #[test]
        fn bank_equals_reference(
            which in 0usize..11,
            noise_pick in 0usize..3,
            n in 20usize..160,
            seed: u64,
            rounds in 1u64..30,
        ) {
            let (spec, k) = every_spec().swap_remove(which);
            let noise = match noise_pick {
                0 => NoiseModel::Sigmoid { lambda: 1.5 },
                1 => NoiseModel::Exact,
                _ => NoiseModel::CorrelatedSigmoid { lambda: 1.0, rho: 0.4, seed: 7 },
            };
            let cfg = config_for(&spec, k, n, seed, noise);
            let (reference, ref_loads) = reference_trace(&cfg, rounds);
            let (banked, bank_loads) = banked_trace(&cfg, rounds);
            prop_assert_eq!(reference, banked);
            prop_assert_eq!(ref_loads, bank_loads);
        }

        /// Timeline-bearing specs: with a random demand-step script in
        /// the config, bank-stepping still matches the per-ant
        /// reference round for round (demand events are pure, so the
        /// reference can replay them).
        #[test]
        fn bank_equals_reference_under_demand_timelines(
            which in 0usize..11,
            n in 20usize..160,
            seed: u64,
            first_at in 1u64..12,
            gap in 1u64..12,
            rounds in 1u64..30,
        ) {
            let (spec, k) = every_spec().swap_remove(which);
            let mut cfg = config_for(&spec, k, n, seed, NoiseModel::Sigmoid { lambda: 1.5 });
            let bumped: Vec<u64> = cfg.demands.iter().map(|d| d + 1).collect();
            let original = cfg.demands.clone();
            cfg.timeline = Timeline::new()
                .at(first_at, Event::SetDemands(bumped))
                .at(first_at + gap, Event::SetDemands(original));
            let (reference, ref_loads) = reference_trace(&cfg, rounds);
            let (banked, bank_loads) = banked_trace(&cfg, rounds);
            prop_assert_eq!(reference, banked);
            prop_assert_eq!(ref_loads, bank_loads);
        }

        /// Timeline-bearing specs survive checkpoint-restore mid-script:
        /// capture at a random phase boundary between shocks (kills,
        /// spawns, demand steps), restore, and the continuation must be
        /// bit-identical to the uninterrupted run.
        #[test]
        fn mid_timeline_checkpoint_replay_is_exact(
            which in 0usize..6,
            seed: u64,
            boundary in 1u64..30,
            tail in 1u64..30,
        ) {
            // Capture-phase-2 specs so every even round is a capture
            // point (Precise Sigmoid contributes 1: its counters are
            // serialized, so its 82-round phase doesn't gate capture —
            // the last mix checkpoints mid-sigmoid-phase across kills,
            // spawns and scrambles).
            let specs: [(ControllerSpec, usize); 6] = [
                (ControllerSpec::Ant(AntParams::new(1.0 / 16.0)), 2),
                (ControllerSpec::Trivial, 2),
                (ControllerSpec::ExactGreedy(ExactGreedyParams::default()), 2),
                // Proportional contributes capture phase 1: its deadband
                // streaks travel in the v7 scratch section, so the mix
                // checkpoints mid-streak across kills and scrambles.
                (
                    ControllerSpec::Mix(vec![
                        (1.0, ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
                        (
                            1.0,
                            ControllerSpec::Proportional(ProportionalParams {
                                gain: 0.5,
                                deadband: 4,
                            }),
                        ),
                    ]),
                    2,
                ),
                (
                    ControllerSpec::Mix(vec![
                        (2.0, ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
                        (1.0, ControllerSpec::Trivial),
                    ]),
                    2,
                ),
                (
                    ControllerSpec::Mix(vec![
                        (1.0, ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
                        (
                            1.0,
                            ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.05, 0.5)),
                        ),
                        (1.0, ControllerSpec::Trivial),
                        (
                            1.0,
                            ControllerSpec::ExactGreedy(ExactGreedyParams::default()),
                        ),
                    ]),
                    2,
                ),
            ];
            let (spec, k) = specs[which].clone();
            let mut cfg = config_for(&spec, k, 120, seed, NoiseModel::Sigmoid { lambda: 1.5 });
            cfg.timeline = Timeline::new()
                .at(7, Event::Kill { count: 30 })
                .at(19, Event::SetDemands(vec![40, 20]))
                .at(33, Event::Spawn { count: 25 })
                .at(47, Event::Scramble);
            let split = boundary * 2; // ant/mix phase length is 2
            let total = split + tail;

            let mut obs = NullObserver;
            let mut full = cfg.build();
            full.run(total, &mut obs);

            let mut head = cfg.build();
            head.run(split, &mut obs);
            let cp = Checkpoint::capture(&head).expect("phase boundary");
            let mut resumed = Checkpoint::from_bytes(&cp.to_bytes()).expect("decodes").restore();
            resumed.run(tail, &mut obs);

            prop_assert_eq!(full.colony().assignments(), resumed.colony().assignments());
            prop_assert_eq!(full.colony().loads(), resumed.colony().loads());
            prop_assert_eq!(full.colony().num_ants(), resumed.colony().num_ants());
        }

        /// Precise Sigmoid checkpoints capture at **any** round — the
        /// half-phase counters travel in the v5 scratch section — and
        /// the restored continuation is bit-identical to the
        /// uninterrupted run, wherever inside the 82-round phase the
        /// capture lands (phase start, first half, the pause round
        /// `r = m`, second half, decision round).
        #[test]
        fn sigmoid_mid_phase_checkpoint_restore_is_exact(
            seed: u64,
            split in 1u64..170,
            tail in 1u64..100,
        ) {
            let spec = ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.05, 0.5));
            let cfg = config_for(&spec, 2, 100, seed, NoiseModel::Sigmoid { lambda: 1.5 });

            let mut obs = NullObserver;
            let mut full = cfg.build();
            full.run(split + tail, &mut obs);

            let mut head = cfg.build();
            head.run(split, &mut obs);
            let cp = Checkpoint::capture(&head).expect("any round is a capture point");
            let mut resumed = Checkpoint::from_bytes(&cp.to_bytes()).expect("decodes").restore();
            resumed.run(tail, &mut obs);

            prop_assert_eq!(full.colony().assignments(), resumed.colony().assignments());
            prop_assert_eq!(full.colony().loads(), resumed.colony().loads());
        }

        /// Precise Adversarial checkpoints capture at **any** round —
        /// the ramp/freeze trackers travel in the v6 scratch section —
        /// and the restored continuation is bit-identical to the
        /// uninterrupted run, wherever inside the 320-round phase the
        /// capture lands (ramp, the freeze round `r = r1`, the frozen
        /// sub-phase, the unanimity decision round). This mirrors the
        /// sigmoid coverage above: the last long-phase capture gap.
        #[test]
        fn adversarial_mid_phase_checkpoint_restore_is_exact(
            seed: u64,
            split in 1u64..340,
            tail in 1u64..100,
        ) {
            let spec = ControllerSpec::PreciseAdversarial(PreciseAdversarialParams::new(0.05, 0.5));
            let cfg = config_for(&spec, 2, 100, seed, NoiseModel::Sigmoid { lambda: 1.5 });

            let mut obs = NullObserver;
            let mut full = cfg.build();
            full.run(split + tail, &mut obs);

            let mut head = cfg.build();
            head.run(split, &mut obs);
            let cp = Checkpoint::capture(&head).expect("any round is a capture point");
            // Pin both restore paths: a fresh engine and restore_into a
            // reused one that just ran something unrelated.
            let decoded = Checkpoint::from_bytes(&cp.to_bytes()).expect("decodes");
            let mut resumed = decoded.restore();
            resumed.run(tail, &mut obs);
            let mut reused = config_for(
                &ControllerSpec::Trivial, 2, 40, seed ^ 1, NoiseModel::Exact,
            ).build();
            reused.run(5, &mut obs);
            decoded.restore_into(&mut reused);
            reused.run(tail, &mut obs);

            prop_assert_eq!(full.colony().assignments(), resumed.colony().assignments());
            prop_assert_eq!(full.colony().loads(), resumed.colony().loads());
            prop_assert_eq!(resumed.colony().assignments(), reused.colony().assignments());
            prop_assert_eq!(resumed.colony().loads(), reused.colony().loads());
        }
    }
}

fn mixed_config(seed: u64) -> SimConfig {
    // Phase lengths 2 (Ant), 1 (greedy), 1 (hysteresis) → LCM 2.
    SimConfig::builder(500, vec![120])
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(ControllerSpec::Mix(vec![
            (2.0, ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
            (
                1.0,
                ControllerSpec::ExactGreedy(ExactGreedyParams::default()),
            ),
            (
                1.0,
                ControllerSpec::Hysteresis {
                    depth: 2,
                    lazy: Some(0.5),
                },
            ),
        ]))
        .seed(seed)
        .build()
        .expect("valid mixed scenario")
}

#[test]
fn mixed_colony_checkpoint_replay_after_kill_and_spawn_is_exact() {
    let mut obs = NullObserver;
    let mut engine = mixed_config(5).build();
    engine.run(20, &mut obs);
    engine.perturb(&Perturbation::KillRandom { count: 120 });
    engine.run(10, &mut obs);
    engine.perturb(&Perturbation::Spawn { count: 60 });
    engine.run(10, &mut obs); // round 40: a phase boundary (phase 2).

    let cp = Checkpoint::capture(&engine).expect("round 40 is a boundary");
    // The binary format round-trips the membership exactly.
    let restored = Checkpoint::from_bytes(&cp.to_bytes()).expect("decodes");
    assert_eq!(cp, restored);

    // Continue the original; replay the restored copy; compare traces.
    let mut original_trace = Vec::new();
    {
        let mut obs = FnObserver::new(|r: &RoundRecord<'_>| {
            original_trace.push((r.round, r.loads.to_vec(), r.idle, r.switches));
        });
        engine.run(40, &mut obs);
    }
    let mut replay_trace = Vec::new();
    {
        let mut resumed = restored.restore();
        let mut obs = FnObserver::new(|r: &RoundRecord<'_>| {
            replay_trace.push((r.round, r.loads.to_vec(), r.idle, r.switches));
        });
        resumed.run(40, &mut obs);
        assert_eq!(
            engine.colony().assignments(),
            resumed.colony().assignments()
        );
        assert_eq!(engine.colony().loads(), resumed.colony().loads());
    }
    assert_eq!(original_trace, replay_trace);
}

#[test]
fn mixed_colony_spawn_after_restore_matches_uninterrupted_run() {
    // The spawn's sub-spec draw is keyed by (master seed, stream id),
    // both checkpointed — so perturbing after a restore must match
    // perturbing the uninterrupted engine.
    let mut obs = NullObserver;
    let mut uninterrupted = mixed_config(13).build();
    uninterrupted.run(20, &mut obs);
    let cp = Checkpoint::capture(&uninterrupted).unwrap();
    let mut resumed = cp.restore();

    uninterrupted.perturb(&Perturbation::Spawn { count: 40 });
    resumed.perturb(&Perturbation::Spawn { count: 40 });
    uninterrupted.run(20, &mut obs);
    resumed.run(20, &mut obs);
    assert_eq!(
        uninterrupted.colony().assignments(),
        resumed.colony().assignments()
    );
    assert_eq!(uninterrupted.colony().loads(), resumed.colony().loads());
    let a: Vec<usize> = uninterrupted.bank_census().iter().map(|b| b.ants).collect();
    let b: Vec<usize> = resumed.bank_census().iter().map(|b| b.ants).collect();
    assert_eq!(a, b, "spawns joined the same sub-specs");
}

#[test]
fn mixed_colony_runs_under_sequential_model() {
    let cfg = mixed_config(3);
    let mut a = cfg.build_sequential();
    let mut b = cfg.build_sequential();
    let mut obs = NullObserver;
    a.run(300, &mut obs);
    b.run(300, &mut obs);
    assert_eq!(a.colony().loads(), b.colony().loads());
    assert!(a.colony().recount_consistent());
}

#[test]
fn mix_scenario_roundtrips_through_toml_and_json() {
    let cfg = mixed_config(77);
    let toml = cfg.to_toml();
    assert_eq!(
        SimConfig::from_toml(&toml).expect("parses"),
        cfg,
        "\n{toml}"
    );
    let json = cfg.to_json();
    assert_eq!(
        SimConfig::from_json(&json).expect("parses"),
        cfg,
        "\n{json}"
    );
}

#[test]
fn invalid_mixes_are_rejected_with_typed_errors() {
    use antalloc_sim::ConfigError;
    let build = |spec: ControllerSpec| {
        SimConfig::builder(100, vec![20])
            .controller(spec)
            .build()
            .unwrap_err()
    };
    // Empty.
    let err = build(ControllerSpec::Mix(vec![]));
    assert!(matches!(err, ConfigError::Controller(_)), "{err}");
    // Zero and negative weights.
    for w in [0.0, -1.0, f64::NAN, f64::INFINITY] {
        let err = build(ControllerSpec::Mix(vec![(w, ControllerSpec::Trivial)]));
        assert!(matches!(err, ConfigError::Controller(_)), "w={w}: {err}");
    }
    // Nested mix.
    let err = build(ControllerSpec::Mix(vec![(
        1.0,
        ControllerSpec::Mix(vec![(1.0, ControllerSpec::Trivial)]),
    )]));
    assert!(err.to_string().contains("nested"), "{err}");
    // A sub-spec outside its admissible window is rejected strictly...
    let err = build(ControllerSpec::Mix(vec![(
        1.0,
        ControllerSpec::Ant(AntParams::new(0.125)),
    )]));
    assert!(matches!(err, ConfigError::Controller(_)), "{err}");
    // ...and waivable like any other out-of-spec parameter.
    SimConfig::builder(100, vec![20])
        .controller(ControllerSpec::Mix(vec![(
            1.0,
            ControllerSpec::Ant(AntParams::new(0.125)),
        )]))
        .out_of_spec_params()
        .build()
        .expect("out-of-spec mixes build relaxed");
}
