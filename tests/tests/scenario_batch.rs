//! The scenario layer end to end: a TOML-declared scenario is loaded,
//! validated, swept over seeds on multiple threads, and every per-seed
//! result matches an individual serial run exactly.

use antalloc_core::AntParams;
use antalloc_noise::NoiseModel;
use antalloc_sim::{
    Batch, ConfigError, ControllerSpec, NullObserver, RunSummary, Scenario, SimConfig, Sweep,
};
use antalloc_tests::SmallColony;

const SCENARIO_TOML: &str = r#"
name = "batch-acceptance"
n = 1200
demands = [150, 250, 100]
seed = 99

[controller]
kind = "ant"
gamma = 0.0625

[noise]
kind = "sigmoid"
lambda = 2.0

[initial]
kind = "uniform-random"
"#;

#[test]
fn toml_scenario_swept_over_8_seeds_matches_8_serial_runs() {
    let scenario = Scenario::from_toml(SCENARIO_TOML).expect("scenario validates");
    assert_eq!(scenario.name.as_deref(), Some("batch-acceptance"));

    let rounds = 300u64;
    let warmup = 100u64;
    let outcomes = Batch::new(scenario.config.clone(), rounds)
        .seeds(0..8)
        .warmup(warmup)
        .threads(4)
        .run()
        .expect("batch runs");
    assert_eq!(outcomes.len(), 8);

    for (i, outcome) in outcomes.iter().enumerate() {
        assert_eq!(outcome.seed, i as u64);
        // The reference: this seed run entirely serially, by hand.
        let mut config = scenario.config.clone();
        config.seed = outcome.seed;
        let mut engine = config.build();
        let mut sink = NullObserver;
        engine.run(warmup, &mut sink);
        let mut summary = RunSummary::new();
        engine.run(rounds, &mut summary);
        assert_eq!(
            outcome.summary.total_regret(),
            summary.total_regret(),
            "seed {i}: batch result diverged from the serial run"
        );
        assert_eq!(
            outcome.summary.max_instant_regret(),
            summary.max_instant_regret()
        );
        assert_eq!(outcome.final_regret, engine.colony().instant_regret());
        let loads: Vec<u64> = (0..engine.colony().num_tasks())
            .map(|j| engine.colony().load(j))
            .collect();
        assert_eq!(outcome.final_loads, loads, "seed {i}");
    }

    // And different seeds genuinely explored different trajectories.
    // disallowed_types: only the distinct COUNT is asserted, so hash
    // iteration order cannot affect the test.
    #[allow(clippy::disallowed_types)]
    let distinct: std::collections::HashSet<_> =
        outcomes.iter().map(|o| o.final_loads.clone()).collect();
    assert!(distinct.len() > 1, "all 8 seeds produced identical loads");
}

#[test]
fn invalid_scenarios_yield_config_errors_not_panics() {
    // Structurally broken documents, one per validation class.
    for (mangle, expect) in [
        ("n = 1200", "n = 0"),                                    // zero-ant colony
        ("demands = [150, 250, 100]", "demands = []"),            // no tasks
        ("demands = [150, 250, 100]", "demands = [150, 0, 100]"), // zero demand
        ("gamma = 0.0625", "gamma = 0.2"),                        // outside γ window
        ("lambda = 2.0", "lambda = -1.0"),                        // bad noise param
    ] {
        let text = SCENARIO_TOML.replace(mangle, expect);
        assert!(
            Scenario::from_toml(&text).is_err(),
            "`{expect}` should have been rejected"
        );
    }
    // Timeline/colony task-count mismatch (via the legacy section).
    let text = format!("{SCENARIO_TOML}\n[schedule]\nkind = \"step\"\nat = 5\ndemands = [1, 2]\n");
    assert!(matches!(
        Scenario::from_toml(&text).unwrap_err(),
        ConfigError::Timeline(_)
    ));
    // ...and via a [[timeline]] block directly.
    let text = format!(
        "{SCENARIO_TOML}\n[[timeline]]\nat = 5\nkind = \"set-demands\"\ndemands = [1, 2]\n"
    );
    assert!(matches!(
        Scenario::from_toml(&text).unwrap_err(),
        ConfigError::Timeline(_)
    ));
    // Syntax garbage.
    assert!(matches!(
        Scenario::from_toml("[controller\nkind=").unwrap_err(),
        ConfigError::Parse(_)
    ));
}

#[test]
fn sweep_grid_is_deterministic_across_thread_counts() {
    let base = SmallColony {
        n: 600,
        demands: vec![80, 120],
        ..Default::default()
    }
    .scenario()
    .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
    .build()
    .expect("fixture scenario is valid");
    let sweep = |threads: usize| {
        Sweep::new(base.clone())
            .axis("lambda", [0.5, 2.0], |cfg, lambda| {
                cfg.noise = NoiseModel::Sigmoid { lambda };
            })
            .seeds(10..14)
            .rounds(100)
            .threads(threads)
            .run()
            .expect("sweep runs")
    };
    let serial = sweep(1);
    let parallel = sweep(8);
    assert_eq!(serial.len(), 8);
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.params, b.params);
        assert_eq!(a.summary.total_regret(), b.summary.total_regret());
        assert_eq!(a.final_loads, b.final_loads);
    }
}

#[test]
fn config_files_roundtrip_through_both_formats() {
    let scenario = Scenario::from_toml(SCENARIO_TOML).unwrap();
    let via_toml = SimConfig::from_toml(&scenario.config.to_toml()).unwrap();
    let via_json = SimConfig::from_json(&scenario.config.to_json()).unwrap();
    assert_eq!(via_toml, scenario.config);
    assert_eq!(via_json, scenario.config);
}
