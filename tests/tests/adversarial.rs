//! The Theorem 3.5 construction end to end: the load-threshold adversary
//! makes two different demand vectors *indistinguishable*, so any
//! algorithm follows the identical trajectory under both and must pay
//! regret against at least one of them.

use antalloc_core::AntParams;
use antalloc_noise::{yao_demand_pair, GreyZonePolicy, NoiseModel};
use antalloc_sim::{ControllerSpec, FnObserver, RunSummary, SimConfig};

const N: usize = 2000;
const K: usize = 2;
const GAMMA_AD: f64 = 0.05;

fn run_with_demands(demands: Vec<u64>, thresholds: Vec<u64>) -> (Vec<Vec<u32>>, f64) {
    let cfg = SimConfig::builder(N, demands)
        .noise(NoiseModel::Adversarial {
            gamma_ad: GAMMA_AD,
            policy: GreyZonePolicy::LoadThreshold(thresholds),
        })
        // γ = γ* = γ_ad, as Theorem 3.1 wants.
        .controller(ControllerSpec::Ant(AntParams::new(GAMMA_AD)))
        .seed(0xA110C)
        .build()
        .expect("valid scenario");
    let mut engine = cfg.build();
    let mut loads_trace: Vec<Vec<u32>> = Vec::new();
    let mut obs = FnObserver::new(|r: &antalloc_sim::RoundRecord<'_>| {
        loads_trace.push(r.loads.to_vec());
    });
    engine.run(3000, &mut obs);
    let _ = obs; // closure borrows end here
    let mut steady = RunSummary::new();
    engine.run(2000, &mut steady);
    (loads_trace, steady.average_regret())
}

#[test]
fn yao_adversary_is_legal_for_both_demand_vectors() {
    let (d, dp, theta) = yao_demand_pair(N, K, GAMMA_AD);
    let policy = GreyZonePolicy::LoadThreshold(theta);
    assert_eq!(policy.validate_load_thresholds(GAMMA_AD, &d), Ok(()));
    assert_eq!(policy.validate_load_thresholds(GAMMA_AD, &dp), Ok(()));
}

#[test]
fn trajectories_under_d_and_d_prime_are_identical() {
    let (d, dp, theta) = yao_demand_pair(N, K, GAMMA_AD);
    let (trace_d, _) = run_with_demands(d, theta.clone());
    let (trace_dp, _) = run_with_demands(dp, theta);
    assert_eq!(
        trace_d, trace_dp,
        "the adversary's feedback is a function of loads only, so the \
         two worlds must evolve identically"
    );
}

#[test]
fn average_regret_over_the_pair_meets_the_floor() {
    let (d, dp, theta) = yao_demand_pair(N, K, GAMMA_AD);
    let tau = (d[0] - dp[0]) / 2;
    let (_, regret_d) = run_with_demands(d.clone(), theta.clone());
    let (_, regret_dp) = run_with_demands(dp.clone(), theta);
    let avg = 0.5 * (regret_d + regret_dp);
    // Theorem 3.5's proof gives E[regret] ≥ k·τ per round for the pair.
    let floor = (K as u64 * tau) as f64;
    assert!(
        avg >= floor * 0.9,
        "avg regret {avg} below the k·τ = {floor} floor"
    );
}
