//! Checkpoint/restore produces bit-identical continuations, including
//! for long-phase controllers and non-trivial noise models.

use antalloc_core::{AntParams, PreciseAdversarialParams, PreciseSigmoidParams};
use antalloc_noise::{GreyZonePolicy, NoiseModel};
use antalloc_sim::{Checkpoint, CheckpointError, ControllerSpec, NullObserver, SimConfig};

fn replay_equivalence(cfg: SimConfig, split: u64, tail: u64) {
    let mut obs = NullObserver;
    let mut full = cfg.build();
    full.run(split + tail, &mut obs);

    let mut head = cfg.build();
    head.run(split, &mut obs);
    let cp = Checkpoint::capture(&head).unwrap_or_else(|e| panic!("capture: {e}"));
    let bytes = cp.to_bytes();
    let cp2 = Checkpoint::from_bytes(&bytes).unwrap();
    let mut resumed = cp2.restore();
    resumed.run(tail, &mut obs);

    assert_eq!(full.round(), resumed.round());
    assert_eq!(full.colony().assignments(), resumed.colony().assignments());
    assert_eq!(full.colony().loads(), resumed.colony().loads());
}

#[test]
fn ant_replays_exactly() {
    let cfg = SimConfig::builder(1000, vec![150, 200])
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
        .seed(3)
        .build()
        .expect("valid scenario");
    replay_equivalence(cfg, 600, 400); // 600 % 2 == 0: phase boundary.
}

#[test]
fn precise_sigmoid_replays_exactly_at_phase_boundary() {
    let params = PreciseSigmoidParams::new(0.05, 0.5); // phase 82
    let cfg = SimConfig::builder(800, vec![100, 120])
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(ControllerSpec::PreciseSigmoid(params))
        .seed(4)
        .build()
        .expect("valid scenario");
    replay_equivalence(cfg, 82 * 5, 82 * 3);
}

#[test]
fn precise_adversarial_replays_under_adversarial_noise() {
    let params = PreciseAdversarialParams::new(0.05, 0.5); // phase 320
    let cfg = SimConfig::builder(600, vec![100])
        .noise(NoiseModel::Adversarial {
            gamma_ad: 0.05,
            policy: GreyZonePolicy::AlternateByRound,
        })
        .controller(ControllerSpec::PreciseAdversarial(params))
        .seed(5)
        .build()
        .expect("valid scenario");
    replay_equivalence(cfg, 320 * 2, 320);
}

#[test]
fn precise_sigmoid_captures_mid_phase_and_replays_exactly() {
    // The half-phase counters travel in the checkpoint (format v5), so
    // a capture *between* phase boundaries — previously refused, and
    // silently lossy to restore — now resumes bit-identically. Round
    // 83 is one round into a fresh 82-round phase; round 123 is right
    // after the half-phase pause coin.
    let params = PreciseSigmoidParams::new(0.05, 0.5); // phase 82
    let cfg = SimConfig::builder(100, vec![20])
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(ControllerSpec::PreciseSigmoid(params))
        .seed(6)
        .build()
        .expect("valid scenario");
    for split in [83u64, 123] {
        replay_equivalence(cfg.clone(), split, 200);
    }
}

#[test]
fn off_boundary_capture_is_still_refused_without_a_scratch_codec() {
    // Kinds whose mid-phase scratch is *not* serialized (here: §4 Ant,
    // whose first-sample state lives only in the bank) keep the
    // phase-boundary rule.
    let cfg = SimConfig::builder(100, vec![20])
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
        .seed(6)
        .build()
        .expect("valid scenario");
    let mut engine = cfg.build();
    let mut obs = NullObserver;
    engine.run(3, &mut obs);
    match Checkpoint::capture(&engine) {
        Err(CheckpointError::NotAtPhaseBoundary { round: 3, phase: 2 }) => {}
        other => panic!("expected boundary refusal, got {other:?}"),
    }
}

#[test]
fn checkpoint_config_roundtrips_through_toml_and_rebuilds_identically() {
    // A checkpoint written under one scenario must rebuild a
    // bit-identical engine after its config makes a round trip through
    // the serialized scenario format: checkpoint → TOML → SimConfig →
    // fresh run must equal both the original uninterrupted run and the
    // binary checkpoint's own restore path.
    let cfg = SimConfig::builder(900, vec![120, 180])
        .noise(NoiseModel::CorrelatedSigmoid {
            lambda: 2.0,
            rho: 0.4,
            seed: 77,
        })
        .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
        .seed(0x5CEA)
        .build()
        .expect("valid scenario");
    let mut obs = NullObserver;

    let mut original = cfg.build();
    original.run(400, &mut obs);
    let cp = Checkpoint::capture(&original).unwrap();

    // The embedded config survives text serialization exactly.
    let toml_text = cp.config().to_toml();
    let rebuilt_cfg = SimConfig::from_toml(&toml_text)
        .unwrap_or_else(|e| panic!("embedded config must reparse: {e}\n{toml_text}"));
    assert_eq!(&rebuilt_cfg, cp.config());
    let json_cfg = SimConfig::from_json(&cp.config().to_json()).unwrap();
    assert_eq!(&json_cfg, cp.config());

    // A fresh engine from the deserialized config replays the whole
    // trajectory bit-identically...
    let mut replayed = rebuilt_cfg.build();
    replayed.run(400, &mut obs);
    assert_eq!(
        original.colony().assignments(),
        replayed.colony().assignments()
    );
    assert_eq!(original.colony().loads(), replayed.colony().loads());

    // ...and continues in lockstep with the binary restore path.
    let mut restored = cp.restore();
    restored.run(200, &mut obs);
    replayed.run(200, &mut obs);
    original.run(200, &mut obs);
    assert_eq!(
        original.colony().assignments(),
        restored.colony().assignments()
    );
    assert_eq!(
        original.colony().assignments(),
        replayed.colony().assignments()
    );
}

#[test]
fn checkpoint_config_roundtrip_covers_schedules_and_initials() {
    // The restore path must survive a config whose optional sections
    // (schedule, initial) are all non-default.
    let cfg = SimConfig::builder(500, vec![60, 90])
        .noise(NoiseModel::Sigmoid { lambda: 1.5 })
        .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
        .seed(0x5CEB)
        .schedule(antalloc_env::DemandSchedule::Alternating {
            a: vec![60, 90],
            b: vec![90, 60],
            half_period: 64,
        })
        .initial(antalloc_env::InitialConfig::Inverted)
        .build()
        .expect("valid scenario");
    let mut obs = NullObserver;
    let mut engine = cfg.build();
    engine.run(128, &mut obs);
    let cp = Checkpoint::capture(&engine).unwrap();
    let back = SimConfig::from_toml(&cp.config().to_toml()).unwrap();
    assert_eq!(&back, cp.config());
    // Replay from text-config start matches the live engine.
    let mut replay = back.build();
    replay.run(128, &mut obs);
    assert_eq!(engine.colony().assignments(), replay.colony().assignments());
}

#[test]
fn correlated_noise_replays_exactly() {
    // CorrelatedSigmoid derives shared draws from (seed, round, task):
    // restores must regenerate the identical shared coins.
    let cfg = SimConfig::builder(700, vec![90, 110])
        .noise(NoiseModel::CorrelatedSigmoid {
            lambda: 2.0,
            rho: 0.5,
            seed: 99,
        })
        .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
        .seed(8)
        .build()
        .expect("valid scenario");
    replay_equivalence(cfg, 400, 300);
}
