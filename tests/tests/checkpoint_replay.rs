//! Checkpoint/restore produces bit-identical continuations, including
//! for long-phase controllers and non-trivial noise models.

use antalloc_core::{AntParams, PreciseAdversarialParams, PreciseSigmoidParams};
use antalloc_noise::{GreyZonePolicy, NoiseModel};
use antalloc_sim::{Checkpoint, CheckpointError, ControllerSpec, NullObserver, SimConfig};

fn replay_equivalence(cfg: SimConfig, split: u64, tail: u64) {
    let mut obs = NullObserver;
    let mut full = cfg.build();
    full.run(split + tail, &mut obs);

    let mut head = cfg.build();
    head.run(split, &mut obs);
    let cp = Checkpoint::capture(&head).unwrap_or_else(|e| panic!("capture: {e}"));
    let bytes = cp.to_bytes();
    let cp2 = Checkpoint::from_bytes(&bytes).unwrap();
    let mut resumed = cp2.restore();
    resumed.run(tail, &mut obs);

    assert_eq!(full.round(), resumed.round());
    assert_eq!(full.colony().assignments(), resumed.colony().assignments());
    assert_eq!(full.colony().loads(), resumed.colony().loads());
}

#[test]
fn ant_replays_exactly() {
    let cfg = SimConfig::new(
        1000,
        vec![150, 200],
        NoiseModel::Sigmoid { lambda: 2.0 },
        ControllerSpec::Ant(AntParams::new(1.0 / 16.0)),
        3,
    );
    replay_equivalence(cfg, 600, 400); // 600 % 2 == 0: phase boundary.
}

#[test]
fn precise_sigmoid_replays_exactly_at_phase_boundary() {
    let params = PreciseSigmoidParams::new(0.05, 0.5); // phase 82
    let cfg = SimConfig::new(
        800,
        vec![100, 120],
        NoiseModel::Sigmoid { lambda: 2.0 },
        ControllerSpec::PreciseSigmoid(params),
        4,
    );
    replay_equivalence(cfg, 82 * 5, 82 * 3);
}

#[test]
fn precise_adversarial_replays_under_adversarial_noise() {
    let params = PreciseAdversarialParams::new(0.05, 0.5); // phase 320
    let cfg = SimConfig::new(
        600,
        vec![100],
        NoiseModel::Adversarial { gamma_ad: 0.05, policy: GreyZonePolicy::AlternateByRound },
        ControllerSpec::PreciseAdversarial(params),
        5,
    );
    replay_equivalence(cfg, 320 * 2, 320);
}

#[test]
fn off_boundary_capture_is_refused() {
    let params = PreciseSigmoidParams::new(0.05, 0.5); // phase 82
    let cfg = SimConfig::new(
        100,
        vec![20],
        NoiseModel::Sigmoid { lambda: 2.0 },
        ControllerSpec::PreciseSigmoid(params),
        6,
    );
    let mut engine = cfg.build();
    let mut obs = NullObserver;
    engine.run(83, &mut obs);
    match Checkpoint::capture(&engine) {
        Err(CheckpointError::NotAtPhaseBoundary { round: 83, phase: 82 }) => {}
        other => panic!("expected boundary refusal, got {other:?}"),
    }
}

#[test]
fn correlated_noise_replays_exactly() {
    // CorrelatedSigmoid derives shared draws from (seed, round, task):
    // restores must regenerate the identical shared coins.
    let cfg = SimConfig::new(
        700,
        vec![90, 110],
        NoiseModel::CorrelatedSigmoid { lambda: 2.0, rho: 0.5, seed: 99 },
        ControllerSpec::Ant(AntParams::new(1.0 / 16.0)),
        8,
    );
    replay_equivalence(cfg, 400, 300);
}
