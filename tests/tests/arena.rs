//! The sensing layer's contract: a single-site zero-latency arena *is*
//! the well-mixed colony (bit-identical, for every controller kind),
//! multi-site arenas keep the full determinism contract (serial ==
//! parallel == checkpoint-restore), and the proportional controller
//! rides the same machinery end to end.

use antalloc_core::{
    AntParams, ExactGreedyParams, PreciseAdversarialParams, PreciseSigmoidParams,
    ProportionalParams,
};
use antalloc_env::{ArenaConfig, Condition, Event, Timeline, Trigger};
use antalloc_noise::NoiseModel;
use antalloc_sim::{
    Checkpoint, ConfigError, ControllerSpec, FnObserver, NullObserver, RoundRecord, SimConfig,
};

/// One round's observable outcome.
type Trace = Vec<(u64, Vec<u32>, u64, u64)>; // (round, loads, idle, switches)

fn trace_of(engine: &mut antalloc_sim::SyncEngine, rounds: u64) -> Trace {
    let mut trace = Trace::new();
    {
        let mut obs = FnObserver::new(|r: &RoundRecord<'_>| {
            trace.push((r.round, r.loads.to_vec(), r.idle, r.switches));
        });
        engine.run(rounds, &mut obs);
    }
    trace
}

/// Every banked controller kind (the `banks.rs` matrix, including the
/// proportional rival and a mix containing it).
fn every_spec() -> Vec<(ControllerSpec, usize)> {
    vec![
        (ControllerSpec::Ant(AntParams::new(1.0 / 16.0)), 3),
        (ControllerSpec::AntDesync(AntParams::new(1.0 / 16.0)), 2),
        (
            ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.05, 0.5)),
            2,
        ),
        (
            ControllerSpec::PreciseAdversarial(PreciseAdversarialParams::new(0.05, 0.5)),
            2,
        ),
        (ControllerSpec::Trivial, 3),
        (ControllerSpec::ExactGreedy(ExactGreedyParams::default()), 2),
        (
            ControllerSpec::Proportional(ProportionalParams {
                gain: 0.25,
                deadband: 2,
            }),
            3,
        ),
        (
            ControllerSpec::Hysteresis {
                depth: 3,
                lazy: Some(0.5),
            },
            1,
        ),
        (
            ControllerSpec::Mix(vec![
                (2.0, ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
                (
                    1.0,
                    ControllerSpec::Proportional(ProportionalParams::default()),
                ),
                (1.0, ControllerSpec::Trivial),
            ]),
            2,
        ),
    ]
}

fn config_for(
    spec: &ControllerSpec,
    k: usize,
    n: usize,
    seed: u64,
    arena: Option<ArenaConfig>,
) -> SimConfig {
    let demands: Vec<u64> = (0..k).map(|j| (n / (2 * k) + j + 1) as u64).collect();
    let mut builder = SimConfig::builder(n, demands)
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(spec.clone())
        .seed(seed);
    if let Some(arena) = arena {
        builder = builder.arena(arena);
    }
    builder.build().expect("valid scenario")
}

/// A 3-site arena over `k` tasks (`k % 3` distribution), with latency
/// and wandering turned on.
fn multi_site(k: usize) -> ArenaConfig {
    let num_sites = k.min(3) as u32;
    ArenaConfig {
        site_of_task: (0..k).map(|j| j as u32 % num_sites).collect(),
        travel_rounds: 3,
        wander_probability: 0.15,
    }
}

#[test]
fn single_site_zero_latency_arena_equals_well_mixed_for_every_spec() {
    // The degenerate geometry must compile to the shared well-mixed
    // view: identical traces, round for round, for every banked kind.
    for (spec, k) in every_spec() {
        for seed in [3u64, 71] {
            let mixed_cfg = config_for(&spec, k, 120, seed, None);
            let arena_cfg = config_for(&spec, k, 120, seed, Some(ArenaConfig::single_site(k)));
            let mixed = trace_of(&mut mixed_cfg.build(), 41);
            let arena = trace_of(&mut arena_cfg.build(), 41);
            assert_eq!(mixed, arena, "trace diverged: {spec:?} seed {seed}");
        }
    }
}

#[test]
fn single_site_arena_with_latency_still_equals_well_mixed() {
    // With one site there is nowhere to travel to, so even a nonzero
    // latency never engages; only the wander coin (its own reserved
    // stream) differs, which must stay invisible to the ants.
    let spec = ControllerSpec::Ant(AntParams::new(1.0 / 16.0));
    let mixed_cfg = config_for(&spec, 2, 200, 9, None);
    let arena_cfg = config_for(
        &spec,
        2,
        200,
        9,
        Some(ArenaConfig {
            site_of_task: vec![0, 0],
            travel_rounds: 5,
            wander_probability: 0.4,
        }),
    );
    let mixed = trace_of(&mut mixed_cfg.build(), 80);
    let arena = trace_of(&mut arena_cfg.build(), 80);
    assert_eq!(mixed, arena);
}

#[test]
fn multi_site_arena_serial_equals_parallel() {
    for (spec, k) in [
        (ControllerSpec::Ant(AntParams::new(1.0 / 16.0)), 3),
        (
            ControllerSpec::Proportional(ProportionalParams::default()),
            3,
        ),
        (
            ControllerSpec::Mix(vec![
                (1.0, ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
                (
                    1.0,
                    ControllerSpec::Proportional(ProportionalParams {
                        gain: 0.5,
                        deadband: 1,
                    }),
                ),
            ]),
            3,
        ),
    ] {
        let cfg = config_for(&spec, k, 600, 17, Some(multi_site(k)));
        let mut serial = cfg.build();
        let mut obs = NullObserver;
        serial.run(150, &mut obs);
        for threads in [2usize, 4] {
            let mut par = cfg.build();
            par.run_parallel_forced(150, threads, &mut obs);
            assert_eq!(
                serial.colony().assignments(),
                par.colony().assignments(),
                "{spec:?} threads = {threads}"
            );
            assert_eq!(serial.colony().loads(), par.colony().loads());
        }
    }
}

#[test]
fn multi_site_arena_checkpoint_restore_is_exact() {
    // Capture mid-run with travelers in flight (travel_rounds = 3,
    // wander on): the position and travel columns travel in the v7
    // stream, so the continuation must be bit-identical.
    let spec = ControllerSpec::Mix(vec![
        (1.0, ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
        (
            1.0,
            ControllerSpec::Proportional(ProportionalParams {
                gain: 0.5,
                deadband: 2,
            }),
        ),
    ]);
    let cfg = config_for(&spec, 3, 400, 23, Some(multi_site(3)));
    let mut obs = NullObserver;
    for split in [2u64, 10, 36] {
        let mut full = cfg.build();
        full.run(split + 60, &mut obs);

        let mut head = cfg.build();
        head.run(split, &mut obs);
        let cp = Checkpoint::capture(&head).expect("phase boundary");
        let decoded = Checkpoint::from_bytes(&cp.to_bytes()).expect("decodes");
        assert_eq!(decoded, cp, "arena columns round-trip");
        let mut resumed = decoded.restore();
        resumed.run(60, &mut obs);
        assert_eq!(
            full.colony().assignments(),
            resumed.colony().assignments(),
            "split = {split}"
        );
        assert_eq!(full.colony().loads(), resumed.colony().loads());

        // restore_into a dirty engine of a different shape agrees too.
        let mut reused = config_for(&ControllerSpec::Trivial, 2, 50, 99, None).build();
        reused.run(5, &mut obs);
        decoded.restore_into(&mut reused);
        reused.run(60, &mut obs);
        assert_eq!(
            resumed.colony().assignments(),
            reused.colony().assignments()
        );
        assert_eq!(resumed.colony().loads(), reused.colony().loads());
    }
}

#[test]
fn arena_survives_timeline_shocks_bit_identically() {
    // Kill / scramble / per-task demand step under a multi-site arena:
    // serial, parallel and a mid-timeline checkpoint must agree.
    let spec = ControllerSpec::Proportional(ProportionalParams::default());
    let demands = vec![80u64, 90, 100];
    let timeline = Timeline::new()
        .at(11, Event::Kill { count: 90 })
        .at(
            23,
            Event::SetTaskDemand {
                task: 2,
                demand: 150,
            },
        )
        .at(37, Event::Scramble)
        .at(49, Event::Spawn { count: 45 });
    let cfg = SimConfig::builder(450, demands)
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(spec)
        .seed(31)
        .arena(multi_site(3))
        .timeline(timeline)
        .build()
        .expect("valid scenario");

    let mut obs = NullObserver;
    let mut serial = cfg.build();
    serial.run(90, &mut obs);

    let mut par = cfg.build();
    par.run_parallel_forced(90, 4, &mut obs);
    assert_eq!(serial.colony().assignments(), par.colony().assignments());
    assert_eq!(serial.colony().loads(), par.colony().loads());

    // Checkpoint between the scramble and the spawn.
    let mut head = cfg.build();
    head.run(40, &mut obs);
    let cp = Checkpoint::from_bytes(&Checkpoint::capture(&head).unwrap().to_bytes()).unwrap();
    let mut resumed = cp.restore();
    resumed.run(50, &mut obs);
    assert_eq!(
        serial.colony().assignments(),
        resumed.colony().assignments()
    );
    assert_eq!(serial.colony().loads(), resumed.colony().loads());
}

#[test]
fn deficit_triggers_fire_identically_on_every_path() {
    // A deficit-above trigger answering a per-task demand step, plus a
    // rate trigger: firing rounds are part of the bit-identity contract.
    let timeline = Timeline::new()
        .at(
            15,
            Event::SetTaskDemand {
                task: 0,
                demand: 160,
            },
        )
        .trigger(Trigger {
            when: Condition::DeficitAbove {
                task: 0,
                threshold: 30,
                for_rounds: 4,
            },
            event: Event::Spawn { count: 60 },
            cooldown: 40,
            max_firings: 2,
        })
        .trigger(Trigger::once(
            Condition::DeficitRateAbove {
                task: 1,
                min_rise: 20,
                for_rounds: 1,
            },
            Event::SetTaskDemand {
                task: 1,
                demand: 70,
            },
        ));
    let cfg = SimConfig::builder(500, vec![90, 110])
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(ControllerSpec::Proportional(ProportionalParams::default()))
        .seed(61)
        .timeline(timeline)
        .build()
        .expect("valid scenario");

    let mut obs = NullObserver;
    let mut serial = cfg.build();
    serial.run(120, &mut obs);
    assert!(
        serial.trigger_states().iter().any(|t| t.firings > 0),
        "the deficit trigger never fired; the scenario is vacuous"
    );

    let mut par = cfg.build();
    par.run_parallel_forced(120, 4, &mut obs);
    assert_eq!(serial.colony().assignments(), par.colony().assignments());
    assert_eq!(serial.trigger_states(), par.trigger_states());

    // Mid-window capture: the previous-round deficits travel in v7, so
    // a restore inside a rate trigger's streak continues exactly.
    for split in [10u64, 17, 30] {
        let mut head = cfg.build();
        head.run(split, &mut obs);
        let cp = Checkpoint::from_bytes(&Checkpoint::capture(&head).unwrap().to_bytes()).unwrap();
        let mut resumed = cp.restore();
        resumed.run(120 - split, &mut obs);
        assert_eq!(
            serial.colony().assignments(),
            resumed.colony().assignments(),
            "split = {split}"
        );
        assert_eq!(serial.trigger_states(), resumed.trigger_states());
    }
}

#[test]
fn invalid_arenas_are_rejected_with_typed_errors() {
    let build = |arena: ArenaConfig| {
        SimConfig::builder(100, vec![20, 30])
            .controller(ControllerSpec::Trivial)
            .arena(arena)
            .build()
            .unwrap_err()
    };
    // Wrong task count.
    let err = build(ArenaConfig::single_site(3));
    assert!(matches!(err, ConfigError::Arena(_)), "{err}");
    // Non-dense site ids (site 1 hosts no task).
    let err = build(ArenaConfig {
        site_of_task: vec![0, 2],
        travel_rounds: 0,
        wander_probability: 0.0,
    });
    assert!(matches!(err, ConfigError::Arena(_)), "{err}");
    // Wander probability outside [0, 1].
    for bad in [-0.1, 1.5, f64::NAN] {
        let err = build(ArenaConfig {
            site_of_task: vec![0, 1],
            travel_rounds: 0,
            wander_probability: bad,
        });
        assert!(matches!(err, ConfigError::Arena(_)), "wander {bad}: {err}");
    }
}

#[test]
fn sequential_model_rejects_arenas() {
    let cfg = config_for(
        &ControllerSpec::Trivial,
        2,
        100,
        1,
        Some(ArenaConfig {
            site_of_task: vec![0, 1],
            travel_rounds: 0,
            wander_probability: 0.0,
        }),
    );
    let err = match cfg.try_build_sequential() {
        Ok(_) => panic!("sequential build accepted an arena config"),
        Err(e) => e,
    };
    assert!(matches!(err, ConfigError::Arena(_)), "{err}");
}

#[test]
fn task_count_above_the_mask_cap_is_a_typed_error() {
    // The 64-task `lack_mask` fast path (and the 4096-task sensing row
    // cap) are enforced at build time, not by a kernel assert.
    let demands = vec![1u64; antalloc_sim::MAX_TASKS + 1];
    let err = SimConfig::builder(10_000, demands)
        .controller(ControllerSpec::Trivial)
        .noise(NoiseModel::Exact)
        .build()
        .unwrap_err();
    assert!(matches!(err, ConfigError::TooManyTasks { .. }), "{err}");
    assert!(err.to_string().contains("4096"), "{err}");
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Random spec × colony size × seed: the degenerate arena is
        /// bit-identical to the well-mixed colony for every banked kind.
        #[test]
        fn degenerate_arena_equals_well_mixed(
            which in 0usize..9,
            n in 20usize..160,
            seed: u64,
            rounds in 1u64..30,
        ) {
            let (spec, k) = every_spec().swap_remove(which);
            let mixed_cfg = config_for(&spec, k, n, seed, None);
            let arena_cfg = config_for(&spec, k, n, seed, Some(ArenaConfig::single_site(k)));
            let mixed = trace_of(&mut mixed_cfg.build(), rounds);
            let arena = trace_of(&mut arena_cfg.build(), rounds);
            prop_assert_eq!(mixed, arena);
        }

        /// Random multi-site geometry: serial and parallel stepping
        /// agree, and a mid-run checkpoint continues exactly.
        #[test]
        fn multi_site_contract_holds(
            seed: u64,
            travel in 0u32..5,
            wander in 0.0f64..0.5,
            boundary in 1u64..20,
            tail in 1u64..20,
            threads in 2usize..5,
        ) {
            let arena = ArenaConfig {
                site_of_task: vec![0, 1, 0],
                travel_rounds: travel,
                wander_probability: wander,
            };
            let spec = ControllerSpec::Mix(vec![
                (1.0, ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
                (1.0, ControllerSpec::Proportional(ProportionalParams::default())),
            ]);
            let cfg = config_for(&spec, 3, 150, seed, Some(arena));
            let split = boundary * 2; // mix capture phase is 2
            let total = split + tail;
            let mut obs = NullObserver;

            let mut serial = cfg.build();
            serial.run(total, &mut obs);

            let mut par = cfg.build();
            par.run_parallel_forced(total, threads, &mut obs);
            prop_assert_eq!(serial.colony().assignments(), par.colony().assignments());
            prop_assert_eq!(serial.colony().loads(), par.colony().loads());

            let mut head = cfg.build();
            head.run(split, &mut obs);
            let cp = Checkpoint::from_bytes(
                &Checkpoint::capture(&head).expect("phase boundary").to_bytes(),
            ).expect("decodes");
            let mut resumed = cp.restore();
            resumed.run(tail, &mut obs);
            prop_assert_eq!(serial.colony().assignments(), resumed.colony().assignments());
            prop_assert_eq!(serial.colony().loads(), resumed.colony().loads());
        }

        /// The proportional controller holds the full contract on its
        /// own: serial == parallel == checkpoint-restore, well-mixed
        /// and arena alike.
        #[test]
        fn proportional_full_contract(
            seed: u64,
            gain in 0.05f64..1.0,
            deadband in 0u16..6,
            use_arena: bool,
            boundary in 1u64..25,
            tail in 1u64..25,
        ) {
            let spec = ControllerSpec::Proportional(ProportionalParams { gain, deadband });
            let arena = use_arena.then(|| multi_site(2));
            let cfg = config_for(&spec, 2, 130, seed, arena);
            let total = boundary + tail; // capture phase is 1
            let mut obs = NullObserver;

            let mut serial = cfg.build();
            serial.run(total, &mut obs);

            let mut par = cfg.build();
            par.run_parallel_forced(total, 4, &mut obs);
            prop_assert_eq!(serial.colony().assignments(), par.colony().assignments());

            let mut head = cfg.build();
            head.run(boundary, &mut obs);
            let cp = Checkpoint::from_bytes(
                &Checkpoint::capture(&head).expect("any round").to_bytes(),
            ).expect("decodes");
            let mut resumed = cp.restore();
            resumed.run(tail, &mut obs);
            prop_assert_eq!(serial.colony().assignments(), resumed.colony().assignments());
            prop_assert_eq!(serial.colony().loads(), resumed.colony().loads());
        }
    }
}
