//! Determinism guarantees: the simulation is a pure function of its
//! config, independent of thread count and of checkpoint/restore.

use antalloc_core::{AntParams, PreciseSigmoidParams};
use antalloc_noise::NoiseModel;
use antalloc_sim::{ControllerSpec, NullObserver, SimConfig};

fn config(seed: u64) -> SimConfig {
    SimConfig::builder(1500, vec![200, 300, 150])
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
        .seed(seed)
        .build()
        .expect("valid scenario")
}

#[test]
fn serial_and_parallel_trajectories_are_bit_identical() {
    let mut serial = config(1).build();
    let mut obs = NullObserver;
    serial.run(501, &mut obs);

    for threads in [2usize, 3, 8] {
        let mut par = config(1).build();
        // Forced: production run_parallel would fall back to serial at
        // this colony size, which would make the test vacuous.
        par.run_parallel_forced(501, threads, &mut obs);
        assert_eq!(
            serial.colony().assignments(),
            par.colony().assignments(),
            "threads = {threads}"
        );
        assert_eq!(serial.colony().loads(), par.colony().loads());
    }
}

#[test]
fn different_seeds_give_different_trajectories() {
    let mut a = config(1).build();
    let mut b = config(2).build();
    let mut obs = NullObserver;
    a.run(100, &mut obs);
    b.run(100, &mut obs);
    assert_ne!(a.colony().assignments(), b.colony().assignments());
}

#[test]
fn mixed_serial_parallel_interleaving_is_identical() {
    // Switching between serial and parallel stepping mid-run must not
    // change anything: determinism is per-ant, not per-schedule.
    let mut pure = config(9).build();
    let mut mixed = config(9).build();
    let mut obs = NullObserver;
    pure.run(300, &mut obs);
    mixed.run(100, &mut obs);
    mixed.run_parallel_forced(100, 4, &mut obs);
    mixed.run(100, &mut obs);
    assert_eq!(pure.colony().assignments(), mixed.colony().assignments());
}

#[test]
fn precise_sigmoid_parallel_determinism() {
    // A controller with long phases and heavier per-round state.
    let spec = ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.05, 0.5));
    let mut cfg = config(5);
    cfg.controller = spec;
    let mut serial = cfg.build();
    let mut par = cfg.build();
    let mut obs = NullObserver;
    serial.run(250, &mut obs);
    par.run_parallel_forced(250, 4, &mut obs);
    assert_eq!(serial.colony().assignments(), par.colony().assignments());
}

/// Property coverage for the fused-apply round loop: the parallel
/// path's double-buffered column writes and per-worker delta merges
/// must be invisible — bit-identical to serial — at every thread
/// count, for every chunk seam the partitioner can produce, with
/// population shocks, state-dependent triggers and checkpoint-restore
/// in the mix.
mod fused_properties {
    use super::*;
    use antalloc_core::{ExactGreedyParams, PreciseSigmoidParams};
    use antalloc_env::{Condition, Event, InitialConfig, Timeline, Trigger};
    use antalloc_sim::{Checkpoint, FnObserver, RoundRecord};
    use proptest::prelude::*;

    /// Thread counts the fused path is pinned at (1 exercises the
    /// forced single-worker parallel harness, not the serial fallback).
    const THREADS: [usize; 4] = [1, 2, 4, 8];

    /// Homogeneous and mixed colonies; mixes make bank boundaries land
    /// mid-chunk so worker seams cross bank seams.
    fn spec_for(which: usize) -> ControllerSpec {
        match which {
            0 => ControllerSpec::Ant(AntParams::new(1.0 / 16.0)),
            1 => ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.05, 0.5)),
            2 => ControllerSpec::Mix(vec![
                (2.0, ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
                (1.0, ControllerSpec::Trivial),
            ]),
            _ => ControllerSpec::Mix(vec![
                (1.0, ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
                (
                    1.0,
                    ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.05, 0.5)),
                ),
                (1.0, ControllerSpec::Trivial),
                (
                    1.0,
                    ControllerSpec::ExactGreedy(ExactGreedyParams::default()),
                ),
            ]),
        }
    }

    fn cfg_for(which: usize, n: usize, seed: u64) -> SimConfig {
        let k = 3usize;
        let demands: Vec<u64> = (0..k).map(|j| (n / (2 * k) + j + 1) as u64).collect();
        SimConfig::builder(n, demands)
            .noise(NoiseModel::Sigmoid { lambda: 1.5 })
            .controller(spec_for(which))
            .seed(seed)
            .build()
            .expect("valid scenario")
    }

    proptest! {
        /// Serial vs forced-parallel at every thread count, with colony
        /// sizes drawn to split unevenly across workers (the chunk is
        /// rounded to cache-line multiples, so almost any n exercises a
        /// ragged tail chunk).
        #[test]
        fn fused_parallel_is_bit_identical_across_thread_counts(
            which in 0usize..4,
            n in 97usize..400,
            seed: u64,
            rounds in 1u64..50,
        ) {
            let mut obs = NullObserver;
            let mut serial = cfg_for(which, n, seed).build();
            serial.run(rounds, &mut obs);
            for threads in THREADS {
                let mut par = cfg_for(which, n, seed).build();
                par.run_parallel_forced(rounds, threads, &mut obs);
                prop_assert_eq!(
                    serial.colony().assignments(),
                    par.colony().assignments(),
                    "threads = {}", threads
                );
                prop_assert_eq!(serial.colony().loads(), par.colony().loads());
                prop_assert_eq!(serial.colony().idle_count(), par.colony().idle_count());
            }
        }

        /// A state-dependent trigger arms mid-segment: the parallel
        /// coordinator must observe it in the exclusive window (while
        /// the task column is on loan to the workers), end the segment
        /// on the same round the serial path does, and fire the event
        /// identically.
        #[test]
        fn fused_parallel_triggers_arm_mid_segment_identically(
            n in 300usize..600,
            seed: u64,
            for_rounds in 4u32..10,
        ) {
            let cfg = |()| {
                SimConfig::builder(n, vec![(n / 6) as u64, (n / 4) as u64])
                    .noise(NoiseModel::Sigmoid { lambda: 2.0 })
                    .controller(ControllerSpec::Ant(AntParams::default()))
                    .seed(seed)
                    .initial(InitialConfig::SaturatedPlus { extra: 2 })
                    .trigger(Trigger {
                        when: Condition::RegretBelow {
                            threshold: (n / 8) as u64,
                            for_rounds,
                        },
                        event: Event::StampedeTo(0),
                        cooldown: 40,
                        max_firings: 0,
                    })
                    .build()
                    .expect("valid scenario")
            };
            let mut serial_trace = Vec::new();
            {
                let mut engine = cfg(()).build();
                let mut obs = FnObserver::new(|r: &RoundRecord<'_>| {
                    serial_trace.push((r.round, r.instant_regret(), r.switches));
                });
                engine.run(200, &mut obs);
            }
            // The stampede really fired (regret jumps to ~n scale).
            prop_assert!(
                serial_trace.iter().any(|&(_, regret, _)| regret > (n / 2) as u64),
                "trigger never fired — the case is vacuous"
            );
            for threads in THREADS {
                let mut par_trace = Vec::new();
                let mut engine = cfg(()).build();
                let mut obs = FnObserver::new(|r: &RoundRecord<'_>| {
                    par_trace.push((r.round, r.instant_regret(), r.switches));
                });
                engine.run_parallel_forced(200, threads, &mut obs);
                prop_assert_eq!(&serial_trace, &par_trace, "threads = {}", threads);
            }
        }

        /// Checkpoint-restore mid-run at each thread count, across a
        /// timeline of kills, demand steps, spawns and scrambles: the
        /// fused path must leave the engine in a state whose capture
        /// resumes bit-identically under both serial and parallel
        /// continuation.
        #[test]
        fn checkpoint_restore_mid_parallel_run_is_exact(
            which in 0usize..4,
            seed: u64,
            boundary in 1u64..26,
            tail in 1u64..40,
        ) {
            // Specs above all have capture phase 2 (Precise Sigmoid's
            // counters travel in the v5 scratch, so it doesn't gate).
            let n = 120usize;
            let mut cfg = cfg_for(which, n, seed);
            cfg.timeline = Timeline::new()
                .at(7, Event::Kill { count: 30 })
                .at(19, Event::SetDemands(vec![40, 20, 15]))
                .at(33, Event::Spawn { count: 25 })
                .at(47, Event::Scramble);
            let split = boundary * 2;
            let total = split + tail;

            let mut obs = NullObserver;
            let mut full = cfg.build();
            full.run(total, &mut obs);

            for threads in THREADS {
                let mut head = cfg.build();
                head.run_parallel_forced(split, threads, &mut obs);
                let cp = Checkpoint::capture(&head).expect("phase boundary");
                let mut resumed =
                    Checkpoint::from_bytes(&cp.to_bytes()).expect("decodes").restore();
                resumed.run_parallel_forced(tail, threads, &mut obs);
                prop_assert_eq!(
                    full.colony().assignments(),
                    resumed.colony().assignments(),
                    "threads = {}", threads
                );
                prop_assert_eq!(full.colony().loads(), resumed.colony().loads());
                prop_assert_eq!(full.colony().num_ants(), resumed.colony().num_ants());
            }
        }
    }
}

#[test]
fn sequential_engine_is_deterministic() {
    let cfg = SimConfig::builder(500, vec![120])
        .noise(NoiseModel::Sigmoid { lambda: 1.0 })
        .controller(ControllerSpec::Trivial)
        .seed(77)
        .build()
        .expect("valid scenario");
    let mut a = cfg.build_sequential();
    let mut b = cfg.build_sequential();
    let mut obs = NullObserver;
    a.run(2000, &mut obs);
    b.run(2000, &mut obs);
    assert_eq!(a.colony().assignments(), b.colony().assignments());
}
