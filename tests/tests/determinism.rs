//! Determinism guarantees: the simulation is a pure function of its
//! config, independent of thread count and of checkpoint/restore.

use antalloc_core::{AntParams, PreciseSigmoidParams};
use antalloc_noise::NoiseModel;
use antalloc_sim::{ControllerSpec, NullObserver, SimConfig};

fn config(seed: u64) -> SimConfig {
    SimConfig::builder(1500, vec![200, 300, 150])
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
        .seed(seed)
        .build()
        .expect("valid scenario")
}

#[test]
fn serial_and_parallel_trajectories_are_bit_identical() {
    let mut serial = config(1).build();
    let mut obs = NullObserver;
    serial.run(501, &mut obs);

    for threads in [2usize, 3, 8] {
        let mut par = config(1).build();
        // Forced: production run_parallel would fall back to serial at
        // this colony size, which would make the test vacuous.
        par.run_parallel_forced(501, threads, &mut obs);
        assert_eq!(
            serial.colony().assignments(),
            par.colony().assignments(),
            "threads = {threads}"
        );
        assert_eq!(serial.colony().loads(), par.colony().loads());
    }
}

#[test]
fn different_seeds_give_different_trajectories() {
    let mut a = config(1).build();
    let mut b = config(2).build();
    let mut obs = NullObserver;
    a.run(100, &mut obs);
    b.run(100, &mut obs);
    assert_ne!(a.colony().assignments(), b.colony().assignments());
}

#[test]
fn mixed_serial_parallel_interleaving_is_identical() {
    // Switching between serial and parallel stepping mid-run must not
    // change anything: determinism is per-ant, not per-schedule.
    let mut pure = config(9).build();
    let mut mixed = config(9).build();
    let mut obs = NullObserver;
    pure.run(300, &mut obs);
    mixed.run(100, &mut obs);
    mixed.run_parallel_forced(100, 4, &mut obs);
    mixed.run(100, &mut obs);
    assert_eq!(pure.colony().assignments(), mixed.colony().assignments());
}

#[test]
fn precise_sigmoid_parallel_determinism() {
    // A controller with long phases and heavier per-round state.
    let spec = ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.05, 0.5));
    let mut cfg = config(5);
    cfg.controller = spec;
    let mut serial = cfg.build();
    let mut par = cfg.build();
    let mut obs = NullObserver;
    serial.run(250, &mut obs);
    par.run_parallel_forced(250, 4, &mut obs);
    assert_eq!(serial.colony().assignments(), par.colony().assignments());
}

#[test]
fn sequential_engine_is_deterministic() {
    let cfg = SimConfig::builder(500, vec![120])
        .noise(NoiseModel::Sigmoid { lambda: 1.0 })
        .controller(ControllerSpec::Trivial)
        .seed(77)
        .build()
        .expect("valid scenario");
    let mut a = cfg.build_sequential();
    let mut b = cfg.build_sequential();
    let mut obs = NullObserver;
    a.run(2000, &mut obs);
    b.run(2000, &mut obs);
    assert_eq!(a.colony().assignments(), b.colony().assignments());
}
