//! Self-stabilization under perturbations and changing demands.

use antalloc_core::AntParams;
use antalloc_env::{DemandSchedule, Perturbation};
use antalloc_noise::NoiseModel;
use antalloc_sim::{ControllerSpec, NullObserver, RunSummary, SimConfig};

fn config(seed: u64) -> SimConfig {
    SimConfig::builder(2000, vec![300, 400])
        .noise(NoiseModel::Sigmoid { lambda: 3.0 })
        .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
        .seed(seed)
        .build()
        .expect("valid scenario")
}

fn steady_regret(engine: &mut antalloc_sim::SyncEngine, settle: u64, measure: u64) -> f64 {
    let mut warm = NullObserver;
    engine.run(settle, &mut warm);
    let mut steady = RunSummary::new();
    engine.run(measure, &mut steady);
    steady.average_regret()
}

#[test]
fn recovers_from_mass_death() {
    let mut engine = config(1).build();
    let before = steady_regret(&mut engine, 4000, 1000);
    engine.perturb(&Perturbation::KillRandom { count: 800 });
    let after = steady_regret(&mut engine, 4000, 1000);
    // Post-recovery regret within 3× of the undisturbed steady state
    // (same bound scale; the colony lost 40% of its ants but demands
    // still fit in the survivors).
    assert!(
        after < 3.0 * before + 100.0,
        "before {before}, after {after}"
    );
}

#[test]
fn recovers_from_scramble_and_stampede() {
    let mut engine = config(2).build();
    let baseline = steady_regret(&mut engine, 4000, 1000);
    engine.perturb(&Perturbation::Scramble);
    let after_scramble = steady_regret(&mut engine, 4000, 1000);
    assert!(after_scramble < 3.0 * baseline + 100.0);
    engine.perturb(&Perturbation::StampedeTo(1));
    let after_stampede = steady_regret(&mut engine, 6000, 1000);
    assert!(after_stampede < 3.0 * baseline + 100.0);
}

#[test]
fn spawned_ants_integrate() {
    let mut engine = config(3).build();
    steady_regret(&mut engine, 4000, 100);
    engine.perturb(&Perturbation::Spawn { count: 1000 });
    assert_eq!(engine.colony().num_ants(), 3000);
    // New idle ants must not stampede into saturated tasks: regret stays
    // bounded by the theorem band.
    let after = steady_regret(&mut engine, 3000, 1000);
    assert!(after < 5.0 / 16.0 * 700.0 + 3.0, "after {after}");
}

#[test]
fn tracks_step_demand_changes() {
    let mut cfg = config(4);
    cfg.timeline = DemandSchedule::Step {
        at: 5000,
        demands: vec![400, 300],
    }
    .into();
    let mut engine = cfg.build();
    let before = steady_regret(&mut engine, 4000, 900); // rounds 1..4900
    let after = steady_regret(&mut engine, 4000, 1000); // past the step
    assert!(before < 5.0 / 16.0 * 700.0 + 3.0);
    assert!(after < 5.0 / 16.0 * 700.0 + 3.0, "after {after}");
    // Loads actually moved toward the new demands.
    let w0 = engine.colony().load(0) as f64;
    let w1 = engine.colony().load(1) as f64;
    assert!(w0 > w1, "w0 {w0} should exceed w1 {w1} after the flip");
}

#[test]
fn survives_alternating_demands() {
    let mut cfg = config(5);
    cfg.timeline = DemandSchedule::Alternating {
        a: vec![300, 400],
        b: vec![400, 300],
        half_period: 3000,
    }
    .into();
    let mut engine = cfg.build();
    let mut warm = NullObserver;
    engine.run(3500, &mut warm);
    let mut all = RunSummary::new();
    engine.run(9000, &mut all);
    // Each flip moves 100 ants' worth of demand; the time-averaged regret
    // includes the transient after each flip but must stay far below the
    // Θ(Σd) level of a non-adapting allocation.
    assert!(all.average_regret() < 350.0, "avg {}", all.average_regret());
}
