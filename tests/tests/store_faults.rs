//! Fault injection for the durable store, end to end on a real
//! directory: every corruption class — truncated manifests, bit-flipped
//! payloads, version skew, kind confusion, path collisions, torn
//! concurrent writes — loads as a typed [`StoreMiss`], never a panic,
//! and a store-aware sweep degrades each one to a bit-identical
//! recomputed run. Both restore paths are exercised: fresh engines
//! (`Checkpoint::restore`) and warm-started reused engines
//! (`restore_into` via `Sweep::engine_reuse`).

use std::path::PathBuf;
use std::sync::Arc;

use antalloc_core::AntParams;
use antalloc_noise::NoiseModel;
use antalloc_sim::{
    Checkpoint, ControllerSpec, NullObserver, RunOutcome, RunSummary, SimConfig, Sweep,
};
use antalloc_store::{
    CheckpointStore, EntryKind, Fingerprint, FingerprintBuilder, StoreMiss, MANIFEST_LEN,
    STORE_VERSION,
};

/// A unique on-disk root per test (the suite runs tests in parallel).
fn scratch_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!(
        "antalloc_store_faults_{}_{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn config() -> SimConfig {
    SimConfig::builder(200, vec![30, 50])
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
        .build()
        .unwrap()
}

/// A small store-aware sweep with a shared warm-start prefix, so the
/// store holds both entry kinds: one checkpoint per seed, one outcome
/// per (grid point, seed).
fn sweep(store: Option<Arc<CheckpointStore>>, reuse: bool) -> Sweep {
    let mut sweep = Sweep::new(config())
        .axis("lambda", [1.0, 3.0], |cfg, lambda| {
            cfg.noise = NoiseModel::Sigmoid { lambda };
        })
        .seeds(0..3)
        .from_round(20)
        .rounds(30)
        .threads(2)
        .engine_reuse(reuse);
    if let Some(store) = store {
        sweep = sweep.store(store);
    }
    sweep
}

fn same_outcome(a: &RunOutcome, b: &RunOutcome) {
    assert_eq!(a.seed, b.seed);
    assert_eq!(a.summary.total_regret(), b.summary.total_regret());
    assert_eq!(
        a.summary.max_instant_regret(),
        b.summary.max_instant_regret()
    );
    assert_eq!(a.final_regret, b.final_regret);
    assert_eq!(a.final_loads, b.final_loads);
}

/// Store-served checkpoint bytes drive both restore paths to the same
/// states as the engine they were captured from.
#[test]
fn stored_checkpoint_restores_exactly_on_both_paths() {
    let root = scratch_root("roundtrip");
    let store = CheckpointStore::local(&root).unwrap();
    let mut original = config().build();
    original.run(40, &mut NullObserver);
    let ckpt = Checkpoint::capture(&original).unwrap();
    let fp = FingerprintBuilder::new("store-faults-test")
        .u64("round", 40)
        .finish();
    store
        .save(&fp, EntryKind::Checkpoint, &ckpt.to_bytes())
        .unwrap();

    let bytes = store.load(&fp, EntryKind::Checkpoint).unwrap();
    let loaded = Checkpoint::from_bytes(&bytes).unwrap();
    let mut fresh = loaded.restore();
    let mut reused = {
        // A deliberately divergent engine: restore_into must overwrite
        // every piece of its state.
        let mut other = config();
        other.seed = 999;
        let mut engine = other.build();
        engine.run(17, &mut NullObserver);
        engine
    };
    loaded.restore_into(&mut reused);

    let mut summaries = Vec::new();
    for engine in [&mut original, &mut fresh, &mut reused] {
        let mut summary = RunSummary::new();
        engine.run(40, &mut summary);
        summaries.push((
            summary.total_regret(),
            engine.colony().instant_regret(),
            (0..2)
                .map(|j| engine.colony().load(j))
                .collect::<Vec<u64>>(),
        ));
    }
    assert_eq!(summaries[0], summaries[1], "restore() diverged");
    assert_eq!(summaries[0], summaries[2], "restore_into() diverged");
    let _ = std::fs::remove_dir_all(&root);
}

/// Each corruption class yields its own typed miss; none panic.
#[test]
fn every_fault_class_is_a_typed_miss() {
    let root = scratch_root("typed");
    let store = CheckpointStore::local(&root).unwrap();
    let mut engine = config().build();
    engine.run(20, &mut NullObserver);
    let payload = Checkpoint::capture(&engine).unwrap().to_bytes();
    let fp = FingerprintBuilder::new("store-faults-test")
        .u64("k", 1)
        .finish();
    let manifest_path = CheckpointStore::manifest_path(&fp);
    let payload_path = CheckpointStore::payload_path(&fp);
    let publish = |path: &str, bytes: &[u8]| store.backend().publish(path, bytes).unwrap();
    let reset = |store: &CheckpointStore| {
        store.save(&fp, EntryKind::Checkpoint, &payload).unwrap();
        assert!(store.load(&fp, EntryKind::Checkpoint).is_ok());
    };

    assert_eq!(
        store.load(&fp, EntryKind::Checkpoint),
        Err(StoreMiss::NotFound)
    );

    // Truncated / torn manifest.
    reset(&store);
    let clean_manifest = store.backend().read(&manifest_path).unwrap().unwrap();
    assert_eq!(clean_manifest.len(), MANIFEST_LEN);
    publish(&manifest_path, &clean_manifest[..MANIFEST_LEN / 2]);
    assert_eq!(
        store.load(&fp, EntryKind::Checkpoint),
        Err(StoreMiss::TruncatedManifest {
            len: MANIFEST_LEN / 2
        })
    );

    // Wrong magic.
    let mut bent = clean_manifest.clone();
    bent[0] ^= 0xFF;
    publish(&manifest_path, &bent);
    assert!(matches!(
        store.load(&fp, EntryKind::Checkpoint),
        Err(StoreMiss::BadMagic { .. })
    ));

    // Version skew: written by a future format.
    let mut bent = clean_manifest.clone();
    bent[4..8].copy_from_slice(&(STORE_VERSION + 7).to_le_bytes());
    publish(&manifest_path, &bent);
    assert_eq!(
        store.load(&fp, EntryKind::Checkpoint),
        Err(StoreMiss::VersionSkew {
            found: STORE_VERSION + 7
        })
    );

    // Kind confusion: a checkpoint asked for as an outcome row.
    reset(&store);
    assert_eq!(
        store.load(&fp, EntryKind::Outcome),
        Err(StoreMiss::KindMismatch { found: 0 })
    );

    // Path collision: another fingerprint's manifest at this path.
    let mut bent = clean_manifest.clone();
    bent[9] ^= 0x01;
    publish(&manifest_path, &bent);
    assert_eq!(
        store.load(&fp, EntryKind::Checkpoint),
        Err(StoreMiss::FingerprintMismatch)
    );

    // Payload faults: missing, truncated, bit-flipped.
    reset(&store);
    store.backend().remove(&payload_path).unwrap();
    assert_eq!(
        store.load(&fp, EntryKind::Checkpoint),
        Err(StoreMiss::PayloadMissing)
    );
    publish(&payload_path, &payload[..payload.len() - 3]);
    assert!(matches!(
        store.load(&fp, EntryKind::Checkpoint),
        Err(StoreMiss::PayloadTruncated { .. })
    ));
    let mut bent = payload.clone();
    bent[payload.len() / 2] ^= 0x10;
    publish(&payload_path, &bent);
    assert_eq!(
        store.load(&fp, EntryKind::Checkpoint),
        Err(StoreMiss::ChecksumMismatch)
    );

    // A clean re-publish heals every one of them.
    reset(&store);
    let _ = std::fs::remove_dir_all(&root);
}

/// Corrupts entry `i` of a populated store with fault class `i % 5`.
fn corrupt_all_entries(store: &CheckpointStore) {
    let entries = store.entries().unwrap();
    assert!(!entries.is_empty());
    for (i, prefix) in entries.iter().enumerate() {
        let manifest_path = format!("entries/{prefix}/manifest");
        let payload_path = format!("entries/{prefix}/payload");
        let manifest = store.backend().read(&manifest_path).unwrap().unwrap();
        let payload = store.backend().read(&payload_path).unwrap().unwrap();
        match i % 5 {
            0 => store
                .backend()
                .publish(&manifest_path, &manifest[..10])
                .unwrap(),
            1 => {
                let mut bent = payload.clone();
                bent[i % payload.len()] ^= 0x80;
                store.backend().publish(&payload_path, &bent).unwrap();
            }
            2 => {
                let mut bent = manifest.clone();
                bent[4..8].copy_from_slice(&99u32.to_le_bytes());
                store.backend().publish(&manifest_path, &bent).unwrap();
            }
            3 => store.backend().remove(&payload_path).unwrap(),
            _ => {
                let mut bent = manifest.clone();
                bent[9 + (i % 32)] ^= 0x20;
                store.backend().publish(&manifest_path, &bent).unwrap();
            }
        }
    }
}

/// A sweep over a fully corrupted store recomputes everything
/// bit-identically — with fresh engines and with reused ones.
#[test]
fn sweeps_degrade_every_fault_to_bit_identical_recomputation() {
    let reference = sweep(None, true).run().unwrap();
    for reuse in [false, true] {
        let root = scratch_root(if reuse {
            "degrade_reuse"
        } else {
            "degrade_fresh"
        });
        let store = Arc::new(CheckpointStore::local(&root).unwrap());
        let cold = sweep(Some(store.clone()), reuse).run().unwrap();
        // 2 grid points × 3 seeds + 3 shared prefix checkpoints.
        assert_eq!(store.entries().unwrap().len(), 9);
        corrupt_all_entries(&store);
        let recomputed = sweep(Some(store.clone()), reuse).run().unwrap();
        assert!(
            recomputed.iter().all(|o| !o.cached),
            "a corrupt entry was served (engine_reuse = {reuse})"
        );
        for ((r, c), base) in recomputed.iter().zip(&cold).zip(&reference) {
            same_outcome(r, c);
            same_outcome(r, base);
        }
        // The recomputation healed the store in passing.
        let healed = sweep(Some(store), reuse).run().unwrap();
        assert!(healed.iter().all(|o| o.cached));
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// A well-formed entry whose payload is a *semantically* wrong
/// checkpoint (valid stream, wrong round) passes store verification
/// but fails the sweep's own validation and is recomputed, not served.
#[test]
fn stale_but_wellformed_checkpoint_entry_is_recomputed() {
    let root = scratch_root("stale");
    let store = Arc::new(CheckpointStore::local(&root).unwrap());
    let reference = sweep(Some(store.clone()), false).run().unwrap();

    // Re-save every checkpoint entry (kind tag 0) with a checkpoint of
    // the right config but the wrong round, under its own fingerprint
    // (recovered from the manifest) so the store verifies it cleanly.
    let mut stale = config();
    stale.seed = 0;
    let mut engine = stale.build();
    engine.run(26, &mut NullObserver);
    let wrong_round = Checkpoint::capture(&engine).unwrap().to_bytes();
    let mut replaced = 0;
    for prefix in store.entries().unwrap() {
        let manifest = store
            .backend()
            .read(&format!("entries/{prefix}/manifest"))
            .unwrap()
            .unwrap();
        if manifest[8] == 0 {
            let mut full = [0u8; 32];
            full.copy_from_slice(&manifest[9..41]);
            store
                .save(&Fingerprint(full), EntryKind::Checkpoint, &wrong_round)
                .unwrap();
            replaced += 1;
        }
    }
    assert_eq!(replaced, 3, "one prefix checkpoint per seed");

    // Drop the outcome rows so the sweep actually consults the stale
    // checkpoints instead of serving finished outcomes.
    for prefix in store.entries().unwrap() {
        let path = format!("entries/{prefix}/manifest");
        if store.backend().read(&path).unwrap().unwrap()[8] == 1 {
            store.backend().remove(&path).unwrap();
        }
    }

    let recomputed = sweep(Some(store), false).run().unwrap();
    for (r, base) in recomputed.iter().zip(&reference) {
        same_outcome(r, base);
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Torn temp files from a crashed concurrent writer are invisible:
/// they are skipped by listings and never shadow published blobs.
#[test]
fn torn_concurrent_writes_are_invisible() {
    let root = scratch_root("torn");
    let store = Arc::new(CheckpointStore::local(&root).unwrap());
    let cold = sweep(Some(store.clone()), true).run().unwrap();
    let entries = store.entries().unwrap();
    for prefix in &entries {
        std::fs::write(
            root.join(format!("entries/{prefix}/.tmp.1.1")),
            b"torn manifest write",
        )
        .unwrap();
        std::fs::write(
            root.join(format!("entries/{prefix}/.tmp.2.9")),
            b"torn payload write",
        )
        .unwrap();
    }
    assert_eq!(
        store.entries().unwrap(),
        entries,
        "temp files leaked into listings"
    );
    let warm = sweep(Some(store), true).run().unwrap();
    assert!(
        warm.iter().all(|o| o.cached),
        "temp files disturbed verified entries"
    );
    for (w, c) in warm.iter().zip(&cold) {
        same_outcome(w, c);
    }
    let _ = std::fs::remove_dir_all(&root);
}
