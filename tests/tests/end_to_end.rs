//! Cross-crate smoke and contract tests: every shipped controller runs
//! under every noise model, respects the environment's information
//! hiding, and reaches both of its output states (Assumption 2.2 in
//! behavioural form).

use antalloc_core::{AntParams, ExactGreedyParams, PreciseAdversarialParams, PreciseSigmoidParams};
use antalloc_noise::{GreyZonePolicy, NoiseModel};
use antalloc_sim::{BasicObserver, ControllerSpec, FnObserver, NullObserver, SimConfig};

fn all_specs() -> Vec<ControllerSpec> {
    vec![
        ControllerSpec::Ant(AntParams::new(1.0 / 16.0)),
        ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.05, 0.5)),
        ControllerSpec::PreciseAdversarial(PreciseAdversarialParams::new(0.05, 0.5)),
        ControllerSpec::Trivial,
        ControllerSpec::ExactGreedy(ExactGreedyParams::default()),
    ]
}

fn all_noises() -> Vec<NoiseModel> {
    vec![
        NoiseModel::Exact,
        NoiseModel::Sigmoid { lambda: 1.5 },
        NoiseModel::CorrelatedSigmoid {
            lambda: 1.5,
            rho: 0.4,
            seed: 9,
        },
        NoiseModel::Adversarial {
            gamma_ad: 0.05,
            policy: GreyZonePolicy::Inverted,
        },
        NoiseModel::Adversarial {
            gamma_ad: 0.05,
            policy: GreyZonePolicy::RandomLack(0.5),
        },
    ]
}

#[test]
fn every_controller_runs_under_every_noise_model() {
    for spec in all_specs() {
        for noise in all_noises() {
            let cfg = SimConfig::builder(400, vec![60, 80])
                .noise(noise.clone())
                .controller(spec.clone())
                .seed(12)
                .build()
                .expect("valid scenario");
            let mut engine = cfg.build();
            let mut obs = NullObserver;
            engine.run(700, &mut obs);
            assert!(
                engine.colony().recount_consistent(),
                "{spec:?} under {noise:?}"
            );
        }
    }
}

#[test]
fn every_controller_visits_both_working_and_idle_states() {
    // Behavioural Assumption 2.2: over a long noisy run, the population
    // must exercise joins and leaves (no absorbing states).
    for spec in all_specs() {
        let cfg = SimConfig::builder(300, vec![50, 50])
            .noise(NoiseModel::Sigmoid { lambda: 0.5 })
            .controller(spec.clone())
            .seed(13)
            .build()
            .expect("valid scenario");
        let mut engine = cfg.build();
        let mut saw_workers = false;
        let mut saw_idle = false;
        let mut obs = FnObserver::new(|r: &antalloc_sim::RoundRecord<'_>| {
            saw_workers |= r.loads.iter().any(|&w| w > 0);
            saw_idle |= r.idle > 0;
        });
        engine.run(2500, &mut obs);
        let _ = obs; // closure borrows end here
        assert!(saw_workers, "{spec:?} never put anyone to work");
        assert!(saw_idle, "{spec:?} never had an idle ant");
    }
}

#[test]
fn hysteresis_spec_runs_single_task_colonies() {
    for depth in [1u16, 3, 8] {
        let cfg = SimConfig::builder(500, vec![125])
            .noise(NoiseModel::Sigmoid { lambda: 1.0 })
            .controller(ControllerSpec::Hysteresis {
                depth,
                lazy: Some(0.25),
            })
            .seed(14)
            .build()
            .expect("valid scenario");
        let mut engine = cfg.build();
        let mut obs = BasicObserver::new(0.05, 2.5, 500);
        engine.run(3000, &mut obs);
        assert!(engine.colony().recount_consistent());
        // The machine allocates *some* workers.
        assert!(engine.colony().load(0) > 0);
    }
}

#[test]
fn metrics_pipeline_integrates_with_engine() {
    let cfg = SimConfig::builder(1000, vec![150, 200])
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
        .seed(15)
        .build()
        .expect("valid scenario");
    let mut engine = cfg.build();
    let mut obs = BasicObserver::new(1.0 / 16.0, 2.5, 2000);
    engine.run(5000, &mut obs);
    let b = obs.regret.breakdown();
    assert_eq!(b.rounds, 3000);
    assert_eq!(b.total, b.plus + b.minus + b.near);
    // Steady state: significant lack should be gone.
    assert_eq!(b.minus, 0, "steady-state lack component {}", b.minus);
    assert!(obs.instant.mean() > 0.0);
    assert!(obs.switches.per_ant_round(1000) < 0.2);
}

#[test]
fn memory_accounting_is_ordered_sensibly() {
    // Trivial < Ant < PreciseSigmoid, and PreciseSigmoid grows with 1/ε.
    let k = 4;
    let trivial = ControllerSpec::Trivial.build(k);
    let ant = ControllerSpec::Ant(AntParams::default()).build(k);
    let ps_coarse = ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.05, 0.5)).build(k);
    let ps_fine = ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.05, 0.05)).build(k);
    use antalloc_core::Controller as _;
    assert!(trivial.memory_bits() < ant.memory_bits());
    assert!(ant.memory_bits() < ps_coarse.memory_bits());
    assert!(ps_coarse.memory_bits() < ps_fine.memory_bits());
}
