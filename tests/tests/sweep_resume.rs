//! Resume equivalence: a store-aware sweep killed ~60% of the way
//! through and restarted over the same store root is outcome-for-
//! outcome bit-identical to an uninterrupted run — across 1/2/4/8
//! workers, with engine reuse on and off, for plain sweeps and for
//! `from_round` warm-started ones. The restart must also actually
//! *resume*: every run the first attempt captured is served from the
//! store, not recomputed.

use std::path::PathBuf;
use std::sync::Arc;

use antalloc_core::AntParams;
use antalloc_noise::NoiseModel;
use antalloc_sim::{ControllerSpec, RunOutcome, SimConfig, Sweep};
use antalloc_store::CheckpointStore;

fn scratch_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!(
        "antalloc_sweep_resume_{}_{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn config() -> SimConfig {
    SimConfig::builder(250, vec![40, 60])
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
        .build()
        .unwrap()
}

/// 2 grid points × 10 seeds = 20 jobs.
fn sweep(workers: usize, reuse: bool, warm_start: bool) -> Sweep {
    let mut sweep = Sweep::new(config())
        .axis("lambda", [1.5, 3.0], |cfg, lambda| {
            cfg.noise = NoiseModel::Sigmoid { lambda };
        })
        .seeds(0..10)
        .rounds(40)
        .threads(workers)
        .engine_reuse(reuse);
    if warm_start {
        sweep = sweep.from_round(30);
    }
    sweep
}

/// Entries holding outcome rows (manifest kind tag 1) — warm-started
/// sweeps also store prefix checkpoints, which are not runs.
fn outcome_entries(store: &CheckpointStore) -> usize {
    store
        .entries()
        .unwrap()
        .iter()
        .filter(|prefix| {
            let manifest = store
                .backend()
                .read(&format!("entries/{prefix}/manifest"))
                .unwrap()
                .unwrap();
            manifest[8] == 1
        })
        .count()
}

fn assert_bit_identical(label: &str, a: &[RunOutcome], b: &[RunOutcome]) {
    assert_eq!(a.len(), b.len(), "{label}: outcome counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.index, y.index, "{label}");
        assert_eq!(x.seed, y.seed, "{label}");
        assert_eq!(x.rounds, y.rounds, "{label}");
        assert_eq!(
            x.summary.total_regret(),
            y.summary.total_regret(),
            "{label}: seed {} diverged",
            x.seed
        );
        assert_eq!(
            x.summary.max_instant_regret(),
            y.summary.max_instant_regret(),
            "{label}"
        );
        assert_eq!(x.final_regret, y.final_regret, "{label}");
        assert_eq!(x.final_loads, y.final_loads, "{label}");
    }
}

fn kill_and_resume(warm_start: bool) {
    // The uninterrupted reference, computed once without any store.
    let reference = sweep(1, false, warm_start).run().unwrap();
    assert_eq!(reference.len(), 20);

    for workers in [1usize, 2, 4, 8] {
        for reuse in [false, true] {
            let label = format!("workers {workers}, engine_reuse {reuse}, from_round {warm_start}");
            let root = scratch_root(&format!("{warm_start}_{workers}_{reuse}"));

            // First attempt: die after ~60% of the outcomes arrive.
            let captured = {
                let store = Arc::new(CheckpointStore::local(&root).unwrap());
                let mut seen = 0usize;
                let delivered = sweep(workers, reuse, warm_start)
                    .store(store.clone())
                    .run_while(|_| {
                        seen += 1;
                        seen < 12
                    })
                    .unwrap();
                assert!(delivered < 20, "{label}: the kill never happened");
                outcome_entries(&store)
            };
            assert!(captured >= 11, "{label}: too little survived the kill");

            // Restart over the same root, as a new process would.
            let store = Arc::new(CheckpointStore::local(&root).unwrap());
            let resumed = sweep(workers, reuse, warm_start)
                .store(store)
                .run()
                .unwrap();
            // Exactly the captured runs are served; exactly the rest
            // recompute. (With many workers the in-flight tail may
            // have finished everything before the abort landed — the
            // equality still pins resume behavior; the deterministic
            // 60%-archive test below guarantees a non-empty remainder.)
            let served = resumed.iter().filter(|o| o.cached).count();
            assert_eq!(
                served, captured,
                "{label}: resume recomputed runs the first attempt captured"
            );
            assert_eq!(
                resumed.iter().filter(|o| !o.cached).count(),
                20 - captured,
                "{label}: recomputed more than the missing runs"
            );
            assert_bit_identical(&label, &resumed, &reference);
            let _ = std::fs::remove_dir_all(&root);
        }
    }
}

#[test]
fn killed_sweep_resumes_bit_identically() {
    kill_and_resume(false);
}

#[test]
fn killed_warm_start_sweep_resumes_bit_identically() {
    kill_and_resume(true);
}

/// The deterministic 60% archive: a store populated by sweeping only
/// the first 6 of 10 seeds is exactly a sweep killed at 60%, with no
/// scheduling race. The full restart must serve those 12 runs and
/// recompute exactly the other 8, bit-identically, at every worker
/// count and engine-reuse setting.
#[test]
fn sixty_percent_archive_recomputes_exactly_the_missing_runs() {
    for warm_start in [false, true] {
        let reference = sweep(1, false, warm_start).run().unwrap();
        for workers in [1usize, 2, 4, 8] {
            for reuse in [false, true] {
                let label =
                    format!("workers {workers}, engine_reuse {reuse}, from_round {warm_start}");
                let root = scratch_root(&format!("sixty_{warm_start}_{workers}_{reuse}"));
                {
                    let store = Arc::new(CheckpointStore::local(&root).unwrap());
                    sweep(workers, reuse, warm_start)
                        .seeds(0..6)
                        .store(store.clone())
                        .run()
                        .unwrap();
                    assert_eq!(outcome_entries(&store), 12, "{label}");
                }
                let store = Arc::new(CheckpointStore::local(&root).unwrap());
                let resumed = sweep(workers, reuse, warm_start)
                    .store(store)
                    .run()
                    .unwrap();
                assert_eq!(
                    resumed.iter().filter(|o| o.cached).count(),
                    12,
                    "{label}: the archived 60% was not served"
                );
                assert_eq!(
                    resumed.iter().filter(|o| !o.cached).count(),
                    8,
                    "{label}: the missing 40% was not recomputed"
                );
                assert_bit_identical(&label, &resumed, &reference);
                let _ = std::fs::remove_dir_all(&root);
            }
        }
    }
}

/// The two interruption halves compose: a sweep killed twice (at ~30%
/// and ~60%) still converges to the identical full result, and the
/// third attempt computes only what the first two missed.
#[test]
fn repeated_kills_converge() {
    let reference = sweep(1, false, false).run().unwrap();
    let root = scratch_root("repeated");
    for cutoff in [6usize, 12] {
        let store = Arc::new(CheckpointStore::local(&root).unwrap());
        let mut seen = 0usize;
        sweep(4, true, false)
            .store(store)
            .run_while(|_| {
                seen += 1;
                seen < cutoff
            })
            .unwrap();
    }
    let store = Arc::new(CheckpointStore::local(&root).unwrap());
    let final_pass = sweep(4, true, false).store(store).run().unwrap();
    assert!(final_pass.iter().filter(|o| o.cached).count() >= 11);
    assert_bit_identical("repeated kills", &final_pass, &reference);
    let _ = std::fs::remove_dir_all(&root);
}
