//! Fingerprint stability: store keys are a pure function of the
//! *meaning* of a scenario, not its spelling. The canonical scenario
//! bytes (`SimConfig::to_toml`) must be invariant under TOML key
//! reordering and `Scenario::save` → `load` round-trips, and must
//! change whenever any config field, seed, timeline event, trigger,
//! generator, or round budget differs — observed end to end through
//! store hits and misses of real sweeps.

use std::sync::Arc;

use antalloc_core::{AntParams, ExactGreedyParams, PreciseSigmoidParams};
use antalloc_env::{
    Condition, DemandSchedule, Event, GenShock, InitialConfig, TimelineGen, Trigger,
};
use antalloc_noise::NoiseModel;
use antalloc_sim::{Batch, ControllerSpec, Scenario, ScenarioBuilder, SimConfig};
use antalloc_store::CheckpointStore;
use proptest::prelude::*;

/// Homogeneous and mixed controller populations.
fn spec_for(which: usize) -> ControllerSpec {
    match which % 4 {
        0 => ControllerSpec::Ant(AntParams::new(1.0 / 16.0)),
        1 => ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.05, 0.5)),
        2 => ControllerSpec::Mix(vec![
            (2.0, ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
            (1.0, ControllerSpec::Trivial),
        ]),
        _ => ControllerSpec::Mix(vec![
            (1.0, ControllerSpec::Ant(AntParams::new(1.0 / 32.0))),
            (
                1.0,
                ControllerSpec::ExactGreedy(ExactGreedyParams::default()),
            ),
            (
                1.0,
                ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.05, 0.5)),
            ),
        ]),
    }
}

/// A scenario exercising every input of the canonical form: mixes,
/// one-shot events, cycles (via `Alternating`), a trigger, and a
/// seeded shock generator.
fn rich_config(which: usize, n: usize, seed: u64, shocks: bool) -> SimConfig {
    let demands = vec![(n / 6) as u64, (n / 4) as u64];
    let mut builder = ScenarioBuilder::new(n, demands.clone())
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(spec_for(which))
        .seed(seed)
        .initial(InitialConfig::SaturatedPlus { extra: 2 })
        // `schedule` replaces the timeline, so it goes first; the
        // one-shot event and trigger are appended onto its cycles.
        .schedule(DemandSchedule::Alternating {
            a: demands.clone(),
            b: demands.iter().rev().copied().collect(),
            half_period: 40,
        })
        .event(11, Event::Kill { count: 3 })
        .trigger(Trigger::once(
            Condition::RegretAbove {
                threshold: (n / 2) as u64,
                for_rounds: 3,
            },
            Event::Scramble,
        ));
    if shocks {
        builder = builder.generate(TimelineGen {
            start: 5,
            until: 90,
            mean_gap: 30.0,
            shock: GenShock::Spawn {
                min_frac: 0.01,
                max_frac: 0.05,
            },
        });
    }
    builder.build().expect("valid scenario")
}

proptest! {
    /// Canonical bytes are a fixed point: re-parsing the emitted TOML
    /// (and JSON) reproduces the identical config and identical bytes,
    /// no matter which controller mix / timeline shape was drawn.
    #[test]
    fn canonical_toml_is_a_fixed_point(
        which in 0usize..4,
        n in 60usize..200,
        seed: u64,
        shocks: bool,
    ) {
        let config = rich_config(which, n, seed, shocks);
        let canonical = config.to_toml();
        let reparsed = SimConfig::from_toml(&canonical).expect("canonical form parses");
        prop_assert_eq!(&reparsed, &config, "TOML round-trip changed the config");
        prop_assert_eq!(reparsed.to_toml(), canonical.clone(), "re-emission is not stable");
        let from_json = SimConfig::from_json(&config.to_json()).expect("JSON parses");
        prop_assert_eq!(&from_json, &config);
        prop_assert_eq!(from_json.to_toml(), canonical, "JSON detour changed the bytes");
    }

    /// Any single-input mutation changes the canonical bytes — the
    /// injectivity half of fingerprint stability (SHA-256 does the
    /// rest). Covers config fields, the seed, and timeline events.
    #[test]
    fn canonical_toml_separates_distinct_configs(
        which in 0usize..4,
        n in 60usize..200,
        seed: u64,
        shocks: bool,
    ) {
        let base = rich_config(which, n, seed, shocks);
        let canonical = base.to_toml();
        let mutations: Vec<(&str, SimConfig)> = vec![
            ("n", rich_config(which, n + 1, seed, shocks)),
            ("controller", rich_config(which + 1, n, seed, shocks)),
            ("seed", rich_config(which, n, seed ^ 1, shocks)),
            ("generators", rich_config(which, n, seed, !shocks)),
            ("demands", {
                let mut c = base.clone();
                c.demands[0] += 1;
                c
            }),
            ("noise", {
                let mut c = base.clone();
                c.noise = NoiseModel::Sigmoid { lambda: 2.5 };
                c
            }),
            ("initial", {
                let mut c = base.clone();
                c.initial = InitialConfig::Inverted;
                c
            }),
            ("event round", {
                let mut c = base.clone();
                c.timeline.events[0].at += 1;
                c
            }),
            ("event payload", {
                let mut c = base.clone();
                c.timeline.events[0].event = Event::Kill { count: 4 };
                c
            }),
            ("trigger", {
                let mut c = base.clone();
                c.timeline.triggers[0].cooldown += 1;
                c
            }),
        ];
        for (what, mutated) in mutations {
            prop_assert_ne!(
                mutated.to_toml(),
                canonical.clone(),
                "changing {} left the canonical bytes unchanged", what
            );
        }
    }
}

/// The same scenario spelled with reordered TOML keys fingerprints to
/// the same store entries: a batch run from one spelling is served
/// entirely from the cache populated by the other.
#[test]
fn reordered_toml_keys_hit_the_same_store_entries() {
    let spelling_a = r#"
n = 150
demands = [25, 40]
seed = 7

[controller]
kind = "ant"
gamma = 0.0625

[noise]
kind = "sigmoid"
lambda = 2.0

[[timeline]]
at = 30
kind = "kill"
count = 5
"#;
    let spelling_b = r#"
seed = 7
demands = [25, 40]
n = 150

[noise]
lambda = 2.0
kind = "sigmoid"

[[timeline]]
count = 5
kind = "kill"
at = 30

[controller]
gamma = 0.0625
kind = "ant"
"#;
    let a = Scenario::from_toml(spelling_a).unwrap();
    let b = Scenario::from_toml(spelling_b).unwrap();
    assert_eq!(a.config, b.config, "the spellings describe one scenario");

    let store = Arc::new(CheckpointStore::in_memory());
    let cold = Batch::new(a.config, 40)
        .seeds(0..4)
        .store(store.clone())
        .run()
        .unwrap();
    assert!(cold.iter().all(|o| !o.cached));
    let warm = Batch::new(b.config, 40)
        .seeds(0..4)
        .store(store)
        .run()
        .unwrap();
    assert!(
        warm.iter().all(|o| o.cached),
        "reordered keys produced different fingerprints"
    );
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.summary.total_regret(), w.summary.total_regret());
        assert_eq!(c.final_loads, w.final_loads);
    }
}

/// `Scenario::save` → `Scenario::load` (both TOML and JSON) preserves
/// the fingerprint: a batch over the reloaded scenario is all hits.
#[test]
fn save_load_roundtrip_preserves_fingerprints() {
    let root = std::env::temp_dir().join(format!("antalloc_fp_roundtrip_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let scenario = Scenario::new(rich_config(2, 120, 13, true));
    let store = Arc::new(CheckpointStore::in_memory());
    let cold = Batch::new(scenario.config.clone(), 30)
        .seeds(0..3)
        .store(store.clone())
        .run()
        .unwrap();
    for ext in ["toml", "json"] {
        let path = root.join(format!("scenario.{ext}"));
        scenario.save(&path).unwrap();
        let reloaded = Scenario::load(&path).unwrap();
        assert_eq!(reloaded.config, scenario.config, "{ext} round-trip drifted");
        let warm = Batch::new(reloaded.config, 30)
            .seeds(0..3)
            .store(store.clone())
            .run()
            .unwrap();
        assert!(
            warm.iter().all(|o| o.cached),
            "{ext} round-trip changed the fingerprints"
        );
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.final_loads, w.final_loads);
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Round budgets are part of the key: the same scenario swept for a
/// different `rounds` or `warmup` must miss, not serve the old rows.
#[test]
fn round_budgets_are_part_of_the_fingerprint() {
    let store = Arc::new(CheckpointStore::in_memory());
    let batch = |rounds: u64, warmup: u64| {
        Batch::new(rich_config(0, 100, 3, false), rounds)
            .seeds(0..2)
            .warmup(warmup)
            .store(store.clone())
    };
    assert!(batch(30, 10).run().unwrap().iter().all(|o| !o.cached));
    assert!(batch(30, 10).run().unwrap().iter().all(|o| o.cached));
    assert!(
        batch(31, 10).run().unwrap().iter().all(|o| !o.cached),
        "rounds not keyed"
    );
    assert!(
        batch(30, 11).run().unwrap().iter().all(|o| !o.cached),
        "warmup not keyed"
    );
    // And each of those populated its own entries: all three shapes
    // now replay as hits.
    assert!(batch(31, 10).run().unwrap().iter().all(|o| o.cached));
    assert!(batch(30, 11).run().unwrap().iter().all(|o| o.cached));
}
