//! The timeline subsystem end to end: a pure-TOML shock script runs
//! under the batch runner bit-identically to serial runs, survives
//! checkpoint-restore mid-timeline, fires identically under both
//! engines, and older checkpoints (v3 pre-trigger, v2 pre-timeline)
//! still load.
//!
//! The second half pins the PR-4 adversarial layer: a pure-TOML
//! scenario with a regret-*triggered* scramble and a *generated*
//! Poisson kill schedule runs under `Batch` across 8 seeds bit-identical
//! to serial, and survives mid-timeline checkpoint-restore in the v4
//! format (trigger state included).

use antalloc_core::AntParams;
use antalloc_env::{Condition, DemandSchedule, Event, GenShock, Timeline, TimelineGen, Trigger};
use antalloc_noise::NoiseModel;
use antalloc_sim::{
    Batch, Checkpoint, ControllerSpec, FnObserver, NullObserver, RoundRecord, RunSummary, Scenario,
    SimConfig,
};

/// A declarative shock script: kill-half → demand step → scramble →
/// noise switch → spawn. Five event kinds, two population changes.
const SHOCK_SCRIPT: &str = r#"
name = "shock-script"
n = 1200
demands = [200, 300]
seed = 42

[controller]
kind = "ant"
gamma = 0.0625

[noise]
kind = "sigmoid"
lambda = 2.0

[[timeline]]
at = 40
kind = "kill"
count = 600

[[timeline]]
at = 80
kind = "set-demands"
demands = [300, 100]

[[timeline]]
at = 120
kind = "scramble"

[[timeline]]
at = 160
kind = "set-noise"
noise = { kind = "exact" }

[[timeline]]
at = 200
kind = "spawn"
count = 400
"#;

fn shock_config() -> SimConfig {
    let scenario = Scenario::from_toml(SHOCK_SCRIPT).expect("shock script validates");
    assert_eq!(scenario.name.as_deref(), Some("shock-script"));
    assert_eq!(scenario.config.timeline.events.len(), 5);
    scenario.config
}

#[test]
fn toml_timeline_roundtrips_with_array_of_tables_syntax() {
    let config = shock_config();
    let toml = config.to_toml();
    assert!(toml.contains("[[timeline]]"), "{toml}");
    assert_eq!(SimConfig::from_toml(&toml).expect("reparses"), config);
    let json = config.to_json();
    assert_eq!(SimConfig::from_json(&json).expect("reparses"), config);
}

#[test]
fn toml_timeline_batch_across_8_seeds_is_bit_identical_to_serial_runs() {
    // The acceptance scenario: a pure-TOML timeline with population
    // changes, fanned over 8 seeds by the batch runner; every per-seed
    // result must equal a by-hand serial run of that seed.
    let rounds = 260u64;
    let outcomes = Batch::new(shock_config(), rounds)
        .seeds(0..8)
        .threads(4)
        .run()
        .expect("batch runs");
    assert_eq!(outcomes.len(), 8);
    for (i, outcome) in outcomes.iter().enumerate() {
        let mut config = shock_config();
        config.seed = outcome.seed;
        let mut engine = config.build();
        let mut summary = RunSummary::new();
        engine.run(rounds, &mut summary);
        assert_eq!(
            outcome.summary.total_regret(),
            summary.total_regret(),
            "seed {i}: batch diverged from serial"
        );
        assert_eq!(outcome.final_regret, engine.colony().instant_regret());
        let loads: Vec<u64> = (0..engine.colony().num_tasks())
            .map(|j| engine.colony().load(j))
            .collect();
        assert_eq!(outcome.final_loads, loads, "seed {i}");
        // The script really ran: 1200 − 600 + 400 ants remain.
        assert_eq!(engine.colony().num_ants(), 1000);
    }
}

#[test]
fn timeline_runs_are_bit_identical_across_serial_parallel_and_interleaving() {
    let config = shock_config();
    let mut serial = config.build();
    let mut parallel = config.build();
    let mut interleaved = config.build();
    let mut obs = NullObserver;
    serial.run(260, &mut obs);
    // The pooled path must segment around the five event rounds.
    parallel.run_parallel_forced(260, 4, &mut obs);
    // Switching paths mid-script must not matter either.
    interleaved.run(100, &mut obs);
    interleaved.run_parallel_forced(100, 3, &mut obs);
    interleaved.run(60, &mut obs);
    assert_eq!(
        serial.colony().assignments(),
        parallel.colony().assignments()
    );
    assert_eq!(serial.colony().loads(), parallel.colony().loads());
    assert_eq!(
        serial.colony().assignments(),
        interleaved.colony().assignments()
    );
    assert_eq!(serial.round(), 260);
    assert_eq!(serial.colony().num_ants(), 1000);
}

#[test]
fn mid_timeline_checkpoint_restore_replays_bit_identically() {
    let config = shock_config();
    let mut obs = NullObserver;

    // Uninterrupted reference over the whole script.
    let mut full = config.build();
    full.run(100, &mut obs);
    // Capture at round 100: the kill and the demand step have fired,
    // the scramble / noise switch / spawn are still ahead.
    let cp = Checkpoint::capture(&full).expect("round 100 is a phase boundary");
    let bytes = cp.to_bytes();
    let restored = Checkpoint::from_bytes(&bytes).expect("decodes");
    assert_eq!(cp, restored);
    assert_eq!(restored.config(), &config);

    let mut full_trace = Vec::new();
    {
        let mut obs = FnObserver::new(|r: &RoundRecord<'_>| {
            full_trace.push((r.round, r.loads.to_vec(), r.idle, r.switches));
        });
        full.run(160, &mut obs);
    }
    let mut replay_trace = Vec::new();
    {
        let mut resumed = restored.restore();
        assert_eq!(resumed.round(), 100);
        let mut obs = FnObserver::new(|r: &RoundRecord<'_>| {
            replay_trace.push((r.round, r.loads.to_vec(), r.idle, r.switches));
        });
        resumed.run(160, &mut obs);
        assert_eq!(full.colony().assignments(), resumed.colony().assignments());
        assert_eq!(full.colony().loads(), resumed.colony().loads());
        assert_eq!(
            resumed.colony().num_ants(),
            1000,
            "spawn fired after restore"
        );
    }
    assert_eq!(full_trace, replay_trace);
}

#[test]
fn checkpoint_after_noise_switch_keeps_the_live_model() {
    // Capture *after* the set-noise event: the restored engine must
    // keep feeding ants from the switched model, not config.noise.
    let config = shock_config();
    let mut obs = NullObserver;
    let mut full = config.build();
    full.run(180, &mut obs); // past set-noise at 160
    let cp = Checkpoint::capture(&full).unwrap();
    let mut resumed = Checkpoint::from_bytes(&cp.to_bytes()).unwrap().restore();
    full.run(40, &mut obs);
    resumed.run(40, &mut obs);
    assert_eq!(full.colony().assignments(), resumed.colony().assignments());
}

#[test]
fn sequential_engine_consumes_the_same_timeline() {
    let mut config = shock_config();
    // The sequential model moves one ant per round; keep the script's
    // rounds but drop the steep demands so the run stays meaningful.
    config.controller = ControllerSpec::Trivial;
    let mut a = config.build_sequential();
    let mut b = config.build_sequential();
    let mut obs = NullObserver;
    a.run(260, &mut obs);
    b.run(260, &mut obs);
    assert_eq!(a.colony().assignments(), b.colony().assignments());
    assert_eq!(a.colony().num_ants(), 1000, "kill and spawn fired");
    assert!(a.colony().recount_consistent());
    // Demands were rewritten by the script.
    assert_eq!(a.colony().demands().as_slice(), &[300, 100]);
}

#[test]
fn cycles_subsume_alternating_demands() {
    // An alternating schedule and its compiled cycle must be the same
    // timeline, and the engine must flip demands at every half-period.
    let schedule = DemandSchedule::Alternating {
        a: vec![60, 90],
        b: vec![90, 60],
        half_period: 50,
    };
    let timeline: Timeline = schedule.into();
    assert_eq!(timeline.cycles.len(), 1);
    let cfg = SimConfig::builder(600, vec![60, 90])
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
        .seed(9)
        .timeline(timeline)
        .build()
        .unwrap();
    let mut engine = cfg.build();
    let mut demand_trace = Vec::new();
    let mut obs = FnObserver::new(|r: &RoundRecord<'_>| {
        if r.round.is_multiple_of(50) {
            demand_trace.push(r.demands.to_vec());
        }
    });
    engine.run(200, &mut obs);
    assert_eq!(
        demand_trace,
        vec![
            vec![90, 60], // flipped at 50
            vec![60, 90], // back at 100
            vec![90, 60],
            vec![60, 90],
        ]
    );
}

/// The PR-4 acceptance scenario: the adversary scrambles the colony
/// whenever it has looked settled for 10 straight rounds (at most 3
/// times, 60 rounds apart), while a seeded Poisson schedule kills
/// 5–15% of the initial colony every ~60 rounds. Pure TOML, table-form
/// timeline.
const ADVERSARIAL_SCRIPT: &str = r#"
name = "adversarial-acceptance"
n = 1000
demands = [150, 250]
seed = 4242

[controller]
kind = "ant"
gamma = 0.0625

[noise]
kind = "sigmoid"
lambda = 2.0

[initial]
kind = "saturated-plus"
extra = 3

[[timeline.events]]
at = 30
kind = "set-demands"
demands = [250, 150]

[[timeline.trigger]]
kind = "scramble"
when = { kind = "regret-below", threshold = 120, for_rounds = 10 }
cooldown = 60
max_firings = 3

[timeline.generate]
kind = "kill"
until = 240
mean_gap = 60.0
min_frac = 0.05
max_frac = 0.15
"#;

fn adversarial_config() -> SimConfig {
    let scenario = Scenario::from_toml(ADVERSARIAL_SCRIPT).expect("adversarial script validates");
    assert_eq!(scenario.name.as_deref(), Some("adversarial-acceptance"));
    assert_eq!(scenario.config.timeline.triggers.len(), 1);
    assert_eq!(scenario.config.timeline.generators.len(), 1);
    scenario.config
}

#[test]
fn adversarial_toml_roundtrips_with_trigger_and_generate_tables() {
    let config = adversarial_config();
    let toml = config.to_toml();
    assert!(toml.contains("[[timeline.events]]"), "{toml}");
    assert!(toml.contains("[[timeline.trigger]]"), "{toml}");
    assert!(toml.contains("[[timeline.generate]]"), "{toml}");
    assert_eq!(SimConfig::from_toml(&toml).expect("reparses"), config);
    let json = config.to_json();
    assert_eq!(SimConfig::from_json(&json).expect("reparses"), config);
}

#[test]
fn adversarial_toml_batch_across_8_seeds_is_bit_identical_to_serial_runs() {
    // The acceptance criterion: triggered + generated timelines, fanned
    // over 8 seeds by the batch runner; every per-seed result must
    // equal a by-hand serial run of that seed.
    let rounds = 260u64;
    let outcomes = Batch::new(adversarial_config(), rounds)
        .seeds(0..8)
        .threads(4)
        .run()
        .expect("batch runs");
    assert_eq!(outcomes.len(), 8);
    let mut shrunk = 0;
    let mut triggered = 0;
    for (i, outcome) in outcomes.iter().enumerate() {
        let mut config = adversarial_config();
        config.seed = outcome.seed;
        let mut engine = config.build();
        let mut summary = RunSummary::new();
        engine.run(rounds, &mut summary);
        assert_eq!(
            outcome.summary.total_regret(),
            summary.total_regret(),
            "seed {i}: batch diverged from serial"
        );
        assert_eq!(outcome.final_regret, engine.colony().instant_regret());
        let loads: Vec<u64> = (0..engine.colony().num_tasks())
            .map(|j| engine.colony().load(j))
            .collect();
        assert_eq!(outcome.final_loads, loads, "seed {i}");
        // Every seed draws its own kill schedule off the reserved
        // TIMELINE stream and its own trigger firing rounds.
        if engine.colony().num_ants() < 1000 {
            shrunk += 1;
        }
        triggered += u64::from(engine.trigger_states()[0].firings > 0);
    }
    assert!(shrunk >= 6, "only {shrunk}/8 seeds saw a generated kill");
    assert!(
        triggered >= 6,
        "only {triggered}/8 seeds fired the regret trigger"
    );
}

#[test]
fn adversarial_runs_are_bit_identical_across_parallel_and_interleaving() {
    let config = adversarial_config();
    let mut serial = config.build();
    let mut parallel = config.build();
    let mut interleaved = config.build();
    let mut obs = NullObserver;
    serial.run(260, &mut obs);
    // The pooled path must cut segments at trigger arming rounds it
    // cannot predict from the config.
    parallel.run_parallel_forced(260, 4, &mut obs);
    interleaved.run(90, &mut obs);
    interleaved.run_parallel_forced(110, 3, &mut obs);
    interleaved.run(60, &mut obs);
    assert_eq!(
        serial.colony().assignments(),
        parallel.colony().assignments()
    );
    assert_eq!(serial.trigger_states(), parallel.trigger_states());
    assert_eq!(
        serial.colony().assignments(),
        interleaved.colony().assignments()
    );
    assert_eq!(serial.trigger_states(), interleaved.trigger_states());
}

#[test]
fn adversarial_mid_timeline_checkpoint_restore_replays_bit_identically() {
    let config = adversarial_config();
    let mut obs = NullObserver;

    let mut full = config.build();
    full.run(100, &mut obs);
    let cp = Checkpoint::capture(&full).expect("round 100 is a phase boundary");
    let bytes = cp.to_bytes();
    assert_eq!(
        u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
        7,
        "current checkpoints are format v7"
    );
    let restored = Checkpoint::from_bytes(&bytes).expect("decodes");
    assert_eq!(cp, restored);
    assert_eq!(restored.config(), &config);

    let mut full_trace = Vec::new();
    {
        let mut obs = FnObserver::new(|r: &RoundRecord<'_>| {
            full_trace.push((r.round, r.loads.to_vec(), r.idle, r.switches));
        });
        full.run(160, &mut obs);
    }
    let mut replay_trace = Vec::new();
    {
        let mut resumed = restored.restore();
        assert_eq!(resumed.round(), 100);
        let mut obs = FnObserver::new(|r: &RoundRecord<'_>| {
            replay_trace.push((r.round, r.loads.to_vec(), r.idle, r.switches));
        });
        resumed.run(160, &mut obs);
        assert_eq!(full.colony().assignments(), resumed.colony().assignments());
        assert_eq!(full.trigger_states(), resumed.trigger_states());
    }
    assert_eq!(full_trace, replay_trace);
}

#[test]
fn sequential_engine_consumes_triggers_and_generators_deterministically() {
    let mut config = adversarial_config();
    config.controller = ControllerSpec::Trivial;
    let mut a = config.build_sequential();
    let mut b = config.build_sequential();
    let mut obs = NullObserver;
    a.run(260, &mut obs);
    b.run(260, &mut obs);
    assert_eq!(a.colony().assignments(), b.colony().assignments());
    assert_eq!(a.trigger_states(), b.trigger_states());
    assert!(a.colony().recount_consistent());
}

#[test]
fn v3_checkpoints_still_load_and_continue_exactly() {
    // Fixture written by the v3 (pre-trigger) format: the shock-script
    // scenario captured at round 100. It must decode, carry the same
    // config, and continue bit-identically to an uninterrupted run.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let cp = Checkpoint::load(&dir.join("checkpoint_v3_timeline.ckpt")).expect("v3 fixture loads");
    assert_eq!(cp.round(), 100);
    assert_eq!(cp.config(), &shock_config());

    let mut obs = NullObserver;
    let mut resumed = cp.restore();
    resumed.run(160, &mut obs); // crosses the scramble, noise switch, spawn
    let mut fresh = shock_config().build();
    fresh.run(260, &mut obs);
    assert_eq!(fresh.colony().assignments(), resumed.colony().assignments());
    assert_eq!(fresh.colony().loads(), resumed.colony().loads());
    assert_eq!(resumed.colony().num_ants(), 1000);
    // A v3 checkpoint re-saved today is a v7 byte stream that
    // round-trips.
    let resaved = cp.to_bytes();
    assert_eq!(u32::from_le_bytes(resaved[4..8].try_into().unwrap()), 7);
    assert_eq!(Checkpoint::from_bytes(&resaved).unwrap(), cp);
}

#[test]
fn v4_checkpoints_still_load_and_continue_exactly() {
    // Fixture written by the v4 (pre-scratch) format: an Ant colony
    // under a trigger and a generated kill schedule, captured at round
    // 80. It must decode (empty scratch section), carry the same
    // config — triggers and generators included — and continue
    // bit-identically to an uninterrupted run.
    let expected = SimConfig::builder(400, vec![60, 90])
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
        .seed(0xF4C)
        .trigger(Trigger {
            when: Condition::RegretBelow {
                threshold: 40,
                for_rounds: 4,
            },
            event: Event::StampedeTo(0),
            cooldown: 30,
            max_firings: 2,
        })
        .generate(TimelineGen {
            start: 5,
            until: 400,
            mean_gap: 50.0,
            shock: GenShock::Kill {
                min_frac: 0.02,
                max_frac: 0.05,
            },
        })
        .build()
        .unwrap();
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let cp = Checkpoint::load(&dir.join("checkpoint_v4_trigger.ckpt")).expect("v4 fixture loads");
    assert_eq!(cp.round(), 80);
    assert_eq!(cp.config(), &expected);

    let mut obs = NullObserver;
    let mut resumed = cp.restore();
    resumed.run(120, &mut obs); // crosses later generated kills
    let mut fresh = expected.build();
    fresh.run(200, &mut obs);
    assert_eq!(fresh.colony().assignments(), resumed.colony().assignments());
    assert_eq!(fresh.colony().loads(), resumed.colony().loads());
    assert_eq!(fresh.trigger_states(), resumed.trigger_states());
    // Re-saved today it is a v7 byte stream that round-trips.
    let resaved = cp.to_bytes();
    assert_eq!(u32::from_le_bytes(resaved[4..8].try_into().unwrap()), 7);
    assert_eq!(Checkpoint::from_bytes(&resaved).unwrap(), cp);
}

#[test]
fn v5_checkpoints_still_load_and_continue_exactly() {
    // Fixture written by the v5 format (pre-adversarial-scratch): a
    // Precise Sigmoid colony captured mid-phase at round 37, with a
    // kill and a demand step still ahead of it. It must decode (its
    // sigmoid scratch section intact), carry the same config, and
    // continue bit-identically to an uninterrupted run.
    let expected = SimConfig::builder(120, vec![20, 30])
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(ControllerSpec::PreciseSigmoid(
            antalloc_core::PreciseSigmoidParams::new(0.05, 0.5),
        ))
        .seed(0xF5C)
        .timeline(
            Timeline::new()
                .at(25, Event::Kill { count: 20 })
                .at(55, Event::SetDemands(vec![30, 20])),
        )
        .build()
        .unwrap();
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let cp = Checkpoint::load(&dir.join("checkpoint_v5_sigmoid.ckpt")).expect("v5 fixture loads");
    assert_eq!(cp.round(), 37);
    assert_eq!(cp.config(), &expected);

    let mut obs = NullObserver;
    let mut resumed = cp.restore();
    resumed.run(63, &mut obs); // crosses the demand step at round 55
    let mut fresh = expected.build();
    fresh.run(100, &mut obs);
    assert_eq!(fresh.colony().assignments(), resumed.colony().assignments());
    assert_eq!(fresh.colony().loads(), resumed.colony().loads());
    // Re-saved today it is a v7 byte stream that round-trips.
    let resaved = cp.to_bytes();
    assert_eq!(u32::from_le_bytes(resaved[4..8].try_into().unwrap()), 7);
    assert_eq!(Checkpoint::from_bytes(&resaved).unwrap(), cp);
}

#[test]
fn v6_checkpoints_still_load_and_continue_exactly() {
    // Fixture written by the v6 format (pre-arena, pre-proportional): a
    // Precise Adversarial colony captured mid-phase at round 37. It
    // must decode (its adversarial scratch section intact, no arena
    // section, trigger states without deficit history), carry the same
    // config, and continue bit-identically to an uninterrupted run.
    let expected = SimConfig::builder(100, vec![15, 25])
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(ControllerSpec::PreciseAdversarial(
            antalloc_core::PreciseAdversarialParams::new(0.05, 0.5),
        ))
        .seed(0xF6C)
        .timeline(Timeline::new().at(50, Event::Kill { count: 10 }))
        .build()
        .unwrap();
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let cp =
        Checkpoint::load(&dir.join("checkpoint_v6_adversarial.ckpt")).expect("v6 fixture loads");
    assert_eq!(cp.round(), 37);
    assert_eq!(cp.config(), &expected);

    let mut obs = NullObserver;
    let mut resumed = cp.restore();
    resumed.run(63, &mut obs); // crosses the kill at round 50
    let mut fresh = expected.build();
    fresh.run(100, &mut obs);
    assert_eq!(fresh.colony().assignments(), resumed.colony().assignments());
    assert_eq!(fresh.colony().loads(), resumed.colony().loads());
    // Re-saved today it is a v7 byte stream that round-trips.
    let resaved = cp.to_bytes();
    assert_eq!(u32::from_le_bytes(resaved[4..8].try_into().unwrap()), 7);
    assert_eq!(Checkpoint::from_bytes(&resaved).unwrap(), cp);
}

#[test]
fn v2_checkpoints_still_load_and_continue_exactly() {
    // Fixtures written by the v2 (pre-timeline) format: the schedule
    // section compiles to a timeline on load and the continuation must
    // match a fresh run of the equivalent config.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");

    // Homogeneous Ant colony with a two-step schedule, captured at 40.
    let cp = Checkpoint::load(&dir.join("checkpoint_v2_ant.ckpt")).expect("v2 fixture loads");
    assert_eq!(cp.round(), 40);
    let expected = SimConfig::builder(300, vec![40, 60])
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
        .seed(0xF1C)
        .schedule(DemandSchedule::Steps(vec![
            (20, vec![60, 40]),
            (60, vec![50, 50]),
        ]))
        .build()
        .unwrap();
    assert_eq!(cp.config(), &expected, "schedule compiled to timeline");
    let mut obs = NullObserver;
    let mut resumed = cp.restore();
    resumed.run(60, &mut obs); // crosses the second step at round 60
    let mut fresh = expected.build();
    fresh.run(100, &mut obs);
    assert_eq!(fresh.colony().assignments(), resumed.colony().assignments());
    assert_eq!(fresh.colony().loads(), resumed.colony().loads());
    assert_eq!(resumed.colony().demands().as_slice(), &[50, 50]);

    // Mixed colony (v2 membership section), captured at 30.
    let cp = Checkpoint::load(&dir.join("checkpoint_v2_mix.ckpt")).expect("v2 mix fixture loads");
    assert_eq!(cp.round(), 30);
    let expected = SimConfig::builder(200, vec![30, 30])
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(ControllerSpec::Mix(vec![
            (2.0, ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
            (1.0, ControllerSpec::Trivial),
        ]))
        .seed(0xF2C)
        .build()
        .unwrap();
    assert_eq!(cp.config(), &expected);
    let mut resumed = cp.restore();
    resumed.run(30, &mut obs);
    let mut fresh = expected.build();
    fresh.run(60, &mut obs);
    assert_eq!(fresh.colony().assignments(), resumed.colony().assignments());
    // And a v2 checkpoint re-saved today is a current-format byte
    // stream that round-trips.
    let cp2 = Checkpoint::from_bytes(&cp.to_bytes()).unwrap();
    assert_eq!(&cp2, &cp);
}

#[test]
fn imperative_perturb_still_works_for_programmatic_use() {
    // engine.perturb stays for interactive exploration; scripted runs
    // use timelines. Both shrink/grow the same machinery.
    let cfg = SimConfig::builder(400, vec![60, 80])
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
        .seed(7)
        .build()
        .unwrap();
    let mut engine = cfg.build();
    let mut obs = NullObserver;
    engine.run(20, &mut obs);
    engine.perturb(&antalloc_env::Perturbation::KillRandom { count: 100 });
    engine.run(20, &mut obs);
    assert_eq!(engine.colony().num_ants(), 300);
    assert!(engine.colony().recount_consistent());
}

#[test]
fn event_rounds_match_between_timeline_and_legacy_schedule_semantics() {
    // A Steps schedule and the equivalent explicit timeline must
    // produce bit-identical runs (the conversion is exact, and demand
    // events consume no randomness).
    let base = |timeline: Timeline| {
        SimConfig::builder(500, vec![80, 120])
            .noise(NoiseModel::Sigmoid { lambda: 2.0 })
            .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
            .seed(11)
            .timeline(timeline)
            .build()
            .unwrap()
    };
    let via_schedule =
        base(DemandSchedule::Steps(vec![(30, vec![120, 80]), (60, vec![100, 100])]).into());
    let via_events = base(
        Timeline::new()
            .at(30, Event::SetDemands(vec![120, 80]))
            .at(60, Event::SetDemands(vec![100, 100])),
    );
    assert_eq!(via_schedule, via_events);
    let mut a = via_schedule.build();
    let mut b = via_events.build();
    let mut obs = NullObserver;
    a.run(100, &mut obs);
    b.run(100, &mut obs);
    assert_eq!(a.colony().assignments(), b.colony().assignments());
}
