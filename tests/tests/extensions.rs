//! Integration tests for the §6 / §2.3 extension features:
//! desynchronized phases, weighted regret, and their interaction with
//! the standard machinery (checkpoints, perturbations).

use antalloc_core::AntParams;
use antalloc_env::Perturbation;
use antalloc_metrics::WeightedRegret;
use antalloc_noise::NoiseModel;
use antalloc_sim::{Checkpoint, ControllerSpec, FnObserver, NullObserver, RunSummary, SimConfig};

fn desync_config(seed: u64, gamma: f64) -> SimConfig {
    SimConfig::builder(2000, vec![300, 400])
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(ControllerSpec::AntDesync(AntParams::new(gamma)))
        .seed(seed)
        .build()
        .expect("valid scenario")
}

#[test]
fn desync_colony_still_allocates() {
    // §6 open problem, simplest variant: the staggered colony must still
    // self-stabilize to a near-demand allocation at γ = 1/16 (where the
    // halved collective dip still clears the grey zone).
    let mut engine = desync_config(1, 1.0 / 16.0).build();
    let mut warm = NullObserver;
    engine.run(6000, &mut warm);
    let mut steady = RunSummary::new();
    engine.run(2000, &mut steady);
    let bound = 5.0 / 16.0 * 700.0 + 3.0;
    assert!(
        steady.average_regret() < bound,
        "desync avg regret {} above {bound}",
        steady.average_regret()
    );
    for j in 0..2 {
        let d = engine.colony().demands().demand(j) as f64;
        let w = engine.colony().load(j) as f64;
        assert!((w - d).abs() < 0.35 * d, "task {j}: {w} vs {d}");
    }
}

#[test]
fn desync_is_deterministic_and_survives_perturbations() {
    let mut a = desync_config(2, 1.0 / 16.0).build();
    let mut b = desync_config(2, 1.0 / 16.0).build();
    let mut obs = NullObserver;
    a.run(500, &mut obs);
    b.run(500, &mut obs);
    assert_eq!(a.colony().assignments(), b.colony().assignments());

    a.perturb(&Perturbation::KillRandom { count: 500 });
    a.run(4000, &mut obs);
    assert!(a.colony().recount_consistent());
    let mut steady = RunSummary::new();
    a.run(1000, &mut steady);
    assert!(steady.average_regret() < 400.0);
}

#[test]
fn desync_checkpoint_roundtrips_structurally() {
    // AntDesync restores are *approximate* (documented): the offset half
    // is always mid-phase. The checkpoint must still capture/restore and
    // resume into a self-stabilizing run.
    let mut engine = desync_config(3, 1.0 / 16.0).build();
    let mut obs = NullObserver;
    engine.run(600, &mut obs);
    let cp = Checkpoint::capture(&engine).expect("boundary at even round");
    let back = Checkpoint::from_bytes(&cp.to_bytes()).unwrap();
    assert_eq!(cp, back);
    let mut resumed = back.restore();
    assert_eq!(resumed.round(), 600);
    resumed.run(2000, &mut obs);
    assert!(resumed.colony().recount_consistent());
    let mut steady = RunSummary::new();
    resumed.run(1000, &mut steady);
    assert!(steady.average_regret() < 5.0 / 16.0 * 700.0 + 3.0);
}

#[test]
fn weighted_regret_integrates_with_engine() {
    let cfg = SimConfig::builder(1500, vec![200, 300])
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
        .seed(4)
        .build()
        .expect("valid scenario");
    let mut engine = cfg.build();
    let mut warm = NullObserver;
    engine.run(4000, &mut warm);

    let mut paper = WeightedRegret::paper();
    let mut lack_heavy = WeightedRegret::new(3.0, 1.0, 0.0);
    let mut with_switches = WeightedRegret::new(1.0, 1.0, 1.0);
    let mut plain = RunSummary::new();
    {
        let mut obs = FnObserver::new(|r: &antalloc_sim::RoundRecord<'_>| {
            paper.record(r.deficits, r.switches);
            lack_heavy.record(r.deficits, r.switches);
            with_switches.record(r.deficits, r.switches);
        });
        let mut both = antalloc_sim::Both(&mut plain, &mut obs);
        engine.run(2000, &mut both);
    }
    // Paper weights reproduce the plain metric exactly.
    assert!((paper.average() - plain.average_regret()).abs() < 1e-9);
    // Ant's steady state is overloaded, so up-weighting lack barely
    // moves the number, and both stay ordered sensibly.
    assert!(lack_heavy.total() >= paper.total());
    assert!(with_switches.total() > paper.total());
    let (_, _, sw) = with_switches.components();
    assert!(sw > 0.0, "switch component must be visible");
}
