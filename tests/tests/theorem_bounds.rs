//! Statistical validation of the theorem-level claims on small colonies.
//!
//! These are seeded, so they are deterministic; the tolerances come from
//! the paper's bounds with documented slack.

use antalloc_analysis::thm31_average_regret_bound;
use antalloc_core::{AntParams, PreciseSigmoidParams};
use antalloc_env::InitialConfig;
use antalloc_noise::NoiseModel;
use antalloc_sim::{ControllerSpec, NullObserver, RunSummary, SimConfig};

/// n = 2000 colony in the γ ≥ γ* regime (reliability exponent 2, λ = 4:
/// γ*(q=2) = 2·ln 2000/(4·250) ≈ 0.0152 ≤ γ = 1/16).
fn ant_config(seed: u64, gamma: f64) -> SimConfig {
    SimConfig::builder(2000, vec![250, 400, 350])
        .noise(NoiseModel::Sigmoid { lambda: 4.0 })
        .controller(ControllerSpec::Ant(AntParams::new(gamma)))
        .seed(seed)
        .build()
        .expect("valid scenario")
}

#[test]
fn thm31_steady_state_regret_is_within_bound() {
    let gamma = 1.0 / 16.0;
    let sum_d = 1000u64;
    let bound = thm31_average_regret_bound(gamma, sum_d); // 315.5
    for seed in [1u64, 2, 3] {
        let mut engine = ant_config(seed, gamma).build();
        let mut warm = NullObserver;
        engine.run(4000, &mut warm);
        let mut steady = RunSummary::new();
        engine.run(4000, &mut steady);
        assert!(
            steady.average_regret() <= bound,
            "seed {seed}: avg regret {} > bound {bound}",
            steady.average_regret()
        );
        // And it's not trivially zero: noise forces some standing regret.
        assert!(steady.average_regret() > 0.0);
    }
}

#[test]
fn thm31_holds_from_adversarial_initial_configurations() {
    let gamma = 1.0 / 16.0;
    let bound = thm31_average_regret_bound(gamma, 1000);
    for initial in [
        InitialConfig::AllOnTask(0),
        InitialConfig::Inverted,
        InitialConfig::UniformRandom,
    ] {
        let mut cfg = ant_config(11, gamma);
        cfg.initial = initial.clone();
        let mut engine = cfg.build();
        let mut warm = NullObserver;
        engine.run(6000, &mut warm);
        let mut steady = RunSummary::new();
        engine.run(4000, &mut steady);
        assert!(
            steady.average_regret() <= bound,
            "{initial:?}: avg regret {} > {bound}",
            steady.average_regret()
        );
    }
}

#[test]
fn thm32_precise_sigmoid_band_is_narrower_than_ants() {
    // Theorem 3.2 vs Theorem 3.1 is a statement about the *achievable
    // steady band*: Algorithm Ant's stable parking band is γ-wide (any
    // load in [d(1+γ), ~d/(1−c_sγ)] is stable, so it can legally hold a
    // Θ(γΣd) surplus forever), while Precise Sigmoid's band is ε·γ-thin.
    //
    // Finite-size caveat (see EXPERIMENTS.md): PS's band is only
    // non-empty when γ'·d ≳ 10 ants, γ' = εγ/c_χ — the Theorem 3.2
    // shadow of Assumption 2.1's d = Ω(log n/γ²) applied at step γ'.
    // Below that, the band leaks to deficit 0 and the grey-zone
    // coin-flip triggers a join stampede. Hence the large demand here.
    let gamma = 1.0 / 16.0;
    let eps = 0.5;
    let demands = vec![2560u64];
    let n = 6000;
    let sum_d = 2560u64;
    let noise = NoiseModel::Sigmoid { lambda: 1.5 };

    // Ant, parked high inside its legal band (+200 ≈ 7.8%·d: the pause
    // dip c_sγW ≈ 430 still crosses below demand, so it is stable).
    let ant_cfg = SimConfig::builder(n, demands.clone())
        .noise(noise.clone())
        .controller(ControllerSpec::Ant(AntParams::new(gamma)))
        .seed(21)
        .initial(InitialConfig::SaturatedPlus { extra: 200 })
        .build()
        .expect("valid scenario");
    let mut ant = ant_cfg.build();

    // Precise Sigmoid started at +10, inside its own band
    // [d+1, d+~γ'c_s d] ≈ [2561, 2580].
    let ps = PreciseSigmoidParams::new(gamma, eps);
    let phase = ps.phase_len(); // 82
    let ps_cfg = SimConfig::builder(n, demands)
        .noise(noise)
        .controller(ControllerSpec::PreciseSigmoid(ps))
        .seed(21)
        .initial(InitialConfig::SaturatedPlus { extra: 10 })
        .build()
        .expect("valid scenario");
    let mut precise = ps_cfg.build();

    let mut warm = NullObserver;
    ant.run(10 * phase, &mut warm);
    precise.run(10 * phase, &mut warm);

    let mut ant_steady = RunSummary::new();
    let mut ps_steady = RunSummary::new();
    ant.run(30 * phase, &mut ant_steady);
    precise.run(30 * phase, &mut ps_steady);

    // Ant holds its (legal!) ~200-ant surplus: Θ(γΣd)-scale regret.
    assert!(
        ant_steady.average_regret() > 100.0,
        "ant should park high in its band, got {}",
        ant_steady.average_regret()
    );
    // Precise Sigmoid holds the ε-scale band: γεΣd = 80 here.
    let ps_bound = gamma * eps * sum_d as f64; // Theorem 3.2's rate.
    assert!(
        ps_steady.average_regret() < ps_bound,
        "precise sigmoid regret {} above the γεΣd = {ps_bound} rate",
        ps_steady.average_regret()
    );
    assert!(
        ps_steady.average_regret() < ant_steady.average_regret(),
        "precise {} !< ant {}",
        ps_steady.average_regret(),
        ant_steady.average_regret()
    );
}

#[test]
fn trivial_synchronous_oscillates_with_theta_n_amplitude() {
    // Appendix D.2: one task, d = n/4, all ants see the same (almost
    // noise-free) signal and flip-flop between joining and leaving.
    let n = 1000;
    let cfg = SimConfig::builder(n, vec![(n / 4) as u64])
        .noise(NoiseModel::Sigmoid { lambda: 1.0 })
        .controller(ControllerSpec::Trivial)
        .seed(31)
        .build()
        .expect("valid scenario");
    let mut engine = cfg.build();
    let mut max_regret = 0u64;
    let mut obs = antalloc_sim::FnObserver::new(|r: &antalloc_sim::RoundRecord<'_>| {
        max_regret = max_regret.max(r.instant_regret());
    });
    engine.run(400, &mut obs);
    let _ = obs; // closure borrows end here
    assert!(
        max_regret as f64 > 0.5 * n as f64,
        "expected Θ(n) oscillation, max regret {max_regret}"
    );
}

#[test]
fn trivial_sequential_settles_near_demand() {
    // Appendix D.1: the same algorithm under one-ant-per-round
    // scheduling hovers near the demand.
    let cfg = SimConfig::builder(1000, vec![250])
        .noise(NoiseModel::Sigmoid { lambda: 1.0 })
        .controller(ControllerSpec::Trivial)
        .seed(33)
        .build()
        .expect("valid scenario");
    let mut engine = cfg.build_sequential();
    let mut warm = NullObserver;
    engine.run(20_000, &mut warm);
    let mut steady = RunSummary::new();
    engine.run(20_000, &mut steady);
    assert!(
        steady.average_regret() < 40.0,
        "sequential trivial avg regret {}",
        steady.average_regret()
    );
    // Orders of magnitude below the synchronous Θ(n) flip-flop.
}
