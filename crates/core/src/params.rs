//! Algorithm parameters and the paper's constants.
//!
//! ## On `c_s = 2.5` and `c_d = 19`
//!
//! The PDF of the paper renders line 1 of Algorithm Ant as
//! `c_d ← 19 and c_s ← 213`; the `213` is an extraction artifact. The
//! analysis pins `c_s` tightly:
//!
//! * Claim 4.2 (no jumping over the stable zone) needs
//!   `c_s ≥ 20/9 + 2/(c_d − 1) ≈ 2.334`;
//! * Claim 4.4 (saturation is absorbing) needs `0.9·c_s ≥ 2`;
//! * Claim 4.5's arithmetic `Σ(1+(1+1.2c_s)γ)d ≤ (1+1/4)n/2` at
//!   `γ = 1/16` forces `(1+1.2c_s)·(1/16) ≤ 1/4`, i.e. `c_s ≤ 2.5`
//!   (with equality exactly at 2.5 — which is how the printed constant
//!   must have read);
//! * a pause probability `c_s·γ` must satisfy `c_s·γ ≤ 1`, impossible
//!   for `c_s = 213` at any admissible `γ`.
//!
//! We therefore default to `c_s = 2.5`, `c_d = 19`, both overridable for
//! the ablation benches.

/// Parameters of §4 Algorithm Ant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AntParams {
    /// Learning rate `γ ∈ [γ*, 1/16]`.
    pub gamma: f64,
    /// Pause constant `c_s` (temporary drop-out probability `c_s·γ`).
    pub cs: f64,
    /// Leave constant `c_d` (permanent leave probability `γ/c_d`).
    pub cd: f64,
}

impl AntParams {
    /// The paper's constants with learning rate `gamma`.
    pub fn new(gamma: f64) -> Self {
        Self {
            gamma,
            cs: 2.5,
            cd: 19.0,
        }
    }

    /// Temporary pause probability `c_s·γ` (line 6 of Algorithm Ant).
    #[inline]
    pub fn pause_probability(&self) -> f64 {
        self.cs * self.gamma
    }

    /// Permanent leave probability `γ/c_d` (line 13 of Algorithm Ant).
    #[inline]
    pub fn leave_probability(&self) -> f64 {
        self.gamma / self.cd
    }

    /// Checks the admissible ranges: `γ ∈ (0, 1/16]`, `c_s·γ ≤ 1`,
    /// `c_d ≥ 1`. Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.gamma <= 0.0 || self.gamma.is_nan() {
            return Err(format!("γ must be positive, got {}", self.gamma));
        }
        if self.gamma > 1.0 / 16.0 {
            return Err(format!(
                "γ ≤ 1/16 required by Theorem 3.1, got {}",
                self.gamma
            ));
        }
        if self.pause_probability() > 1.0 {
            return Err(format!(
                "pause probability c_s·γ = {} exceeds 1",
                self.pause_probability()
            ));
        }
        if self.cd < 1.0 {
            return Err(format!("c_d ≥ 1 required, got {}", self.cd));
        }
        Ok(())
    }
}

impl Default for AntParams {
    /// `γ = 1/32`, safely inside the admissible window for the test
    /// colonies used across this workspace.
    fn default() -> Self {
        Self::new(1.0 / 32.0)
    }
}

/// Parameters of §5 Algorithm Precise Sigmoid.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PreciseSigmoidParams {
    /// Learning rate `γ ≥ γ*` (the paper uses `γ < 1/2` here).
    pub gamma: f64,
    /// Precision `ε ∈ (0, 1)`; the phase has length `2m`,
    /// `m = ⌈2c_χ/ε + 1⌉` (rounded up to odd for tie-free medians).
    pub eps: f64,
    /// Median-amplification constant `c_χ` (paper: 10).
    pub c_chi: f64,
    /// Pause constant `c_s` inherited from Algorithm Ant.
    pub cs: f64,
    /// Leave constant `c_d` inherited from Algorithm Ant.
    pub cd: f64,
    /// If true, use the pseudocode's literal leave probability
    /// `γ/(c_χ·c_d)`; if false (default) use the proof-consistent
    /// `εγ/(c_χ·c_d)` (the step size `γ' = εγ/c_χ` of Theorem 3.2's
    /// proof divided by `c_d`). See DESIGN.md §2.2.
    pub paper_literal_leave_prob: bool,
}

impl PreciseSigmoidParams {
    /// Paper constants with the given `γ` and `ε`.
    pub fn new(gamma: f64, eps: f64) -> Self {
        Self {
            gamma,
            eps,
            c_chi: 10.0,
            cs: 2.5,
            cd: 19.0,
            paper_literal_leave_prob: false,
        }
    }

    /// Samples per half-phase, `m = ⌈2c_χ/ε + 1⌉`, forced odd so medians
    /// cannot tie.
    pub fn m(&self) -> u64 {
        let m = (2.0 * self.c_chi / self.eps + 1.0).ceil() as u64;
        if m.is_multiple_of(2) {
            m + 1
        } else {
            m
        }
    }

    /// Full phase length `2m` in rounds.
    pub fn phase_len(&self) -> u64 {
        2 * self.m()
    }

    /// The scaled step size `γ' = εγ/c_χ`.
    #[inline]
    pub fn gamma_prime(&self) -> f64 {
        self.eps * self.gamma / self.c_chi
    }

    /// Temporary pause probability `ε·c_s·γ/c_χ = c_s·γ'` (line 12).
    #[inline]
    pub fn pause_probability(&self) -> f64 {
        self.cs * self.gamma_prime()
    }

    /// Permanent leave probability (line 22; see
    /// [`PreciseSigmoidParams::paper_literal_leave_prob`]).
    #[inline]
    pub fn leave_probability(&self) -> f64 {
        if self.paper_literal_leave_prob {
            self.gamma / (self.c_chi * self.cd)
        } else {
            self.gamma_prime() / self.cd
        }
    }

    /// Range checks; mirrors [`AntParams::validate`].
    pub fn validate(&self) -> Result<(), String> {
        if !(self.gamma > 0.0 && self.gamma < 0.5) {
            return Err(format!("γ ∈ (0, 1/2) required, got {}", self.gamma));
        }
        if !(self.eps > 0.0 && self.eps < 1.0) {
            return Err(format!("ε ∈ (0, 1) required, got {}", self.eps));
        }
        if self.pause_probability() > 1.0 {
            return Err("pause probability exceeds 1".to_string());
        }
        Ok(())
    }
}

/// Parameters of Appendix C Algorithm Precise Adversarial.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PreciseAdversarialParams {
    /// Learning rate `γ ∈ [γ*, 1/16]`.
    pub gamma: f64,
    /// Precision `ε ∈ (0, 1)`; sub-phase lengths are `r_1 = ⌈32/ε⌉` and
    /// `r_2 = 4·r_1`.
    pub eps: f64,
}

impl PreciseAdversarialParams {
    /// Builds with the paper's sub-phase geometry.
    pub fn new(gamma: f64, eps: f64) -> Self {
        Self { gamma, eps }
    }

    /// First (ramp) sub-phase length `r_1 = ⌈32/ε⌉`.
    pub fn r1(&self) -> u64 {
        (32.0 / self.eps).ceil() as u64
    }

    /// Second (frozen) sub-phase length `r_2 = 4·r_1`.
    pub fn r2(&self) -> u64 {
        4 * self.r1()
    }

    /// Full phase length `r_1 + r_2`.
    pub fn phase_len(&self) -> u64 {
        self.r1() + self.r2()
    }

    /// Per-round ramp probability `εγ/32`, also the permanent leave
    /// probability at the end of the phase.
    #[inline]
    pub fn ramp_probability(&self) -> f64 {
        self.eps * self.gamma / 32.0
    }

    /// Range checks.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.gamma > 0.0 && self.gamma <= 1.0 / 16.0) {
            return Err(format!("γ ∈ (0, 1/16] required, got {}", self.gamma));
        }
        if !(self.eps > 0.0 && self.eps < 1.0) {
            return Err(format!("ε ∈ (0, 1) required, got {}", self.eps));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ant_probabilities() {
        let p = AntParams::new(1.0 / 16.0);
        assert!((p.pause_probability() - 2.5 / 16.0).abs() < 1e-12);
        assert!((p.leave_probability() - 1.0 / (16.0 * 19.0)).abs() < 1e-12);
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn ant_constraints_from_proofs_hold_for_defaults() {
        let p = AntParams::default();
        // Claim 4.2: c_s ≥ 20/9 + 2/(c_d − 1).
        assert!(p.cs >= 20.0 / 9.0 + 2.0 / (p.cd - 1.0));
        // Claim 4.4: 0.9 c_s ≥ 2.
        assert!(0.9 * p.cs >= 2.0);
        // Claim 4.5: (1 + 1.2 c_s)·(1/16) ≤ 1/4.
        assert!((1.0 + 1.2 * p.cs) / 16.0 <= 0.25 + 1e-12);
        // Stable zone [1+γ, 1+(0.9c_s−1)γ] is non-empty: 0.9c_s − 1 > 1.
        assert!(0.9 * p.cs - 1.0 > 1.0);
    }

    #[test]
    fn ant_validation_rejects_bad_gamma() {
        assert!(AntParams::new(0.0).validate().is_err());
        assert!(AntParams::new(0.1).validate().is_err());
        assert!(AntParams {
            gamma: 0.05,
            cs: 25.0,
            cd: 19.0
        }
        .validate()
        .is_err());
        assert!(AntParams {
            gamma: 0.05,
            cs: 2.5,
            cd: 0.5
        }
        .validate()
        .is_err());
    }

    #[test]
    fn precise_sigmoid_geometry() {
        let p = PreciseSigmoidParams::new(0.05, 0.1);
        // m = ceil(200 + 1) = 201, already odd.
        assert_eq!(p.m(), 201);
        assert_eq!(p.phase_len(), 402);
        assert!((p.gamma_prime() - 0.1 * 0.05 / 10.0).abs() < 1e-15);
        assert_eq!(p.validate(), Ok(()));
        // Even m is bumped to odd.
        let p = PreciseSigmoidParams::new(0.05, 0.5);
        // 2·10/0.5 + 1 = 41 (odd); try ε = 2/3 → 31; ε = 0.4 → 51; use a
        // value that lands even: 2·10/0.8 + 1 = 26 → 27.
        let p_even = PreciseSigmoidParams::new(0.05, 0.8);
        assert_eq!(p_even.m() % 2, 1);
        assert!(p.m() % 2 == 1);
    }

    #[test]
    fn precise_sigmoid_leave_prob_modes() {
        let mut p = PreciseSigmoidParams::new(0.05, 0.1);
        let proof = p.leave_probability();
        assert!((proof - p.gamma_prime() / p.cd).abs() < 1e-15);
        p.paper_literal_leave_prob = true;
        let literal = p.leave_probability();
        assert!((literal - 0.05 / 190.0).abs() < 1e-15);
        // The literal value is 1/ε times larger.
        assert!((literal / proof - 1.0 / p.eps).abs() < 1e-9);
    }

    #[test]
    fn precise_adversarial_geometry() {
        let p = PreciseAdversarialParams::new(0.05, 0.1);
        assert_eq!(p.r1(), 320);
        assert_eq!(p.r2(), 1280);
        assert_eq!(p.phase_len(), 1600);
        assert!((p.ramp_probability() - 0.1 * 0.05 / 32.0).abs() < 1e-15);
        assert_eq!(p.validate(), Ok(()));
        assert!(PreciseAdversarialParams::new(0.2, 0.1).validate().is_err());
        assert!(PreciseAdversarialParams::new(0.05, 1.5).validate().is_err());
    }
}
