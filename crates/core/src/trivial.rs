//! Appendix D: the trivial single-sample algorithm.
//!
//! An idle ant that sees `lack` somewhere joins one such task uniformly
//! at random; a working ant keeps working until it sees `overload`, then
//! leaves immediately. The paper shows this is reasonable in the
//! *sequential* model (one random ant acts per round, D.1) but in the
//! *synchronous* model all `n` ants react to the same signal at once and
//! the colony flip-flops with amplitude `Θ(n)` for `e^{Ω(n)}` steps
//! (D.2) — the motivating failure for the two-sample design of §4.

use antalloc_env::Assignment;
use antalloc_noise::{FeedbackProbe, RoundView};
use antalloc_rng::{uniform_index, AntRng};

use crate::controller::Controller;

/// The trivial controller for one ant.
#[derive(Clone, Debug)]
pub struct Trivial {
    num_tasks: usize,
    assignment: Assignment,
    /// Scratch bitmap of lacking tasks (reused across rounds).
    lacking: Vec<bool>,
}

impl Trivial {
    /// A controller for a colony with `num_tasks` tasks.
    pub fn new(num_tasks: usize) -> Self {
        assert!(num_tasks >= 1, "at least one task");
        Self {
            num_tasks,
            assignment: Assignment::Idle,
            lacking: vec![false; num_tasks],
        }
    }

    /// Number of tasks this controller observes.
    pub fn num_tasks(&self) -> usize {
        self.num_tasks
    }

    /// Bank-loop entry point: steps a homogeneous slice of trivial
    /// controllers against one shared [`RoundView`]. Bit-identical to
    /// per-ant [`Controller::step`]. Colonies use the flat
    /// structure-of-arrays layout instead — see [`crate::TrivialBank`];
    /// this per-ant loop remains as the reference semantics.
    pub fn step_bank(
        ants: &mut [Self],
        view: RoundView<'_>,
        rngs: &mut [AntRng],
        out: &mut [Assignment],
    ) {
        crate::controller::step_slice(ants, view, rngs, out)
    }
}

impl Controller for Trivial {
    fn step(&mut self, probe: &mut FeedbackProbe<'_>) -> Assignment {
        match self.assignment {
            Assignment::Idle => {
                let mut count = 0usize;
                for j in 0..self.num_tasks {
                    let lack = probe.sample(j).is_lack();
                    self.lacking[j] = lack;
                    count += usize::from(lack);
                }
                if count > 0 {
                    let pick = uniform_index(probe.rng(), count);
                    let j = self
                        .lacking
                        .iter()
                        .enumerate()
                        .filter(|(_, &l)| l)
                        .nth(pick)
                        .map(|(j, _)| j)
                        .expect("pick < count");
                    self.assignment = Assignment::Task(j as u32);
                }
            }
            Assignment::Task(j) => {
                if !probe.sample(j as usize).is_lack() {
                    self.assignment = Assignment::Idle;
                }
            }
        }
        self.assignment
    }

    #[inline]
    fn assignment(&self) -> Assignment {
        self.assignment
    }

    fn reset_to(&mut self, a: Assignment) {
        self.assignment = a;
    }

    fn memory_bits(&self) -> u32 {
        // Only the current assignment: one of k+1 values.
        crate::memory::bits_for_states(self.num_tasks + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antalloc_noise::{Feedback, NoiseModel, PreparedRound};
    use antalloc_rng::Xoshiro256pp;

    use Feedback::{Lack as L, Overload as O};

    fn fixed_round(round: u64, signals: &[Feedback]) -> PreparedRound {
        let deficits: Vec<i64> = signals
            .iter()
            .map(|f| if f.is_lack() { 1 } else { -1 })
            .collect();
        NoiseModel::Exact.prepare(round, &deficits, &vec![100u64; signals.len()])
    }

    fn step_with(
        ant: &mut Trivial,
        round: u64,
        signals: &[Feedback],
        rng: &mut Xoshiro256pp,
    ) -> Assignment {
        let prep = fixed_round(round, signals);
        let mut probe = FeedbackProbe::new(&prep, rng);
        ant.step(&mut probe)
    }

    #[test]
    fn joins_immediately_on_lack() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut ant = Trivial::new(3);
        let a = step_with(&mut ant, 1, &[O, L, O], &mut rng);
        assert_eq!(a, Assignment::Task(1));
    }

    #[test]
    fn leaves_immediately_on_overload() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut ant = Trivial::new(1);
        ant.reset_to(Assignment::Task(0));
        let a = step_with(&mut ant, 1, &[O], &mut rng);
        assert_eq!(a, Assignment::Idle);
    }

    #[test]
    fn stays_while_lacking() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut ant = Trivial::new(1);
        ant.reset_to(Assignment::Task(0));
        for t in 1..=10 {
            assert_eq!(step_with(&mut ant, t, &[L], &mut rng), Assignment::Task(0));
        }
    }

    #[test]
    fn idle_stays_idle_without_lack() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let mut ant = Trivial::new(2);
        assert_eq!(step_with(&mut ant, 1, &[O, O], &mut rng), Assignment::Idle);
    }

    #[test]
    fn join_choice_is_uniform() {
        let mut counts = [0u32; 3];
        for seed in 0..6000u64 {
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            let mut ant = Trivial::new(3);
            match step_with(&mut ant, 1, &[L, L, L], &mut rng) {
                Assignment::Task(j) => counts[j as usize] += 1,
                Assignment::Idle => panic!("must join"),
            }
        }
        for &c in &counts {
            let frac = f64::from(c) / 6000.0;
            assert!((frac - 1.0 / 3.0).abs() < 0.03, "frac {frac}");
        }
    }

    #[test]
    fn memory_is_log_k() {
        assert_eq!(Trivial::new(1).memory_bits(), 1);
        assert_eq!(Trivial::new(3).memory_bits(), 2);
        assert_eq!(Trivial::new(7).memory_bits(), 3);
    }
}
