//! Documented index conversions for the bank kernels.
//!
//! The SoA banks store task assignments as `u32` columns (half the
//! memory traffic of `usize` at 1M+ ants) while slices and counters are
//! `usize`-indexed, so the kernels convert in both directions on every
//! step. Raw `as` casts are banned in the hot files by `antalloc-audit`
//! (rule `cast` — a silent truncation only shows up at colony sizes the
//! parity tests never reach); these helpers are the two blessed
//! conversions, each carrying its justification exactly once.

/// Widens a task-index column value to a slice index.
#[inline(always)]
pub(crate) fn task_ix(col: u32) -> usize {
    // audit:allow(cast): u32 → usize is lossless on every supported (64-bit) target.
    col as usize
}

/// Narrows a task index to a `u32` column value.
///
/// Task counts are bounded far below `u32::MAX` (config validation
/// rejects colonies with more tasks than ants, and demand vectors are
/// materialized per round), so the narrowing cannot truncate; the
/// debug assertion keeps that claim checked in every `cargo test` run.
#[inline(always)]
pub(crate) fn task_col(ix: usize) -> u32 {
    debug_assert!(u32::try_from(ix).is_ok(), "task index {ix} overflows u32");
    // audit:allow(cast): task indices are < the validated task count, far below 2^32.
    ix as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        assert_eq!(task_ix(0), 0);
        assert_eq!(task_ix(u32::MAX), u32::MAX as usize);
        assert_eq!(task_col(7), 7);
    }
}
