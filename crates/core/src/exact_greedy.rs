//! Exact-feedback baseline in the style of Cornejo et al. \[11\].
//!
//! The paper builds on \[11\], where feedback is noise-free (`lack` iff
//! `W ≤ d`) and a simple probabilistic join/leave protocol converges to
//! within one ant of every demand. \[11\]'s full algorithm is not restated
//! in this paper, so we implement a faithful-in-spirit *damped greedy*:
//! idle ants join a uniformly random lacking task with probability
//! `p_join`; workers on an overloaded task leave with probability
//! `p_leave`. What the experiments need from this baseline is exactly
//! what it has: it settles into a narrow band under exact feedback, and
//! it falls apart under sigmoid noise, where near `Δ = 0` half the
//! colony sees phantom overloads every round (bench
//! `exp_baseline_noise_fragility`).

use antalloc_env::Assignment;
use antalloc_noise::{FeedbackProbe, RoundView};
use antalloc_rng::{uniform_index, AntRng, Bernoulli};

use crate::controller::Controller;

/// Parameters for [`ExactGreedy`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExactGreedyParams {
    /// Probability an idle ant acts on a `lack` signal this round.
    pub p_join: f64,
    /// Probability a worker acts on an `overload` signal this round.
    pub p_leave: f64,
}

impl Default for ExactGreedyParams {
    /// Damping that converges quickly under exact feedback without large
    /// overshoot at the colony sizes used in the experiments.
    fn default() -> Self {
        Self {
            p_join: 0.5,
            p_leave: 0.25,
        }
    }
}

/// The exact-feedback baseline controller for one ant.
#[derive(Clone, Debug)]
pub struct ExactGreedy {
    params: ExactGreedyParams,
    join: Bernoulli,
    leave: Bernoulli,
    num_tasks: usize,
    assignment: Assignment,
    lacking: Vec<bool>,
}

impl ExactGreedy {
    /// A controller for a colony with `num_tasks` tasks.
    pub fn new(num_tasks: usize, params: ExactGreedyParams) -> Self {
        assert!(num_tasks >= 1, "at least one task");
        Self {
            params,
            join: Bernoulli::new(params.p_join),
            leave: Bernoulli::new(params.p_leave),
            num_tasks,
            assignment: Assignment::Idle,
            lacking: vec![false; num_tasks],
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &ExactGreedyParams {
        &self.params
    }

    /// Number of tasks this controller observes.
    pub fn num_tasks(&self) -> usize {
        self.num_tasks
    }

    /// Bank-loop entry point: steps a homogeneous slice of baseline
    /// controllers against one shared [`RoundView`]. Bit-identical to
    /// per-ant [`Controller::step`]. Colonies use the flat
    /// structure-of-arrays layout instead — see
    /// [`crate::ExactGreedyBank`]; this per-ant loop remains as the
    /// reference semantics.
    pub fn step_bank(
        ants: &mut [Self],
        view: RoundView<'_>,
        rngs: &mut [AntRng],
        out: &mut [Assignment],
    ) {
        crate::controller::step_slice(ants, view, rngs, out)
    }
}

impl Controller for ExactGreedy {
    fn step(&mut self, probe: &mut FeedbackProbe<'_>) -> Assignment {
        match self.assignment {
            Assignment::Idle => {
                let mut count = 0usize;
                for j in 0..self.num_tasks {
                    let lack = probe.sample(j).is_lack();
                    self.lacking[j] = lack;
                    count += usize::from(lack);
                }
                if count > 0 && self.join.sample(probe.rng()) {
                    let pick = uniform_index(probe.rng(), count);
                    let j = self
                        .lacking
                        .iter()
                        .enumerate()
                        .filter(|(_, &l)| l)
                        .nth(pick)
                        .map(|(j, _)| j)
                        .expect("pick < count");
                    self.assignment = Assignment::Task(j as u32);
                }
            }
            Assignment::Task(j) => {
                if !probe.sample(j as usize).is_lack() && self.leave.sample(probe.rng()) {
                    self.assignment = Assignment::Idle;
                }
            }
        }
        self.assignment
    }

    #[inline]
    fn assignment(&self) -> Assignment {
        self.assignment
    }

    fn reset_to(&mut self, a: Assignment) {
        self.assignment = a;
    }

    fn memory_bits(&self) -> u32 {
        crate::memory::bits_for_states(self.num_tasks + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antalloc_noise::{Feedback, NoiseModel, PreparedRound};
    use antalloc_rng::Xoshiro256pp;

    use Feedback::{Lack as L, Overload as O};

    fn fixed_round(round: u64, signals: &[Feedback]) -> PreparedRound {
        let deficits: Vec<i64> = signals
            .iter()
            .map(|f| if f.is_lack() { 1 } else { -1 })
            .collect();
        NoiseModel::Exact.prepare(round, &deficits, &vec![100u64; signals.len()])
    }

    #[test]
    fn deterministic_extremes() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut ant = ExactGreedy::new(
            2,
            ExactGreedyParams {
                p_join: 1.0,
                p_leave: 1.0,
            },
        );
        let prep = fixed_round(1, &[O, L]);
        let mut probe = FeedbackProbe::new(&prep, &mut rng);
        assert_eq!(ant.step(&mut probe), Assignment::Task(1));
        let prep = fixed_round(2, &[O, O]);
        let mut probe = FeedbackProbe::new(&prep, &mut rng);
        assert_eq!(ant.step(&mut probe), Assignment::Idle);
    }

    #[test]
    fn zero_probabilities_freeze() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut ant = ExactGreedy::new(
            1,
            ExactGreedyParams {
                p_join: 0.0,
                p_leave: 0.0,
            },
        );
        let prep = fixed_round(1, &[L]);
        let mut probe = FeedbackProbe::new(&prep, &mut rng);
        assert_eq!(ant.step(&mut probe), Assignment::Idle);
        ant.reset_to(Assignment::Task(0));
        let prep = fixed_round(2, &[O]);
        let mut probe = FeedbackProbe::new(&prep, &mut rng);
        assert_eq!(ant.step(&mut probe), Assignment::Task(0));
    }

    #[test]
    fn join_rate_matches_p_join() {
        let trials = 20_000u32;
        let mut joined = 0u32;
        for seed in 0..trials {
            let mut rng = Xoshiro256pp::seed_from_u64(u64::from(seed));
            let mut ant = ExactGreedy::new(1, ExactGreedyParams::default());
            let prep = fixed_round(1, &[L]);
            let mut probe = FeedbackProbe::new(&prep, &mut rng);
            if !ant.step(&mut probe).is_idle() {
                joined += 1;
            }
        }
        let freq = f64::from(joined) / f64::from(trials);
        assert!((freq - 0.5).abs() < 0.02, "freq {freq}");
    }
}
