//! A proportional-control rival to the paper's self-stabilizing ants.
//!
//! Motivated by *Proportional Control for Stochastic Regulation on
//! Allocation of Multi-Robots* (see PAPERS.md): instead of the paper's
//! two-sample median machinery, each ant acts on a single sample per
//! round, and the **expected number of ants that move** is proportional
//! to the sensed imbalance — every ant that senses `lack` somewhere
//! (while idle) or `overload` on its own task (while working) flips a
//! biased coin with probability `gain`. The colony-level correction per
//! round is therefore `gain × (ants sensing the error)`: a classic
//! stochastic P-controller, with the gain trading convergence speed
//! against oscillation under the synchronous flip-flop failure mode of
//! Appendix D.
//!
//! A `deadband` adds hysteresis: an ant acts only after the error
//! signal has persisted for `deadband + 1` consecutive rounds (its
//! per-ant streak counter), suppressing reactions to one-round noise
//! spikes the way a control deadband suppresses chatter.
//!
//! **Reference semantics.** [`ProportionalController`] (per ant) is the
//! truth; [`ProportionalBank`] is its flat structure-of-arrays layout
//! (one `u32` assignment + one `u16` streak per ant) and consumes every
//! ant's RNG stream in exactly the order `Controller::step` would:
//! samples in task order, then the uniform pick, then the gain coin —
//! pinned bit-identical by the parity tests in `tests/banks.rs`.

use antalloc_env::{Assignment, ColumnWriter};
use antalloc_noise::{FeedbackProbe, RoundView, SensedRound};
use antalloc_rng::{uniform_index, AntRng, Bernoulli};

use crate::ant_bank::{count_lacking, dec, enc, nth_lacking, nth_set_bit, refill, IDLE};
use crate::controller::Controller;

/// Parameters of the proportional controller.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProportionalParams {
    /// Per-ant action probability once the error persists: the colony's
    /// expected correction per round is `gain ×` (ants sensing the
    /// error). Must be in `(0, 1]`.
    pub gain: f64,
    /// Consecutive error rounds an ant tolerates before it may act
    /// (`0` = react immediately, the pure P-controller).
    pub deadband: u16,
}

impl Default for ProportionalParams {
    fn default() -> Self {
        Self {
            gain: 0.5,
            deadband: 0,
        }
    }
}

impl ProportionalParams {
    /// Checks the parameter window, returning the first problem found
    /// (scenario validation wraps this in a typed error).
    pub fn validate(&self) -> Result<(), String> {
        if !(self.gain.is_finite() && self.gain > 0.0 && self.gain <= 1.0) {
            return Err(format!("gain must be in (0, 1], got {}", self.gain));
        }
        Ok(())
    }
}

/// The proportional controller for one ant.
#[derive(Clone, Debug)]
pub struct ProportionalController {
    num_tasks: usize,
    params: ProportionalParams,
    gain: Bernoulli,
    assignment: Assignment,
    /// Consecutive rounds the error signal has persisted.
    streak: u16,
    /// Scratch bitmap of lacking tasks (reused across rounds).
    lacking: Vec<bool>,
}

impl ProportionalController {
    /// A controller for a colony with `num_tasks` tasks.
    pub fn new(num_tasks: usize, params: ProportionalParams) -> Self {
        assert!(num_tasks >= 1, "at least one task");
        Self {
            num_tasks,
            params,
            gain: Bernoulli::new(params.gain),
            assignment: Assignment::Idle,
            streak: 0,
            lacking: vec![false; num_tasks],
        }
    }

    /// Number of tasks this controller observes.
    pub fn num_tasks(&self) -> usize {
        self.num_tasks
    }

    /// The controller's parameters.
    pub fn params(&self) -> &ProportionalParams {
        &self.params
    }

    /// The persisted-error streak (checkpoint capture).
    pub fn streak(&self) -> u16 {
        self.streak
    }

    /// Overwrites the persisted-error streak (checkpoint restore; apply
    /// *after* [`Controller::reset_to`], which clears it).
    pub fn set_streak(&mut self, streak: u16) {
        self.streak = streak;
    }
}

impl Controller for ProportionalController {
    fn step(&mut self, probe: &mut FeedbackProbe<'_>) -> Assignment {
        match self.assignment {
            Assignment::Idle => {
                let mut count = 0usize;
                for j in 0..self.num_tasks {
                    let lack = probe.sample(j).is_lack();
                    self.lacking[j] = lack;
                    count += usize::from(lack);
                }
                if count > 0 {
                    self.streak = self.streak.saturating_add(1);
                    if self.streak > self.params.deadband {
                        // Pick first, then the gain coin — the bank
                        // consumes draws in the same order.
                        let pick = uniform_index(probe.rng(), count);
                        if self.gain.sample(probe.rng()) {
                            let j = self
                                .lacking
                                .iter()
                                .enumerate()
                                .filter(|(_, &l)| l)
                                .nth(pick)
                                .map(|(j, _)| j)
                                .expect("pick < count"); // audit:allow(panic-path): uniform_index returns < count, and count entries of `lacking` are true by the loop above.
                            self.assignment = Assignment::Task(crate::cast::task_col(j));
                            self.streak = 0;
                        }
                    }
                } else {
                    self.streak = 0;
                }
            }
            Assignment::Task(j) => {
                if probe.sample(crate::cast::task_ix(j)).is_lack() {
                    self.streak = 0;
                } else {
                    self.streak = self.streak.saturating_add(1);
                    if self.streak > self.params.deadband && self.gain.sample(probe.rng()) {
                        self.assignment = Assignment::Idle;
                        self.streak = 0;
                    }
                }
            }
        }
        self.assignment
    }

    #[inline]
    fn assignment(&self) -> Assignment {
        self.assignment
    }

    fn reset_to(&mut self, a: Assignment) {
        self.assignment = a;
        self.streak = 0;
    }

    fn memory_bits(&self) -> u32 {
        // The assignment (k+1 states) plus the deadband streak, which
        // only needs to distinguish 0..=deadband+1.
        crate::memory::bits_for_states(self.num_tasks + 1)
            + crate::memory::bits_for_states(usize::from(self.params.deadband) + 2)
    }
}

/// A homogeneous [`ProportionalController`] population in flat layout.
#[derive(Clone, Debug)]
pub struct ProportionalBank {
    params: ProportionalParams,
    gain: Bernoulli,
    num_tasks: usize,
    /// Assignment per ant (`IDLE` when idle).
    assignment: Vec<u32>,
    /// Persisted-error streak per ant.
    streak: Vec<u16>,
}

impl ProportionalBank {
    /// An all-idle bank of `n` fresh ants.
    pub fn new(num_tasks: usize, params: ProportionalParams, n: usize) -> Self {
        assert!(num_tasks >= 1, "at least one task");
        Self {
            params,
            gain: Bernoulli::new(params.gain),
            num_tasks,
            assignment: vec![IDLE; n],
            streak: vec![0; n],
        }
    }

    /// Rebuilds the bank in place to `n` fresh all-idle ants, reusing
    /// the column allocations (shrink keeps capacity, grow
    /// reallocates). State after the call is bit-identical to
    /// `ProportionalBank::new(num_tasks, params, n)`.
    pub fn reinit(&mut self, num_tasks: usize, params: ProportionalParams, n: usize) {
        assert!(num_tasks >= 1, "at least one task");
        self.params = params;
        self.gain = Bernoulli::new(params.gain);
        self.num_tasks = num_tasks;
        refill(&mut self.assignment, IDLE, n);
        refill(&mut self.streak, 0, n);
    }

    /// The parameters every ant in the bank runs.
    pub fn params(&self) -> &ProportionalParams {
        &self.params
    }

    /// Number of ants.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// True iff the bank holds no ants.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Appends a per-ant controller, transposing its state in.
    pub fn push_controller(&mut self, ant: &ProportionalController) {
        assert_eq!(ant.num_tasks(), self.num_tasks, "task count mismatch");
        debug_assert_eq!(ant.params(), &self.params, "parameter mismatch");
        self.assignment.push(enc(ant.assignment()));
        self.streak.push(ant.streak());
    }

    /// Reconstructs the per-ant controller at `slot` (reference
    /// extraction; lossless — assignment plus streak is the whole
    /// state).
    pub fn to_controller(&self, slot: usize) -> ProportionalController {
        let mut ant = ProportionalController::new(self.num_tasks, self.params);
        ant.reset_to(dec(self.assignment[slot]));
        ant.set_streak(self.streak[slot]);
        ant
    }

    /// The persisted-error streak of the ant at `slot` (checkpoint
    /// capture).
    pub fn streak(&self, slot: usize) -> u16 {
        self.streak[slot]
    }

    /// Overwrites the streak of the ant at `slot` (checkpoint restore;
    /// apply *after* [`ProportionalBank::reset_slot`], which clears it).
    pub fn set_streak(&mut self, slot: usize, streak: u16) {
        self.streak[slot] = streak;
    }

    /// The assignment of the ant at `slot`.
    pub fn assignment(&self, slot: usize) -> Assignment {
        dec(self.assignment[slot])
    }

    /// Forces the ant at `slot` into `a`.
    pub fn reset_slot(&mut self, slot: usize, a: Assignment) {
        self.assignment[slot] = enc(a);
        self.streak[slot] = 0;
    }

    /// Persistent memory in bits (same accounting as the per-ant impl).
    pub fn memory_bits(&self) -> u32 {
        crate::memory::bits_for_states(self.num_tasks + 1)
            + crate::memory::bits_for_states(usize::from(self.params.deadband) + 2)
    }

    /// Removes the ant at `slot` by swap-removal.
    pub fn swap_remove(&mut self, slot: usize) {
        self.assignment.swap_remove(slot);
        self.streak.swap_remove(slot);
    }

    /// The whole bank as a splittable mutable slice.
    pub fn as_slice_mut(&mut self) -> ProportionalSliceMut<'_> {
        ProportionalSliceMut {
            gain: self.gain,
            deadband: self.params.deadband,
            num_tasks: self.num_tasks,
            assignment: &mut self.assignment,
            streak: &mut self.streak,
        }
    }

    /// Steps the single ant at `slot` (the sequential model's path).
    pub fn step_slot(&mut self, slot: usize, view: RoundView<'_>, rng: &mut AntRng) -> Assignment {
        // See TrivialBank::step_slot: no allocation on the ≤ 64 path.
        let mut row = crate::flat_bank::scratch_row(self.num_tasks);
        ProportionalSliceMut {
            gain: self.gain,
            deadband: self.params.deadband,
            num_tasks: self.num_tasks,
            assignment: &mut self.assignment[slot..slot + 1],
            streak: &mut self.streak[slot..slot + 1],
        }
        .step_one(0, view, rng, &mut row)
    }
}

/// A disjoint mutable chunk of a [`ProportionalBank`].
#[derive(Debug)]
pub struct ProportionalSliceMut<'a> {
    gain: Bernoulli,
    deadband: u16,
    num_tasks: usize,
    assignment: &'a mut [u32],
    streak: &'a mut [u16],
}

impl<'a> ProportionalSliceMut<'a> {
    /// Number of ants in the chunk.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// True iff the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Splits the chunk at `mid` into two disjoint chunks.
    pub fn split_at_mut(self, mid: usize) -> (ProportionalSliceMut<'a>, ProportionalSliceMut<'a>) {
        let (a, b) = self.assignment.split_at_mut(mid);
        let (s, t) = self.streak.split_at_mut(mid);
        (
            ProportionalSliceMut {
                gain: self.gain,
                deadband: self.deadband,
                num_tasks: self.num_tasks,
                assignment: a,
                streak: s,
            },
            ProportionalSliceMut {
                gain: self.gain,
                deadband: self.deadband,
                num_tasks: self.num_tasks,
                assignment: b,
                streak: t,
            },
        )
    }

    /// Steps every ant in the chunk; bit-identical to per-ant
    /// [`Controller::step`] on [`ProportionalController`].
    pub fn step_batch(&mut self, view: RoundView<'_>, rngs: &mut [AntRng], out: &mut [Assignment]) {
        let n = self.len();
        assert_eq!(n, rngs.len(), "one RNG stream per ant");
        assert_eq!(n, out.len(), "one decision slot per ant");
        let mut row = crate::flat_bank::scratch_row(self.num_tasks);
        for i in 0..n {
            out[i] = self.step_one(i, view, &mut rngs[i], &mut row);
        }
    }

    /// Fused-apply variant of [`ProportionalSliceMut::step_batch`]:
    /// same draws, with each transition routed through `writer` (shared
    /// next column + local delta) at the ant's colony id (`ids[i]`).
    ///
    /// Takes the round as a [`SensedRound`]: the well-mixed (shared)
    /// form runs the hoisted-view loop; the per-ant form re-selects the
    /// view per ant (`sensed.view_for(ids[i])`).
    pub fn step_batch_fused(
        &mut self,
        sensed: SensedRound<'_>,
        rngs: &mut [AntRng],
        ids: &[u32],
        writer: &mut ColumnWriter<'_>,
    ) {
        let n = self.len();
        assert_eq!(n, rngs.len(), "one RNG stream per ant");
        assert_eq!(n, ids.len(), "one colony id per ant");
        let mut row = crate::flat_bank::scratch_row(self.num_tasks);
        match sensed.shared_view() {
            Some(view) => {
                for i in 0..n {
                    self.step_one(i, view, &mut rngs[i], &mut row);
                    writer.write(ids[i], self.assignment[i]);
                }
            }
            None => {
                for i in 0..n {
                    self.step_one(i, sensed.view_for(ids[i]), &mut rngs[i], &mut row);
                    writer.write(ids[i], self.assignment[i]);
                }
            }
        }
    }

    /// One ant's round. Draw order matches the reference: samples in
    /// task order (bit-packed batched draw for ≤ 64 tasks), then the
    /// uniform pick, then the gain coin; workers draw the gain coin
    /// only on a persisted `overload`.
    #[inline(always)]
    fn step_one(
        &mut self,
        i: usize,
        view: RoundView<'_>,
        rng: &mut AntRng,
        row: &mut [u8],
    ) -> Assignment {
        let cur = self.assignment[i];
        if cur == IDLE {
            if self.num_tasks <= 64 {
                let mask = view.lack_mask(rng);
                if mask != 0 {
                    self.streak[i] = self.streak[i].saturating_add(1);
                    if self.streak[i] > self.deadband {
                        let pick = uniform_index(rng, mask.count_ones() as usize);
                        if self.gain.sample(rng) {
                            self.assignment[i] = nth_set_bit(mask, pick);
                            self.streak[i] = 0;
                        }
                    }
                } else {
                    self.streak[i] = 0;
                }
            } else {
                view.fill_lack(rng, row);
                let count = count_lacking(row);
                if count > 0 {
                    self.streak[i] = self.streak[i].saturating_add(1);
                    if self.streak[i] > self.deadband {
                        let pick = uniform_index(rng, count);
                        if self.gain.sample(rng) {
                            self.assignment[i] = nth_lacking(row, pick);
                            self.streak[i] = 0;
                        }
                    }
                } else {
                    self.streak[i] = 0;
                }
            }
        } else if view.sample(crate::cast::task_ix(cur), rng).is_lack() {
            self.streak[i] = 0;
        } else {
            self.streak[i] = self.streak[i].saturating_add(1);
            if self.streak[i] > self.deadband && self.gain.sample(rng) {
                self.assignment[i] = IDLE;
                self.streak[i] = 0;
            }
        }
        dec(self.assignment[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antalloc_noise::{Feedback, NoiseModel, PreparedRound};
    use antalloc_rng::{StreamSeeder, Xoshiro256pp};

    use Feedback::{Lack as L, Overload as O};

    fn fixed_round(round: u64, signals: &[Feedback]) -> PreparedRound {
        let deficits: Vec<i64> = signals
            .iter()
            .map(|f| if f.is_lack() { 1 } else { -1 })
            .collect();
        NoiseModel::Exact.prepare(round, &deficits, &vec![100u64; signals.len()])
    }

    fn step_with(
        ant: &mut ProportionalController,
        round: u64,
        signals: &[Feedback],
        rng: &mut Xoshiro256pp,
    ) -> Assignment {
        let prep = fixed_round(round, signals);
        let mut probe = FeedbackProbe::new(&prep, rng);
        ant.step(&mut probe)
    }

    #[test]
    fn unit_gain_zero_deadband_joins_immediately() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let params = ProportionalParams {
            gain: 1.0,
            deadband: 0,
        };
        let mut ant = ProportionalController::new(3, params);
        let a = step_with(&mut ant, 1, &[O, L, O], &mut rng);
        assert_eq!(a, Assignment::Task(1));
    }

    #[test]
    fn deadband_delays_action_by_its_depth() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let params = ProportionalParams {
            gain: 1.0,
            deadband: 2,
        };
        let mut ant = ProportionalController::new(1, params);
        ant.reset_to(Assignment::Task(0));
        // Two overload rounds persist inside the deadband; the third
        // crosses it and (gain 1) the ant leaves.
        assert_eq!(step_with(&mut ant, 1, &[O], &mut rng), Assignment::Task(0));
        assert_eq!(step_with(&mut ant, 2, &[O], &mut rng), Assignment::Task(0));
        assert_eq!(step_with(&mut ant, 3, &[O], &mut rng), Assignment::Idle);
    }

    #[test]
    fn lack_resets_the_deadband_streak() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let params = ProportionalParams {
            gain: 1.0,
            deadband: 1,
        };
        let mut ant = ProportionalController::new(1, params);
        ant.reset_to(Assignment::Task(0));
        assert_eq!(step_with(&mut ant, 1, &[O], &mut rng), Assignment::Task(0));
        // A lack round clears the streak; the next overload starts over.
        assert_eq!(step_with(&mut ant, 2, &[L], &mut rng), Assignment::Task(0));
        assert_eq!(step_with(&mut ant, 3, &[O], &mut rng), Assignment::Task(0));
        assert_eq!(step_with(&mut ant, 4, &[O], &mut rng), Assignment::Idle);
    }

    #[test]
    fn gain_is_the_per_round_action_rate() {
        let params = ProportionalParams {
            gain: 0.25,
            deadband: 0,
        };
        let mut leaves = 0u32;
        let trials = 20_000u64;
        for seed in 0..trials {
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            let mut ant = ProportionalController::new(1, params);
            ant.reset_to(Assignment::Task(0));
            if step_with(&mut ant, 1, &[O], &mut rng) == Assignment::Idle {
                leaves += 1;
            }
        }
        let frac = f64::from(leaves) / trials as f64;
        assert!((frac - 0.25).abs() < 0.02, "leave rate {frac}");
    }

    /// The flat bank against the per-ant reference, round for round,
    /// under sigmoid noise (joins, leaves, deadband streaks, coins).
    #[test]
    fn bank_matches_per_ant_stepping() {
        let n = 150;
        let k = 3;
        let params = ProportionalParams {
            gain: 0.4,
            deadband: 1,
        };
        let seeder = StreamSeeder::new(17);
        let model = NoiseModel::Sigmoid { lambda: 1.5 };
        let mut bank = ProportionalBank::new(k, params, n);
        let mut reference: Vec<ProportionalController> = (0..n)
            .map(|_| ProportionalController::new(k, params))
            .collect();
        let mut bank_rngs: Vec<AntRng> = (0..n).map(|i| seeder.ant(i)).collect();
        let mut ref_rngs: Vec<AntRng> = (0..n).map(|i| seeder.ant(i)).collect();
        let mut out = vec![Assignment::Idle; n];
        for round in 1..=60u64 {
            let prepared = model.prepare(round, &[2, 0, -3], &[15, 15, 15]);
            bank.as_slice_mut()
                .step_batch(prepared.view(), &mut bank_rngs, &mut out);
            for (i, ant) in reference.iter_mut().enumerate() {
                let mut probe = FeedbackProbe::new(&prepared, &mut ref_rngs[i]);
                assert_eq!(ant.step(&mut probe), out[i], "ant {i} round {round}");
                assert_eq!(ant.streak(), bank.streak(i), "ant {i} streak");
            }
        }
        for (i, ant) in reference.iter().enumerate() {
            assert_eq!(bank.assignment(i), ant.assignment());
        }
    }

    #[test]
    fn push_and_reconstruct_roundtrip() {
        let params = ProportionalParams::default();
        let mut bank = ProportionalBank::new(2, params, 0);
        let mut ant = ProportionalController::new(2, params);
        ant.reset_to(Assignment::Task(1));
        ant.set_streak(3);
        bank.push_controller(&ant);
        assert_eq!(bank.len(), 1);
        let back = bank.to_controller(0);
        assert_eq!(back.assignment(), Assignment::Task(1));
        assert_eq!(back.streak(), 3);
    }

    #[test]
    fn swap_remove_moves_both_columns() {
        let params = ProportionalParams::default();
        let mut bank = ProportionalBank::new(1, params, 3);
        bank.reset_slot(0, Assignment::Task(0));
        bank.reset_slot(2, Assignment::Idle);
        bank.set_streak(2, 5);
        bank.swap_remove(0);
        assert_eq!(bank.len(), 2);
        assert_eq!(bank.assignment(0), Assignment::Idle);
        assert_eq!(bank.streak(0), 5);
    }

    #[test]
    fn params_validate_window() {
        assert!(ProportionalParams::default().validate().is_ok());
        for bad in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            let p = ProportionalParams {
                gain: bad,
                deadband: 0,
            };
            assert!(p.validate().is_err(), "gain {bad} must be rejected");
        }
    }
}
