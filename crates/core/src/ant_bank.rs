//! Structure-of-arrays bank for §4 Algorithm Ant — the hot layout.
//!
//! A million-ant Ant colony is memory-bound: stepping a `Vec` of
//! per-ant structs streams ~200 bytes per ant per round (struct, two
//! heap sample buffers, RNG). This bank transposes the persistent state
//! into flat arrays — ~13 bytes per ant plus the RNG — and hoists the
//! phase-parity branch and the shared pause/leave samplers out of the
//! loop.
//!
//! **Reference semantics.** [`crate::AlgorithmAnt`] is the truth;
//! [`AntBank`] must consume every ant's RNG stream in exactly the order
//! `Controller::step` would (samples, then pause/leave/join coins, with
//! the same short-circuits), so bank runs are bit-identical to per-ant
//! runs. The bank property tests compare the two round for round;
//! conversion in and out ([`AntBank::push_controller`] /
//! [`AntBank::to_controller`]) is lossless for the persistent state.
//!
//! Only phase-offset-0 ants live here; desynchronized (`AntDesync`)
//! colonies keep the per-ant layout.

use antalloc_env::{Assignment, ColumnWriter};
use antalloc_noise::{RoundView, SensedRound};
use antalloc_rng::{uniform_index, AntRng, Bernoulli};

use crate::ant::{AlgorithmAnt, AntBankState};
use crate::params::AntParams;

/// `current`/`assignment` encoding: task index, or `IDLE`. Shared by
/// every structure-of-arrays bank (see also [`crate::TrivialBank`],
/// [`crate::ExactGreedyBank`], [`crate::PreciseSigmoidBank`]) — and,
/// by construction, identical to [`Assignment::RAW_IDLE`], so bank
/// columns write into the engine's fused [`antalloc_env::TaskColumn`]
/// without re-encoding.
pub(crate) const IDLE: u32 = Assignment::RAW_IDLE;

#[inline(always)]
pub(crate) fn enc(a: Assignment) -> u32 {
    a.to_raw()
}

#[inline(always)]
pub(crate) fn dec(x: u32) -> Assignment {
    Assignment::from_raw(x)
}

/// The `pick`-th (0-based) set bit of `mask`, as a bit index.
///
/// Returns `u32` — the native width of `trailing_zeros`, and the width
/// of the assignment columns the callers store into — so no call site
/// needs a narrowing cast.
#[inline(always)]
pub(crate) fn nth_set_bit(mut mask: u64, pick: usize) -> u32 {
    for _ in 0..pick {
        mask &= mask - 1;
    }
    mask.trailing_zeros()
}

/// Number of `lack` entries in a `0/1` signal row.
#[inline(always)]
/// Clears and refills a column with `n` copies of `value`, reusing the
/// allocation when it suffices — the shared primitive behind every
/// bank's `reinit` (shrink-to-reuse, grow reallocates).
pub(crate) fn refill<T: Copy>(column: &mut Vec<T>, value: T, n: usize) {
    column.clear();
    column.resize(n, value);
}

pub(crate) fn count_lacking(row: &[u8]) -> usize {
    row.iter().filter(|&&l| l == 1).count()
}

/// The `pick`-th (0-based) `lack` entry of a `0/1` signal row, in task
/// order — the same selection the per-ant reference controllers make
/// with `filter(..).nth(pick)`.
#[inline(always)]
pub(crate) fn nth_lacking(row: &[u8], pick: usize) -> u32 {
    row.iter()
        .enumerate()
        .filter(|(_, &l)| l == 1)
        .nth(pick)
        .map(|(j, _)| crate::cast::task_col(j))
        // audit:allow(panic-path): callers draw `pick` via uniform_index(count_lacking(row)), so pick < count.
        .expect("pick < count")
}

/// A homogeneous, phase-synchronized Algorithm Ant population in
/// structure-of-arrays layout.
#[derive(Clone, Debug)]
pub struct AntBank {
    params: AntParams,
    pause: Bernoulli,
    leave: Bernoulli,
    num_tasks: usize,
    /// `currentTask` per ant (`IDLE` when idle).
    current: Vec<u32>,
    /// Output assignment `a_t` per ant.
    assignment: Vec<u32>,
    /// Working-path first sample of the current task: 1 = lack.
    s1_current: Vec<u8>,
    /// First-sample-valid flag per ant.
    have_s1: Vec<u8>,
    /// Idle-path first samples, ant-major `num_tasks` bytes per ant.
    s1_all: Vec<u8>,
}

impl AntBank {
    /// An all-idle bank of `n` fresh ants.
    pub fn new(num_tasks: usize, params: AntParams, n: usize) -> Self {
        assert!(num_tasks >= 1, "at least one task");
        Self {
            params,
            pause: Bernoulli::new(params.pause_probability()),
            leave: Bernoulli::new(params.leave_probability()),
            num_tasks,
            current: vec![IDLE; n],
            assignment: vec![IDLE; n],
            s1_current: vec![0; n],
            have_s1: vec![0; n],
            s1_all: vec![0; n * num_tasks],
        }
    }

    /// Rebuilds the bank in place to `n` fresh all-idle ants, reusing
    /// the column allocations (shrink keeps capacity, grow
    /// reallocates). State after the call is bit-identical to
    /// `AntBank::new(num_tasks, params, n)`.
    pub fn reinit(&mut self, num_tasks: usize, params: AntParams, n: usize) {
        assert!(num_tasks >= 1, "at least one task");
        self.params = params;
        self.pause = Bernoulli::new(params.pause_probability());
        self.leave = Bernoulli::new(params.leave_probability());
        self.num_tasks = num_tasks;
        refill(&mut self.current, IDLE, n);
        refill(&mut self.assignment, IDLE, n);
        refill(&mut self.s1_current, 0, n);
        refill(&mut self.have_s1, 0, n);
        refill(&mut self.s1_all, 0, n * num_tasks);
    }

    /// Number of ants.
    pub fn len(&self) -> usize {
        self.current.len()
    }

    /// True iff the bank holds no ants.
    pub fn is_empty(&self) -> bool {
        self.current.is_empty()
    }

    /// The parameters every ant in the bank runs.
    pub fn params(&self) -> &AntParams {
        &self.params
    }

    /// Appends a per-ant controller, transposing its state in.
    ///
    /// # Panics
    /// If the controller is desynchronized (non-zero phase offset) —
    /// those keep the per-ant layout.
    pub fn push_controller(&mut self, ant: &AlgorithmAnt) {
        assert_eq!(
            ant.phase_offset(),
            0,
            "desynchronized ants do not fit a synchronized bank"
        );
        let s = ant.bank_state();
        self.current.push(enc(s.current_task));
        self.assignment.push(enc(s.assignment));
        self.s1_current.push(u8::from(s.s1_current_lack));
        self.have_s1.push(u8::from(s.have_s1));
        debug_assert_eq!(s.s1_lack.len(), self.num_tasks);
        self.s1_all.extend(s.s1_lack.iter().map(|&l| u8::from(l)));
    }

    /// Reconstructs the per-ant controller at `slot` (reference
    /// extraction; lossless for the persistent state).
    pub fn to_controller(&self, slot: usize) -> AlgorithmAnt {
        let k = self.num_tasks;
        AlgorithmAnt::from_bank_state(
            k,
            self.params,
            AntBankState {
                current_task: dec(self.current[slot]),
                assignment: dec(self.assignment[slot]),
                s1_lack: self.s1_all[slot * k..slot * k + k]
                    .iter()
                    .map(|&b| b == 1)
                    .collect(),
                s1_current_lack: self.s1_current[slot] == 1,
                have_s1: self.have_s1[slot] == 1,
            },
        )
    }

    /// The assignment of the ant at `slot`.
    pub fn assignment(&self, slot: usize) -> Assignment {
        dec(self.assignment[slot])
    }

    /// Forces the ant at `slot` into `a` (see
    /// [`crate::Controller::reset_to`]).
    pub fn reset_slot(&mut self, slot: usize, a: Assignment) {
        let x = enc(a);
        self.assignment[slot] = x;
        self.current[slot] = x;
        self.have_s1[slot] = 0;
    }

    /// Persistent memory in bits (same accounting as
    /// [`crate::Controller::memory_bits`] on [`AlgorithmAnt`]).
    pub fn memory_bits(&self) -> u32 {
        let k = crate::cast::task_col(self.num_tasks);
        crate::memory::bits_for_states(self.num_tasks + 1) + k + 1
    }

    /// Removes the ant at `slot` by swap-removal.
    pub fn swap_remove(&mut self, slot: usize) {
        let k = self.num_tasks;
        let last = self.len() - 1;
        self.current.swap_remove(slot);
        self.assignment.swap_remove(slot);
        self.s1_current.swap_remove(slot);
        self.have_s1.swap_remove(slot);
        if slot != last {
            let (head, tail) = self.s1_all.split_at_mut(last * k);
            head[slot * k..slot * k + k].copy_from_slice(&tail[..k]);
        }
        self.s1_all.truncate(last * k);
    }

    /// The whole bank as a splittable mutable slice.
    pub fn as_slice_mut(&mut self) -> AntSliceMut<'_> {
        AntSliceMut {
            pause: self.pause,
            leave: self.leave,
            num_tasks: self.num_tasks,
            current: &mut self.current,
            assignment: &mut self.assignment,
            s1_current: &mut self.s1_current,
            have_s1: &mut self.have_s1,
            s1_all: &mut self.s1_all,
        }
    }

    /// Steps the single ant at `slot` (the sequential model's path) —
    /// the same kernel as the bank loop, on a one-ant chunk.
    pub fn step_slot(&mut self, slot: usize, view: RoundView<'_>, rng: &mut AntRng) -> Assignment {
        let k = self.num_tasks;
        let mut slice = AntSliceMut {
            pause: self.pause,
            leave: self.leave,
            num_tasks: k,
            current: &mut self.current[slot..slot + 1],
            assignment: &mut self.assignment[slot..slot + 1],
            s1_current: &mut self.s1_current[slot..slot + 1],
            have_s1: &mut self.have_s1[slot..slot + 1],
            s1_all: &mut self.s1_all[slot * k..slot * k + k],
        };
        if view.round() % 2 == 1 {
            slice.first_sample_round(0, view, rng)
        } else {
            slice.second_sample_round(0, view, rng)
        }
    }
}

/// A disjoint mutable chunk of an [`AntBank`].
#[derive(Debug)]
pub struct AntSliceMut<'a> {
    pause: Bernoulli,
    leave: Bernoulli,
    num_tasks: usize,
    current: &'a mut [u32],
    assignment: &'a mut [u32],
    s1_current: &'a mut [u8],
    have_s1: &'a mut [u8],
    s1_all: &'a mut [u8],
}

impl<'a> AntSliceMut<'a> {
    /// Number of ants in the chunk.
    pub fn len(&self) -> usize {
        self.current.len()
    }

    /// True iff the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.current.is_empty()
    }

    /// Splits the chunk at `mid` into two disjoint chunks.
    pub fn split_at_mut(self, mid: usize) -> (AntSliceMut<'a>, AntSliceMut<'a>) {
        let k = self.num_tasks;
        let (c1, c2) = self.current.split_at_mut(mid);
        let (a1, a2) = self.assignment.split_at_mut(mid);
        let (s1, s2) = self.s1_current.split_at_mut(mid);
        let (h1, h2) = self.have_s1.split_at_mut(mid);
        let (r1, r2) = self.s1_all.split_at_mut(mid * k);
        (
            AntSliceMut {
                pause: self.pause,
                leave: self.leave,
                num_tasks: k,
                current: c1,
                assignment: a1,
                s1_current: s1,
                have_s1: h1,
                s1_all: r1,
            },
            AntSliceMut {
                pause: self.pause,
                leave: self.leave,
                num_tasks: k,
                current: c2,
                assignment: a2,
                s1_current: s2,
                have_s1: h2,
                s1_all: r2,
            },
        )
    }

    /// Steps every ant in the chunk. Bit-identical to per-ant
    /// [`crate::Controller::step`] on [`AlgorithmAnt`]: same samples,
    /// same coins, same short-circuits, per ant in slot order.
    pub fn step_batch(&mut self, view: RoundView<'_>, rngs: &mut [AntRng], out: &mut [Assignment]) {
        let n = self.len();
        assert_eq!(n, rngs.len(), "one RNG stream per ant");
        assert_eq!(n, out.len(), "one decision slot per ant");
        if view.round() % 2 == 1 {
            for i in 0..n {
                out[i] = self.first_sample_round(i, view, &mut rngs[i]);
            }
        } else {
            for i in 0..n {
                out[i] = self.second_sample_round(i, view, &mut rngs[i]);
            }
        }
    }

    /// Fused-apply variant of [`AntSliceMut::step_batch`]: steps every
    /// ant (same draws, same order) and routes each transition through
    /// `writer` — storing the next assignment into the shared column at
    /// the ant's colony id (`ids[i]`) and folding the switch/load/idle
    /// change into the writer's local delta. The previous assignment is
    /// read from the bank's own column (banks mirror the colony), so
    /// the kernel never touches `ColonyState`.
    ///
    /// Takes the round as a [`SensedRound`]: when every ant senses the
    /// shared table (well-mixed) this dispatches to the same loops as
    /// before; otherwise each ant steps against its own sensed view
    /// (`sensed.view_for(ids[i])`), with the per-ant draw order
    /// unchanged either way.
    pub fn step_batch_fused(
        &mut self,
        sensed: SensedRound<'_>,
        rngs: &mut [AntRng],
        ids: &[u32],
        writer: &mut ColumnWriter<'_>,
    ) {
        let n = self.len();
        assert_eq!(n, rngs.len(), "one RNG stream per ant");
        assert_eq!(n, ids.len(), "one colony id per ant");
        let first = sensed.round() % 2 == 1;
        match sensed.shared_view() {
            Some(view) => {
                if first {
                    for i in 0..n {
                        self.first_sample_round(i, view, &mut rngs[i]);
                        writer.write(ids[i], self.assignment[i]);
                    }
                } else {
                    for i in 0..n {
                        self.second_sample_round(i, view, &mut rngs[i]);
                        writer.write(ids[i], self.assignment[i]);
                    }
                }
            }
            None => {
                if first {
                    for i in 0..n {
                        self.first_sample_round(i, sensed.view_for(ids[i]), &mut rngs[i]);
                        writer.write(ids[i], self.assignment[i]);
                    }
                } else {
                    for i in 0..n {
                        self.second_sample_round(i, sensed.view_for(ids[i]), &mut rngs[i]);
                        writer.write(ids[i], self.assignment[i]);
                    }
                }
            }
        }
    }

    /// Odd rounds: adopt `a_{t−1}`, take the first sample, maybe pause.
    #[inline(always)]
    fn first_sample_round(
        &mut self,
        i: usize,
        view: RoundView<'_>,
        rng: &mut AntRng,
    ) -> Assignment {
        let k = self.num_tasks;
        let cur = self.assignment[i];
        self.current[i] = cur;
        if cur != IDLE {
            self.s1_current[i] = u8::from(view.sample(crate::cast::task_ix(cur), rng).is_lack());
            self.have_s1[i] = 1;
            if self.pause.sample(rng) {
                self.assignment[i] = IDLE;
            }
        } else {
            // Batched full-vector sample straight into the ant's row.
            view.fill_lack(rng, &mut self.s1_all[i * k..i * k + k]);
            self.have_s1[i] = 1;
        }
        dec(self.assignment[i])
    }

    /// Even rounds: second sample, then the leave/join decision.
    #[inline(always)]
    fn second_sample_round(
        &mut self,
        i: usize,
        view: RoundView<'_>,
        rng: &mut AntRng,
    ) -> Assignment {
        let k = self.num_tasks;
        let cur = self.current[i];
        if cur != IDLE {
            let s2_lack = view.sample(crate::cast::task_ix(cur), rng).is_lack();
            let both_overload = self.have_s1[i] == 1 && self.s1_current[i] == 0 && !s2_lack;
            self.assignment[i] = if both_overload && self.leave.sample(rng) {
                IDLE
            } else {
                cur
            };
        } else {
            let row = &self.s1_all[i * k..i * k + k];
            self.assignment[i] = if k <= 64 {
                // Bit-packed join: batch-sample all tasks (every draw
                // must happen), AND the two sample vectors, pick
                // uniformly.
                let mut s2 = [0u8; 64];
                view.fill_lack(rng, &mut s2[..k]);
                let mut joinable = 0u64;
                for (j, &s1) in row.iter().enumerate() {
                    joinable |= u64::from(s2[j] == 1 && s1 == 1) << j;
                }
                if self.have_s1[i] == 0 {
                    joinable = 0;
                }
                match joinable.count_ones() as usize {
                    0 => IDLE,
                    count => nth_set_bit(joinable, uniform_index(rng, count)),
                }
            } else {
                let mut s2 = vec![0u8; k];
                view.fill_lack(rng, &mut s2);
                let joinable = |j: usize| row[j] == 1 && s2[j] == 1;
                let count = if self.have_s1[i] == 1 {
                    (0..k).filter(|&j| joinable(j)).count()
                } else {
                    0
                };
                match count {
                    0 => IDLE,
                    count => {
                        let pick = uniform_index(rng, count);
                        let j = (0..k)
                            .filter(|&j| joinable(j))
                            .nth(pick)
                            // audit:allow(panic-path): pick was drawn as uniform_index(count) over this very filter.
                            .expect("pick < count");
                        crate::cast::task_col(j)
                    }
                }
            };
        }
        self.have_s1[i] = 0;
        dec(self.assignment[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::Controller;
    use antalloc_noise::{FeedbackProbe, NoiseModel};
    use antalloc_rng::StreamSeeder;

    #[test]
    fn soa_bank_matches_per_ant_stepping() {
        let n = 200;
        let k = 3;
        let params = AntParams::new(1.0 / 16.0);
        let seeder = StreamSeeder::new(9);
        let mut bank = AntBank::new(k, params, n);
        let mut reference: Vec<AlgorithmAnt> =
            (0..n).map(|_| AlgorithmAnt::new(k, params)).collect();
        let mut bank_rngs: Vec<AntRng> = (0..n).map(|i| seeder.ant(i)).collect();
        let mut ref_rngs: Vec<AntRng> = (0..n).map(|i| seeder.ant(i)).collect();
        let model = NoiseModel::Sigmoid { lambda: 1.0 };
        let mut out = vec![Assignment::Idle; n];
        for round in 1..=40u64 {
            let prepared = model.prepare(round, &[4, 0, -4], &[20, 20, 20]);
            bank.as_slice_mut()
                .step_batch(prepared.view(), &mut bank_rngs, &mut out);
            for (i, ant) in reference.iter_mut().enumerate() {
                let mut probe = FeedbackProbe::new(&prepared, &mut ref_rngs[i]);
                assert_eq!(ant.step(&mut probe), out[i], "ant {i} round {round}");
                assert_eq!(ant.assignment(), bank.assignment(i), "ant {i}");
            }
        }
        // Conversion out matches the reference controllers' behaviour on
        // the next round too (persistent state is lossless).
        let prepared = model.prepare(41, &[4, 0, -4], &[20, 20, 20]);
        for i in 0..n {
            let mut rebuilt = bank.to_controller(i);
            let mut rng_a = bank_rngs[i].clone();
            let mut probe = FeedbackProbe::new(&prepared, &mut rng_a);
            let a = rebuilt.step(&mut probe);
            let mut probe = FeedbackProbe::new(&prepared, &mut ref_rngs[i]);
            let b = reference[i].step(&mut probe);
            assert_eq!(a, b, "rebuilt ant {i} diverges");
        }
    }

    #[test]
    fn swap_remove_moves_last_row() {
        let mut bank = AntBank::new(2, AntParams::default(), 3);
        bank.reset_slot(0, Assignment::Task(0));
        bank.reset_slot(1, Assignment::Task(1));
        bank.reset_slot(2, Assignment::Idle);
        bank.swap_remove(0);
        assert_eq!(bank.len(), 2);
        assert_eq!(bank.assignment(0), Assignment::Idle); // old slot 2
        assert_eq!(bank.assignment(1), Assignment::Task(1));
    }

    #[test]
    fn push_and_reconstruct_roundtrip() {
        let params = AntParams::default();
        let mut bank = AntBank::new(2, params, 0);
        let mut ant = AlgorithmAnt::new(2, params);
        ant.reset_to(Assignment::Task(1));
        bank.push_controller(&ant);
        assert_eq!(bank.len(), 1);
        assert_eq!(bank.assignment(0), Assignment::Task(1));
        let back = bank.to_controller(0);
        assert_eq!(back.assignment(), Assignment::Task(1));
    }
}
