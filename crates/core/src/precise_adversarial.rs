//! Appendix C Algorithm Precise Adversarial.
//!
//! Each phase has a *ramp* sub-phase of `r_1 = ⌈32/ε⌉` rounds and a
//! *frozen* sub-phase of `r_2 = 4·r_1` rounds. During the ramp, working
//! ants pause with probability `εγ/32` per round (and stay paused), so
//! the load decays in fine `εγ/32`-sized steps; each ant remembers what
//! it was doing at `r_min`, the first ramp round whose feedback said
//! `lack` — the moment the load crossed the demand. Through the frozen
//! sub-phase the ant replays exactly that state, parking the deficit
//! within `O(εγd)` of zero for 4× longer than the ramp took, which
//! amortizes the regret to `(1+ε)γΣd` (Theorem 3.6). Join and permanent
//! leave require unanimous `lack`/`overload` over the *whole* phase.
//!
//! Faithfulness notes (see DESIGN.md): the pseudocode's ramp line reads
//! as if paused ants re-decide each round; we implement the
//! stay-paused reading — under re-deciding, the load dip would be a
//! stationary `εγ/32` instead of a ramp and `r_min` would be
//! meaningless. For `r_min = r_1` (no lack seen) the pseudocode's
//! `a_{t'+r_min−1}` is self-referential; we freeze the ant's pre-decision
//! state at `r_1`, which is what the regret argument uses.

use antalloc_env::Assignment;
use antalloc_noise::{FeedbackProbe, RoundView};
use antalloc_rng::{uniform_index, AntRng, Bernoulli};

use crate::controller::Controller;
use crate::params::PreciseAdversarialParams;

/// The mid-phase state of one Precise Adversarial ant: everything the
/// controller remembers besides its assignment. Carried by checkpoints
/// so a capture inside the `5·r_1 = O(1/ε)`-round phase resumes
/// bit-identically instead of idling out the partial phase (the same
/// contract as [`crate::SigmoidScratch`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdversarialScratch {
    /// `currentTask`: the task this phase observes (kept across ramp
    /// pauses), or idle.
    pub current_task: Assignment,
    /// Whether the running phase was observed from its start.
    pub have_phase: bool,
    /// Idle path: per task, whether every sample this phase said `lack`.
    pub all_lack: Vec<bool>,
    /// Working path: whether every sample this phase said `overload`.
    pub all_overload: bool,
    /// At the first ramp `lack`, was the ant still working? `None`
    /// until a lack is seen. Encoded as a tri-state by the checkpoint
    /// codec.
    pub working_at_first_lack: Option<bool>,
    /// Whether a first-lack classification is pending this round
    /// (always `false` between rounds — it is resolved within every
    /// step — but carried so the scratch is a pure state copy).
    pub pending_first_lack: bool,
    /// The frozen sub-phase-2 behaviour: work iff true.
    pub frozen_working: bool,
}

/// The Algorithm Precise Adversarial controller for one ant.
#[derive(Clone, Debug)]
pub struct PreciseAdversarial {
    params: PreciseAdversarialParams,
    r1: u64,
    phase_len: u64,
    ramp: Bernoulli,
    current_task: Assignment,
    assignment: Assignment,
    /// Idle path: per task, whether every sample this phase said `lack`.
    all_lack: Vec<bool>,
    /// Working path: whether every sample of the current task this phase
    /// said `overload`.
    all_overload: bool,
    /// Working path: at the first `lack` this phase, was the ant still
    /// working (not yet paused)? `None` until a lack is seen.
    working_at_first_lack: Option<bool>,
    /// Whether a lack is pending classification this round (sampled
    /// before the pause decision, resolved after it).
    pending_first_lack: bool,
    /// The frozen sub-phase-2 behaviour: work iff true.
    frozen_working: bool,
    /// Phase observed from its start (mid-phase reset guard).
    have_phase: bool,
}

impl PreciseAdversarial {
    /// A controller for a colony with `num_tasks` tasks.
    pub fn new(num_tasks: usize, params: PreciseAdversarialParams) -> Self {
        assert!(num_tasks >= 1, "at least one task");
        Self {
            params,
            r1: params.r1(),
            phase_len: params.phase_len(),
            ramp: Bernoulli::new(params.ramp_probability()),
            current_task: Assignment::Idle,
            assignment: Assignment::Idle,
            all_lack: vec![true; num_tasks],
            all_overload: true,
            working_at_first_lack: None,
            pending_first_lack: false,
            frozen_working: false,
            have_phase: false,
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &PreciseAdversarialParams {
        &self.params
    }

    /// Bank-loop entry point: steps a homogeneous slice of Precise
    /// Adversarial controllers against one shared [`RoundView`].
    /// Bit-identical to per-ant [`Controller::step`].
    pub fn step_bank(
        ants: &mut [Self],
        view: RoundView<'_>,
        rngs: &mut [AntRng],
        out: &mut [Assignment],
    ) {
        crate::controller::step_slice(ants, view, rngs, out)
    }

    /// Samples the feedback relevant to this ant and folds it into the
    /// unanimity trackers and the first-lack detector.
    fn sample_and_track(&mut self, probe: &mut FeedbackProbe<'_>, in_ramp: bool) {
        match self.current_task {
            Assignment::Task(j) => {
                let lack = probe.sample(j as usize).is_lack();
                if lack {
                    self.all_overload = false;
                    if in_ramp && self.working_at_first_lack.is_none() {
                        // Classified after this round's pause decision.
                        self.pending_first_lack = true;
                    }
                }
            }
            Assignment::Idle => {
                for j in 0..self.all_lack.len() {
                    let lack = probe.sample(j).is_lack();
                    self.all_lack[j] &= lack;
                }
            }
        }
    }

    fn resolve_pending_first_lack(&mut self) {
        if self.pending_first_lack {
            self.working_at_first_lack = Some(self.assignment == self.current_task);
            self.pending_first_lack = false;
        }
    }

    /// Copies the mid-phase state out for checkpoints that capture
    /// inside a phase. Lossless together with
    /// [`PreciseAdversarial::apply_scratch`]: these fields are the
    /// controller's *entire* state beyond its assignment.
    pub fn scratch(&self) -> AdversarialScratch {
        AdversarialScratch {
            current_task: self.current_task,
            have_phase: self.have_phase,
            all_lack: self.all_lack.clone(),
            all_overload: self.all_overload,
            working_at_first_lack: self.working_at_first_lack,
            pending_first_lack: self.pending_first_lack,
            frozen_working: self.frozen_working,
        }
    }

    /// Overwrites the mid-phase state (restore path; the assignment is
    /// restored separately via [`crate::Controller::reset_to`] *before*
    /// this).
    ///
    /// # Panics
    /// If the scratch's task count disagrees with this controller's.
    pub fn apply_scratch(&mut self, s: &AdversarialScratch) {
        assert_eq!(s.all_lack.len(), self.all_lack.len(), "task count mismatch");
        self.current_task = s.current_task;
        self.have_phase = s.have_phase;
        self.all_lack.copy_from_slice(&s.all_lack);
        self.all_overload = s.all_overload;
        self.working_at_first_lack = s.working_at_first_lack;
        self.pending_first_lack = s.pending_first_lack;
        self.frozen_working = s.frozen_working;
    }
}

impl Controller for PreciseAdversarial {
    fn step(&mut self, probe: &mut FeedbackProbe<'_>) -> Assignment {
        let r = probe.round() % self.phase_len;
        if r == 1 {
            // Phase start: adopt a_{t−1}, reset trackers.
            self.current_task = self.assignment;
            self.all_lack.fill(true);
            self.all_overload = true;
            self.working_at_first_lack = None;
            self.pending_first_lack = false;
            self.frozen_working = false;
            self.have_phase = true;
        }
        if !self.have_phase {
            return self.assignment;
        }

        let in_ramp = r >= 1 && r < self.r1;
        self.sample_and_track(probe, in_ramp);

        if (2..self.r1).contains(&r) {
            // Ramp: still-working ants pause w.p. εγ/32 and stay paused.
            if self.current_task != Assignment::Idle
                && self.assignment == self.current_task
                && self.ramp.sample(probe.rng())
            {
                self.assignment = Assignment::Idle;
            }
            self.resolve_pending_first_lack();
        } else if r == self.r1 {
            // Freeze the sub-phase-2 behaviour at r_min's state.
            self.resolve_pending_first_lack();
            if self.current_task != Assignment::Idle {
                let still_working = self.assignment == self.current_task;
                self.frozen_working = self.working_at_first_lack.unwrap_or(still_working);
                self.assignment = if self.frozen_working {
                    self.current_task
                } else {
                    Assignment::Idle
                };
            }
        } else if r == 1 {
            // Phase start round: sample only; no decision is taken.
            self.resolve_pending_first_lack();
        } else if r == 0 {
            // Phase end: unanimous-signal decisions.
            match self.current_task {
                Assignment::Idle => {
                    let count = self.all_lack.iter().filter(|&&x| x).count();
                    self.assignment = if count == 0 {
                        Assignment::Idle
                    } else {
                        let pick = uniform_index(probe.rng(), count);
                        let j = self
                            .all_lack
                            .iter()
                            .enumerate()
                            .filter(|(_, &x)| x)
                            .nth(pick)
                            .map(|(j, _)| j)
                            .expect("pick < count");
                        Assignment::Task(j as u32)
                    };
                }
                Assignment::Task(j) => {
                    self.assignment = if self.all_overload && self.ramp.sample(probe.rng()) {
                        Assignment::Idle
                    } else {
                        Assignment::Task(j)
                    };
                }
            }
            self.have_phase = false;
        } else {
            // Frozen sub-phase (r in (r1, phase_len−1]): replay r_min.
            if self.current_task != Assignment::Idle {
                self.assignment = if self.frozen_working {
                    self.current_task
                } else {
                    Assignment::Idle
                };
            }
            self.resolve_pending_first_lack();
        }
        self.assignment
    }

    #[inline]
    fn assignment(&self) -> Assignment {
        self.assignment
    }

    fn reset_to(&mut self, a: Assignment) {
        self.assignment = a;
        self.current_task = a;
        self.have_phase = false;
    }

    fn memory_bits(&self) -> u32 {
        // currentTask + one all-lack bit per task + all-overload,
        // first-lack (3 states ≈ 2 bits), frozen and phase-valid flags.
        let k = self.all_lack.len() as u32;
        crate::memory::bits_for_states(k as usize + 1) + k + 5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antalloc_noise::{Feedback, NoiseModel, PreparedRound};
    use antalloc_rng::Xoshiro256pp;

    use Feedback::{Lack as L, Overload as O};

    fn fixed_round(round: u64, signals: &[Feedback]) -> PreparedRound {
        let deficits: Vec<i64> = signals
            .iter()
            .map(|f| if f.is_lack() { 1 } else { -1 })
            .collect();
        let demands = vec![100u64; signals.len()];
        NoiseModel::Exact.prepare(round, &deficits, &demands)
    }

    /// ε = 0.5 → r1 = 64, phase = 320. Ramp prob forced to 0 or 1.
    fn controller(ramp_one: bool) -> PreciseAdversarial {
        let mut p = PreciseAdversarialParams::new(0.05, 0.5);
        if ramp_one {
            // εγ/32 = 1 ⟺ γ = 64/ε — out of the validated range, fine
            // for unit tests that need determinism.
            p.gamma = 32.0 / p.eps;
        } else {
            p.gamma = 0.0;
        }
        PreciseAdversarial::new(2, p)
    }

    fn run_rounds(
        ant: &mut PreciseAdversarial,
        rounds: impl Iterator<Item = u64>,
        signals_fn: impl Fn(u64) -> Vec<Feedback>,
        seed: u64,
    ) -> Assignment {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut last = ant.assignment();
        for t in rounds {
            let prep = fixed_round(t, &signals_fn(t));
            let mut probe = FeedbackProbe::new(&prep, &mut rng);
            last = ant.step(&mut probe);
        }
        last
    }

    #[test]
    fn geometry() {
        let ant = controller(false);
        assert_eq!(ant.r1, 64);
        assert_eq!(ant.phase_len, 320);
    }

    #[test]
    fn idle_joins_on_unanimous_lack() {
        let mut ant = controller(false);
        let a = run_rounds(&mut ant, 1..=320, |_| vec![L, O], 1);
        assert_eq!(a, Assignment::Task(0));
    }

    #[test]
    fn one_dissenting_round_blocks_join() {
        let mut ant = controller(false);
        let a = run_rounds(
            &mut ant,
            1..=320,
            |t| if t == 200 { vec![O, O] } else { vec![L, O] },
            2,
        );
        assert_eq!(a, Assignment::Idle);
    }

    #[test]
    fn worker_leaves_on_unanimous_overload_with_prob_one() {
        let mut ant = controller(true);
        ant.reset_to(Assignment::Task(0));
        let a = run_rounds(&mut ant, 1..=320, |_| vec![O, O], 3);
        assert_eq!(a, Assignment::Idle);
    }

    #[test]
    fn single_lack_prevents_leave() {
        let mut ant = controller(true);
        ant.reset_to(Assignment::Task(0));
        let a = run_rounds(
            &mut ant,
            1..=320,
            |t| if t == 100 { vec![L, L] } else { vec![O, O] },
            4,
        );
        assert_eq!(a, Assignment::Task(0));
    }

    #[test]
    fn ramp_pauses_are_sticky() {
        // Ramp probability 1: the ant pauses at r = 2 and must stay idle
        // through the rest of the ramp.
        let mut ant = controller(true);
        ant.reset_to(Assignment::Task(0));
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut assignments = Vec::new();
        for t in 1..=63u64 {
            let prep = fixed_round(t, &[O, O]);
            let mut probe = FeedbackProbe::new(&prep, &mut rng);
            assignments.push(ant.step(&mut probe));
        }
        assert_eq!(assignments[0], Assignment::Task(0), "r=1 never pauses");
        for (i, a) in assignments.iter().enumerate().skip(1) {
            assert_eq!(*a, Assignment::Idle, "round {}", i + 1);
        }
    }

    #[test]
    fn frozen_subphase_replays_state_at_first_lack() {
        // No pausing (ramp prob 0): the ant is working when the first
        // lack arrives at round 10 → works through the frozen sub-phase.
        let mut ant = controller(false);
        ant.reset_to(Assignment::Task(0));
        let a = run_rounds(
            &mut ant,
            1..=64,
            |t| if t >= 10 { vec![L, L] } else { vec![O, O] },
            6,
        );
        assert_eq!(a, Assignment::Task(0));
        // Frozen rounds keep working.
        let a = run_rounds(&mut ant, 65..=319, |_| vec![L, L], 7);
        assert_eq!(a, Assignment::Task(0));
    }

    #[test]
    fn frozen_subphase_idles_if_paused_before_first_lack() {
        // Ramp prob 1: pause at r=2; first lack at r=10 (while paused) →
        // frozen sub-phase must be idle.
        let mut ant = controller(true);
        ant.reset_to(Assignment::Task(0));
        let a = run_rounds(
            &mut ant,
            1..=64,
            |t| if t >= 10 { vec![L, L] } else { vec![O, O] },
            8,
        );
        assert_eq!(a, Assignment::Idle);
        let a = run_rounds(&mut ant, 65..=319, |_| vec![L, L], 9);
        assert_eq!(a, Assignment::Idle);
        // But the phase saw a lack, so no permanent leave at r = 0…
        let a = run_rounds(&mut ant, 320..=320, |_| vec![L, L], 10);
        assert_eq!(a, Assignment::Task(0), "resumes currentTask at phase end");
    }

    #[test]
    fn reset_mid_phase_is_conservative() {
        let mut ant = controller(true);
        ant.reset_to(Assignment::Task(1));
        // Land mid-phase (round 100 of 320): nothing should fire at 0.
        let a = run_rounds(&mut ant, 100..=320, |_| vec![O, O], 11);
        assert_eq!(a, Assignment::Task(1));
    }

    #[test]
    fn scratch_roundtrips_mid_phase_exactly() {
        // Capture mid-ramp (pauses and trackers in flight), copy the
        // scratch into a fresh controller, and check both continue
        // bit-identically to the end of the phase.
        let mut ant = controller(true);
        ant.reset_to(Assignment::Task(0));
        run_rounds(
            &mut ant,
            1..=37,
            |t| if t >= 10 { vec![L, O] } else { vec![O, O] },
            21,
        );
        let scratch = ant.scratch();
        let mut copy = controller(true);
        copy.reset_to(ant.assignment());
        copy.apply_scratch(&scratch);
        assert_eq!(copy.scratch(), scratch);
        let a = run_rounds(&mut ant, 38..=320, |_| vec![L, O], 22);
        let b = run_rounds(&mut copy, 38..=320, |_| vec![L, O], 22);
        assert_eq!(a, b);
        assert_eq!(ant.scratch(), copy.scratch());
    }

    #[test]
    fn memory_is_small_and_k_linear() {
        let small = controller(false).memory_bits();
        let big =
            PreciseAdversarial::new(64, PreciseAdversarialParams::new(0.05, 0.5)).memory_bits();
        assert!(small < big);
        assert!(big <= 64 + 16);
    }
}
