//! The controller abstraction and the static-dispatch enum.

use antalloc_env::{Assignment, ColumnWriter};
use antalloc_noise::{FeedbackProbe, RoundView, SensedRound};
use antalloc_rng::AntRng;

use crate::ant::AlgorithmAnt;
use crate::exact_greedy::ExactGreedy;
use crate::precise_adversarial::PreciseAdversarial;
use crate::precise_sigmoid::PreciseSigmoid;
use crate::proportional::ProportionalController;
use crate::table_fsm::TableFsm;
use crate::trivial::Trivial;

/// A per-ant task-allocation algorithm.
///
/// The engine drives one synchronous round as: freeze deficits → for each
/// ant build a [`FeedbackProbe`] → call [`Controller::step`] → apply the
/// returned assignment. Controllers see *only* the probe: the paper's
/// information model (no loads, no demands, no peers) is enforced by this
/// signature.
pub trait Controller {
    /// Observes this round's feedback and returns the assignment for the
    /// round (`a_t`). `probe.round()` carries the global clock `t` that
    /// the paper's synchronized phases rely on.
    fn step(&mut self, probe: &mut FeedbackProbe<'_>) -> Assignment;

    /// The assignment as of the last `step` (or reset).
    fn assignment(&self) -> Assignment;

    /// Forces the controller into `a`, clearing transient per-phase state.
    ///
    /// Used to realize arbitrary initial configurations (Theorem 3.1's
    /// premise) and the scramble perturbation: the environment moves the
    /// ant, the algorithm must recover.
    fn reset_to(&mut self, a: Assignment);

    /// The controller's persistent memory in bits, per Theorem 3.3's
    /// accounting (phase position excluded: the paper provides the global
    /// clock via synchronization).
    fn memory_bits(&self) -> u32;
}

/// Steps a homogeneous slice of controllers in one tight monomorphic
/// loop — the bank-stepping primitive behind [`crate::ControllerBank`].
///
/// Semantically identical to calling [`Controller::step`] per ant with a
/// fresh probe: ant `i` of the slice consumes exactly the draws it would
/// have consumed under per-ant stepping (each ant owns its RNG stream),
/// so bank-stepped colonies are bit-identical to per-ant-stepped ones.
/// The win is dispatch: the controller type is fixed for the whole
/// slice, so `step` inlines and the per-ant enum branch disappears.
pub fn step_slice<C: Controller>(
    ants: &mut [C],
    view: RoundView<'_>,
    rngs: &mut [AntRng],
    out: &mut [Assignment],
) {
    assert_eq!(ants.len(), rngs.len(), "one RNG stream per ant");
    assert_eq!(ants.len(), out.len(), "one decision slot per ant");
    for ((ant, rng), slot) in ants.iter_mut().zip(rngs.iter_mut()).zip(out.iter_mut()) {
        let mut probe = FeedbackProbe::from_view(view, rng);
        *slot = ant.step(&mut probe);
    }
}

/// Fused-apply variant of [`step_slice`]: same draws, same order, with
/// each ant's decision routed through `writer` — storing the next
/// assignment into the shared next-state column at the ant's colony id
/// (`ids[i]`) and folding the switch/load/idle change into the writer's
/// local delta against the authoritative previous column. The loop
/// never touches `ColonyState` itself.
///
/// Takes the round as a [`SensedRound`]: the well-mixed (shared) form
/// hoists one view out of the loop as before; the per-ant form builds
/// each ant's probe from its own sensed view.
pub fn step_slice_fused<C: Controller>(
    ants: &mut [C],
    sensed: SensedRound<'_>,
    rngs: &mut [AntRng],
    ids: &[u32],
    writer: &mut ColumnWriter<'_>,
) {
    assert_eq!(ants.len(), rngs.len(), "one RNG stream per ant");
    assert_eq!(ants.len(), ids.len(), "one colony id per ant");
    match sensed.shared_view() {
        Some(view) => {
            for ((ant, rng), &id) in ants.iter_mut().zip(rngs.iter_mut()).zip(ids.iter()) {
                let mut probe = FeedbackProbe::from_view(view, rng);
                let next = ant.step(&mut probe).to_raw();
                writer.write(id, next);
            }
        }
        None => {
            for ((ant, rng), &id) in ants.iter_mut().zip(rngs.iter_mut()).zip(ids.iter()) {
                let mut probe = FeedbackProbe::from_view(sensed.view_for(id), rng);
                let next = ant.step(&mut probe).to_raw();
                writer.write(id, next);
            }
        }
    }
}

/// Static-dispatch union of every shipped controller.
///
/// The simulator stores `Vec<AnyController>`; an enum keeps the hot loop
/// free of virtual calls and keeps controllers `Clone` for checkpointing.
#[derive(Clone, Debug)]
pub enum AnyController {
    /// §4 Algorithm Ant.
    Ant(AlgorithmAnt),
    /// §5 Algorithm Precise Sigmoid.
    PreciseSigmoid(PreciseSigmoid),
    /// Appendix C Algorithm Precise Adversarial.
    PreciseAdversarial(PreciseAdversarial),
    /// Appendix D trivial algorithm.
    Trivial(Trivial),
    /// Exact-feedback baseline (\[11\]-style).
    ExactGreedy(ExactGreedy),
    /// Proportional-control rival (gain/deadband; see
    /// [`ProportionalController`]).
    Proportional(ProportionalController),
    /// Explicit finite-state machine (Theorem 3.3 experiments).
    Table(TableFsm),
}

macro_rules! delegate {
    ($self:ident, $inner:ident => $body:expr) => {
        match $self {
            AnyController::Ant($inner) => $body,
            AnyController::PreciseSigmoid($inner) => $body,
            AnyController::PreciseAdversarial($inner) => $body,
            AnyController::Trivial($inner) => $body,
            AnyController::ExactGreedy($inner) => $body,
            AnyController::Proportional($inner) => $body,
            AnyController::Table($inner) => $body,
        }
    };
}

impl Controller for AnyController {
    #[inline]
    fn step(&mut self, probe: &mut FeedbackProbe<'_>) -> Assignment {
        delegate!(self, c => c.step(probe))
    }

    #[inline]
    fn assignment(&self) -> Assignment {
        delegate!(self, c => c.assignment())
    }

    fn reset_to(&mut self, a: Assignment) {
        delegate!(self, c => c.reset_to(a))
    }

    fn memory_bits(&self) -> u32 {
        delegate!(self, c => c.memory_bits())
    }
}

impl From<AlgorithmAnt> for AnyController {
    fn from(c: AlgorithmAnt) -> Self {
        AnyController::Ant(c)
    }
}
impl From<PreciseSigmoid> for AnyController {
    fn from(c: PreciseSigmoid) -> Self {
        AnyController::PreciseSigmoid(c)
    }
}
impl From<PreciseAdversarial> for AnyController {
    fn from(c: PreciseAdversarial) -> Self {
        AnyController::PreciseAdversarial(c)
    }
}
impl From<Trivial> for AnyController {
    fn from(c: Trivial) -> Self {
        AnyController::Trivial(c)
    }
}
impl From<ExactGreedy> for AnyController {
    fn from(c: ExactGreedy) -> Self {
        AnyController::ExactGreedy(c)
    }
}
impl From<ProportionalController> for AnyController {
    fn from(c: ProportionalController) -> Self {
        AnyController::Proportional(c)
    }
}
impl From<TableFsm> for AnyController {
    fn from(c: TableFsm) -> Self {
        AnyController::Table(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::AntParams;

    #[test]
    fn enum_delegates() {
        let mut c: AnyController = AlgorithmAnt::new(3, AntParams::default()).into();
        assert_eq!(c.assignment(), Assignment::Idle);
        c.reset_to(Assignment::Task(2));
        assert_eq!(c.assignment(), Assignment::Task(2));
        assert!(c.memory_bits() > 0);
    }
}
