//! §5 Algorithm Precise Sigmoid: median-amplified two-sample protocol.
//!
//! Identical in shape to Algorithm Ant, but each of the two "samples" is
//! the **median of m rounds** of feedback, with `m = ⌈2c_χ/ε + 1⌉`.
//! Median amplification (Theorem E.3) pushes the error probability of a
//! sample taken at deficit `≈ εγd/c_χ` back down to `n^{−8}`, so the
//! machinery of Theorem 3.1 applies at step size `γ' = εγ/c_χ` — and the
//! steady-state oscillation, hence the regret, shrinks by a factor `ε`
//! (Theorem 3.2), at the price of phases of length `2m = O(1/ε)` and
//! `O(log 1/ε)` extra memory for the counters.

use antalloc_env::Assignment;
use antalloc_noise::{FeedbackProbe, RoundView};
use antalloc_rng::{uniform_index, AntRng, Bernoulli};

use crate::controller::Controller;
use crate::params::PreciseSigmoidParams;

/// The mid-phase counter state of one Precise Sigmoid ant: everything
/// the controller remembers besides its assignment. Extracted for bank
/// transposition ([`crate::PreciseSigmoidBank`]) and carried by
/// checkpoints so a capture between phase boundaries (phases are
/// `2m = O(1/ε)` rounds long) resumes bit-identically instead of
/// idling out the partial phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SigmoidScratch {
    /// `currentTask`: the task this phase observes (kept across the
    /// half-phase pause), or idle.
    pub current_task: Assignment,
    /// Whether the running phase was observed from its start.
    pub have_phase: bool,
    /// Per-task `lack` counts of the first half-phase.
    pub count1: Vec<u16>,
    /// Per-task `lack` counts of the second half-phase.
    pub count2: Vec<u16>,
    /// First-half medians, frozen at `r = m`.
    pub shat1_lack: Vec<bool>,
}

/// The Algorithm Precise Sigmoid controller for one ant.
#[derive(Clone, Debug)]
pub struct PreciseSigmoid {
    params: PreciseSigmoidParams,
    m: u64,
    pause: Bernoulli,
    leave: Bernoulli,
    current_task: Assignment,
    assignment: Assignment,
    /// Per-task `lack` counts in the first half-phase (idle path uses all
    /// entries; the working path only its task's entry).
    count1: Vec<u16>,
    /// Per-task `lack` counts in the second half-phase.
    count2: Vec<u16>,
    /// First-half medians, frozen at `r = m` (`ŝ1`).
    shat1_lack: Vec<bool>,
    /// Whether this phase was observed from its start (stale-state guard
    /// after mid-phase resets).
    have_phase: bool,
}

impl PreciseSigmoid {
    /// A controller for a colony with `num_tasks` tasks.
    pub fn new(num_tasks: usize, params: PreciseSigmoidParams) -> Self {
        assert!(num_tasks >= 1, "at least one task");
        let m = params.m();
        assert!(m <= u64::from(u16::MAX), "m too large for u16 counters");
        Self {
            params,
            m,
            pause: Bernoulli::new(params.pause_probability()),
            leave: Bernoulli::new(params.leave_probability()),
            current_task: Assignment::Idle,
            assignment: Assignment::Idle,
            count1: vec![0; num_tasks],
            count2: vec![0; num_tasks],
            shat1_lack: vec![false; num_tasks],
            have_phase: false,
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &PreciseSigmoidParams {
        &self.params
    }

    /// Number of tasks this controller observes.
    pub fn num_tasks(&self) -> usize {
        self.count1.len()
    }

    /// Bank-loop entry point: steps a homogeneous slice of Precise
    /// Sigmoid controllers against one shared [`RoundView`].
    /// Bit-identical to per-ant [`Controller::step`]. Colonies use the
    /// structure-of-arrays layout instead — see
    /// [`crate::PreciseSigmoidBank`]; this per-ant loop remains as the
    /// reference semantics.
    pub fn step_bank(
        ants: &mut [Self],
        view: RoundView<'_>,
        rngs: &mut [AntRng],
        out: &mut [Assignment],
    ) {
        crate::controller::step_slice(ants, view, rngs, out)
    }

    /// Copies the mid-phase counter state out — for transposition into
    /// [`crate::PreciseSigmoidBank`] and for checkpoints that capture
    /// between phase boundaries. Lossless together with
    /// [`PreciseSigmoid::apply_scratch`]: the counters and the frozen
    /// medians are the controller's *entire* state beyond its
    /// assignment.
    pub fn scratch(&self) -> SigmoidScratch {
        SigmoidScratch {
            current_task: self.current_task,
            have_phase: self.have_phase,
            count1: self.count1.clone(),
            count2: self.count2.clone(),
            shat1_lack: self.shat1_lack.clone(),
        }
    }

    /// Overwrites the mid-phase counter state (restore path; the
    /// assignment is restored separately via
    /// [`crate::Controller::reset_to`] *before* this).
    ///
    /// # Panics
    /// If the scratch's task count disagrees with this controller's.
    pub fn apply_scratch(&mut self, s: &SigmoidScratch) {
        assert_eq!(s.count1.len(), self.count1.len(), "task count mismatch");
        assert_eq!(s.count2.len(), self.count2.len(), "task count mismatch");
        assert_eq!(
            s.shat1_lack.len(),
            self.shat1_lack.len(),
            "task count mismatch"
        );
        self.current_task = s.current_task;
        self.have_phase = s.have_phase;
        self.count1.copy_from_slice(&s.count1);
        self.count2.copy_from_slice(&s.count2);
        self.shat1_lack.copy_from_slice(&s.shat1_lack);
    }

    /// Median threshold: a batch of `m` samples is `lack` iff strictly
    /// more than `m/2` were (tie-free because `m` is odd).
    #[inline]
    fn median_is_lack(&self, count: u16) -> bool {
        u64::from(count) * 2 > self.m
    }

    fn sample_into(&mut self, probe: &mut FeedbackProbe<'_>, second_half: bool) {
        match self.current_task {
            Assignment::Task(j) => {
                let j = j as usize;
                let lack = probe.sample(j).is_lack();
                let counts = if second_half {
                    &mut self.count2
                } else {
                    &mut self.count1
                };
                counts[j] += u16::from(lack);
            }
            Assignment::Idle => {
                for j in 0..self.count1.len() {
                    let lack = probe.sample(j).is_lack();
                    let counts = if second_half {
                        &mut self.count2
                    } else {
                        &mut self.count1
                    };
                    counts[j] += u16::from(lack);
                }
            }
        }
    }
}

impl Controller for PreciseSigmoid {
    fn step(&mut self, probe: &mut FeedbackProbe<'_>) -> Assignment {
        let r = probe.round() % (2 * self.m);
        if r == 1 {
            // Phase start: adopt a_{t−1} as currentTask, reset counters.
            self.current_task = self.assignment;
            self.count1.fill(0);
            self.count2.fill(0);
            self.have_phase = true;
        }
        if !self.have_phase {
            // Joined mid-phase (reset); idle out the remainder.
            return self.assignment;
        }
        let first_half = (1..=self.m).contains(&r);
        self.sample_into(probe, !first_half);

        if r == self.m {
            // Freeze ŝ1 and take the temporary pause.
            for j in 0..self.count1.len() {
                self.shat1_lack[j] = self.median_is_lack(self.count1[j]);
            }
            if let Assignment::Task(j) = self.current_task {
                self.assignment = if self.pause.sample(probe.rng()) {
                    Assignment::Idle
                } else {
                    Assignment::Task(j)
                };
            }
        } else if r == 0 {
            // Phase end: compute ŝ2 and decide, exactly as Algorithm Ant.
            match self.current_task {
                Assignment::Idle => {
                    let joinable = |this: &Self, j: usize| {
                        this.shat1_lack[j] && this.median_is_lack(this.count2[j])
                    };
                    let count = (0..self.count1.len())
                        .filter(|&j| joinable(self, j))
                        .count();
                    self.assignment = if count == 0 {
                        Assignment::Idle
                    } else {
                        let pick = uniform_index(probe.rng(), count);
                        let j = (0..self.count1.len())
                            .filter(|&j| joinable(self, j))
                            .nth(pick)
                            .expect("pick < count");
                        Assignment::Task(j as u32)
                    };
                }
                Assignment::Task(j) => {
                    let ju = j as usize;
                    let both_overload =
                        !self.shat1_lack[ju] && !self.median_is_lack(self.count2[ju]);
                    self.assignment = if both_overload && self.leave.sample(probe.rng()) {
                        Assignment::Idle
                    } else {
                        Assignment::Task(j)
                    };
                }
            }
            self.have_phase = false;
        }
        // All other rounds: keep the current assignment (a_t ← a_{t−1}).
        self.assignment
    }

    #[inline]
    fn assignment(&self) -> Assignment {
        self.assignment
    }

    fn reset_to(&mut self, a: Assignment) {
        self.assignment = a;
        self.current_task = a;
        self.have_phase = false;
    }

    fn memory_bits(&self) -> u32 {
        // The shared accounting (see `memory::sigmoid_memory_bits`):
        // the bank layout reports through the same function, so the two
        // figures cannot drift apart.
        crate::memory::sigmoid_memory_bits(self.count1.len(), self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antalloc_noise::{Feedback, NoiseModel, PreparedRound};
    use antalloc_rng::Xoshiro256pp;

    use Feedback::{Lack as L, Overload as O};

    fn fixed_round(round: u64, signals: &[Feedback]) -> PreparedRound {
        let deficits: Vec<i64> = signals
            .iter()
            .map(|f| if f.is_lack() { 1 } else { -1 })
            .collect();
        let demands = vec![100u64; signals.len()];
        NoiseModel::Exact.prepare(round, &deficits, &demands)
    }

    fn det_params(eps: f64, pause: bool, leave: bool) -> PreciseSigmoidParams {
        let mut p = PreciseSigmoidParams::new(0.05, eps);
        // Make the probabilistic branches deterministic:
        // pause prob = c_s·εγ/c_χ = 1 requires c_s = c_χ/(εγ).
        p.cs = if pause {
            p.c_chi / (eps * p.gamma)
        } else {
            0.0
        };
        // leave prob = εγ/(c_χ·c_d) = 1 requires c_d = εγ/c_χ.
        p.cd = if leave { eps * p.gamma / p.c_chi } else { 1e18 };
        p
    }

    fn run_phase(
        ant: &mut PreciseSigmoid,
        start: u64,
        signals_fn: impl Fn(u64) -> Vec<Feedback>,
    ) -> Assignment {
        let mut rng = Xoshiro256pp::seed_from_u64(start ^ 0xABCD);
        let phase = ant.m * 2;
        let mut last = ant.assignment();
        for t in start..start + phase {
            let prep = fixed_round(t, &signals_fn(t));
            let mut probe = FeedbackProbe::new(&prep, &mut rng);
            last = ant.step(&mut probe);
        }
        last
    }

    #[test]
    fn geometry_small_eps() {
        let p = PreciseSigmoidParams::new(0.05, 0.5);
        let ant = PreciseSigmoid::new(2, p);
        assert_eq!(ant.m, 41);
    }

    #[test]
    fn idle_joins_when_both_medians_lack() {
        let mut ant = PreciseSigmoid::new(2, det_params(0.5, false, false));
        // Task 0 always lack, task 1 always overload.
        let a = run_phase(&mut ant, 1, |_| vec![L, O]);
        assert_eq!(a, Assignment::Task(0));
    }

    #[test]
    fn median_tolerates_minority_noise() {
        // Task 0: lack in all but m/4 of the rounds → median lack → join.
        let mut ant = PreciseSigmoid::new(1, det_params(0.5, false, false));
        let m = ant.m;
        let a = run_phase(&mut ant, 1, |t| {
            let r = t % (2 * m);
            // A quarter of each half-phase disagrees.
            if r.is_multiple_of(4) {
                vec![O]
            } else {
                vec![L]
            }
        });
        assert_eq!(a, Assignment::Task(0));
    }

    #[test]
    fn worker_leaves_when_both_medians_overload() {
        let mut ant = PreciseSigmoid::new(1, det_params(0.5, false, true));
        ant.reset_to(Assignment::Task(0));
        let a = run_phase(&mut ant, 1, |_| vec![O]);
        assert_eq!(a, Assignment::Idle);
    }

    #[test]
    fn worker_stays_on_split_medians() {
        // First half lack, second half overload → stay.
        let mut ant = PreciseSigmoid::new(1, det_params(0.5, false, true));
        ant.reset_to(Assignment::Task(0));
        let m = ant.m;
        let a = run_phase(&mut ant, 1, |t| {
            let r = t % (2 * m);
            if (1..=m).contains(&r) {
                vec![L]
            } else {
                vec![O]
            }
        });
        assert_eq!(a, Assignment::Task(0));
    }

    #[test]
    fn pause_happens_at_half_phase_and_is_temporary() {
        let mut ant = PreciseSigmoid::new(1, det_params(0.5, true, false));
        ant.reset_to(Assignment::Task(0));
        let m = ant.m;
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut paused_at_half = false;
        for t in 1..=(2 * m) {
            let prep = fixed_round(t, &[L]);
            let mut probe = FeedbackProbe::new(&prep, &mut rng);
            let a = ant.step(&mut probe);
            let r = t % (2 * m);
            if r == m {
                paused_at_half = a.is_idle();
            } else if (1..m).contains(&r) {
                assert_eq!(a, Assignment::Task(0), "must keep working in first half");
            }
        }
        assert!(paused_at_half, "pause probability 1 must pause at r = m");
        // Mixed medians (L first half … here all lack) → resume at r = 0.
        assert_eq!(ant.assignment(), Assignment::Task(0));
    }

    #[test]
    fn reset_mid_phase_waits_for_next_phase() {
        let mut ant = PreciseSigmoid::new(1, det_params(0.5, false, true));
        ant.reset_to(Assignment::Task(0));
        let m = ant.m;
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        // Start stepping from the middle of a phase: no decision should
        // fire at the next r = 0 because the phase was partial.
        for t in (m + 2)..=(2 * m) {
            let prep = fixed_round(t, &[O]);
            let mut probe = FeedbackProbe::new(&prep, &mut rng);
            ant.step(&mut probe);
        }
        assert_eq!(ant.assignment(), Assignment::Task(0));
        // The next full phase of overloads does trigger the leave.
        let a = run_phase(&mut ant, 2 * m + 1, |_| vec![O]);
        assert_eq!(a, Assignment::Idle);
    }

    #[test]
    fn memory_grows_logarithmically_in_one_over_eps() {
        let coarse = PreciseSigmoid::new(1, PreciseSigmoidParams::new(0.05, 0.5));
        let fine = PreciseSigmoid::new(1, PreciseSigmoidParams::new(0.05, 0.005));
        let ratio = f64::from(fine.memory_bits()) / f64::from(coarse.memory_bits());
        // 100× finer ε costs well under 10× the memory.
        assert!(ratio < 3.0, "ratio {ratio}");
    }
}
