//! §4 Algorithm Ant: the constant-memory two-sample protocol.
//!
//! Time is divided into phases of two rounds. In the first (odd) round
//! every ant takes a sample of the feedback and working ants *pause*
//! with probability `c_s·γ`, thinning the load; in the second (even)
//! round the ants sample again — now observing the thinned load — and:
//!
//! * a working ant whose two samples both said `overload` leaves
//!   permanently with probability `γ/c_d`, otherwise resumes;
//! * an idle ant joins a task chosen uniformly among those whose two
//!   samples both said `lack` (if any).
//!
//! Because the samples are spaced `≈ c_s·γ·W` apart, at least one of
//! them lies outside the grey zone w.h.p., so the load only ever moves
//! in the right direction; once inside the stable zone
//! `[d(1+γ), d(1+(0.9c_s−1)γ)]` neither rule fires and the allocation
//! parks there (Theorem 3.1).

use antalloc_env::Assignment;
use antalloc_noise::{Feedback, FeedbackProbe, RoundView};
use antalloc_rng::{uniform_index, AntRng, Bernoulli};

use crate::controller::Controller;
use crate::params::AntParams;

/// The Algorithm Ant controller for one ant.
#[derive(Clone, Debug)]
pub struct AlgorithmAnt {
    params: AntParams,
    /// Phase offset in rounds (0 in the paper's fully-synchronized
    /// model). §6 poses "less synchronization" as an open problem; a
    /// non-zero offset desynchronizes this ant's two-sample phase from
    /// the colony's, and `exp_open_desync` measures what that costs.
    phase_offset: u64,
    pause: Bernoulli,
    leave: Bernoulli,
    /// `currentTask` of the pseudocode: the task this phase is about
    /// (kept across the temporary pause), or `Idle`.
    current_task: Assignment,
    /// `a_t`: the output assignment of the last round.
    assignment: Assignment,
    /// First samples for all tasks (idle path); valid iff `have_s1`.
    s1_all: Vec<Feedback>,
    /// Scratch for the second samples (idle path).
    s2_all: Vec<Feedback>,
    /// First sample for the current task (working path).
    s1_current: Feedback,
    /// Whether a first sample was taken this phase (stale-state guard
    /// after resets that land mid-phase).
    have_s1: bool,
}

impl AlgorithmAnt {
    /// A controller for a colony with `num_tasks` tasks.
    pub fn new(num_tasks: usize, params: AntParams) -> Self {
        assert!(num_tasks >= 1, "at least one task");
        Self {
            params,
            phase_offset: 0,
            pause: Bernoulli::new(params.pause_probability()),
            leave: Bernoulli::new(params.leave_probability()),
            current_task: Assignment::Idle,
            assignment: Assignment::Idle,
            s1_all: vec![Feedback::Overload; num_tasks],
            s2_all: vec![Feedback::Overload; num_tasks],
            s1_current: Feedback::Overload,
            have_s1: false,
        }
    }

    /// A controller whose phase clock runs `offset` rounds behind the
    /// colony's — the "less synchronization" variant of §6's open
    /// problem. With `offset = 1` this ant takes its first sample while
    /// synchronized ants take their second.
    pub fn with_phase_offset(num_tasks: usize, params: AntParams, offset: u64) -> Self {
        let mut ant = Self::new(num_tasks, params);
        ant.phase_offset = offset;
        ant
    }

    /// The parameters in use.
    pub fn params(&self) -> &AntParams {
        &self.params
    }

    /// This ant's phase offset (0 = fully synchronized).
    pub fn phase_offset(&self) -> u64 {
        self.phase_offset
    }

    /// Number of tasks this controller observes.
    pub fn num_tasks(&self) -> usize {
        self.s1_all.len()
    }

    /// Bank-loop entry point: steps a homogeneous slice of Algorithm Ant
    /// controllers against one shared [`RoundView`].
    ///
    /// Bit-identical to per-ant [`Controller::step`] (the reference
    /// semantics); phase offsets are honoured per ant, so desynchronized
    /// banks work too. Offset-0 colonies get the structure-of-arrays
    /// fast path instead — see [`crate::AntBank`].
    pub fn step_bank(
        ants: &mut [Self],
        view: RoundView<'_>,
        rngs: &mut [AntRng],
        out: &mut [Assignment],
    ) {
        crate::controller::step_slice(ants, view, rngs, out)
    }

    /// Copies the persistent per-ant state out, for transposition into
    /// the structure-of-arrays bank. Lossless together with
    /// [`AlgorithmAnt::from_bank_state`]: only `s2_all` is omitted, and
    /// that is pure within-round scratch (fully overwritten before any
    /// read in `step_second_sample`).
    pub(crate) fn bank_state(&self) -> AntBankState {
        AntBankState {
            current_task: self.current_task,
            assignment: self.assignment,
            s1_lack: self.s1_all.iter().map(|f| f.is_lack()).collect(),
            s1_current_lack: self.s1_current.is_lack(),
            have_s1: self.have_s1,
        }
    }

    /// Rebuilds a phase-offset-0 controller from transposed bank state.
    pub(crate) fn from_bank_state(num_tasks: usize, params: AntParams, s: AntBankState) -> Self {
        let mut ant = Self::new(num_tasks, params);
        ant.current_task = s.current_task;
        ant.assignment = s.assignment;
        for (slot, lack) in ant.s1_all.iter_mut().zip(&s.s1_lack) {
            *slot = if *lack {
                Feedback::Lack
            } else {
                Feedback::Overload
            };
        }
        ant.s1_current = if s.s1_current_lack {
            Feedback::Lack
        } else {
            Feedback::Overload
        };
        ant.have_s1 = s.have_s1;
        ant
    }

    fn step_first_sample(&mut self, probe: &mut FeedbackProbe<'_>) -> Assignment {
        // Line 4: currentTask ← a_{t−1}.
        self.current_task = self.assignment;
        match self.current_task {
            Assignment::Task(j) => {
                // Working ants only consult their own task's signal; the
                // paper notes (Remark 3.4) that full-vector feedback is
                // not required.
                self.s1_current = probe.sample(j as usize);
                self.have_s1 = true;
                // Line 6: temporary pause w.p. c_s·γ.
                if self.pause.sample(probe.rng()) {
                    self.assignment = Assignment::Idle;
                } else {
                    self.assignment = Assignment::Task(j);
                }
            }
            Assignment::Idle => {
                for j in 0..self.s1_all.len() {
                    self.s1_all[j] = probe.sample(j);
                }
                self.have_s1 = true;
                self.assignment = Assignment::Idle;
            }
        }
        self.assignment
    }

    fn step_second_sample(&mut self, probe: &mut FeedbackProbe<'_>) -> Assignment {
        match self.current_task {
            Assignment::Idle => {
                // Lines 9–11: join a uniformly random doubly-lacking task.
                for j in 0..self.s2_all.len() {
                    self.s2_all[j] = probe.sample(j);
                }
                let joinable = |j: usize| self.s1_all[j].is_lack() && self.s2_all[j].is_lack();
                let count = if self.have_s1 {
                    (0..self.s1_all.len()).filter(|&j| joinable(j)).count()
                } else {
                    0
                };
                self.assignment = if count == 0 {
                    Assignment::Idle
                } else {
                    let pick = uniform_index(probe.rng(), count);
                    let j = (0..self.s1_all.len())
                        .filter(|&j| joinable(j))
                        .nth(pick)
                        .expect("pick < count");
                    Assignment::Task(j as u32)
                };
            }
            Assignment::Task(j) => {
                // Lines 12–13: leave permanently w.p. γ/c_d iff both
                // samples said overload; otherwise resume.
                let s2 = probe.sample(j as usize);
                let both_overload = self.have_s1 && !self.s1_current.is_lack() && !s2.is_lack();
                self.assignment = if both_overload && self.leave.sample(probe.rng()) {
                    Assignment::Idle
                } else {
                    Assignment::Task(j)
                };
            }
        }
        self.have_s1 = false;
        self.assignment
    }
}

/// Persistent per-ant state in transposable form (see
/// [`AlgorithmAnt::bank_state`]).
pub(crate) struct AntBankState {
    pub current_task: Assignment,
    pub assignment: Assignment,
    pub s1_lack: Vec<bool>,
    pub s1_current_lack: bool,
    pub have_s1: bool,
}

impl Controller for AlgorithmAnt {
    fn step(&mut self, probe: &mut FeedbackProbe<'_>) -> Assignment {
        // The paper's clock starts at t = 1 with the first sample taken
        // at odd t; the engine guarantees rounds are 1-based.
        if (probe.round() + self.phase_offset) % 2 == 1 {
            self.step_first_sample(probe)
        } else {
            self.step_second_sample(probe)
        }
    }

    #[inline]
    fn assignment(&self) -> Assignment {
        self.assignment
    }

    fn reset_to(&mut self, a: Assignment) {
        self.assignment = a;
        self.current_task = a;
        self.have_s1 = false;
    }

    fn memory_bits(&self) -> u32 {
        // currentTask ∈ {idle, 1..k} plus one sample bit per task plus
        // the first-sample-valid flag. The phase position is global
        // (footnote 2 of the paper: one extra bit via synchronization).
        let k = self.s1_all.len() as u32;
        crate::memory::bits_for_states(k as usize + 1) + k + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antalloc_noise::{GreyZonePolicy, NoiseModel, PreparedRound};
    use antalloc_rng::Xoshiro256pp;

    /// A prepared round where every task's signal is fixed.
    fn fixed_round(round: u64, signals: &[Feedback]) -> PreparedRound {
        // Exact model: lack iff deficit ≥ 0; encode the desired signal in
        // the sign of a synthetic deficit.
        let deficits: Vec<i64> = signals
            .iter()
            .map(|f| if f.is_lack() { 1 } else { -1 })
            .collect();
        let demands = vec![100u64; signals.len()];
        NoiseModel::Exact.prepare(round, &deficits, &demands)
    }

    /// Params that make the probabilistic branches deterministic.
    fn det_params(pause: bool, leave: bool) -> AntParams {
        AntParams {
            gamma: 0.05,
            cs: if pause { 20.0 } else { 0.0 },  // c_s·γ = 1 or 0
            cd: if leave { 0.05 } else { 1e18 }, // γ/c_d = 1 or ~0
        }
    }

    fn step_with(
        ant: &mut AlgorithmAnt,
        round: u64,
        signals: &[Feedback],
        rng: &mut Xoshiro256pp,
    ) -> Assignment {
        let prep = fixed_round(round, signals);
        let mut probe = FeedbackProbe::new(&prep, rng);
        ant.step(&mut probe)
    }

    use Feedback::{Lack as L, Overload as O};

    #[test]
    fn idle_ant_joins_doubly_lacking_task() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut ant = AlgorithmAnt::new(3, det_params(false, false));
        // Phase: only task 2 is lacking in both samples.
        step_with(&mut ant, 1, &[O, O, L], &mut rng);
        let a = step_with(&mut ant, 2, &[O, L, L], &mut rng);
        assert_eq!(a, Assignment::Task(2));
    }

    #[test]
    fn idle_ant_needs_both_samples_lacking() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut ant = AlgorithmAnt::new(2, det_params(false, false));
        // lack then overload → no join.
        step_with(&mut ant, 1, &[L, O], &mut rng);
        let a = step_with(&mut ant, 2, &[O, O], &mut rng);
        assert_eq!(a, Assignment::Idle);
    }

    #[test]
    fn idle_join_is_uniform_over_candidates() {
        // Over many ants, joins should split roughly evenly between two
        // doubly-lacking tasks.
        let mut counts = [0u32; 2];
        for seed in 0..4000u64 {
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            let mut ant = AlgorithmAnt::new(2, det_params(false, false));
            step_with(&mut ant, 1, &[L, L], &mut rng);
            match step_with(&mut ant, 2, &[L, L], &mut rng) {
                Assignment::Task(j) => counts[j as usize] += 1,
                Assignment::Idle => panic!("must join"),
            }
        }
        let ratio = f64::from(counts[0]) / f64::from(counts[0] + counts[1]);
        assert!((ratio - 0.5).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn worker_leaves_on_double_overload() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut ant = AlgorithmAnt::new(2, det_params(false, true));
        ant.reset_to(Assignment::Task(0));
        step_with(&mut ant, 1, &[O, L], &mut rng);
        let a = step_with(&mut ant, 2, &[O, L], &mut rng);
        assert_eq!(a, Assignment::Idle);
        // And it stays idle next phase if nothing is doubly lacking.
        step_with(&mut ant, 3, &[O, O], &mut rng);
        let a = step_with(&mut ant, 4, &[O, O], &mut rng);
        assert_eq!(a, Assignment::Idle);
    }

    #[test]
    fn worker_stays_on_mixed_samples() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        for (f1, f2) in [(O, L), (L, O), (L, L)] {
            let mut ant = AlgorithmAnt::new(1, det_params(false, true));
            ant.reset_to(Assignment::Task(0));
            step_with(&mut ant, 1, &[f1], &mut rng);
            let a = step_with(&mut ant, 2, &[f2], &mut rng);
            assert_eq!(a, Assignment::Task(0), "({f1:?},{f2:?})");
        }
    }

    #[test]
    fn pause_is_temporary() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut ant = AlgorithmAnt::new(1, det_params(true, false));
        ant.reset_to(Assignment::Task(0));
        // Pause probability 1 → assignment drops to idle for the odd round.
        let a = step_with(&mut ant, 1, &[O], &mut rng);
        assert_eq!(a, Assignment::Idle);
        // Mixed samples → resumes work at the even round.
        let a = step_with(&mut ant, 2, &[L], &mut rng);
        assert_eq!(a, Assignment::Task(0));
    }

    #[test]
    fn paused_ant_still_leaves_on_double_overload() {
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let mut ant = AlgorithmAnt::new(1, det_params(true, true));
        ant.reset_to(Assignment::Task(0));
        step_with(&mut ant, 1, &[O], &mut rng);
        let a = step_with(&mut ant, 2, &[O], &mut rng);
        assert_eq!(a, Assignment::Idle);
    }

    #[test]
    fn reset_mid_phase_is_conservative() {
        // A scramble lands the ant on a task just before an even round;
        // without a first sample it must not leave or join.
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let mut ant = AlgorithmAnt::new(2, det_params(false, true));
        ant.reset_to(Assignment::Task(1));
        let a = step_with(&mut ant, 2, &[O, O], &mut rng);
        assert_eq!(a, Assignment::Task(1));
        // Idle reset mid-phase: no join without a first sample.
        ant.reset_to(Assignment::Idle);
        let a = step_with(&mut ant, 4, &[L, L], &mut rng);
        assert_eq!(a, Assignment::Idle);
    }

    #[test]
    fn statistical_leave_rate_matches_gamma_over_cd() {
        // With both samples overloaded every phase, the per-phase leave
        // probability must be γ/c_d.
        let params = AntParams {
            gamma: 1.0 / 16.0,
            cs: 0.0,
            cd: 4.0,
        };
        let p_leave = params.leave_probability(); // 1/64
        let trials = 40_000u32;
        let mut left = 0u32;
        for seed in 0..trials {
            let mut rng = Xoshiro256pp::seed_from_u64(u64::from(seed) + 10_000);
            let mut ant = AlgorithmAnt::new(1, params);
            ant.reset_to(Assignment::Task(0));
            step_with(&mut ant, 1, &[O], &mut rng);
            if step_with(&mut ant, 2, &[O], &mut rng).is_idle() {
                left += 1;
            }
        }
        let freq = f64::from(left) / f64::from(trials);
        let sigma = (p_leave * (1.0 - p_leave) / f64::from(trials)).sqrt();
        assert!(
            (freq - p_leave).abs() < 5.0 * sigma,
            "freq {freq} want {p_leave}"
        );
    }

    #[test]
    fn phase_offset_shifts_the_sample_schedule() {
        // An offset-1 ant takes its FIRST sample at even rounds.
        let mut rng = Xoshiro256pp::seed_from_u64(21);
        let mut ant = AlgorithmAnt::with_phase_offset(2, det_params(false, false), 1);
        assert_eq!(ant.phase_offset(), 1);
        // Round 2 (+1 → odd): first sample; round 3 (+1 → even): second.
        step_with(&mut ant, 2, &[L, L], &mut rng);
        let a = step_with(&mut ant, 3, &[L, L], &mut rng);
        assert_eq!(a, Assignment::Task(0).task().map(|_| a).unwrap_or(a));
        assert!(!a.is_idle(), "offset ant decides at shifted rounds");
        // A synchronized ant with the same inputs is still mid-phase at
        // round 3 and cannot have joined at round 2.
        let mut rng = Xoshiro256pp::seed_from_u64(21);
        let mut synced = AlgorithmAnt::new(2, det_params(false, false));
        let a2 = step_with(&mut synced, 2, &[L, L], &mut rng);
        assert!(a2.is_idle(), "round 2 is a second-sample round with no s1");
    }

    #[test]
    fn memory_is_linear_in_tasks_not_n() {
        let small = AlgorithmAnt::new(4, AntParams::default()).memory_bits();
        let large = AlgorithmAnt::new(64, AntParams::default()).memory_bits();
        assert!(small < large);
        assert!(large <= 64 + 8);
    }

    #[test]
    fn works_under_adversarial_prepared_rounds() {
        // Smoke: drive an ant with an adversarial model for many rounds;
        // assignment must always be a legal value.
        let model = NoiseModel::Adversarial {
            gamma_ad: 0.1,
            policy: GreyZonePolicy::AlternateByRound,
        };
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        let mut ant = AlgorithmAnt::new(3, AntParams::default());
        for t in 1..=1000u64 {
            let prep = model.prepare(t, &[5, -5, 0], &[60, 60, 60]);
            let mut probe = FeedbackProbe::new(&prep, &mut rng);
            let a = ant.step(&mut probe);
            assert_eq!(a, ant.assignment());
            if let Assignment::Task(j) = a {
                assert!(j < 3);
            }
        }
    }
}
