//! Explicit probabilistic finite-state machines (Theorem 3.3 apparatus).
//!
//! The memory lower bound quantifies over *arbitrary* algorithms with at
//! most `c·log(1/ε)` bits, modelled as probabilistic FSMs whose non-zero
//! transition probabilities are bounded below (and which satisfy the
//! Assumption 2.2 reachability requirement). [`TableFsm`] runs any such
//! machine in the simulator, so the memory-floor experiments can sweep
//! machine families — the natural one being [`FsmSpec::hysteresis`],
//! which needs `h` consecutive contrary signals before switching and
//! uses `⌈log2(2h)⌉` bits.
//!
//! Table machines observe a *single* task (the lower bound's setting,
//! `k = O(1)`, is proved with demand vectors like `d = (√n, …)`).

use std::sync::Arc;

use antalloc_env::Assignment;
use antalloc_noise::{Feedback, FeedbackProbe, RoundView};
use antalloc_rng::AntRng;

use crate::controller::Controller;

/// One weighted transition edge.
type Edge = (u16, f64);

/// The specification of a probabilistic Moore machine over the feedback
/// alphabet `{lack, overload}` of one task.
#[derive(Clone, Debug, PartialEq)]
pub struct FsmSpec {
    /// `working[s]` — does state `s` output `Task(0)` (else `Idle`)?
    working: Vec<bool>,
    /// `transitions[s][obs]` — weighted successor states; `obs` 0 = lack,
    /// 1 = overload. Weights sum to 1 per cell.
    transitions: Vec<[Vec<Edge>; 2]>,
}

/// Why a spec violates Assumption 2.2 (mutual reachability of states).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReachabilityError {
    /// This state cannot be reached from state 0.
    UnreachableFromStart(u16),
    /// This state cannot reach state 0.
    CannotReturnToStart(u16),
    /// No state outputs `working` (or none outputs `idle`): the machine
    /// cannot realize both assignments, violating the spirit of 2.2.
    MissingOutput(&'static str),
}

impl FsmSpec {
    /// Builds and validates a spec.
    ///
    /// # Panics
    /// If shapes disagree, a cell is empty, weights don't sum to ~1, or a
    /// target state is out of range.
    pub fn new(working: Vec<bool>, transitions: Vec<[Vec<Edge>; 2]>) -> Self {
        let s = working.len();
        assert!(s >= 1 && s <= usize::from(u16::MAX), "1..=65535 states");
        assert_eq!(transitions.len(), s, "one transition row per state");
        for (i, row) in transitions.iter().enumerate() {
            for (obs, cell) in row.iter().enumerate() {
                assert!(!cell.is_empty(), "state {i} obs {obs}: empty cell");
                let total: f64 = cell.iter().map(|(_, p)| p).sum();
                assert!(
                    (total - 1.0).abs() < 1e-9,
                    "state {i} obs {obs}: weights sum to {total}"
                );
                for &(target, p) in cell {
                    assert!(
                        usize::from(target) < s,
                        "state {i}: target {target} out of range"
                    );
                    assert!(p >= 0.0, "negative probability");
                }
            }
        }
        Self {
            working,
            transitions,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.working.len()
    }

    /// Whether state `s` outputs `Task(0)`.
    pub fn is_working(&self, s: u16) -> bool {
        self.working[usize::from(s)]
    }

    /// Checks Assumption 2.2: every state must be reachable from every
    /// other via positive-probability transitions (under some feedback
    /// sequence), and both outputs must be realizable.
    pub fn check_reachability(&self) -> Result<(), ReachabilityError> {
        if !self.working.iter().any(|&w| w) {
            return Err(ReachabilityError::MissingOutput("no working state"));
        }
        if !self.working.iter().any(|&w| !w) {
            return Err(ReachabilityError::MissingOutput("no idle state"));
        }
        let s = self.num_states();
        // Forward reachability from state 0.
        let forward = self.bfs(0, false);
        if let Some(bad) = (0..s).find(|&i| !forward[i]) {
            return Err(ReachabilityError::UnreachableFromStart(bad as u16));
        }
        // Reverse reachability to state 0.
        let backward = self.bfs(0, true);
        if let Some(bad) = (0..s).find(|&i| !backward[i]) {
            return Err(ReachabilityError::CannotReturnToStart(bad as u16));
        }
        Ok(())
    }

    fn bfs(&self, start: u16, reverse: bool) -> Vec<bool> {
        let s = self.num_states();
        let mut adj: Vec<Vec<u16>> = vec![Vec::new(); s];
        for (from, row) in self.transitions.iter().enumerate() {
            for cell in row {
                for &(to, p) in cell {
                    if p > 0.0 {
                        if reverse {
                            adj[usize::from(to)].push(from as u16);
                        } else {
                            adj[from].push(to);
                        }
                    }
                }
            }
        }
        let mut seen = vec![false; s];
        let mut queue = vec![start];
        seen[usize::from(start)] = true;
        while let Some(u) = queue.pop() {
            for &v in &adj[usize::from(u)] {
                if !seen[usize::from(v)] {
                    seen[usize::from(v)] = true;
                    queue.push(v);
                }
            }
        }
        seen
    }

    /// The natural `2h`-state hysteresis machine: working states
    /// `W_0..W_{h−1}` (leave only after `h` consecutive overloads) and
    /// idle states `I_0..I_{h−1}` (join only after `h` consecutive
    /// lacks). `h = 1` degenerates to the trivial algorithm of
    /// Appendix D restricted to one task.
    pub fn hysteresis(depth: u16) -> Self {
        assert!(depth >= 1);
        let h = usize::from(depth);
        // States 0..h are W_0..W_{h−1}; h..2h are I_0..I_{h−1}.
        let mut working = vec![true; h];
        working.extend(std::iter::repeat_n(false, h));
        let mut transitions = Vec::with_capacity(2 * h);
        for c in 0..h {
            // W_c: lack → W_0; overload → W_{c+1} (or leave to I_0).
            let on_lack = vec![(0u16, 1.0)];
            let next = if c + 1 == h { h } else { c + 1 };
            let on_overload = vec![(next as u16, 1.0)];
            transitions.push([on_lack, on_overload]);
        }
        for c in 0..h {
            // I_c: overload → I_0; lack → I_{c+1} (or join to W_0).
            let next = if c + 1 == h { 0 } else { h + c + 1 };
            let on_lack = vec![(next as u16, 1.0)];
            let on_overload = vec![(h as u16, 1.0)];
            transitions.push([on_lack, on_overload]);
        }
        Self::new(working, transitions)
    }

    /// A lazy randomized variant of hysteresis: switching edges fire with
    /// probability `p_act` and otherwise hold (self-loop), modelling the
    /// "transition probabilities are 0 or at least p" machines the lower
    /// bound quantifies over.
    pub fn lazy_hysteresis(depth: u16, p_act: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_act) && p_act > 0.0);
        let base = Self::hysteresis(depth);
        let transitions = base
            .transitions
            .iter()
            .enumerate()
            .map(|(s, row)| {
                let lazify = |cell: &Vec<Edge>| -> Vec<Edge> {
                    let (target, _) = cell[0];
                    if usize::from(target) == s {
                        vec![(target, 1.0)]
                    } else {
                        vec![(target, p_act), (s as u16, 1.0 - p_act)]
                    }
                };
                [lazify(&row[0]), lazify(&row[1])]
            })
            .collect();
        Self::new(base.working, transitions)
    }
}

/// A running table machine: shared spec + private state.
#[derive(Clone, Debug)]
pub struct TableFsm {
    spec: Arc<FsmSpec>,
    state: u16,
    assignment: Assignment,
}

impl TableFsm {
    /// Instantiates the machine in state 0.
    pub fn new(spec: Arc<FsmSpec>) -> Self {
        let assignment = if spec.is_working(0) {
            Assignment::Task(0)
        } else {
            Assignment::Idle
        };
        Self {
            spec,
            state: 0,
            assignment,
        }
    }

    /// The machine's current state.
    pub fn state(&self) -> u16 {
        self.state
    }

    /// Bank-loop entry point: steps a homogeneous slice of table
    /// machines against one shared [`RoundView`]. Bit-identical to
    /// per-ant [`Controller::step`].
    pub fn step_bank(
        ants: &mut [Self],
        view: RoundView<'_>,
        rngs: &mut [AntRng],
        out: &mut [Assignment],
    ) {
        crate::controller::step_slice(ants, view, rngs, out)
    }

    fn transition(&mut self, obs: Feedback, rng: &mut AntRng) {
        let cell = &self.spec.transitions[usize::from(self.state)][usize::from(!obs.is_lack())];
        self.state = if cell.len() == 1 {
            cell[0].0
        } else {
            let mut x = rng.next_f64();
            let mut chosen = cell[cell.len() - 1].0;
            for &(target, p) in cell {
                if x < p {
                    chosen = target;
                    break;
                }
                x -= p;
            }
            chosen
        };
        self.assignment = if self.spec.is_working(self.state) {
            Assignment::Task(0)
        } else {
            Assignment::Idle
        };
    }
}

impl Controller for TableFsm {
    fn step(&mut self, probe: &mut FeedbackProbe<'_>) -> Assignment {
        let obs = probe.sample(0);
        self.transition(obs, probe.rng());
        self.assignment
    }

    #[inline]
    fn assignment(&self) -> Assignment {
        self.assignment
    }

    fn reset_to(&mut self, a: Assignment) {
        // Enter the first state whose output matches (state 0 fallback).
        let want_working = !a.is_idle();
        let state = (0..self.spec.num_states() as u16)
            .find(|&s| self.spec.is_working(s) == want_working)
            .unwrap_or(0);
        self.state = state;
        self.assignment = if self.spec.is_working(state) {
            Assignment::Task(0)
        } else {
            Assignment::Idle
        };
    }

    fn memory_bits(&self) -> u32 {
        crate::memory::bits_for_states(self.spec.num_states())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antalloc_noise::NoiseModel;
    use antalloc_rng::Xoshiro256pp;

    fn probe_round(round: u64, lack: bool) -> antalloc_noise::PreparedRound {
        NoiseModel::Exact.prepare(round, &[if lack { 1 } else { -1 }], &[10])
    }

    fn step(fsm: &mut TableFsm, round: u64, lack: bool, rng: &mut Xoshiro256pp) -> Assignment {
        let prep = probe_round(round, lack);
        let mut probe = FeedbackProbe::new(&prep, rng);
        fsm.step(&mut probe)
    }

    #[test]
    fn hysteresis_needs_depth_consecutive_signals() {
        let spec = Arc::new(FsmSpec::hysteresis(3));
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut fsm = TableFsm::new(spec);
        assert_eq!(fsm.assignment(), Assignment::Task(0));
        // Two overloads then a lack: stays working.
        step(&mut fsm, 1, false, &mut rng);
        step(&mut fsm, 2, false, &mut rng);
        assert_eq!(step(&mut fsm, 3, true, &mut rng), Assignment::Task(0));
        // Three consecutive overloads: leaves.
        step(&mut fsm, 4, false, &mut rng);
        step(&mut fsm, 5, false, &mut rng);
        assert_eq!(step(&mut fsm, 6, false, &mut rng), Assignment::Idle);
        // Three consecutive lacks: rejoins.
        step(&mut fsm, 7, true, &mut rng);
        step(&mut fsm, 8, true, &mut rng);
        assert_eq!(step(&mut fsm, 9, true, &mut rng), Assignment::Task(0));
    }

    #[test]
    fn hysteresis_depth_one_is_trivial_algorithm() {
        let spec = Arc::new(FsmSpec::hysteresis(1));
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut fsm = TableFsm::new(spec);
        assert_eq!(step(&mut fsm, 1, false, &mut rng), Assignment::Idle);
        assert_eq!(step(&mut fsm, 2, true, &mut rng), Assignment::Task(0));
        assert_eq!(step(&mut fsm, 3, false, &mut rng), Assignment::Idle);
    }

    #[test]
    fn reachability_holds_for_hysteresis_family() {
        for depth in [1u16, 2, 3, 8, 16] {
            assert_eq!(FsmSpec::hysteresis(depth).check_reachability(), Ok(()));
            assert_eq!(
                FsmSpec::lazy_hysteresis(depth, 0.25).check_reachability(),
                Ok(())
            );
        }
    }

    #[test]
    fn reachability_rejects_sink_states() {
        // Two states, state 1 is absorbing: cannot return to 0.
        let spec = FsmSpec::new(
            vec![true, false],
            vec![
                [vec![(1, 1.0)], vec![(1, 1.0)]],
                [vec![(1, 1.0)], vec![(1, 1.0)]],
            ],
        );
        assert_eq!(
            spec.check_reachability(),
            Err(ReachabilityError::CannotReturnToStart(1))
        );
    }

    #[test]
    fn reachability_rejects_unreachable_states() {
        let spec = FsmSpec::new(
            vec![true, false, false],
            vec![
                [vec![(0, 1.0)], vec![(1, 1.0)]],
                [vec![(0, 1.0)], vec![(1, 1.0)]],
                [vec![(0, 1.0)], vec![(1, 1.0)]],
            ],
        );
        assert_eq!(
            spec.check_reachability(),
            Err(ReachabilityError::UnreachableFromStart(2))
        );
    }

    #[test]
    fn reachability_requires_both_outputs() {
        let spec = FsmSpec::new(vec![true], vec![[vec![(0, 1.0)], vec![(0, 1.0)]]]);
        assert_eq!(
            spec.check_reachability(),
            Err(ReachabilityError::MissingOutput("no idle state"))
        );
    }

    #[test]
    fn lazy_transitions_hold_with_complementary_probability() {
        let spec = Arc::new(FsmSpec::lazy_hysteresis(1, 0.25));
        // W_0 on overload moves to I_0 w.p. 0.25.
        let trials = 40_000u32;
        let mut moved = 0u32;
        for seed in 0..trials {
            let mut rng = Xoshiro256pp::seed_from_u64(u64::from(seed));
            let mut fsm = TableFsm::new(spec.clone());
            if step(&mut fsm, 1, false, &mut rng).is_idle() {
                moved += 1;
            }
        }
        let freq = f64::from(moved) / f64::from(trials);
        assert!((freq - 0.25).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn reset_lands_on_matching_output() {
        let spec = Arc::new(FsmSpec::hysteresis(2));
        let mut fsm = TableFsm::new(spec);
        fsm.reset_to(Assignment::Idle);
        assert!(fsm.assignment().is_idle());
        fsm.reset_to(Assignment::Task(0));
        assert_eq!(fsm.assignment(), Assignment::Task(0));
    }

    #[test]
    #[should_panic(expected = "weights sum")]
    fn spec_rejects_bad_weights() {
        FsmSpec::new(
            vec![true, false],
            vec![
                [vec![(0, 0.5)], vec![(1, 1.0)]],
                [vec![(0, 1.0)], vec![(1, 1.0)]],
            ],
        );
    }

    #[test]
    fn memory_bits_is_log_states() {
        let fsm = TableFsm::new(Arc::new(FsmSpec::hysteresis(4)));
        assert_eq!(fsm.memory_bits(), 3); // 8 states.
    }
}
