//! Flat structure-of-arrays banks for the single-sample controllers.
//!
//! [`Trivial`] (Appendix D) and [`ExactGreedy`] (the \[11\]-style
//! baseline) carry no cross-round state besides their assignment, so
//! their fast layout is one `u32` per ant — the same shape as the idle
//! path of [`crate::AntBank`]. Stepping streams a single flat array
//! instead of a `Vec` of per-ant structs (each dragging a heap-allocated
//! scratch bitmap), and the idle path's full-vector sample goes through
//! the batched [`RoundView::fill_lack`] draw.
//!
//! **Reference semantics.** The per-ant [`crate::Controller`] impls are
//! the truth: each bank consumes every ant's RNG stream in exactly the
//! order `Controller::step` would (samples in task order, then the
//! join/leave coins with the same short-circuits), so bank runs are
//! bit-identical to per-ant runs — pinned by the parity property tests
//! in `tests/banks.rs`.

use antalloc_env::{Assignment, ColumnWriter};
use antalloc_noise::{RoundView, SensedRound};
use antalloc_rng::{uniform_index, AntRng, Bernoulli};

use crate::ant_bank::{count_lacking, dec, enc, nth_lacking, nth_set_bit, refill, IDLE};
use crate::controller::Controller;
use crate::exact_greedy::{ExactGreedy, ExactGreedyParams};
use crate::trivial::Trivial;

/// Row buffer for the > 64-task fallback paths; the bit-packed common
/// case never reads it, so it stays unallocated there.
#[inline]
pub(crate) fn scratch_row(num_tasks: usize) -> Vec<u8> {
    if num_tasks <= 64 {
        Vec::new()
    } else {
        vec![0u8; num_tasks]
    }
}

/// A homogeneous [`Trivial`] population in flat layout.
#[derive(Clone, Debug)]
pub struct TrivialBank {
    num_tasks: usize,
    /// Assignment per ant (`IDLE` when idle).
    assignment: Vec<u32>,
}

impl TrivialBank {
    /// An all-idle bank of `n` fresh ants.
    pub fn new(num_tasks: usize, n: usize) -> Self {
        assert!(num_tasks >= 1, "at least one task");
        Self {
            num_tasks,
            assignment: vec![IDLE; n],
        }
    }

    /// Rebuilds the bank in place to `n` fresh all-idle ants, reusing
    /// the assignment allocation (shrink keeps capacity, grow
    /// reallocates). State after the call is bit-identical to
    /// `TrivialBank::new(num_tasks, n)`.
    pub fn reinit(&mut self, num_tasks: usize, n: usize) {
        assert!(num_tasks >= 1, "at least one task");
        self.num_tasks = num_tasks;
        refill(&mut self.assignment, IDLE, n);
    }

    /// Number of ants.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// True iff the bank holds no ants.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Appends a per-ant controller, transposing its state in.
    pub fn push_controller(&mut self, ant: &Trivial) {
        assert_eq!(ant.num_tasks(), self.num_tasks, "task count mismatch");
        self.assignment.push(enc(ant.assignment()));
    }

    /// Reconstructs the per-ant controller at `slot` (reference
    /// extraction; lossless — the assignment is the whole state).
    pub fn to_controller(&self, slot: usize) -> Trivial {
        let mut ant = Trivial::new(self.num_tasks);
        ant.reset_to(dec(self.assignment[slot]));
        ant
    }

    /// The assignment of the ant at `slot`.
    pub fn assignment(&self, slot: usize) -> Assignment {
        dec(self.assignment[slot])
    }

    /// Forces the ant at `slot` into `a`.
    pub fn reset_slot(&mut self, slot: usize, a: Assignment) {
        self.assignment[slot] = enc(a);
    }

    /// Persistent memory in bits (same accounting as the per-ant impl).
    pub fn memory_bits(&self) -> u32 {
        crate::memory::bits_for_states(self.num_tasks + 1)
    }

    /// Removes the ant at `slot` by swap-removal.
    pub fn swap_remove(&mut self, slot: usize) {
        self.assignment.swap_remove(slot);
    }

    /// The whole bank as a splittable mutable slice.
    pub fn as_slice_mut(&mut self) -> TrivialSliceMut<'_> {
        TrivialSliceMut {
            num_tasks: self.num_tasks,
            assignment: &mut self.assignment,
        }
    }

    /// Steps the single ant at `slot` (the sequential model's path).
    pub fn step_slot(&mut self, slot: usize, view: RoundView<'_>, rng: &mut AntRng) -> Assignment {
        // The row buffer backs only the > 64-task fallback; the common
        // bit-packed path must not allocate per sequential round.
        let mut row = scratch_row(self.num_tasks);
        TrivialSliceMut {
            num_tasks: self.num_tasks,
            assignment: &mut self.assignment[slot..slot + 1],
        }
        .step_one(0, view, rng, &mut row)
    }
}

/// A disjoint mutable chunk of a [`TrivialBank`].
#[derive(Debug)]
pub struct TrivialSliceMut<'a> {
    num_tasks: usize,
    assignment: &'a mut [u32],
}

impl<'a> TrivialSliceMut<'a> {
    /// Number of ants in the chunk.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// True iff the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Splits the chunk at `mid` into two disjoint chunks.
    pub fn split_at_mut(self, mid: usize) -> (TrivialSliceMut<'a>, TrivialSliceMut<'a>) {
        let (a, b) = self.assignment.split_at_mut(mid);
        (
            TrivialSliceMut {
                num_tasks: self.num_tasks,
                assignment: a,
            },
            TrivialSliceMut {
                num_tasks: self.num_tasks,
                assignment: b,
            },
        )
    }

    /// Steps every ant in the chunk; bit-identical to per-ant
    /// [`Controller::step`] on [`Trivial`].
    pub fn step_batch(&mut self, view: RoundView<'_>, rngs: &mut [AntRng], out: &mut [Assignment]) {
        let n = self.len();
        assert_eq!(n, rngs.len(), "one RNG stream per ant");
        assert_eq!(n, out.len(), "one decision slot per ant");
        let mut row = scratch_row(self.num_tasks);
        for i in 0..n {
            out[i] = self.step_one(i, view, &mut rngs[i], &mut row);
        }
    }

    /// Fused-apply variant of [`TrivialSliceMut::step_batch`]: same
    /// draws, with each transition routed through `writer` (shared next
    /// column + local delta) at the ant's colony id (`ids[i]`).
    ///
    /// Takes the round as a [`SensedRound`]: the well-mixed (shared)
    /// form runs the pre-existing hoisted-view loop; the per-ant form
    /// re-selects the view per ant (`sensed.view_for(ids[i])`).
    pub fn step_batch_fused(
        &mut self,
        sensed: SensedRound<'_>,
        rngs: &mut [AntRng],
        ids: &[u32],
        writer: &mut ColumnWriter<'_>,
    ) {
        let n = self.len();
        assert_eq!(n, rngs.len(), "one RNG stream per ant");
        assert_eq!(n, ids.len(), "one colony id per ant");
        let mut row = scratch_row(self.num_tasks);
        match sensed.shared_view() {
            Some(view) => {
                for i in 0..n {
                    self.step_one(i, view, &mut rngs[i], &mut row);
                    writer.write(ids[i], self.assignment[i]);
                }
            }
            None => {
                for i in 0..n {
                    self.step_one(i, sensed.view_for(ids[i]), &mut rngs[i], &mut row);
                    writer.write(ids[i], self.assignment[i]);
                }
            }
        }
    }

    /// One ant's round: idle → sample all tasks, join a uniformly random
    /// lacking one; working → sample own task, leave on `overload`.
    /// The idle path's full-vector draw is the bit-packed batched form
    /// for ≤ 64 tasks (one pass, one register) and the row-buffer form
    /// beyond; both consume draws in task order like the reference.
    #[inline(always)]
    fn step_one(
        &mut self,
        i: usize,
        view: RoundView<'_>,
        rng: &mut AntRng,
        row: &mut [u8],
    ) -> Assignment {
        let cur = self.assignment[i];
        if cur == IDLE {
            if self.num_tasks <= 64 {
                let mask = view.lack_mask(rng);
                if mask != 0 {
                    let pick = uniform_index(rng, mask.count_ones() as usize);
                    self.assignment[i] = nth_set_bit(mask, pick);
                }
            } else {
                view.fill_lack(rng, row);
                let count = count_lacking(row);
                if count > 0 {
                    self.assignment[i] = nth_lacking(row, uniform_index(rng, count));
                }
            }
        } else if !view.sample(crate::cast::task_ix(cur), rng).is_lack() {
            self.assignment[i] = IDLE;
        }
        dec(self.assignment[i])
    }
}

/// A homogeneous [`ExactGreedy`] population in flat layout.
#[derive(Clone, Debug)]
pub struct ExactGreedyBank {
    params: ExactGreedyParams,
    join: Bernoulli,
    leave: Bernoulli,
    num_tasks: usize,
    /// Assignment per ant (`IDLE` when idle).
    assignment: Vec<u32>,
}

impl ExactGreedyBank {
    /// An all-idle bank of `n` fresh ants.
    pub fn new(num_tasks: usize, params: ExactGreedyParams, n: usize) -> Self {
        assert!(num_tasks >= 1, "at least one task");
        Self {
            params,
            join: Bernoulli::new(params.p_join),
            leave: Bernoulli::new(params.p_leave),
            num_tasks,
            assignment: vec![IDLE; n],
        }
    }

    /// Rebuilds the bank in place to `n` fresh all-idle ants, reusing
    /// the assignment allocation (shrink keeps capacity, grow
    /// reallocates). State after the call is bit-identical to
    /// `ExactGreedyBank::new(num_tasks, params, n)`.
    pub fn reinit(&mut self, num_tasks: usize, params: ExactGreedyParams, n: usize) {
        assert!(num_tasks >= 1, "at least one task");
        self.params = params;
        self.join = Bernoulli::new(params.p_join);
        self.leave = Bernoulli::new(params.p_leave);
        self.num_tasks = num_tasks;
        refill(&mut self.assignment, IDLE, n);
    }

    /// The parameters every ant in the bank runs.
    pub fn params(&self) -> &ExactGreedyParams {
        &self.params
    }

    /// Number of ants.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// True iff the bank holds no ants.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Appends a per-ant controller, transposing its state in.
    pub fn push_controller(&mut self, ant: &ExactGreedy) {
        assert_eq!(ant.num_tasks(), self.num_tasks, "task count mismatch");
        self.assignment.push(enc(ant.assignment()));
    }

    /// Reconstructs the per-ant controller at `slot` (reference
    /// extraction; lossless — the assignment is the whole state).
    pub fn to_controller(&self, slot: usize) -> ExactGreedy {
        let mut ant = ExactGreedy::new(self.num_tasks, self.params);
        ant.reset_to(dec(self.assignment[slot]));
        ant
    }

    /// The assignment of the ant at `slot`.
    pub fn assignment(&self, slot: usize) -> Assignment {
        dec(self.assignment[slot])
    }

    /// Forces the ant at `slot` into `a`.
    pub fn reset_slot(&mut self, slot: usize, a: Assignment) {
        self.assignment[slot] = enc(a);
    }

    /// Persistent memory in bits (same accounting as the per-ant impl).
    pub fn memory_bits(&self) -> u32 {
        crate::memory::bits_for_states(self.num_tasks + 1)
    }

    /// Removes the ant at `slot` by swap-removal.
    pub fn swap_remove(&mut self, slot: usize) {
        self.assignment.swap_remove(slot);
    }

    /// The whole bank as a splittable mutable slice.
    pub fn as_slice_mut(&mut self) -> ExactGreedySliceMut<'_> {
        ExactGreedySliceMut {
            join: self.join,
            leave: self.leave,
            num_tasks: self.num_tasks,
            assignment: &mut self.assignment,
        }
    }

    /// Steps the single ant at `slot` (the sequential model's path).
    pub fn step_slot(&mut self, slot: usize, view: RoundView<'_>, rng: &mut AntRng) -> Assignment {
        // See TrivialBank::step_slot: no allocation on the ≤ 64 path.
        let mut row = scratch_row(self.num_tasks);
        ExactGreedySliceMut {
            join: self.join,
            leave: self.leave,
            num_tasks: self.num_tasks,
            assignment: &mut self.assignment[slot..slot + 1],
        }
        .step_one(0, view, rng, &mut row)
    }
}

/// A disjoint mutable chunk of an [`ExactGreedyBank`].
#[derive(Debug)]
pub struct ExactGreedySliceMut<'a> {
    join: Bernoulli,
    leave: Bernoulli,
    num_tasks: usize,
    assignment: &'a mut [u32],
}

impl<'a> ExactGreedySliceMut<'a> {
    /// Number of ants in the chunk.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// True iff the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Splits the chunk at `mid` into two disjoint chunks.
    pub fn split_at_mut(self, mid: usize) -> (ExactGreedySliceMut<'a>, ExactGreedySliceMut<'a>) {
        let (a, b) = self.assignment.split_at_mut(mid);
        (
            ExactGreedySliceMut {
                join: self.join,
                leave: self.leave,
                num_tasks: self.num_tasks,
                assignment: a,
            },
            ExactGreedySliceMut {
                join: self.join,
                leave: self.leave,
                num_tasks: self.num_tasks,
                assignment: b,
            },
        )
    }

    /// Steps every ant in the chunk; bit-identical to per-ant
    /// [`Controller::step`] on [`ExactGreedy`].
    pub fn step_batch(&mut self, view: RoundView<'_>, rngs: &mut [AntRng], out: &mut [Assignment]) {
        let n = self.len();
        assert_eq!(n, rngs.len(), "one RNG stream per ant");
        assert_eq!(n, out.len(), "one decision slot per ant");
        let mut row = scratch_row(self.num_tasks);
        for i in 0..n {
            out[i] = self.step_one(i, view, &mut rngs[i], &mut row);
        }
    }

    /// Fused-apply variant of [`ExactGreedySliceMut::step_batch`]: same
    /// draws, with each transition routed through `writer` (shared next
    /// column + local delta) at the ant's colony id (`ids[i]`).
    ///
    /// Takes the round as a [`SensedRound`]: the well-mixed (shared)
    /// form runs the pre-existing hoisted-view loop; the per-ant form
    /// re-selects the view per ant (`sensed.view_for(ids[i])`).
    pub fn step_batch_fused(
        &mut self,
        sensed: SensedRound<'_>,
        rngs: &mut [AntRng],
        ids: &[u32],
        writer: &mut ColumnWriter<'_>,
    ) {
        let n = self.len();
        assert_eq!(n, rngs.len(), "one RNG stream per ant");
        assert_eq!(n, ids.len(), "one colony id per ant");
        let mut row = scratch_row(self.num_tasks);
        match sensed.shared_view() {
            Some(view) => {
                for i in 0..n {
                    self.step_one(i, view, &mut rngs[i], &mut row);
                    writer.write(ids[i], self.assignment[i]);
                }
            }
            None => {
                for i in 0..n {
                    self.step_one(i, sensed.view_for(ids[i]), &mut rngs[i], &mut row);
                    writer.write(ids[i], self.assignment[i]);
                }
            }
        }
    }

    /// One ant's round. The coin order is the reference's: samples in
    /// task order, then the join coin *only* when something lacks, then
    /// the uniform pick; workers draw the leave coin only on `overload`.
    /// Idle-path sampling is the bit-packed batched draw for ≤ 64 tasks
    /// (see [`TrivialSliceMut::step_one`]).
    #[inline(always)]
    fn step_one(
        &mut self,
        i: usize,
        view: RoundView<'_>,
        rng: &mut AntRng,
        row: &mut [u8],
    ) -> Assignment {
        let cur = self.assignment[i];
        if cur == IDLE {
            if self.num_tasks <= 64 {
                let mask = view.lack_mask(rng);
                if mask != 0 && self.join.sample(rng) {
                    let pick = uniform_index(rng, mask.count_ones() as usize);
                    self.assignment[i] = nth_set_bit(mask, pick);
                }
            } else {
                view.fill_lack(rng, row);
                let count = count_lacking(row);
                if count > 0 && self.join.sample(rng) {
                    self.assignment[i] = nth_lacking(row, uniform_index(rng, count));
                }
            }
        } else if !view.sample(crate::cast::task_ix(cur), rng).is_lack() && self.leave.sample(rng) {
            self.assignment[i] = IDLE;
        }
        dec(self.assignment[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antalloc_noise::{FeedbackProbe, NoiseModel};
    use antalloc_rng::StreamSeeder;

    /// Both flat banks against their per-ant references, round for
    /// round, under sigmoid noise (every code path: joins, leaves,
    /// coins, rejections).
    #[test]
    fn flat_banks_match_per_ant_stepping() {
        let n = 150;
        let k = 3;
        let seeder = StreamSeeder::new(11);
        let model = NoiseModel::Sigmoid { lambda: 1.5 };

        let mut trivial_bank = TrivialBank::new(k, n);
        let mut trivial_ref: Vec<Trivial> = (0..n).map(|_| Trivial::new(k)).collect();
        let mut greedy_bank = ExactGreedyBank::new(k, ExactGreedyParams::default(), n);
        let mut greedy_ref: Vec<ExactGreedy> = (0..n)
            .map(|_| ExactGreedy::new(k, ExactGreedyParams::default()))
            .collect();

        let mut bank_rngs: Vec<AntRng> = (0..2 * n).map(|i| seeder.ant(i)).collect();
        let mut ref_rngs: Vec<AntRng> = (0..2 * n).map(|i| seeder.ant(i)).collect();
        let mut out = vec![Assignment::Idle; n];
        for round in 1..=50u64 {
            let prepared = model.prepare(round, &[2, 0, -3], &[15, 15, 15]);
            trivial_bank
                .as_slice_mut()
                .step_batch(prepared.view(), &mut bank_rngs[..n], &mut out);
            for (i, ant) in trivial_ref.iter_mut().enumerate() {
                let mut probe = FeedbackProbe::new(&prepared, &mut ref_rngs[i]);
                assert_eq!(
                    ant.step(&mut probe),
                    out[i],
                    "trivial ant {i} round {round}"
                );
            }
            greedy_bank
                .as_slice_mut()
                .step_batch(prepared.view(), &mut bank_rngs[n..], &mut out);
            for (i, ant) in greedy_ref.iter_mut().enumerate() {
                let mut probe = FeedbackProbe::new(&prepared, &mut ref_rngs[n + i]);
                assert_eq!(ant.step(&mut probe), out[i], "greedy ant {i} round {round}");
            }
        }
        for i in 0..n {
            assert_eq!(trivial_bank.assignment(i), trivial_ref[i].assignment());
            assert_eq!(greedy_bank.assignment(i), greedy_ref[i].assignment());
        }
    }

    #[test]
    fn push_and_reconstruct_roundtrip() {
        let mut bank = TrivialBank::new(2, 0);
        let mut ant = Trivial::new(2);
        ant.reset_to(Assignment::Task(1));
        bank.push_controller(&ant);
        assert_eq!(bank.len(), 1);
        assert_eq!(bank.to_controller(0).assignment(), Assignment::Task(1));

        let mut bank = ExactGreedyBank::new(2, ExactGreedyParams::default(), 0);
        let mut ant = ExactGreedy::new(2, ExactGreedyParams::default());
        ant.reset_to(Assignment::Task(0));
        bank.push_controller(&ant);
        assert_eq!(bank.to_controller(0).assignment(), Assignment::Task(0));
    }

    #[test]
    fn swap_remove_moves_last_slot() {
        let mut bank = TrivialBank::new(1, 3);
        bank.reset_slot(0, Assignment::Task(0));
        bank.reset_slot(2, Assignment::Idle);
        bank.swap_remove(0);
        assert_eq!(bank.len(), 2);
        assert_eq!(bank.assignment(0), Assignment::Idle);
    }
}
