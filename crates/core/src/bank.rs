//! Homogeneous controller banks: the data-oriented engine core.
//!
//! A colony that runs one algorithm should pay its dispatch once per
//! **bank** per round, not once per ant. A [`ControllerBank`] stores all
//! ants of one controller kind contiguously and steps them through the
//! kind's `step_bank` entry point — a tight monomorphic loop over a
//! shared [`RoundView`] — with the per-ant [`Controller`] impls as the
//! reference semantics (bank-stepping is bit-identical to per-ant
//! stepping because every ant consumes only its own RNG stream, in the
//! same order).
//!
//! Every shipped homogeneous kind has a **structure-of-arrays fast
//! layout**: [`AntBank`] for synchronized §4 Ant colonies,
//! [`crate::PreciseSigmoidBank`] for §5 (transposed counter planes),
//! and the flat [`crate::TrivialBank`] / [`crate::ExactGreedyBank`]
//! (one `u32` per ant — the shape of Ant's idle path). Only
//! desynchronized Ant, Precise Adversarial and table-FSM banks keep the
//! per-ant `Vec` layout.
//!
//! Heterogeneous (mixed-controller) colonies are a `Vec` of banks; the
//! engine layer owns the ant → (bank, slot) index. Parallel engines
//! split a bank into disjoint [`BankSliceMut`] chunks, one per worker.
//!
//! # Examples
//!
//! Stepping a two-ant bank by hand against exact feedback:
//!
//! ```
//! use antalloc_core::{AnyController, ControllerBank, ExactGreedy, ExactGreedyParams};
//! use antalloc_env::Assignment;
//! use antalloc_noise::NoiseModel;
//! use antalloc_rng::StreamSeeder;
//!
//! let params = ExactGreedyParams { p_join: 1.0, p_leave: 0.0 };
//! let mut bank: ControllerBank = (0..2)
//!     .map(|_| AnyController::from(ExactGreedy::new(1, params)))
//!     .collect();
//! assert_eq!(bank.len(), 2);
//! let seeder = StreamSeeder::new(7);
//! let mut rngs = vec![seeder.ant(0), seeder.ant(1)];
//! // Task 0 lacks two workers; deterministic joiners both sign up.
//! let prepared = NoiseModel::Exact.prepare(1, &[2], &[2]);
//! let mut out = vec![Assignment::Idle; 2];
//! bank.step_batch(prepared.view(), &mut rngs, &mut out);
//! assert_eq!(out, vec![Assignment::Task(0), Assignment::Task(0)]);
//! ```

use antalloc_env::{Assignment, ColumnWriter};
use antalloc_noise::{FeedbackProbe, RoundView, SensedRound};
use antalloc_rng::AntRng;

use crate::ant::AlgorithmAnt;
use crate::ant_bank::{AntBank, AntSliceMut};
use crate::controller::{step_slice_fused, AnyController, Controller};
use crate::flat_bank::{ExactGreedyBank, ExactGreedySliceMut, TrivialBank, TrivialSliceMut};
use crate::precise_adversarial::{AdversarialScratch, PreciseAdversarial};
use crate::precise_sigmoid::SigmoidScratch;
use crate::proportional::{ProportionalBank, ProportionalSliceMut};
use crate::sigmoid_bank::{PreciseSigmoidBank, SigmoidSliceMut};
use crate::table_fsm::TableFsm;

/// Per-ant controller state beyond the assignment, extracted per kind —
/// what a checkpoint must carry to capture *between* the kind's phase
/// boundaries. Kinds whose entire state is the assignment (or whose
/// phase is short enough that boundary-only capture costs nothing)
/// have no scratch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ControllerScratch {
    /// Precise Sigmoid's mid-phase counters (phases are `2m = O(1/ε)`
    /// rounds long, so boundary-only capture is a real restriction).
    PreciseSigmoid(SigmoidScratch),
    /// Precise Adversarial's mid-phase trackers (phases are
    /// `5·r_1 = O(1/ε)` rounds long — the last long-phase kind to gain
    /// mid-phase capture).
    PreciseAdversarial(AdversarialScratch),
    /// The proportional controller's persisted-error streak (emitted
    /// only when non-zero; restore defaults absent entries to 0).
    Proportional(u16),
}

/// A contiguous, homogeneous population of controllers of one kind.
///
/// One variant per shipped controller; the enum dispatch happens once
/// per bank per round (in [`ControllerBank::step_batch`]), after which
/// the kind's monomorphic bank loop runs.
#[derive(Clone, Debug)]
pub enum ControllerBank {
    /// §4 Algorithm Ant, phase offset 0, in the structure-of-arrays
    /// fast layout (see [`AntBank`]). This is the hot variant: a
    /// homogeneous Ant colony streams ~an order of magnitude fewer
    /// bytes per ant per round than the per-ant struct layout.
    AntSoA(AntBank),
    /// §4 Algorithm Ant with per-ant phase offsets (`AntDesync`).
    Ant(Vec<AlgorithmAnt>),
    /// §5 Algorithm Precise Sigmoid, in the structure-of-arrays fast
    /// layout (see [`PreciseSigmoidBank`]).
    PreciseSigmoid(PreciseSigmoidBank),
    /// Appendix C Algorithm Precise Adversarial.
    PreciseAdversarial(Vec<PreciseAdversarial>),
    /// Appendix D trivial algorithm, in the flat fast layout (see
    /// [`TrivialBank`]).
    Trivial(TrivialBank),
    /// Exact-feedback baseline, in the flat fast layout (see
    /// [`ExactGreedyBank`]).
    ExactGreedy(ExactGreedyBank),
    /// Proportional-control rival, in the flat fast layout (see
    /// [`ProportionalBank`]).
    Proportional(ProportionalBank),
    /// Explicit finite-state machines.
    Table(Vec<TableFsm>),
}

/// Dispatches to the structure-of-arrays banks (`$b`) and the per-ant
/// `Vec` banks (`$v`) with one body each.
macro_rules! each_bank {
    ($self:ident, $b:ident => $soa_body:expr, $v:ident => $body:expr) => {
        match $self {
            ControllerBank::AntSoA($b) => $soa_body,
            ControllerBank::PreciseSigmoid($b) => $soa_body,
            ControllerBank::Trivial($b) => $soa_body,
            ControllerBank::ExactGreedy($b) => $soa_body,
            ControllerBank::Proportional($b) => $soa_body,
            ControllerBank::Ant($v) => $body,
            ControllerBank::PreciseAdversarial($v) => $body,
            ControllerBank::Table($v) => $body,
        }
    };
}

impl ControllerBank {
    /// An empty bank of the same kind as `c` (for engines that create
    /// banks lazily from a prototype controller). Offset-0 Ant
    /// controllers and every Precise Sigmoid / Trivial / ExactGreedy
    /// colony get the structure-of-arrays layouts.
    pub fn empty_like(c: &AnyController) -> Self {
        match c {
            AnyController::Ant(a) if a.phase_offset() == 0 => {
                ControllerBank::AntSoA(AntBank::new(a.num_tasks(), *a.params(), 0))
            }
            AnyController::Ant(_) => ControllerBank::Ant(Vec::new()),
            AnyController::PreciseSigmoid(c) => ControllerBank::PreciseSigmoid(
                PreciseSigmoidBank::new(c.num_tasks(), *c.params(), 0),
            ),
            AnyController::PreciseAdversarial(_) => ControllerBank::PreciseAdversarial(Vec::new()),
            AnyController::Trivial(c) => {
                ControllerBank::Trivial(TrivialBank::new(c.num_tasks(), 0))
            }
            AnyController::ExactGreedy(c) => {
                ControllerBank::ExactGreedy(ExactGreedyBank::new(c.num_tasks(), *c.params(), 0))
            }
            AnyController::Proportional(c) => {
                ControllerBank::Proportional(ProportionalBank::new(c.num_tasks(), *c.params(), 0))
            }
            AnyController::Table(_) => ControllerBank::Table(Vec::new()),
        }
    }

    /// Number of ants in the bank.
    pub fn len(&self) -> usize {
        each_bank!(self, b => b.len(), v => v.len())
    }

    /// True iff the bank holds no ants.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Steps every ant in the bank against one shared [`RoundView`],
    /// writing decisions into `out` (one slot per ant, bank order).
    ///
    /// Bit-identical to calling [`Controller::step`] per ant.
    pub fn step_batch(&mut self, view: RoundView<'_>, rngs: &mut [AntRng], out: &mut [Assignment]) {
        self.as_slice_mut().step_batch(view, rngs, out)
    }

    /// Fused-apply variant of [`ControllerBank::step_batch`]: steps
    /// every ant and routes each transition through `writer` — the
    /// engine's shared next-state column plus a local
    /// [`antalloc_env::RoundDelta`] — at the ants' colony ids (`ids`,
    /// one per ant, bank order). Same draws, same streams; see
    /// [`BankSliceMut::step_batch_fused`].
    ///
    /// Takes the round as a [`SensedRound`]; a shared (well-mixed)
    /// round runs the same code as before the sensing layer existed.
    pub fn step_batch_fused(
        &mut self,
        sensed: SensedRound<'_>,
        rngs: &mut [AntRng],
        ids: &[u32],
        writer: &mut ColumnWriter<'_>,
    ) {
        self.as_slice_mut()
            .step_batch_fused(sensed, rngs, ids, writer)
    }

    /// The whole bank as a splittable mutable slice (for partitioning
    /// across workers).
    pub fn as_slice_mut(&mut self) -> BankSliceMut<'_> {
        match self {
            ControllerBank::AntSoA(b) => BankSliceMut::AntSoA(b.as_slice_mut()),
            ControllerBank::Ant(v) => BankSliceMut::Ant(v),
            ControllerBank::PreciseSigmoid(b) => BankSliceMut::PreciseSigmoid(b.as_slice_mut()),
            ControllerBank::PreciseAdversarial(v) => BankSliceMut::PreciseAdversarial(v),
            ControllerBank::Trivial(b) => BankSliceMut::Trivial(b.as_slice_mut()),
            ControllerBank::ExactGreedy(b) => BankSliceMut::ExactGreedy(b.as_slice_mut()),
            ControllerBank::Proportional(b) => BankSliceMut::Proportional(b.as_slice_mut()),
            ControllerBank::Table(v) => BankSliceMut::Table(v),
        }
    }

    /// Steps the single ant at `slot` (sequential-model engines).
    pub fn step_slot(&mut self, slot: usize, view: RoundView<'_>, rng: &mut AntRng) -> Assignment {
        each_bank!(self,
        b => b.step_slot(slot, view, rng),
        v => {
            let mut probe = FeedbackProbe::from_view(view, rng);
            v[slot].step(&mut probe)
        })
    }

    /// The assignment of the ant at `slot`.
    pub fn assignment(&self, slot: usize) -> Assignment {
        each_bank!(self, b => b.assignment(slot), v => v[slot].assignment())
    }

    /// Forces the ant at `slot` into `a` (see [`Controller::reset_to`]).
    pub fn reset_slot(&mut self, slot: usize, a: Assignment) {
        each_bank!(self, b => b.reset_slot(slot, a), v => v[slot].reset_to(a))
    }

    /// Persistent memory of the ant at `slot`, in bits.
    pub fn memory_bits(&self, slot: usize) -> u32 {
        each_bank!(self, b => { let _ = slot; b.memory_bits() }, v => v[slot].memory_bits())
    }

    /// The mid-phase scratch of the ant at `slot` — `Some` only for
    /// kinds a checkpoint must carry counters for (Precise Sigmoid and
    /// Precise Adversarial; see [`ControllerScratch`]).
    pub fn scratch(&self, slot: usize) -> Option<ControllerScratch> {
        match self {
            ControllerBank::PreciseSigmoid(b) => {
                Some(ControllerScratch::PreciseSigmoid(b.scratch(slot)))
            }
            ControllerBank::PreciseAdversarial(v) => {
                Some(ControllerScratch::PreciseAdversarial(v[slot].scratch()))
            }
            // Zero streaks are the reset state; omitting them keeps
            // checkpoints of settled colonies scratch-free.
            ControllerBank::Proportional(b) => match b.streak(slot) {
                0 => None,
                s => Some(ControllerScratch::Proportional(s)),
            },
            _ => None,
        }
    }

    /// Overwrites the mid-phase scratch of the ant at `slot` (checkpoint
    /// restore; apply *after* [`ControllerBank::reset_slot`]).
    ///
    /// # Panics
    /// If the scratch kind does not match the bank's kind, or its shape
    /// does not match the bank's task count.
    pub fn apply_scratch(&mut self, slot: usize, scratch: &ControllerScratch) {
        match (self, scratch) {
            (ControllerBank::PreciseSigmoid(b), ControllerScratch::PreciseSigmoid(s)) => {
                b.apply_scratch(slot, s)
            }
            (ControllerBank::PreciseAdversarial(v), ControllerScratch::PreciseAdversarial(s)) => {
                v[slot].apply_scratch(s)
            }
            (ControllerBank::Proportional(b), ControllerScratch::Proportional(s)) => {
                b.set_streak(slot, *s)
            }
            // audit:allow(panic-path): documented precondition — scratch kinds are matched to banks by the checkpoint codec before apply.
            _ => panic!("scratch kind does not match bank kind"),
        }
    }

    /// Appends a controller to the bank.
    ///
    /// # Panics
    /// If the controller's kind does not match the bank's — banks are
    /// homogeneous by construction.
    pub fn push(&mut self, c: AnyController) {
        match (self, c) {
            (ControllerBank::AntSoA(b), AnyController::Ant(c)) => b.push_controller(&c),
            (ControllerBank::Ant(v), AnyController::Ant(c)) => v.push(c),
            (ControllerBank::PreciseSigmoid(b), AnyController::PreciseSigmoid(c)) => {
                b.push_controller(&c)
            }
            (ControllerBank::PreciseAdversarial(v), AnyController::PreciseAdversarial(c)) => {
                v.push(c)
            }
            (ControllerBank::Trivial(b), AnyController::Trivial(c)) => b.push_controller(&c),
            (ControllerBank::ExactGreedy(b), AnyController::ExactGreedy(c)) => {
                b.push_controller(&c)
            }
            (ControllerBank::Proportional(b), AnyController::Proportional(c)) => {
                b.push_controller(&c)
            }
            (ControllerBank::Table(v), AnyController::Table(c)) => v.push(c),
            // audit:allow(panic-path): documented precondition — Population routes controllers to the bank of their own kind.
            _ => panic!("controller kind does not match bank kind"),
        }
    }

    /// Removes the ant at `slot` by swap-removal (the last ant moves
    /// into `slot`). Callers must mirror the swap in any parallel
    /// per-slot arrays (RNGs, ant-id maps).
    pub fn swap_remove(&mut self, slot: usize) {
        each_bank!(self, b => b.swap_remove(slot), v => {
            v.swap_remove(slot);
        })
    }

    /// A clone of the ant at `slot`, boxed into the dispatch enum
    /// (reference extraction for tests and baseline replays).
    pub fn to_any(&self, slot: usize) -> AnyController {
        each_bank!(self, b => b.to_controller(slot).into(), v => v[slot].clone().into())
    }
}

/// A disjoint mutable chunk of one bank, steppable independently.
///
/// Parallel engines split each bank's population once per run and hand
/// every worker its own set of chunks; bit-identity is unconditional
/// because each ant still consumes only its own RNG stream.
#[derive(Debug)]
pub enum BankSliceMut<'a> {
    /// Chunk of a structure-of-arrays Ant bank.
    AntSoA(AntSliceMut<'a>),
    /// Chunk of a per-ant Algorithm Ant bank (desynchronized offsets).
    Ant(&'a mut [AlgorithmAnt]),
    /// Chunk of a structure-of-arrays Precise Sigmoid bank.
    PreciseSigmoid(SigmoidSliceMut<'a>),
    /// Chunk of a Precise Adversarial bank.
    PreciseAdversarial(&'a mut [PreciseAdversarial]),
    /// Chunk of a flat trivial bank.
    Trivial(TrivialSliceMut<'a>),
    /// Chunk of a flat exact-greedy bank.
    ExactGreedy(ExactGreedySliceMut<'a>),
    /// Chunk of a flat proportional-control bank.
    Proportional(ProportionalSliceMut<'a>),
    /// Chunk of a table-machine bank.
    Table(&'a mut [TableFsm]),
}

/// Dispatches over every chunk kind with one body (all chunk types
/// share the `len`/`is_empty` surface).
macro_rules! each_slice {
    ($self:ident, $v:ident => $body:expr) => {
        match $self {
            BankSliceMut::AntSoA($v) => $body,
            BankSliceMut::Ant($v) => $body,
            BankSliceMut::PreciseSigmoid($v) => $body,
            BankSliceMut::PreciseAdversarial($v) => $body,
            BankSliceMut::Trivial($v) => $body,
            BankSliceMut::ExactGreedy($v) => $body,
            BankSliceMut::Proportional($v) => $body,
            BankSliceMut::Table($v) => $body,
        }
    };
}

impl<'a> BankSliceMut<'a> {
    /// Number of ants in the chunk.
    pub fn len(&self) -> usize {
        each_slice!(self, v => v.len())
    }

    /// True iff the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits the chunk at `mid` into two disjoint chunks.
    pub fn split_at_mut(self, mid: usize) -> (BankSliceMut<'a>, BankSliceMut<'a>) {
        match self {
            BankSliceMut::AntSoA(v) => {
                let (a, b) = v.split_at_mut(mid);
                (BankSliceMut::AntSoA(a), BankSliceMut::AntSoA(b))
            }
            BankSliceMut::Ant(v) => {
                let (a, b) = v.split_at_mut(mid);
                (BankSliceMut::Ant(a), BankSliceMut::Ant(b))
            }
            BankSliceMut::PreciseSigmoid(v) => {
                let (a, b) = v.split_at_mut(mid);
                (
                    BankSliceMut::PreciseSigmoid(a),
                    BankSliceMut::PreciseSigmoid(b),
                )
            }
            BankSliceMut::PreciseAdversarial(v) => {
                let (a, b) = v.split_at_mut(mid);
                (
                    BankSliceMut::PreciseAdversarial(a),
                    BankSliceMut::PreciseAdversarial(b),
                )
            }
            BankSliceMut::Trivial(v) => {
                let (a, b) = v.split_at_mut(mid);
                (BankSliceMut::Trivial(a), BankSliceMut::Trivial(b))
            }
            BankSliceMut::ExactGreedy(v) => {
                let (a, b) = v.split_at_mut(mid);
                (BankSliceMut::ExactGreedy(a), BankSliceMut::ExactGreedy(b))
            }
            BankSliceMut::Proportional(v) => {
                let (a, b) = v.split_at_mut(mid);
                (BankSliceMut::Proportional(a), BankSliceMut::Proportional(b))
            }
            BankSliceMut::Table(v) => {
                let (a, b) = v.split_at_mut(mid);
                (BankSliceMut::Table(a), BankSliceMut::Table(b))
            }
        }
    }

    /// Steps every ant in the chunk (same contract as
    /// [`ControllerBank::step_batch`]).
    pub fn step_batch(&mut self, view: RoundView<'_>, rngs: &mut [AntRng], out: &mut [Assignment]) {
        match self {
            BankSliceMut::AntSoA(v) => v.step_batch(view, rngs, out),
            BankSliceMut::Ant(v) => AlgorithmAnt::step_bank(v, view, rngs, out),
            BankSliceMut::PreciseSigmoid(v) => v.step_batch(view, rngs, out),
            BankSliceMut::PreciseAdversarial(v) => {
                PreciseAdversarial::step_bank(v, view, rngs, out)
            }
            BankSliceMut::Trivial(v) => v.step_batch(view, rngs, out),
            BankSliceMut::ExactGreedy(v) => v.step_batch(view, rngs, out),
            BankSliceMut::Proportional(v) => v.step_batch(view, rngs, out),
            BankSliceMut::Table(v) => TableFsm::step_bank(v, view, rngs, out),
        }
    }

    /// Fused-apply stepping: every ant's next assignment goes straight
    /// into the engine's shared next-state column (at `ids[i]`, the
    /// ant's colony id) and its transition into the writer's local
    /// delta — no decisions buffer, no apply sweep. Draw-for-draw
    /// identical to [`BankSliceMut::step_batch`]: the fused kernels run
    /// the same per-ant code and only change where the result is
    /// stored.
    ///
    /// Takes the round as a [`SensedRound`]; every kernel dispatches on
    /// [`SensedRound::shared_view`] so well-mixed rounds run the exact
    /// pre-sensing-layer loops.
    pub fn step_batch_fused(
        &mut self,
        sensed: SensedRound<'_>,
        rngs: &mut [AntRng],
        ids: &[u32],
        writer: &mut ColumnWriter<'_>,
    ) {
        match self {
            BankSliceMut::AntSoA(v) => v.step_batch_fused(sensed, rngs, ids, writer),
            BankSliceMut::Ant(v) => step_slice_fused(v, sensed, rngs, ids, writer),
            BankSliceMut::PreciseSigmoid(v) => v.step_batch_fused(sensed, rngs, ids, writer),
            BankSliceMut::PreciseAdversarial(v) => step_slice_fused(v, sensed, rngs, ids, writer),
            BankSliceMut::Trivial(v) => v.step_batch_fused(sensed, rngs, ids, writer),
            BankSliceMut::ExactGreedy(v) => v.step_batch_fused(sensed, rngs, ids, writer),
            BankSliceMut::Proportional(v) => v.step_batch_fused(sensed, rngs, ids, writer),
            BankSliceMut::Table(v) => step_slice_fused(v, sensed, rngs, ids, writer),
        }
    }
}

impl FromIterator<AnyController> for ControllerBank {
    /// Collects controllers into a bank; they must all be of one kind.
    ///
    /// # Panics
    /// On an empty iterator (the kind would be unknown) or a kind
    /// mismatch.
    fn from_iter<T: IntoIterator<Item = AnyController>>(iter: T) -> Self {
        let mut iter = iter.into_iter();
        // audit:allow(panic-path): documented precondition — FromIterator cannot name a kind for zero controllers.
        let first = iter.next().expect("cannot infer the kind of an empty bank");
        let mut bank = ControllerBank::empty_like(&first);
        bank.push(first);
        for c in iter {
            bank.push(c);
        }
        bank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{AntParams, PreciseSigmoidParams};
    use crate::precise_sigmoid::PreciseSigmoid;
    use crate::trivial::Trivial;
    use antalloc_noise::NoiseModel;
    use antalloc_rng::StreamSeeder;

    #[test]
    fn bank_stepping_matches_per_ant_stepping() {
        let n = 64;
        let seeder = StreamSeeder::new(42);
        let mut bank: ControllerBank = (0..n)
            .map(|_| AnyController::from(AlgorithmAnt::new(2, AntParams::default())))
            .collect();
        let mut reference: Vec<AnyController> = (0..n)
            .map(|_| AlgorithmAnt::new(2, AntParams::default()).into())
            .collect();
        let mut bank_rngs: Vec<AntRng> = (0..n).map(|i| seeder.ant(i)).collect();
        let mut ref_rngs: Vec<AntRng> = (0..n).map(|i| seeder.ant(i)).collect();
        let model = NoiseModel::Sigmoid { lambda: 1.0 };
        let mut out = vec![Assignment::Idle; n];
        for round in 1..=20u64 {
            let prepared = model.prepare(round, &[3, -2], &[10, 10]);
            bank.step_batch(prepared.view(), &mut bank_rngs, &mut out);
            for (i, c) in reference.iter_mut().enumerate() {
                let mut probe = FeedbackProbe::new(&prepared, &mut ref_rngs[i]);
                assert_eq!(c.step(&mut probe), out[i], "ant {i} round {round}");
            }
        }
    }

    #[test]
    fn split_chunks_cover_the_bank() {
        let mut bank = ControllerBank::Trivial(TrivialBank::new(1, 10));
        let slice = bank.as_slice_mut();
        assert_eq!(slice.len(), 10);
        let (a, b) = slice.split_at_mut(4);
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 6);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_push_panics() {
        let mut bank = ControllerBank::Trivial(TrivialBank::new(1, 0));
        bank.push(AlgorithmAnt::new(1, AntParams::default()).into());
    }

    #[test]
    fn scratch_roundtrips_for_sigmoid_banks_only() {
        let params = PreciseSigmoidParams::new(0.05, 0.5);
        let mut bank: ControllerBank = (0..3)
            .map(|_| AnyController::from(PreciseSigmoid::new(2, params)))
            .collect();
        let scratch = bank.scratch(1).expect("sigmoid banks carry scratch");
        bank.reset_slot(1, Assignment::Task(0));
        bank.apply_scratch(1, &scratch);
        assert_eq!(bank.scratch(1).unwrap(), scratch);
        // Scratch-free kinds report None.
        let bank: ControllerBank = (0..2)
            .map(|_| AnyController::from(Trivial::new(2)))
            .collect();
        assert_eq!(bank.scratch(0), None);
    }
}
