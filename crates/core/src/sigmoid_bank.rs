//! Structure-of-arrays bank for §5 Algorithm Precise Sigmoid.
//!
//! A Precise Sigmoid ant is mostly counters: two `u16` `lack` counts
//! and one frozen median bit per task, incremented every round of a
//! `2m`-round phase. The per-ant struct layout scatters those counters
//! across three heap allocations per ant; this bank transposes them
//! into flat planes — `count1`/`count2` as `n × k` `u16` arrays and
//! `shat1_lack` as an `n × k` byte array, each ant's `k`-row contiguous
//! so the idle path (which touches all `k` entries) streams one cache
//! line instead of chasing three pointers. The idle path's full-vector
//! sample draws through the batched [`RoundView::fill_lack`].
//!
//! **Reference semantics.** [`crate::PreciseSigmoid`] is the truth; the
//! bank consumes every ant's RNG stream in exactly the order
//! `Controller::step` would (samples in task order, then the
//! pause/leave/join coins with the same short-circuits), so bank runs
//! are bit-identical to per-ant runs — pinned by `tests/banks.rs`.
//!
//! The counter planes are also what checkpoints serialize (per ant, as
//! [`SigmoidScratch`]) so a capture *between* phase boundaries — phases
//! are `2m = O(1/ε)` rounds long — resumes mid-phase bit-identically.

use antalloc_env::{Assignment, ColumnWriter};
use antalloc_noise::{RoundView, SensedRound};
use antalloc_rng::{uniform_index, AntRng, Bernoulli};

use crate::ant_bank::{dec, enc, refill, IDLE};
use crate::controller::Controller;
use crate::params::PreciseSigmoidParams;
use crate::precise_sigmoid::{PreciseSigmoid, SigmoidScratch};

/// A homogeneous Precise Sigmoid population in structure-of-arrays
/// layout.
#[derive(Clone, Debug)]
pub struct PreciseSigmoidBank {
    params: PreciseSigmoidParams,
    m: u64,
    pause: Bernoulli,
    leave: Bernoulli,
    num_tasks: usize,
    /// `currentTask` per ant (`IDLE` when idle).
    current: Vec<u32>,
    /// Output assignment `a_t` per ant.
    assignment: Vec<u32>,
    /// Phase-observed-from-start flag per ant.
    have_phase: Vec<u8>,
    /// First-half `lack` counts, ant-major `num_tasks` entries per ant.
    count1: Vec<u16>,
    /// Second-half `lack` counts, same shape.
    count2: Vec<u16>,
    /// Frozen first-half medians (1 = lack), same shape.
    shat1: Vec<u8>,
}

impl PreciseSigmoidBank {
    /// An all-idle bank of `n` fresh ants.
    pub fn new(num_tasks: usize, params: PreciseSigmoidParams, n: usize) -> Self {
        assert!(num_tasks >= 1, "at least one task");
        let m = params.m();
        assert!(m <= u64::from(u16::MAX), "m too large for u16 counters");
        Self {
            params,
            m,
            pause: Bernoulli::new(params.pause_probability()),
            leave: Bernoulli::new(params.leave_probability()),
            num_tasks,
            current: vec![IDLE; n],
            assignment: vec![IDLE; n],
            have_phase: vec![0; n],
            count1: vec![0; n * num_tasks],
            count2: vec![0; n * num_tasks],
            shat1: vec![0; n * num_tasks],
        }
    }

    /// Rebuilds the bank in place to `n` fresh all-idle ants, reusing
    /// the column allocations (shrink keeps capacity, grow
    /// reallocates). State after the call is bit-identical to
    /// `PreciseSigmoidBank::new(num_tasks, params, n)`.
    pub fn reinit(&mut self, num_tasks: usize, params: PreciseSigmoidParams, n: usize) {
        assert!(num_tasks >= 1, "at least one task");
        let m = params.m();
        assert!(m <= u64::from(u16::MAX), "m too large for u16 counters");
        self.params = params;
        self.m = m;
        self.pause = Bernoulli::new(params.pause_probability());
        self.leave = Bernoulli::new(params.leave_probability());
        self.num_tasks = num_tasks;
        refill(&mut self.current, IDLE, n);
        refill(&mut self.assignment, IDLE, n);
        refill(&mut self.have_phase, 0, n);
        refill(&mut self.count1, 0, n * num_tasks);
        refill(&mut self.count2, 0, n * num_tasks);
        refill(&mut self.shat1, 0, n * num_tasks);
    }

    /// The parameters every ant in the bank runs.
    pub fn params(&self) -> &PreciseSigmoidParams {
        &self.params
    }

    /// Number of ants.
    pub fn len(&self) -> usize {
        self.current.len()
    }

    /// True iff the bank holds no ants.
    pub fn is_empty(&self) -> bool {
        self.current.is_empty()
    }

    /// Appends a per-ant controller, transposing its state in.
    pub fn push_controller(&mut self, ant: &PreciseSigmoid) {
        assert_eq!(ant.num_tasks(), self.num_tasks, "task count mismatch");
        debug_assert_eq!(ant.params(), &self.params, "parameter mismatch");
        let s = ant.scratch();
        self.current.push(enc(s.current_task));
        self.assignment.push(enc(ant.assignment()));
        self.have_phase.push(u8::from(s.have_phase));
        self.count1.extend_from_slice(&s.count1);
        self.count2.extend_from_slice(&s.count2);
        self.shat1.extend(s.shat1_lack.iter().map(|&l| u8::from(l)));
    }

    /// Reconstructs the per-ant controller at `slot` (reference
    /// extraction; lossless for the whole state, counters included).
    pub fn to_controller(&self, slot: usize) -> PreciseSigmoid {
        let mut ant = PreciseSigmoid::new(self.num_tasks, self.params);
        ant.reset_to(dec(self.assignment[slot]));
        ant.apply_scratch(&self.scratch(slot));
        ant
    }

    /// The mid-phase counter state of the ant at `slot` (checkpoint
    /// capture; see [`SigmoidScratch`]).
    pub fn scratch(&self, slot: usize) -> SigmoidScratch {
        let k = self.num_tasks;
        let row = slot * k..slot * k + k;
        SigmoidScratch {
            current_task: dec(self.current[slot]),
            have_phase: self.have_phase[slot] == 1,
            count1: self.count1[row.clone()].to_vec(),
            count2: self.count2[row.clone()].to_vec(),
            shat1_lack: self.shat1[row].iter().map(|&b| b == 1).collect(),
        }
    }

    /// Overwrites the mid-phase counter state of the ant at `slot`
    /// (checkpoint restore; the assignment is restored separately via
    /// [`PreciseSigmoidBank::reset_slot`] *before* this).
    ///
    /// # Panics
    /// If the scratch's task count disagrees with the bank's.
    pub fn apply_scratch(&mut self, slot: usize, s: &SigmoidScratch) {
        let k = self.num_tasks;
        assert_eq!(s.count1.len(), k, "task count mismatch");
        assert_eq!(s.count2.len(), k, "task count mismatch");
        assert_eq!(s.shat1_lack.len(), k, "task count mismatch");
        let row = slot * k..slot * k + k;
        self.current[slot] = enc(s.current_task);
        self.have_phase[slot] = u8::from(s.have_phase);
        self.count1[row.clone()].copy_from_slice(&s.count1);
        self.count2[row.clone()].copy_from_slice(&s.count2);
        for (dst, &lack) in self.shat1[row].iter_mut().zip(&s.shat1_lack) {
            *dst = u8::from(lack);
        }
    }

    /// The assignment of the ant at `slot`.
    pub fn assignment(&self, slot: usize) -> Assignment {
        dec(self.assignment[slot])
    }

    /// Forces the ant at `slot` into `a` (see
    /// [`crate::Controller::reset_to`]).
    pub fn reset_slot(&mut self, slot: usize, a: Assignment) {
        let x = enc(a);
        self.assignment[slot] = x;
        self.current[slot] = x;
        self.have_phase[slot] = 0;
    }

    /// Persistent memory in bits (the shared accounting — identical to
    /// the per-ant impl by construction).
    pub fn memory_bits(&self) -> u32 {
        crate::memory::sigmoid_memory_bits(self.num_tasks, self.m)
    }

    /// Removes the ant at `slot` by swap-removal.
    pub fn swap_remove(&mut self, slot: usize) {
        let k = self.num_tasks;
        let last = self.len() - 1;
        self.current.swap_remove(slot);
        self.assignment.swap_remove(slot);
        self.have_phase.swap_remove(slot);
        for plane in [&mut self.count1, &mut self.count2] {
            if slot != last {
                let (head, tail) = plane.split_at_mut(last * k);
                head[slot * k..slot * k + k].copy_from_slice(&tail[..k]);
            }
            plane.truncate(last * k);
        }
        if slot != last {
            let (head, tail) = self.shat1.split_at_mut(last * k);
            head[slot * k..slot * k + k].copy_from_slice(&tail[..k]);
        }
        self.shat1.truncate(last * k);
    }

    /// The whole bank as a splittable mutable slice.
    pub fn as_slice_mut(&mut self) -> SigmoidSliceMut<'_> {
        SigmoidSliceMut {
            m: self.m,
            pause: self.pause,
            leave: self.leave,
            num_tasks: self.num_tasks,
            current: &mut self.current,
            assignment: &mut self.assignment,
            have_phase: &mut self.have_phase,
            count1: &mut self.count1,
            count2: &mut self.count2,
            shat1: &mut self.shat1,
        }
    }

    /// Steps the single ant at `slot` (the sequential model's path) —
    /// the same kernel as the bank loop, on a one-ant chunk.
    pub fn step_slot(&mut self, slot: usize, view: RoundView<'_>, rng: &mut AntRng) -> Assignment {
        let k = self.num_tasks;
        // Stack scratch for the common ≤ 64-task case: this is the
        // sequential model's per-round path, so no per-call allocation.
        let mut stack = [0u8; 64];
        let mut heap = Vec::new();
        let row: &mut [u8] = if k <= 64 {
            &mut stack[..k]
        } else {
            heap.resize(k, 0);
            &mut heap
        };
        let mut slice = SigmoidSliceMut {
            m: self.m,
            pause: self.pause,
            leave: self.leave,
            num_tasks: k,
            current: &mut self.current[slot..slot + 1],
            assignment: &mut self.assignment[slot..slot + 1],
            have_phase: &mut self.have_phase[slot..slot + 1],
            count1: &mut self.count1[slot * k..slot * k + k],
            count2: &mut self.count2[slot * k..slot * k + k],
            shat1: &mut self.shat1[slot * k..slot * k + k],
        };
        let r = view.round() % (2 * slice.m);
        slice.step_one(0, r, view, rng, row)
    }
}

/// A disjoint mutable chunk of a [`PreciseSigmoidBank`].
#[derive(Debug)]
pub struct SigmoidSliceMut<'a> {
    m: u64,
    pause: Bernoulli,
    leave: Bernoulli,
    num_tasks: usize,
    current: &'a mut [u32],
    assignment: &'a mut [u32],
    have_phase: &'a mut [u8],
    count1: &'a mut [u16],
    count2: &'a mut [u16],
    shat1: &'a mut [u8],
}

impl<'a> SigmoidSliceMut<'a> {
    /// Number of ants in the chunk.
    pub fn len(&self) -> usize {
        self.current.len()
    }

    /// True iff the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.current.is_empty()
    }

    /// Splits the chunk at `mid` into two disjoint chunks.
    pub fn split_at_mut(self, mid: usize) -> (SigmoidSliceMut<'a>, SigmoidSliceMut<'a>) {
        let k = self.num_tasks;
        let (cu1, cu2) = self.current.split_at_mut(mid);
        let (a1, a2) = self.assignment.split_at_mut(mid);
        let (h1, h2) = self.have_phase.split_at_mut(mid);
        let (c11, c12) = self.count1.split_at_mut(mid * k);
        let (c21, c22) = self.count2.split_at_mut(mid * k);
        let (s1, s2) = self.shat1.split_at_mut(mid * k);
        (
            SigmoidSliceMut {
                m: self.m,
                pause: self.pause,
                leave: self.leave,
                num_tasks: k,
                current: cu1,
                assignment: a1,
                have_phase: h1,
                count1: c11,
                count2: c21,
                shat1: s1,
            },
            SigmoidSliceMut {
                m: self.m,
                pause: self.pause,
                leave: self.leave,
                num_tasks: k,
                current: cu2,
                assignment: a2,
                have_phase: h2,
                count1: c12,
                count2: c22,
                shat1: s2,
            },
        )
    }

    /// Steps every ant in the chunk; bit-identical to per-ant
    /// [`Controller::step`] on [`PreciseSigmoid`]. The phase position is
    /// computed once for the whole chunk (all ants share the global
    /// clock).
    pub fn step_batch(&mut self, view: RoundView<'_>, rngs: &mut [AntRng], out: &mut [Assignment]) {
        let n = self.len();
        assert_eq!(n, rngs.len(), "one RNG stream per ant");
        assert_eq!(n, out.len(), "one decision slot per ant");
        let r = view.round() % (2 * self.m);
        // Stack scratch for the common ≤ 64-task case; one heap buffer
        // per bank-round beyond that.
        let mut stack = [0u8; 64];
        let mut heap = Vec::new();
        let row: &mut [u8] = if self.num_tasks <= 64 {
            &mut stack[..self.num_tasks]
        } else {
            heap.resize(self.num_tasks, 0);
            &mut heap
        };
        for i in 0..n {
            out[i] = self.step_one(i, r, view, &mut rngs[i], row);
        }
    }

    /// Fused-apply variant of [`SigmoidSliceMut::step_batch`]: same
    /// draws, with each transition routed through `writer` (shared next
    /// column + local delta) at the ant's colony id (`ids[i]`).
    ///
    /// Takes the round as a [`SensedRound`]: the well-mixed (shared)
    /// form runs the pre-existing hoisted-view loop; the per-ant form
    /// re-selects the view per ant (`sensed.view_for(ids[i])`).
    pub fn step_batch_fused(
        &mut self,
        sensed: SensedRound<'_>,
        rngs: &mut [AntRng],
        ids: &[u32],
        writer: &mut ColumnWriter<'_>,
    ) {
        let n = self.len();
        assert_eq!(n, rngs.len(), "one RNG stream per ant");
        assert_eq!(n, ids.len(), "one colony id per ant");
        let r = sensed.round() % (2 * self.m);
        let mut stack = [0u8; 64];
        let mut heap = Vec::new();
        let row: &mut [u8] = if self.num_tasks <= 64 {
            &mut stack[..self.num_tasks]
        } else {
            heap.resize(self.num_tasks, 0);
            &mut heap
        };
        match sensed.shared_view() {
            Some(view) => {
                for i in 0..n {
                    self.step_one(i, r, view, &mut rngs[i], row);
                    writer.write(ids[i], self.assignment[i]);
                }
            }
            None => {
                for i in 0..n {
                    self.step_one(i, r, sensed.view_for(ids[i]), &mut rngs[i], row);
                    writer.write(ids[i], self.assignment[i]);
                }
            }
        }
    }

    /// One ant's round at phase position `r = round mod 2m`, mirroring
    /// [`PreciseSigmoid::step`] clause for clause.
    #[inline(always)]
    fn step_one(
        &mut self,
        i: usize,
        r: u64,
        view: RoundView<'_>,
        rng: &mut AntRng,
        row: &mut [u8],
    ) -> Assignment {
        let k = self.num_tasks;
        if r == 1 {
            // Phase start: adopt a_{t−1} as currentTask, reset counters.
            self.current[i] = self.assignment[i];
            self.count1[i * k..i * k + k].fill(0);
            self.count2[i * k..i * k + k].fill(0);
            self.have_phase[i] = 1;
        }
        if self.have_phase[i] == 0 {
            // Joined mid-phase (reset); idle out the remainder.
            return dec(self.assignment[i]);
        }
        let first_half = (1..=self.m).contains(&r);
        let cur = self.current[i];
        {
            // sample_into: one draw for the current task, or the batched
            // full-vector draw on the idle path.
            let counts = if first_half {
                &mut self.count1[i * k..i * k + k]
            } else {
                &mut self.count2[i * k..i * k + k]
            };
            if cur != IDLE {
                let t = crate::cast::task_ix(cur);
                counts[t] += u16::from(view.sample(t, rng).is_lack());
            } else {
                view.fill_lack(rng, row);
                for (c, &lack) in counts.iter_mut().zip(row.iter()) {
                    *c += u16::from(lack);
                }
            }
        }
        let m = self.m;
        let median_is_lack = move |count: u16| u64::from(count) * 2 > m;
        if r == self.m {
            // Freeze ŝ1 and take the temporary pause.
            for j in 0..k {
                self.shat1[i * k + j] = u8::from(median_is_lack(self.count1[i * k + j]));
            }
            if cur != IDLE {
                self.assignment[i] = if self.pause.sample(rng) { IDLE } else { cur };
            }
        } else if r == 0 {
            // Phase end: compute ŝ2 and decide, exactly as Algorithm Ant.
            if cur == IDLE {
                let joinable = |this: &Self, j: usize| {
                    this.shat1[i * k + j] == 1 && median_is_lack(this.count2[i * k + j])
                };
                let count = (0..k).filter(|&j| joinable(self, j)).count();
                self.assignment[i] = if count == 0 {
                    IDLE
                } else {
                    let pick = uniform_index(rng, count);
                    let j = (0..k)
                        .filter(|&j| joinable(self, j))
                        .nth(pick)
                        // audit:allow(panic-path): pick was drawn as uniform_index(count) over this very filter.
                        .expect("pick < count");
                    crate::cast::task_col(j)
                };
            } else {
                let ju = i * k + crate::cast::task_ix(cur);
                let both_overload = self.shat1[ju] == 0 && !median_is_lack(self.count2[ju]);
                self.assignment[i] = if both_overload && self.leave.sample(rng) {
                    IDLE
                } else {
                    cur
                };
            }
            self.have_phase[i] = 0;
        }
        // All other rounds: keep the current assignment (a_t ← a_{t−1}).
        dec(self.assignment[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antalloc_noise::{FeedbackProbe, NoiseModel};
    use antalloc_rng::StreamSeeder;

    /// The SoA bank against the per-ant reference, round for round,
    /// across several full phases (joins, leaves, pauses, mid-phase
    /// resets) — including reconstruction losslessness mid-phase.
    #[test]
    fn soa_bank_matches_per_ant_stepping() {
        let n = 80;
        let k = 2;
        let params = PreciseSigmoidParams::new(0.05, 0.5); // phase 82
        let seeder = StreamSeeder::new(23);
        let mut bank = PreciseSigmoidBank::new(k, params, n);
        let mut reference: Vec<PreciseSigmoid> =
            (0..n).map(|_| PreciseSigmoid::new(k, params)).collect();
        let mut bank_rngs: Vec<AntRng> = (0..n).map(|i| seeder.ant(i)).collect();
        let mut ref_rngs: Vec<AntRng> = (0..n).map(|i| seeder.ant(i)).collect();
        let model = NoiseModel::Sigmoid { lambda: 1.0 };
        let mut out = vec![Assignment::Idle; n];
        for round in 1..=200u64 {
            let prepared = model.prepare(round, &[5, -5], &[25, 25]);
            bank.as_slice_mut()
                .step_batch(prepared.view(), &mut bank_rngs, &mut out);
            for (i, ant) in reference.iter_mut().enumerate() {
                let mut probe = FeedbackProbe::new(&prepared, &mut ref_rngs[i]);
                assert_eq!(ant.step(&mut probe), out[i], "ant {i} round {round}");
                assert_eq!(ant.assignment(), bank.assignment(i), "ant {i}");
            }
            if round == 137 {
                // Mid-phase reconstruction: counters must come out
                // losslessly, so a rebuilt ant continues in lockstep.
                for (i, ant) in reference.iter().enumerate() {
                    let rebuilt = bank.to_controller(i);
                    assert_eq!(rebuilt.scratch(), ant.scratch(), "ant {i}");
                    assert_eq!(rebuilt.assignment(), ant.assignment());
                }
            }
        }
    }

    #[test]
    fn push_and_reconstruct_roundtrip_mid_phase() {
        let params = PreciseSigmoidParams::new(0.05, 0.5);
        let mut ant = PreciseSigmoid::new(2, params);
        let mut rng = StreamSeeder::new(3).ant(0);
        let model = NoiseModel::Sigmoid { lambda: 1.0 };
        for round in 1..=37 {
            let prepared = model.prepare(round, &[3, -3], &[10, 10]);
            let mut probe = FeedbackProbe::new(&prepared, &mut rng);
            ant.step(&mut probe);
        }
        let mut bank = PreciseSigmoidBank::new(2, params, 0);
        bank.push_controller(&ant);
        let back = bank.to_controller(0);
        assert_eq!(back.scratch(), ant.scratch());
        assert_eq!(back.assignment(), ant.assignment());
    }

    #[test]
    fn swap_remove_moves_all_planes() {
        let params = PreciseSigmoidParams::new(0.05, 0.5);
        let mut bank = PreciseSigmoidBank::new(2, params, 3);
        bank.reset_slot(0, Assignment::Task(0));
        bank.reset_slot(2, Assignment::Task(1));
        bank.count1[2 * 2] = 7; // slot 2, task 0
        bank.swap_remove(0);
        assert_eq!(bank.len(), 2);
        assert_eq!(bank.assignment(0), Assignment::Task(1)); // old slot 2
        assert_eq!(bank.count1[0], 7, "slot 2's counter row moved into slot 0");
    }
}
