//! The per-ant controllers of *Self-Stabilizing Task Allocation In Spite
//! of Noise* (SPAA 2020).
//!
//! Every algorithm in the paper is a small per-ant state machine driven
//! only by the noisy feedback vector: no communication, no access to
//! loads or demands. This crate implements them all:
//!
//! * [`AlgorithmAnt`] — §4: the constant-memory two-sample protocol
//!   (Theorem 3.1).
//! * [`PreciseSigmoid`] — §5: median-amplified samples, step size
//!   `εγ/c_χ` (Theorem 3.2).
//! * [`PreciseAdversarial`] — Appendix C: ramped first sub-phase and a
//!   frozen second sub-phase (Theorem 3.6).
//! * [`Trivial`] — Appendix D: the single-sample join/leave rule that
//!   works sequentially but oscillates synchronously.
//! * [`ExactGreedy`] — an exact-feedback baseline in the style of
//!   Cornejo et al. \[11\], the noise-free comparison point.
//! * [`ProportionalController`] — a control-theoretic rival
//!   (gain/deadband stochastic P-controller) to race against the
//!   paper's ants under the same noise models.
//! * [`TableFsm`] — an explicit finite-state machine with an
//!   Assumption 2.2 reachability checker, used by the Theorem 3.3
//!   memory-floor experiments.
//!
//! All controllers implement [`Controller`]. Engines store ants in
//! homogeneous [`ControllerBank`]s — one bank per controller kind,
//! stepped in a tight monomorphic loop ([`step_slice`]) that is
//! bit-identical to per-ant stepping; [`AnyController`] is the
//! per-ant dispatch enum used for spawning, reference replays, and
//! tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ant;
mod ant_bank;
mod bank;
mod cast;
mod controller;
mod exact_greedy;
mod flat_bank;
mod memory;
mod params;
mod precise_adversarial;
mod precise_sigmoid;
mod proportional;
mod sigmoid_bank;
mod table_fsm;
mod trivial;

pub use ant::AlgorithmAnt;
pub use ant_bank::{AntBank, AntSliceMut};
pub use bank::{BankSliceMut, ControllerBank, ControllerScratch};
pub use controller::{step_slice, step_slice_fused, AnyController, Controller};
pub use exact_greedy::{ExactGreedy, ExactGreedyParams};
pub use flat_bank::{ExactGreedyBank, ExactGreedySliceMut, TrivialBank, TrivialSliceMut};
pub use memory::{bits_for_states, closeness_floor, MemoryFootprint};
pub use params::{AntParams, PreciseAdversarialParams, PreciseSigmoidParams};
pub use precise_adversarial::{AdversarialScratch, PreciseAdversarial};
pub use precise_sigmoid::{PreciseSigmoid, SigmoidScratch};
pub use proportional::{
    ProportionalBank, ProportionalController, ProportionalParams, ProportionalSliceMut,
};
pub use sigmoid_bank::{PreciseSigmoidBank, SigmoidSliceMut};
pub use table_fsm::{FsmSpec, ReachabilityError, TableFsm};
pub use trivial::Trivial;
