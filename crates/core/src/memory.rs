//! Memory accounting for the Theorem 3.3 experiments.

/// Bits needed to address `states` distinct states: `⌈log2(states)⌉`
/// (one state still counts as 0 bits of *choice*, but we report 1 so a
/// degenerate machine is visible in tables).
pub fn bits_for_states(states: usize) -> u32 {
    assert!(states >= 1);
    if states == 1 {
        return 1;
    }
    usize::BITS - (states - 1).leading_zeros()
}

/// Precise Sigmoid's memory accounting, shared by the per-ant
/// controller and its structure-of-arrays bank so the two can never
/// report different figures: `currentTask` (one of `k + 1` values) +
/// two counters of `⌈log2(m + 1)⌉` bits per task + the frozen median
/// bit per task + the phase flag. The paper's `O(log 1/ε)` is the
/// per-task counter width; `k` is a constant in its accounting.
pub(crate) fn sigmoid_memory_bits(num_tasks: usize, m: u64) -> u32 {
    let k = num_tasks as u32;
    let counter_bits = u64::BITS - (m + 1).leading_zeros();
    bits_for_states(num_tasks + 1) + 2 * k * counter_bits + k + 1
}

/// The closeness floor Theorem 3.3 predicts for a memory budget.
///
/// Reading the theorem contrapositively: with `b` bits, no algorithm can
/// be `ε`-close for `ε < 2^{−b/c}`; this returns that floor. `c` is the
/// theorem's unspecified constant — experiments fit it, with `c = 1`
/// the geometry of the proof (`s = 2^b` states vs `s ≈ 1/(16√ε)`)
/// suggesting `ε ≈ 256/ s²` up to constants.
pub fn closeness_floor(bits: u32, c: f64) -> f64 {
    assert!(c > 0.0);
    2f64.powf(-f64::from(bits) / c)
}

/// A controller's memory footprint, in the units each theorem speaks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemoryFootprint {
    /// Persistent bits, per [`crate::Controller::memory_bits`].
    pub bits: u32,
}

impl MemoryFootprint {
    /// States this many bits can address.
    pub fn states(&self) -> u64 {
        1u64 << self.bits.min(63)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_states_rounds_up() {
        assert_eq!(bits_for_states(1), 1);
        assert_eq!(bits_for_states(2), 1);
        assert_eq!(bits_for_states(3), 2);
        assert_eq!(bits_for_states(4), 2);
        assert_eq!(bits_for_states(5), 3);
        assert_eq!(bits_for_states(1 << 16), 16);
    }

    #[test]
    fn closeness_floor_halves_per_bit_at_c1() {
        let a = closeness_floor(4, 1.0);
        let b = closeness_floor(5, 1.0);
        assert!((a / b - 2.0).abs() < 1e-12);
    }

    #[test]
    fn footprint_states() {
        assert_eq!(MemoryFootprint { bits: 3 }.states(), 8);
    }
}
