//! Task-switch counting.
//!
//! Theorem 3.6 remarks that Algorithm Precise Adversarial "also minimizes
//! the total number of switches of ants between tasks in comparison to
//! Algorithm Ant" — relevant if regret were extended with switching
//! costs. The engine reports the number of assignment changes per round;
//! this accumulates them.

/// Streaming switch statistics.
#[derive(Clone, Debug, Default)]
pub struct SwitchStats {
    total: u128,
    rounds: u64,
    max_in_round: u64,
}

impl SwitchStats {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one round's switch count in.
    pub fn record(&mut self, switches: u64) {
        self.total += u128::from(switches);
        self.rounds += 1;
        self.max_in_round = self.max_in_round.max(switches);
    }

    /// Total switches.
    pub fn total(&self) -> u128 {
        self.total
    }

    /// Mean switches per round.
    pub fn per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.total as f64 / self.rounds as f64
        }
    }

    /// Mean switches per ant-round, given the colony size.
    pub fn per_ant_round(&self, n: usize) -> f64 {
        self.per_round() / n as f64
    }

    /// Largest per-round switch count (the synchronous-trivial
    /// experiment's `Θ(n)` flip-flop shows up here).
    pub fn max_in_round(&self) -> u64 {
        self.max_in_round
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let mut s = SwitchStats::new();
        s.record(10);
        s.record(0);
        s.record(5);
        assert_eq!(s.total(), 15);
        assert!((s.per_round() - 5.0).abs() < 1e-12);
        assert!((s.per_ant_round(10) - 0.5).abs() < 1e-12);
        assert_eq!(s.max_in_round(), 10);
    }

    #[test]
    fn empty_is_zero() {
        let s = SwitchStats::new();
        assert_eq!(s.per_round(), 0.0);
        assert_eq!(s.max_in_round(), 0);
    }
}
