//! The regret metric and its §4 decomposition.
//!
//! `r(t) = Σ_j |Δ(j)_t|`, `R(t) = Σ_{τ≤t} r(τ)`. The analysis splits
//! `r` by how far the load sits from the demand, with
//! `c⁺ = 1.2·c_s` and `c⁻ = 1 + 1.2·c_s`:
//!
//! * `r⁺` — mass above `(1 + c⁺γ)d` (significant overload),
//! * `r⁻` — mass below `(1 − c⁻γ)d` (significant lack),
//! * `r≈` — the remainder (the small controlled oscillation).
//!
//! Theorem 3.1's shape is: `R⁺` and `R⁻` are one-off `O(nk/γ)` costs,
//! while `R≈` accrues `O(γΣd)` forever — the experiments print exactly
//! these columns.

/// Totals of the regret decomposition up to the current round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegretBreakdown {
    /// Rounds accumulated.
    pub rounds: u64,
    /// Total regret `R(t)`.
    pub total: u128,
    /// Overload component `R⁺(t)`.
    pub plus: u128,
    /// Lack component `R⁻(t)`.
    pub minus: u128,
    /// Near-demand component `R≈(t)`.
    pub near: u128,
    /// Rounds with `r⁺ > 0` (Claim 4.3 bounds these by `O(k log n/γ)`).
    pub rounds_plus_positive: u64,
    /// Rounds with `r⁻ > 0`.
    pub rounds_minus_positive: u64,
    /// (round, task) pairs with `|Δ(j)| > 5γ·d(j)` (Theorem 3.1's
    /// per-task deficit bound).
    pub deficit_bound_violations: u64,
}

impl RegretBreakdown {
    /// Average regret per round, `R(t)/t`.
    pub fn average(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.total as f64 / self.rounds as f64
        }
    }
}

/// Streaming accumulator for [`RegretBreakdown`].
///
/// `gamma`, `c_s` configure the split thresholds; a `warmup` prefix of
/// rounds can be excluded so steady-state rates aren't polluted by the
/// initial transient (the paper's bounds separate exactly these two
/// terms).
#[derive(Clone, Debug)]
pub struct RegretTracker {
    gamma: f64,
    c_plus: f64,
    c_minus: f64,
    warmup: u64,
    seen: u64,
    stats: RegretBreakdown,
}

impl RegretTracker {
    /// A tracker with the paper's `c⁺/c⁻` derived from `c_s`.
    pub fn new(gamma: f64, c_s: f64, warmup: u64) -> Self {
        Self {
            gamma,
            c_plus: 1.2 * c_s,
            c_minus: 1.0 + 1.2 * c_s,
            warmup,
            seen: 0,
            stats: RegretBreakdown::default(),
        }
    }

    /// Tracker with the default constants (`c_s = 2.5`) and no warmup.
    pub fn with_gamma(gamma: f64) -> Self {
        Self::new(gamma, 2.5, 0)
    }

    /// Folds one round's deficits in. `deficits[j] = d(j) − W(j)`.
    pub fn record(&mut self, deficits: &[i64], demands: &[u64]) {
        debug_assert_eq!(deficits.len(), demands.len());
        self.seen += 1;
        if self.seen <= self.warmup {
            return;
        }
        let mut r_total = 0u64;
        let mut r_plus = 0u64;
        let mut r_minus = 0u64;
        let mut violations = 0u64;
        for (&delta, &d) in deficits.iter().zip(demands) {
            let df = d as f64;
            r_total += delta.unsigned_abs();
            // Overload beyond (1 + c⁺γ)d ⟺ −Δ > c⁺γd.
            let over = (-delta) as f64 - self.c_plus * self.gamma * df;
            if over > 0.0 {
                r_plus += over.ceil() as u64;
            }
            // Lack below (1 − c⁻γ)d ⟺ Δ > c⁻γd.
            let lack = delta as f64 - self.c_minus * self.gamma * df;
            if lack > 0.0 {
                r_minus += lack.ceil() as u64;
            }
            if delta.unsigned_abs() as f64 > 5.0 * self.gamma * df {
                violations += 1;
            }
        }
        let s = &mut self.stats;
        s.rounds += 1;
        s.total += u128::from(r_total);
        s.plus += u128::from(r_plus);
        s.minus += u128::from(r_minus);
        // Per task, the over/lack excess never exceeds |Δ| and a task is
        // never both overloaded and lacking, so the subtraction is safe.
        s.near += u128::from(r_total - r_plus - r_minus);
        s.rounds_plus_positive += u64::from(r_plus > 0);
        s.rounds_minus_positive += u64::from(r_minus > 0);
        s.deficit_bound_violations += violations;
    }

    /// The totals so far (excluding warmup rounds).
    pub fn breakdown(&self) -> RegretBreakdown {
        self.stats
    }

    /// Rounds consumed, including warmup.
    pub fn rounds_seen(&self) -> u64 {
        self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn total_is_sum_of_absolute_deficits() {
        let mut t = RegretTracker::with_gamma(0.05);
        t.record(&[3, -4, 0], &[100, 100, 100]);
        let b = t.breakdown();
        assert_eq!(b.total, 7);
        assert_eq!(b.rounds, 1);
        assert_eq!(b.average(), 7.0);
    }

    #[test]
    fn split_thresholds() {
        // γ = 0.1, c_s = 2.5 → c⁺γd = 30, c⁻γd = 40 at d = 100… use
        // d = 100: overload threshold 30, lack threshold 40.
        let mut t = RegretTracker::new(0.1, 2.5, 0);
        // Deficit −35: overload 35 > 30 → r⁺ = 5, rest near.
        t.record(&[-35], &[100]);
        let b = t.breakdown();
        assert_eq!(b.plus, 5);
        assert_eq!(b.minus, 0);
        assert_eq!(b.near, 30);
        assert_eq!(b.total, 35);
        assert_eq!(b.rounds_plus_positive, 1);

        // Deficit +45: lack 45 > 40 → r⁻ = 5.
        let mut t = RegretTracker::new(0.1, 2.5, 0);
        t.record(&[45], &[100]);
        let b = t.breakdown();
        assert_eq!(b.minus, 5);
        assert_eq!(b.plus, 0);
        assert_eq!(b.near, 40);

        // Deficit within both thresholds: all near.
        let mut t = RegretTracker::new(0.1, 2.5, 0);
        t.record(&[-20], &[100]);
        let b = t.breakdown();
        assert_eq!(b.near, 20);
        assert_eq!(b.rounds_plus_positive, 0);
        assert_eq!(b.rounds_minus_positive, 0);
    }

    #[test]
    fn deficit_bound_violations_use_5_gamma_d() {
        // 5γd = 25 at γ=0.05, d=100.
        let mut t = RegretTracker::with_gamma(0.05);
        t.record(&[26, -26, 25], &[100, 100, 100]);
        assert_eq!(t.breakdown().deficit_bound_violations, 2);
    }

    #[test]
    fn warmup_is_excluded() {
        let mut t = RegretTracker::new(0.05, 2.5, 2);
        t.record(&[100], &[100]);
        t.record(&[100], &[100]);
        assert_eq!(t.breakdown().rounds, 0);
        t.record(&[7], &[100]);
        let b = t.breakdown();
        assert_eq!(b.rounds, 1);
        assert_eq!(b.total, 7);
        assert_eq!(t.rounds_seen(), 3);
    }

    proptest! {
        /// The decomposition always sums back to the total.
        #[test]
        fn split_sums_to_total(
            deficits in proptest::collection::vec(-1_000i64..1_000, 1..8),
            gamma in 0.01f64..0.0625,
        ) {
            let demands: Vec<u64> = vec![500; deficits.len()];
            let mut t = RegretTracker::new(gamma, 2.5, 0);
            t.record(&deficits, &demands);
            let b = t.breakdown();
            prop_assert_eq!(b.plus + b.minus + b.near, b.total);
        }

        /// Total equals the independent direct computation.
        #[test]
        fn total_matches_direct(
            deficits in proptest::collection::vec(-10_000i64..10_000, 1..10),
        ) {
            let demands: Vec<u64> = vec![1000; deficits.len()];
            let mut t = RegretTracker::with_gamma(0.03);
            t.record(&deficits, &demands);
            let want: u128 = deficits.iter().map(|d| u128::from(d.unsigned_abs())).sum();
            prop_assert_eq!(t.breakdown().total, want);
        }
    }
}
