//! Saturation and stabilization detection (Claim 4.4 / Theorem 3.1).

/// Detects the paper's saturation predicate — every task at load
/// `W(j) ≥ (1−γ)·d(j)` — and the stronger "stable band" predicate
/// `|Δ(j)| ≤ band·d(j)` holding for `stability_window` consecutive
/// rounds, which the self-stabilization experiments use as their
/// convergence criterion.
#[derive(Clone, Debug)]
pub struct SaturationDetector {
    gamma: f64,
    band: f64,
    stability_window: u64,
    first_saturated: Option<u64>,
    stable_run: u64,
    stabilized_at: Option<u64>,
    rounds: u64,
    saturated_rounds: u64,
}

impl SaturationDetector {
    /// `gamma` for the saturation predicate, `band` (fraction of demand)
    /// and `stability_window` for the stabilization predicate.
    pub fn new(gamma: f64, band: f64, stability_window: u64) -> Self {
        assert!(stability_window > 0);
        Self {
            gamma,
            band,
            stability_window,
            first_saturated: None,
            stable_run: 0,
            stabilized_at: None,
            rounds: 0,
            saturated_rounds: 0,
        }
    }

    /// Folds one round in. `loads[j] = W(j)`.
    pub fn record(&mut self, round: u64, loads: &[u32], demands: &[u64]) {
        debug_assert_eq!(loads.len(), demands.len());
        self.rounds += 1;
        let saturated = loads
            .iter()
            .zip(demands)
            .all(|(&w, &d)| f64::from(w) >= (1.0 - self.gamma) * d as f64);
        if saturated {
            self.saturated_rounds += 1;
            if self.first_saturated.is_none() {
                self.first_saturated = Some(round);
            }
        }
        let in_band = loads.iter().zip(demands).all(|(&w, &d)| {
            let delta = (d as f64 - f64::from(w)).abs();
            delta <= self.band * d as f64
        });
        if in_band {
            self.stable_run += 1;
            if self.stable_run >= self.stability_window && self.stabilized_at.is_none() {
                self.stabilized_at = Some(round + 1 - self.stability_window);
            }
        } else {
            self.stable_run = 0;
        }
    }

    /// First round with all tasks saturated, if any.
    pub fn first_saturated(&self) -> Option<u64> {
        self.first_saturated
    }

    /// First round from which the stable band held for a full window.
    pub fn stabilized_at(&self) -> Option<u64> {
        self.stabilized_at
    }

    /// Fraction of recorded rounds that were saturated.
    pub fn saturated_fraction(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.saturated_rounds as f64 / self.rounds as f64
        }
    }

    /// Clears the stabilization state (call after injecting a
    /// perturbation, so recovery time is measured afresh).
    pub fn rearm(&mut self) {
        self.first_saturated = None;
        self.stable_run = 0;
        self.stabilized_at = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_saturation_and_stability() {
        let mut s = SaturationDetector::new(0.1, 0.2, 3);
        // Round 1: task under-saturated and outside the stable band.
        s.record(1, &[70], &[100]);
        assert_eq!(s.first_saturated(), None);
        // Rounds 2..4: inside both predicates.
        s.record(2, &[95], &[100]);
        s.record(3, &[105], &[100]);
        s.record(4, &[100], &[100]);
        assert_eq!(s.first_saturated(), Some(2));
        assert_eq!(s.stabilized_at(), Some(2));
        assert!((s.saturated_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn stability_requires_consecutive_rounds() {
        let mut s = SaturationDetector::new(0.1, 0.1, 3);
        s.record(1, &[100], &[100]);
        s.record(2, &[100], &[100]);
        s.record(3, &[50], &[100]); // breaks the run
        s.record(4, &[100], &[100]);
        s.record(5, &[100], &[100]);
        assert_eq!(s.stabilized_at(), None);
        s.record(6, &[100], &[100]);
        assert_eq!(s.stabilized_at(), Some(4));
    }

    #[test]
    fn rearm_resets_for_recovery_measurement() {
        let mut s = SaturationDetector::new(0.1, 0.1, 2);
        s.record(1, &[100], &[100]);
        s.record(2, &[100], &[100]);
        assert!(s.stabilized_at().is_some());
        s.rearm();
        assert_eq!(s.stabilized_at(), None);
        s.record(3, &[100], &[100]);
        s.record(4, &[100], &[100]);
        assert_eq!(s.stabilized_at(), Some(3));
    }

    #[test]
    fn overload_counts_as_saturated_but_not_stable() {
        let mut s = SaturationDetector::new(0.1, 0.05, 1);
        s.record(1, &[150], &[100]);
        assert_eq!(s.first_saturated(), Some(1));
        assert_eq!(s.stabilized_at(), None);
    }
}
