//! `c`-closeness (§2.3): `lim_{t→∞} R(t)/t ≤ c·γ*·Σd + O(1)`.

/// Estimates the closeness constant of a run: the measured average
/// regret per round divided by the `γ*·Σd` yardstick.
#[derive(Clone, Debug)]
pub struct ClosenessEstimator {
    gamma_star: f64,
    sum_demands: f64,
    total: u128,
    rounds: u64,
    warmup: u64,
    seen: u64,
}

impl ClosenessEstimator {
    /// Builds the estimator; `warmup` rounds are excluded so the one-off
    /// convergence cost (the paper's `cnk/γ` term) doesn't bias the
    /// perpetual rate.
    pub fn new(gamma_star: f64, demands: &[u64], warmup: u64) -> Self {
        assert!(gamma_star > 0.0, "γ* must be positive");
        Self {
            gamma_star,
            sum_demands: demands.iter().map(|&d| d as f64).sum(),
            total: 0,
            rounds: 0,
            warmup,
            seen: 0,
        }
    }

    /// Folds one round's instantaneous regret in.
    pub fn record(&mut self, instant_regret: u64) {
        self.seen += 1;
        if self.seen <= self.warmup {
            return;
        }
        self.total += u128::from(instant_regret);
        self.rounds += 1;
    }

    /// Average regret per (post-warmup) round.
    pub fn average_regret(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.total as f64 / self.rounds as f64
        }
    }

    /// The closeness constant `c = (R/t)/(γ*Σd)`.
    ///
    /// Theorem 3.1 predicts `c ≤ 5·γ/γ*` for Algorithm Ant; Theorem 3.3
    /// lower-bounds it by `ε` for `c·log(1/ε)`-bit algorithms.
    pub fn closeness(&self) -> f64 {
        self.average_regret() / (self.gamma_star * self.sum_demands)
    }

    /// Rounds counted after warmup.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_ratio() {
        let mut c = ClosenessEstimator::new(0.1, &[100, 100], 0);
        // γ*Σd = 20; average regret 10 → closeness 0.5.
        c.record(10);
        c.record(10);
        assert_eq!(c.average_regret(), 10.0);
        assert!((c.closeness() - 0.5).abs() < 1e-12);
        assert_eq!(c.rounds(), 2);
    }

    #[test]
    fn warmup_skipped() {
        let mut c = ClosenessEstimator::new(0.1, &[100], 1);
        c.record(1_000_000);
        c.record(5);
        assert_eq!(c.average_regret(), 5.0);
    }

    #[test]
    fn empty_is_zero() {
        let c = ClosenessEstimator::new(0.1, &[100], 0);
        assert_eq!(c.average_regret(), 0.0);
        assert_eq!(c.closeness(), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_gamma_star() {
        ClosenessEstimator::new(0.0, &[100], 0);
    }
}
