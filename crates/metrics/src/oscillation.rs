//! Oscillation statistics and the Theorem 3.3 blow-up detector.
//!
//! The paper's qualitative claim: any algorithm that parks the deficit
//! *too close to zero* (inside `2εγ*d`) for a stretch of rounds will —
//! because feedback there is a fair coin — subsequently suffer an
//! excursion of order `ω(γ*d)`. [`OscillationStats`] measures sign
//! changes and amplitudes per task, and records the largest excursion
//! observed within `horizon` rounds after every "quiet period".

/// Per-task oscillation accounting.
#[derive(Clone, Debug)]
pub struct OscillationStats {
    quiet_band: Vec<f64>,
    quiet_len: u64,
    horizon: u64,
    /// Last non-zero deficit sign per task (0 until first non-zero).
    last_sign: Vec<i8>,
    /// Zero-crossing counts per task.
    crossings: Vec<u64>,
    /// Max |Δ| per task over the whole run.
    max_abs: Vec<u64>,
    /// Current consecutive quiet rounds per task.
    quiet_run: Vec<u64>,
    /// Rounds remaining in the post-quiet observation window per task.
    watch: Vec<u64>,
    /// Largest |Δ| seen inside any post-quiet window, per task.
    post_quiet_max: Vec<u64>,
    /// Number of completed quiet periods per task.
    quiet_periods: Vec<u64>,
    rounds: u64,
}

impl OscillationStats {
    /// `quiet_band[j]`: a task is "quiet" when `|Δ(j)| ≤ quiet_band[j]`
    /// (Theorem 3.3 uses `2εγ*d(j)`); a quiet period is `quiet_len`
    /// consecutive quiet rounds; after one, the next `horizon` rounds
    /// are watched for the blow-up.
    pub fn new(quiet_band: Vec<f64>, quiet_len: u64, horizon: u64) -> Self {
        let k = quiet_band.len();
        assert!(k > 0 && quiet_len > 0 && horizon > 0);
        Self {
            quiet_band,
            quiet_len,
            horizon,
            last_sign: vec![0; k],
            crossings: vec![0; k],
            max_abs: vec![0; k],
            quiet_run: vec![0; k],
            watch: vec![0; k],
            post_quiet_max: vec![0; k],
            quiet_periods: vec![0; k],
            rounds: 0,
        }
    }

    /// Folds one round's deficits in.
    pub fn record(&mut self, deficits: &[i64]) {
        debug_assert_eq!(deficits.len(), self.quiet_band.len());
        self.rounds += 1;
        for (j, &delta) in deficits.iter().enumerate() {
            let abs = delta.unsigned_abs();
            self.max_abs[j] = self.max_abs[j].max(abs);
            let sign = match delta.cmp(&0) {
                core::cmp::Ordering::Greater => 1i8,
                core::cmp::Ordering::Less => -1,
                core::cmp::Ordering::Equal => 0,
            };
            if sign != 0 {
                if self.last_sign[j] != 0 && sign != self.last_sign[j] {
                    self.crossings[j] += 1;
                }
                self.last_sign[j] = sign;
            }
            // Quiet-period tracking.
            if abs as f64 <= self.quiet_band[j] {
                self.quiet_run[j] += 1;
                if self.quiet_run[j] == self.quiet_len {
                    self.quiet_periods[j] += 1;
                    self.watch[j] = self.horizon;
                    self.quiet_run[j] = 0;
                }
            } else {
                self.quiet_run[j] = 0;
            }
            if self.watch[j] > 0 {
                self.post_quiet_max[j] = self.post_quiet_max[j].max(abs);
                self.watch[j] -= 1;
            }
        }
    }

    /// Zero crossings per task.
    pub fn crossings(&self) -> &[u64] {
        &self.crossings
    }

    /// Maximum `|Δ(j)|` per task over the run.
    pub fn max_abs_deficit(&self) -> &[u64] {
        &self.max_abs
    }

    /// Completed quiet periods per task.
    pub fn quiet_periods(&self) -> &[u64] {
        &self.quiet_periods
    }

    /// Largest `|Δ(j)|` observed within the post-quiet windows — the
    /// Theorem 3.3 blow-up statistic.
    pub fn post_quiet_max(&self) -> &[u64] {
        &self.post_quiet_max
    }

    /// Mean zero-crossings per round across tasks — an oscillation rate.
    pub fn crossing_rate(&self) -> f64 {
        if self.rounds == 0 {
            return 0.0;
        }
        let total: u64 = self.crossings.iter().sum();
        total as f64 / (self.rounds as f64 * self.crossings.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_sign_changes_ignoring_zero() {
        let mut o = OscillationStats::new(vec![0.5], 10, 10);
        for &d in &[3i64, 2, 0, -1, -2, 0, 0, 4, -4] {
            o.record(&[d]);
        }
        // +→(0)→− is one crossing; −→(0,0)→+ another; +→− another.
        assert_eq!(o.crossings(), &[3]);
        assert_eq!(o.max_abs_deficit(), &[4]);
    }

    #[test]
    fn quiet_period_then_blowup_is_captured() {
        // Band 2, quiet_len 3, horizon 5.
        let mut o = OscillationStats::new(vec![2.0], 3, 5);
        for &d in &[1i64, -1, 2] {
            o.record(&[d]);
        }
        assert_eq!(o.quiet_periods(), &[1]);
        // Blow-up inside the watch window.
        o.record(&[30]);
        assert_eq!(o.post_quiet_max(), &[30]);
        // Burn the rest of the window with non-quiet values (so no new
        // quiet period re-arms it); the later excursion is unattributed.
        for _ in 0..5 {
            o.record(&[5]);
        }
        o.record(&[100]);
        assert_eq!(o.post_quiet_max(), &[30]);
        assert_eq!(o.quiet_periods(), &[1]);
    }

    #[test]
    fn interrupted_quiet_runs_reset() {
        let mut o = OscillationStats::new(vec![1.0], 3, 2);
        for &d in &[1i64, 1, 5, 1, 1] {
            o.record(&[d]);
        }
        assert_eq!(o.quiet_periods(), &[0]);
        o.record(&[0]);
        assert_eq!(o.quiet_periods(), &[1]);
    }

    #[test]
    fn crossing_rate_normalizes() {
        let mut o = OscillationStats::new(vec![0.0, 0.0], 1, 1);
        o.record(&[1, 1]);
        o.record(&[-1, 1]);
        // 1 crossing over 2 rounds × 2 tasks.
        assert!((o.crossing_rate() - 0.25).abs() < 1e-12);
    }
}
