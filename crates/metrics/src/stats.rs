//! Streaming statistics shared by the experiment harness.

/// Welford's online mean/variance.
#[derive(Clone, Copy, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds a sample in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for < 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn sem(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.stddev() / (self.n as f64).sqrt()
        }
    }

    /// Smallest sample (∞ if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (−∞ if empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Fixed-width histogram over `[lo, hi)` with overflow/underflow bins.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    under: u64,
    over: u64,
    count: u64,
}

impl Histogram {
    /// `bins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0);
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            under: 0,
            over: 0,
            count: 0,
        }
    }

    /// Folds a sample in.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.under += 1;
        } else if x >= self.hi {
            self.over += 1;
        } else {
            let nbins = self.bins.len();
            let w = (self.hi - self.lo) / nbins as f64;
            let idx = (((x - self.lo) / w) as usize).min(nbins - 1);
            self.bins[idx] += 1;
        }
    }

    /// Bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// (underflow, overflow) counts.
    pub fn outliers(&self) -> (u64, u64) {
        (self.under, self.over)
    }

    /// Approximate quantile `q ∈ [0,1]` (bin midpoint; underflow maps to
    /// `lo`, overflow to `hi`).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.count == 0 {
            return f64::NAN;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = self.under;
        if seen >= target {
            return self.lo;
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.lo + (i as f64 + 0.5) * w;
            }
        }
        self.hi
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Keeps a bounded-size view of a long series by averaging fixed-size
/// round blocks — how the figure benches store deficit traces without
/// holding every round in memory.
#[derive(Clone, Debug)]
pub struct SeriesDownsampler {
    stride: u64,
    acc: f64,
    in_block: u64,
    points: Vec<f64>,
}

impl SeriesDownsampler {
    /// Averages every `stride` consecutive samples into one point.
    pub fn new(stride: u64) -> Self {
        assert!(stride > 0);
        Self {
            stride,
            acc: 0.0,
            in_block: 0,
            points: Vec::new(),
        }
    }

    /// Folds a sample in.
    pub fn push(&mut self, x: f64) {
        self.acc += x;
        self.in_block += 1;
        if self.in_block == self.stride {
            self.points.push(self.acc / self.stride as f64);
            self.acc = 0.0;
            self.in_block = 0;
        }
    }

    /// The completed block averages.
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// Flushes a trailing partial block (if any) and returns all points.
    pub fn finish(mut self) -> Vec<f64> {
        if self.in_block > 0 {
            self.points.push(self.acc / self.in_block as f64);
        }
        self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Sample variance = 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
        assert!(w.sem() > 0.0);
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        let mut w = Welford::new();
        w.push(3.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn histogram_bins_and_quantiles() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.push(f64::from(i) / 10.0);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.bins().iter().sum::<u64>(), 100);
        let median = h.quantile(0.5);
        assert!((median - 5.0).abs() <= 1.0, "median {median}");
        h.push(-1.0);
        h.push(99.0);
        assert_eq!(h.outliers(), (1, 1));
    }

    #[test]
    fn downsampler_averages_blocks() {
        let mut d = SeriesDownsampler::new(3);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0] {
            d.push(x);
        }
        assert_eq!(d.points(), &[2.0, 5.0]);
        assert_eq!(d.finish(), vec![2.0, 5.0, 7.0]);
    }

    proptest! {
        #[test]
        fn welford_mean_in_range(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let mut w = Welford::new();
            for &x in &xs {
                w.push(x);
            }
            prop_assert!(w.mean() >= w.min() - 1e-9);
            prop_assert!(w.mean() <= w.max() + 1e-9);
            prop_assert!(w.variance() >= 0.0);
        }

        #[test]
        fn histogram_quantiles_monotone(
            xs in proptest::collection::vec(0.0f64..1.0, 10..200),
        ) {
            let mut h = Histogram::new(0.0, 1.0, 16);
            for &x in &xs {
                h.push(x);
            }
            prop_assert!(h.quantile(0.25) <= h.quantile(0.75) + 1e-9);
        }
    }
}
