//! Weighted regret — §2.3's stated future direction.
//!
//! The paper penalizes lack and overload equally and remarks: "we leave
//! it as a future direction to use different weights". This tracker
//! implements that generalization,
//! `r_w(t) = Σ_j (w_lack·Δ⁺(j) + w_over·Δ⁻(j))`, optionally adding a
//! per-switch cost (the Theorem 3.6 remark about incorporating
//! switching costs into the regret).

/// Streaming weighted-regret accumulator.
#[derive(Clone, Debug)]
pub struct WeightedRegret {
    w_lack: f64,
    w_overload: f64,
    w_switch: f64,
    total: f64,
    lack_mass: f64,
    overload_mass: f64,
    switch_mass: f64,
    rounds: u64,
}

impl WeightedRegret {
    /// Weights for unmet demand (`w_lack`), wasted work (`w_overload`)
    /// and per-assignment-change cost (`w_switch`). The paper's metric
    /// is `(1, 1, 0)`.
    pub fn new(w_lack: f64, w_overload: f64, w_switch: f64) -> Self {
        assert!(w_lack >= 0.0 && w_overload >= 0.0 && w_switch >= 0.0);
        Self {
            w_lack,
            w_overload,
            w_switch,
            total: 0.0,
            lack_mass: 0.0,
            overload_mass: 0.0,
            switch_mass: 0.0,
            rounds: 0,
        }
    }

    /// The paper's unweighted metric.
    pub fn paper() -> Self {
        Self::new(1.0, 1.0, 0.0)
    }

    /// Folds one round in.
    pub fn record(&mut self, deficits: &[i64], switches: u64) {
        let mut lack = 0u64;
        let mut over = 0u64;
        for &delta in deficits {
            if delta >= 0 {
                lack += delta as u64;
            } else {
                over += delta.unsigned_abs();
            }
        }
        self.lack_mass += self.w_lack * lack as f64;
        self.overload_mass += self.w_overload * over as f64;
        self.switch_mass += self.w_switch * switches as f64;
        self.total = self.lack_mass + self.overload_mass + self.switch_mass;
        self.rounds += 1;
    }

    /// Total weighted regret.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Average weighted regret per round.
    pub fn average(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.total / self.rounds as f64
        }
    }

    /// (weighted lack, weighted overload, weighted switch) components.
    pub fn components(&self) -> (f64, f64, f64) {
        (self.lack_mass, self.overload_mass, self.switch_mass)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_weights_match_plain_regret() {
        let mut w = WeightedRegret::paper();
        w.record(&[3, -4, 0], 100);
        assert_eq!(w.total(), 7.0);
        assert_eq!(w.average(), 7.0);
        let (lack, over, sw) = w.components();
        assert_eq!((lack, over, sw), (3.0, 4.0, 0.0));
    }

    #[test]
    fn asymmetric_weights() {
        // Lack twice as bad as overload (work not done vs work wasted).
        let mut w = WeightedRegret::new(2.0, 1.0, 0.0);
        w.record(&[3, -4], 0);
        assert_eq!(w.total(), 10.0);
    }

    #[test]
    fn switch_costs_accumulate() {
        let mut w = WeightedRegret::new(1.0, 1.0, 0.5);
        w.record(&[0], 10);
        w.record(&[2], 4);
        assert_eq!(w.total(), 2.0 + 7.0);
        assert_eq!(w.average(), 4.5);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_weights() {
        WeightedRegret::new(-1.0, 1.0, 0.0);
    }
}
