//! Measurement machinery for the paper's regret metric (§2.3) and the
//! quantities its analysis decomposes it into (§4).
//!
//! Everything here consumes plain slices (`deficits`, `demands`) so the
//! metrics are engine-agnostic and unit-testable in isolation:
//!
//! * [`RegretTracker`] — `R(t) = Σ_τ r(τ)` with the paper's three-way
//!   split `R = R⁺ + R≈ + R⁻` and the deficit-bound violation counters
//!   of Theorem 3.1.
//! * [`ClosenessEstimator`] — the `c`-closeness of §2.3:
//!   `lim R(t)/t` against `γ*·Σd`.
//! * [`OscillationStats`] — zero crossings, amplitudes, and the
//!   quiet-period blow-up detector for Theorem 3.3's second claim.
//! * [`SaturationDetector`] — Claim 4.4's "all tasks saturated"
//!   predicate and time-to-saturation/stability.
//! * [`SwitchStats`] — task-switch counting (Theorem 3.6's remark).
//! * [`Welford`], [`Histogram`], [`SeriesDownsampler`] — streaming
//!   statistics shared by the experiment harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod closeness;
mod convergence;
mod oscillation;
mod regret;
mod stats;
mod switches;
mod weighted;

pub use closeness::ClosenessEstimator;
pub use convergence::SaturationDetector;
pub use oscillation::OscillationStats;
pub use regret::{RegretBreakdown, RegretTracker};
pub use stats::{Histogram, SeriesDownsampler, Welford};
pub use switches::SwitchStats;
pub use weighted::WeightedRegret;
