//! T36 — Theorem 3.6: Algorithm Precise Adversarial achieves
//! `(1+ε)`-closeness under adversarial noise, and switches tasks less
//! than Algorithm Ant.
//!
//! Expected shape: steady regret ≈ γ(1+ε)Σd, decreasing toward the
//! Theorem 3.5 floor `γ*Σd` as ε shrinks; switches/ant/round an order
//! of magnitude below Algorithm Ant's.

use antalloc_analysis::{thm35_regret_floor, thm36_average_regret};
use antalloc_bench::{banner, fmt, steady_state, Table};
use antalloc_core::{AntParams, PreciseAdversarialParams};
use antalloc_env::InitialConfig;
use antalloc_noise::{GreyZonePolicy, NoiseModel};
use antalloc_sim::{ControllerSpec, SimConfig};

fn main() {
    banner(
        "T36",
        "Precise Adversarial: (1+ε)-close under adversarial noise",
        "lim R(t)/t = γ(1+ε)Σd + O(1); also fewer task switches than Ant",
    );
    let n = 6000usize;
    let demands = vec![1200u64, 1200];
    let sum_d: u64 = demands.iter().sum();
    let gamma = 0.05; // = γ_ad = γ*.
    let noise = NoiseModel::Adversarial {
        gamma_ad: gamma,
        policy: GreyZonePolicy::AlternateByRound,
    };
    println!(
        "n = {n}, Σd = {sum_d}, γ = γ_ad = {gamma}; grey-zone policy: \
         alternate by round (maximal oscillation pressure)\n"
    );
    println!(
        "Theorem 3.5 floor γ*Σd = {}\n",
        fmt(thm35_regret_floor(gamma, sum_d))
    );

    // The Theorem 3.6 remark: "if one changes the regret to incorporate
    // costs for switching between tasks" — we report the combined
    // objective r + c_sw·(switches/round) at c_sw = 1 as well.
    let switch_cost = 1.0;
    let mut table = Table::new(
        "thm36_precise_adversarial",
        &[
            "algorithm",
            "ε",
            "phase len",
            "measured avg r",
            "paper γ(1+ε)Σd",
            "meas/paper",
            "switches/ant/round",
            "r + switches/round",
        ],
    );

    // Baseline: Algorithm Ant under the same adversary.
    let ant_cfg = SimConfig::builder(n, demands.clone())
        .noise(noise.clone())
        .controller(ControllerSpec::Ant(AntParams::new(gamma)))
        .seed(0x7436)
        .build()
        .expect("valid scenario");
    let ant = steady_state(&ant_cfg, gamma, 6000, 8000);
    table.row(vec![
        "algorithm ant".into(),
        "-".into(),
        "2".into(),
        fmt(ant.avg_regret),
        fmt(5.0 * gamma * sum_d as f64 + 3.0),
        fmt(ant.avg_regret / (5.0 * gamma * sum_d as f64 + 3.0)),
        fmt(ant.switches_per_ant_round),
        fmt(ant.avg_regret + switch_cost * ant.switches_per_ant_round * n as f64),
    ]);

    for eps in [0.8, 0.4, 0.2] {
        let params = PreciseAdversarialParams::new(gamma, eps);
        let phase = params.phase_len();
        let cfg = SimConfig::builder(n, demands.clone())
            .noise(noise.clone())
            .controller(ControllerSpec::PreciseAdversarial(params))
            .seed(0x7436)
            // Start saturated+band: the ramp sub-phase needs a surplus
            // to walk through; the frozen sub-phase then holds it.
            .initial(InitialConfig::SaturatedPlus {
                extra: (gamma * demands[0] as f64 * 1.2) as u64,
            })
            .build()
            .expect("valid scenario");
        let m = steady_state(&cfg, gamma, 10 * phase, 30 * phase);
        let paper = thm36_average_regret(gamma, eps, sum_d);
        table.row(vec![
            format!("precise adversarial"),
            fmt(eps),
            phase.to_string(),
            fmt(m.avg_regret),
            fmt(paper),
            fmt(m.avg_regret / paper),
            fmt(m.switches_per_ant_round),
            fmt(m.avg_regret + switch_cost * m.switches_per_ant_round * n as f64),
        ]);
    }
    table.finish();
    println!(
        "\nshape check: regret tracks γ(1+ε)Σd and sits near the \
         Theorem 3.5 floor; switches/ant/round far below Algorithm Ant's \
         (the pause machinery runs once per long phase, not every round)."
    );
}
