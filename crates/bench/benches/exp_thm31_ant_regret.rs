//! T31a — Theorem 3.1: Algorithm Ant's steady-state regret vs the
//! `5γΣd + 3` bound, swept over γ, n and k.
//!
//! Expected shape: measured average regret grows ~linearly in γ and
//! stays below the bound for every γ ≥ γ*; the per-task deficit bound
//! `|Δ(j)| ≤ 5γd(j)` holds in all but a vanishing fraction of rounds.

use antalloc_analysis::{linear_fit, thm31_average_regret_bound};
use antalloc_bench::{banner, fmt, steady_state, Table};
use antalloc_core::AntParams;
use antalloc_noise::{critical_value_sigmoid, NoiseModel};
use antalloc_sim::{ControllerSpec, SimConfig};

fn main() {
    banner(
        "T31a",
        "Algorithm Ant: average regret vs 5γΣd + 3",
        "R(t) ≤ cnk/γ + (5γΣd + 3)t w.h.p., for any γ ∈ [γ*, 1/16]",
    );

    let lambda = 2.0;
    let mut table = Table::new(
        "thm31_ant_regret",
        &[
            "n",
            "k",
            "Σd",
            "γ",
            "γ/γ*",
            "measured avg r",
            "±sem",
            "paper bound",
            "meas/bound",
            "|Δ|>5γd frac",
            "switches/ant/round",
        ],
    );

    let mut gammas_used: Vec<f64> = Vec::new();
    let mut regrets: Vec<f64> = Vec::new();

    for (n, demands) in [
        (4000usize, vec![400u64, 700, 300]),
        (8000, vec![800, 1400, 600]),
        (4000, vec![250, 250, 250, 250, 250, 250]),
    ] {
        let k = demands.len();
        let sum_d: u64 = demands.iter().sum();
        let cv = critical_value_sigmoid(lambda, n, &demands, 2.0);
        for mult in [1.0, 1.5, 2.0] {
            let gamma = (cv.gamma_star * mult).min(1.0 / 16.0);
            let cfg = SimConfig::builder(n, demands.clone())
                .noise(NoiseModel::Sigmoid { lambda })
                .controller(ControllerSpec::Ant(AntParams::new(gamma)))
                .seed(0x7431 + (mult * 10.0) as u64)
                .build()
                .expect("valid scenario");
            // Warmup: the all-idle cold start overshoots by Θ(n) and
            // drains at γ/c_d per phase: budget ~8·c_d/γ rounds.
            let warmup = (8.0 * 19.0 / gamma) as u64;
            let m = steady_state(&cfg, gamma, warmup, 10_000);
            let bound = thm31_average_regret_bound(gamma, sum_d);
            if (n, k) == (4000, 3) {
                gammas_used.push(gamma);
                regrets.push(m.avg_regret);
            }
            table.row(vec![
                n.to_string(),
                k.to_string(),
                sum_d.to_string(),
                fmt(gamma),
                fmt(gamma / cv.gamma_star),
                fmt(m.avg_regret),
                fmt(m.regret_sem),
                fmt(bound),
                fmt(m.avg_regret / bound),
                fmt(m.violation_fraction),
                fmt(m.switches_per_ant_round),
            ]);
        }
    }
    table.finish();

    let fit = linear_fit(&gammas_used, &regrets);
    println!(
        "\nγ-scaling on the (4000, k=3) colony: regret ≈ {} + {}·γ (R² = {})",
        fmt(fit.intercept),
        fmt(fit.slope),
        fmt(fit.r_squared)
    );
    println!(
        "paper slope scale: 5Σd = {} — same order; who wins: the bound, at every γ.",
        fmt(5.0 * 1400.0)
    );
}
