//! TD1/TD2 — Appendix D: the trivial algorithm in the sequential vs
//! synchronous models.
//!
//! Expected shape (the appendix's separation):
//! * sequential (D.1): settles near the demand, average regret
//!   Θ(γ*Σd)-scale;
//! * synchronous (D.2): the whole colony reacts to the same signal and
//!   flip-flops with amplitude Θ(n) — no convergence within any
//!   feasible horizon (the paper proves e^{Ω(n)} steps).

use antalloc_bench::{banner, fmt, Table};
use antalloc_metrics::OscillationStats;
use antalloc_noise::{critical_value_sigmoid, NoiseModel};
use antalloc_sim::{ControllerSpec, FnObserver, RunSummary, SimConfig};

fn main() {
    banner(
        "TD1/TD2",
        "trivial algorithm: sequential settles, synchronous explodes",
        "D.1: regret Θ(γ*Σd) sequentially; D.2: Θ(n) flip-flops for e^{Ω(n)} rounds",
    );
    let lambda = 1.0;

    let mut table = Table::new(
        "appendix_d_trivial",
        &[
            "model",
            "n",
            "d",
            "rounds",
            "avg regret (steady)",
            "max |Δ|",
            "γ*Σd yardstick",
            "avg/(γ*Σd)",
            "flips/round",
        ],
    );

    // D.2 synchronous: one task with d = n/4 (the paper's example).
    for n in [400usize, 1000, 2000] {
        let d = (n / 4) as u64;
        let cv = critical_value_sigmoid(lambda, n, &[d], 2.0);
        let cfg = SimConfig::builder(n, vec![d])
            .noise(NoiseModel::Sigmoid { lambda })
            .controller(ControllerSpec::Trivial)
            .seed(0xD2 + n as u64)
            .build()
            .expect("valid scenario");
        let mut engine = cfg.build();
        let mut osc = OscillationStats::new(vec![1.0], 5, 50);
        let mut summary = RunSummary::new();
        let mut obs = FnObserver::new(|r: &antalloc_sim::RoundRecord<'_>| {
            osc.record(r.deficits);
        });
        let rounds = 20_000u64;
        {
            let mut both = antalloc_sim::Both(&mut summary, &mut obs);
            // Both needs Observer for &mut: run with a small adapter.
            engine.run(rounds, &mut both);
        }
        let _ = obs; // closure borrows end here
        let yard = cv.gamma_star * d as f64;
        table.row(vec![
            "synchronous (D.2)".into(),
            n.to_string(),
            d.to_string(),
            rounds.to_string(),
            fmt(summary.average_regret()),
            osc.max_abs_deficit()[0].to_string(),
            fmt(yard),
            fmt(summary.average_regret() / yard),
            fmt(osc.crossing_rate()),
        ]);
    }

    // D.1 sequential: same colonies, one random ant per round.
    for n in [400usize, 1000, 2000] {
        let d = (n / 4) as u64;
        let cv = critical_value_sigmoid(lambda, n, &[d], 2.0);
        let cfg = SimConfig::builder(n, vec![d])
            .noise(NoiseModel::Sigmoid { lambda })
            .controller(ControllerSpec::Trivial)
            .seed(0xD1 + n as u64)
            .build()
            .expect("valid scenario");
        let mut engine = cfg.build_sequential();
        // Sequential rounds move one ant: give it n× the rounds to be
        // comparable in total activations, then measure.
        let warm = 30 * n as u64;
        let mut sink = antalloc_sim::NullObserver;
        engine.run(warm, &mut sink);
        let mut osc = OscillationStats::new(vec![1.0], 5, 50);
        let mut summary = RunSummary::new();
        let rounds = 50 * n as u64;
        {
            let mut obs = FnObserver::new(|r: &antalloc_sim::RoundRecord<'_>| {
                osc.record(r.deficits);
            });
            let mut both = antalloc_sim::Both(&mut summary, &mut obs);
            engine.run(rounds, &mut both);
        }
        let yard = cv.gamma_star * d as f64;
        table.row(vec![
            "sequential (D.1)".into(),
            n.to_string(),
            d.to_string(),
            rounds.to_string(),
            fmt(summary.average_regret()),
            osc.max_abs_deficit()[0].to_string(),
            fmt(yard),
            fmt(summary.average_regret() / yard),
            fmt(osc.crossing_rate()),
        ]);
    }
    table.finish();
    println!(
        "\nshape check: synchronous regret is Θ(n) (grows linearly with \
         n, ~half the colony flip-flopping), sequential regret is a \
         small multiple of γ*Σd and roughly flat in n — the Appendix D \
         separation, and the motivation for two-sample phases."
    );
}
