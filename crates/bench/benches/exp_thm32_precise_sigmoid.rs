//! T32 — Theorem 3.2: Algorithm Precise Sigmoid is ε-close —
//! `lim R(t)/t = γεΣd + O(1)` with `O(log 1/ε)` memory and `O(1/ε)`
//! phases.
//!
//! Expected shape: steady regret linear in ε (fit printed), memory bits
//! logarithmic in 1/ε, phase length linear in 1/ε.
//!
//! Finite-size note (documented in EXPERIMENTS.md): the parking band of
//! the algorithm is `γ'·d`-wide with `γ' = εγ/c_χ`, so demands must
//! satisfy `γ'·d ≳ 10` for the band to be non-empty at integer
//! granularity — the Theorem 3.2 shadow of Assumption 2.1. We therefore
//! run one large task and start inside the band (cold-start convergence
//! takes Θ(c_d·c_χ/(εγ)) phases, the paper's own caveat).

use antalloc_analysis::{linear_fit, thm32_average_regret};
use antalloc_bench::{banner, fmt, steady_state, Table};
use antalloc_core::PreciseSigmoidParams;
use antalloc_env::InitialConfig;
use antalloc_noise::NoiseModel;
use antalloc_sim::{ControllerSpec, SimConfig};

fn main() {
    banner(
        "T32",
        "Precise Sigmoid: regret linear in ε, memory logarithmic in 1/ε",
        "lim R(t)/t = γεΣd + O(1); memory O(log 1/ε); phases O(1/ε)",
    );

    let n = 12_000usize;
    let d = 5000u64;
    let gamma = 1.0 / 16.0;
    let lambda = 1.5;
    println!("n = {n}, d = {d}, γ = {gamma:.4}, λ = {lambda}\n");

    let mut table = Table::new(
        "thm32_precise_sigmoid",
        &[
            "ε",
            "phase len",
            "memory bits",
            "γ'd (band, ants)",
            "measured avg r",
            "paper γεΣd",
            "meas/paper",
            "switches/ant/round",
        ],
    );

    let mut epss = Vec::new();
    let mut regrets = Vec::new();
    for eps in [0.8, 0.6, 0.4, 0.3, 0.2] {
        let params = PreciseSigmoidParams::new(gamma, eps);
        let phase = params.phase_len();
        let band = params.gamma_prime() * d as f64;
        let cfg = SimConfig::builder(n, vec![d])
            .noise(NoiseModel::Sigmoid { lambda })
            .controller(ControllerSpec::PreciseSigmoid(params))
            .seed(0x7432)
            // Start just above the band top so the run includes the
            // final approach and the hold.
            .initial(InitialConfig::SaturatedPlus {
                extra: (band * 1.5) as u64 + 2,
            })
            .build()
            .expect("valid scenario");
        let warmup = 40 * phase;
        let measure = 120 * phase;
        let m = steady_state(&cfg, gamma, warmup, measure);
        let paper = thm32_average_regret(gamma, eps, d);
        epss.push(eps);
        regrets.push(m.avg_regret);
        table.row(vec![
            fmt(eps),
            phase.to_string(),
            m.engine.controller_memory_bits().to_string(),
            fmt(band),
            fmt(m.avg_regret),
            fmt(paper),
            fmt(m.avg_regret / paper),
            fmt(m.switches_per_ant_round),
        ]);
    }
    table.finish();

    let fit = linear_fit(&epss, &regrets);
    println!(
        "\nlinear fit: regret ≈ {} + {}·ε (R² = {}); paper slope γΣd = {}",
        fmt(fit.intercept),
        fmt(fit.slope),
        fmt(fit.r_squared),
        fmt(gamma * d as f64)
    );
    println!("shape check: regret linear in ε and below γεΣd at every ε.");
}
