//! SPATIAL — the controller-family shootout on the sensing layer: the
//! paper's ants against a classical proportional controller, well-mixed
//! and in a spatial arena, under the same shock script.
//!
//! The paper's setting is well-mixed — every ant senses every task's
//! feedback each round. The sensing layer generalizes that: an arena
//! pins tasks to sites, ants sense only their own site, and idle ants
//! wander between sites paying travel latency. This experiment asks the
//! question the refactor exists for: *which controller family degrades
//! gracefully when global sensing is taken away?* The ants' threshold
//! machinery only ever consumes local signals, so the arena should cost
//! them a bounded recruitment delay; the proportional controller's
//! colony-level gain calculation implicitly assumed the whole colony
//! reacts, so splitting its sensed error across sites probes how much
//! of its competitiveness was an artifact of the well-mixed assumption.
//!
//! Grid: (controller × environment) with 8 seeds per cell, every cell
//! under one shock script — a kill, a site-local demand step
//! (`set-task-demand`, the event arenas motivated), and a scramble.
//! Environments: well-mixed, the degenerate single-site arena (must
//! match well-mixed to the bit — a live cross-check of the sensing
//! refactor inside the experiment itself), and a 3-site arena with
//! wandering and travel latency.
//!
//! `PERF_QUICK=1` shrinks the colony and horizon for CI; the table
//! lands in `target/experiments/exp_spatial_allocation.csv` (uploaded
//! by the `perf-smoke` job).

use antalloc_bench::{banner, fmt, perf_quick as quick, Table};
use antalloc_core::{AntParams, PreciseSigmoidParams, ProportionalParams};
use antalloc_env::ArenaConfig;
use antalloc_sim::{ControllerSpec, RunOutcome, Scenario, Sweep};

const SEEDS: u64 = 8;

fn main() {
    banner(
        "SPATIAL",
        "controller-family shootout: ants vs proportional, well-mixed vs arena",
        "site-local sensing slows recruitment but also damps the well-mixed \
         pile-on overshoot; the degenerate arena must match well-mixed exactly",
    );

    let (n, horizon) = if quick() {
        (1200usize, 900u64)
    } else {
        (4800, 4500)
    };
    let warmup = horizon / 6;
    let d = n as u64 / 9;
    let k = 3usize;
    // One shock script for every cell: a kill, a site-local demand step
    // on the last task (its site must recruit through wandering in the
    // arena cells), and a scramble that tests re-convergence when every
    // working ant is snapped back to its task's site.
    let scenario_toml = format!(
        r#"
name = "spatial-allocation"
n = {n}
demands = [{d}, {d}, {d}]
seed = 7070

[controller]
kind = "ant"
gamma = 0.0625

[noise]
kind = "sigmoid"
lambda = 2.0

[[timeline]]
at = {kill_at}
kind = "kill"
count = {kill_count}

[[timeline]]
at = {step_at}
kind = "set-task-demand"
task = 2
demand = {stepped}

[[timeline]]
at = {scramble_at}
kind = "scramble"
"#,
        kill_at = warmup + (horizon - warmup) / 5,
        kill_count = n / 4,
        step_at = warmup + 2 * (horizon - warmup) / 5,
        stepped = d * 2,
        scramble_at = warmup + 3 * (horizon - warmup) / 5,
    );
    let scenario = Scenario::from_toml(&scenario_toml).expect("spatial scenario validates");

    let controllers: Vec<(&str, ControllerSpec)> = vec![
        ("ant", ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
        (
            "precise-sigmoid",
            ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.05, 0.5)),
        ),
        (
            "proportional",
            ControllerSpec::Proportional(ProportionalParams {
                gain: 0.5,
                deadband: 0,
            }),
        ),
        (
            "proportional-deadband",
            ControllerSpec::Proportional(ProportionalParams {
                gain: 0.5,
                deadband: 3,
            }),
        ),
    ];
    let environments: Vec<(&str, Option<ArenaConfig>)> = vec![
        ("wellmixed", None),
        ("arena-degenerate", Some(ArenaConfig::single_site(k))),
        (
            "arena-3-sites",
            Some(ArenaConfig {
                site_of_task: vec![0, 1, 2],
                travel_rounds: 4,
                wander_probability: 0.1,
            }),
        ),
    ];

    let grid = Sweep::product(controllers.clone(), environments.clone());
    let outcomes = Sweep::new(scenario.config.clone())
        .axis_labeled("controller×env", grid, |cfg, (spec, arena)| {
            cfg.controller = spec.clone();
            cfg.arena = arena.clone();
        })
        .seeds(0..SEEDS)
        .warmup(warmup)
        .rounds(horizon - warmup)
        .run()
        .expect("sweep runs");

    let mut table = Table::new(
        "exp_spatial_allocation",
        &[
            "controller",
            "environment",
            "avg regret",
            "max regret",
            "final regret",
        ],
    );
    let cell = |runs: &[RunOutcome]| {
        let avg = runs.iter().map(|o| o.summary.average_regret()).sum::<f64>() / runs.len() as f64;
        let max = runs
            .iter()
            .map(|o| o.summary.max_instant_regret())
            .max()
            .unwrap_or(0);
        let fin = runs.iter().map(|o| o.final_regret).sum::<u64>() as f64 / runs.len() as f64;
        (avg, max, fin)
    };
    let mut cells: Vec<(usize, usize, f64)> = Vec::new();
    for (c, (controller, _)) in controllers.iter().enumerate() {
        for (e, (environment, _)) in environments.iter().enumerate() {
            let slot = (c * environments.len() + e) * SEEDS as usize;
            let runs = &outcomes[slot..slot + SEEDS as usize];
            let (avg, max, fin) = cell(runs);
            cells.push((c, e, avg));
            table.row(vec![
                controller.to_string(),
                environment.to_string(),
                fmt(avg),
                fmt(max as f64),
                fmt(fin),
            ]);
        }
    }
    table.finish();

    // Live cross-check of the sensing refactor: per controller and
    // seed, the degenerate arena's summaries must equal well-mixed
    // exactly — not approximately. The integration suite pins this on
    // small colonies; this asserts it at experiment scale.
    for (c, (controller, _)) in controllers.iter().enumerate() {
        let mixed = (c * environments.len()) * SEEDS as usize;
        let degenerate = (c * environments.len() + 1) * SEEDS as usize;
        for s in 0..SEEDS as usize {
            let (a, b) = (&outcomes[mixed + s], &outcomes[degenerate + s]);
            assert_eq!(
                (
                    a.summary.total_regret(),
                    a.summary.max_instant_regret(),
                    a.final_regret
                ),
                (
                    b.summary.total_regret(),
                    b.summary.max_instant_regret(),
                    b.final_regret
                ),
                "{controller}: degenerate arena diverged from well-mixed (seed slot {s})"
            );
        }
    }

    println!(
        "\nshape check: arena-degenerate must match wellmixed exactly (asserted \
         above). In the\n3-site arena, site-local sensing cuts both ways: recruitment \
         after the kill and the\ntask-2 demand step is slower (only local + wandering \
         ants respond), but sharding the\nresponse also damps the well-mixed pile-on \
         overshoot — in this script the damping\nwins and every family's average \
         regret drops. The comparison to read is *within*\neach family: the deadband \
         narrows proportional's wellmixed→arena gap, and the ants\nstay competitive \
         in both geometries without any gain to tune."
    );
}
