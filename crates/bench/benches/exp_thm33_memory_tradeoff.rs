//! T33a — Theorem 3.3: the memory/closeness tradeoff.
//!
//! Paper: any collection of algorithms with at most `c·log(1/ε)` bits is
//! `ε`-far — i.e. achievable closeness decays exponentially in the
//! memory budget, and Algorithm Precise Sigmoid's `O(log 1/ε)` bits are
//! optimal.
//!
//! We sweep the natural small-memory family (hysteresis machines with
//! depth `h`, `⌈log2(2h)⌉` bits) and Precise Sigmoid at several ε on a
//! single-task colony, and report measured closeness (avg regret /
//! γ*Σd) against memory bits. Expected shape: closeness decreasing in
//! bits for the FSM family, with the log-log slope printed; no machine
//! beats the ε(bits) floor by an order of magnitude.

use antalloc_analysis::loglog_slope;
use antalloc_bench::{banner, fmt, steady_state, Table};
use antalloc_core::PreciseSigmoidParams;
use antalloc_env::InitialConfig;
use antalloc_noise::{critical_value_sigmoid, NoiseModel};
use antalloc_sim::{ControllerSpec, SimConfig};

fn main() {
    banner(
        "T33a",
        "memory bits vs achievable closeness",
        "c·log(1/ε) bits ⇒ at least ε-far: closeness floor ~ 2^{−bits/c}",
    );

    let n = 4000usize;
    let d = 1000u64;
    let lambda = 1.0;
    let cv = critical_value_sigmoid(lambda, n, &[d], 2.0);
    let yardstick = cv.gamma_star * d as f64;
    println!(
        "single task, d = {d}, λ = {lambda}; γ*(q=2) = {:.4}, γ*Σd = {:.1}\n",
        cv.gamma_star, yardstick
    );

    let mut table = Table::new(
        "thm33_memory_tradeoff",
        &[
            "algorithm",
            "memory bits",
            "avg regret",
            "closeness c",
            "notes",
        ],
    );

    let mut bits_series = Vec::new();
    let mut closeness_series = Vec::new();

    // The hysteresis FSM family: depth h needs h consecutive contrary
    // signals to switch; near Δ=0 each signal is a fair coin and each
    // edge fires with the laziness probability, so the machine acts at
    // rate ~(1/4)^h — its Theorem 3.3 blow-up recurs every ~4^h rounds.
    // Depths whose 4^h exceeds the horizon therefore *appear* to beat
    // the floor; the theorem is a t → ∞ statement (see EXPERIMENTS.md).
    for depth in [1u16, 2, 4, 8, 16, 32] {
        let cfg = SimConfig::builder(n, vec![d])
            .noise(NoiseModel::Sigmoid { lambda })
            .controller(ControllerSpec::Hysteresis {
                depth,
                lazy: Some(0.5),
            })
            .seed(0x7433 + u64::from(depth))
            .build()
            .expect("valid scenario");
        let m = steady_state(&cfg, cv.gamma_star, 20_000, 30_000);
        let closeness = m.avg_regret / yardstick;
        let bits = m.engine.controller_memory_bits();
        bits_series.push(f64::from(bits));
        closeness_series.push(closeness);
        let blowup_period = 4f64.powi(i32::from(depth));
        table.row(vec![
            format!("hysteresis h={depth} (lazy 0.5)"),
            bits.to_string(),
            fmt(m.avg_regret),
            fmt(closeness),
            if blowup_period > 30_000.0 {
                format!("blow-up period ~4^h = {} >> horizon", fmt(blowup_period))
            } else {
                format!("blow-up period ~{}", fmt(blowup_period))
            },
        ]);
    }

    // Precise Sigmoid: the paper's optimal memory/closeness curve.
    let gamma = (2.0 * cv.gamma_star).min(1.0 / 16.0);
    for eps in [0.8, 0.4, 0.2] {
        let params = PreciseSigmoidParams::new(gamma, eps);
        let phase = params.phase_len();
        let band = params.gamma_prime() * d as f64;
        let cfg = SimConfig::builder(n, vec![d])
            .noise(NoiseModel::Sigmoid { lambda })
            .controller(ControllerSpec::PreciseSigmoid(params))
            .seed(0x7433AA)
            .initial(InitialConfig::SaturatedPlus {
                extra: (band * 1.2) as u64 + 2,
            })
            .build()
            .expect("valid scenario");
        let m = steady_state(&cfg, gamma, 30 * phase, 90 * phase);
        let closeness = m.avg_regret / yardstick;
        table.row(vec![
            format!("precise sigmoid ε={eps}"),
            m.engine.controller_memory_bits().to_string(),
            fmt(m.avg_regret),
            fmt(closeness),
            format!("phase {phase}"),
        ]);
    }
    table.finish();

    let fit = loglog_slope(&bits_series, &closeness_series);
    println!(
        "\nhysteresis family log-log slope (closeness vs bits): {} (R² = {})",
        fmt(fit.slope),
        fmt(fit.r_squared)
    );
    println!(
        "shape check: closeness strictly decreases with memory — no \
         constant-memory machine holds the deficit near 0, matching the \
         Theorem 3.3 floor."
    );
}
