//! PERF — ensemble sweep throughput (runs/second).
//!
//! Measures the sweep fast path end to end: streamed jobs + engine
//! reuse versus a per-job fresh engine build, at 1/2/4/8 sweep
//! workers, on two shapes:
//!
//! - **paper**: the acceptance shape (n = 400, k = 2, 200 rounds,
//!   ≥ 1k runs in full mode). Run time dominates here — a 200-round
//!   run costs ~25× an engine build — so reuse buys a few percent at
//!   most; the honest number is reported and guarded against
//!   *regressing* (reuse must never be slower than fresh beyond
//!   noise).
//! - **churn**: a setup-bound shape (same colony, 2 rounds per run) —
//!   the regime short-horizon ensembles and transient studies live in,
//!   where amortizing the build is the whole game.
//!
//! An honest ceiling on the reuse win: every job runs under its own
//! seed, so the O(n) per-ant RNG stream derivation — over half of a
//! warm-allocator engine build — must be redone on reset. Reuse
//! eliminates the allocations and the rest of construction, which on a
//! warm single-thread allocator is a ~5–10% win on the churn shape
//! (more where allocation is pricier). The guards therefore enforce
//! "reuse always wins on the setup-bound shape, never costs at paper
//! scale", not a fantasy multiple.
//!
//! Every measured pass also cross-checks bit-identity: the reused-
//! engine sweep must produce outcome-for-outcome identical regret to
//! the fresh-build sweep. Emits `target/experiments/BENCH_sweep.json`
//! (uploaded by the `perf-smoke` CI job, next to `BENCH_engine.json`).
//! Set `PERF_QUICK=1` for a CI-sized run.

// disallowed_methods: a bench exists to read the wall clock; timing
// here never feeds a simulation (audit.toml relaxes bench files too).
#![allow(clippy::disallowed_methods)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::io::Write as _;
use std::time::Instant;

use antalloc_bench::perf_quick as quick;
use antalloc_core::AntParams;
use antalloc_noise::NoiseModel;
use antalloc_sim::{ControllerSpec, RunOutcome, SimConfig, Sweep};

/// Sweep worker counts the throughput curve is measured at.
const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Reuse must at least match fresh builds on the setup-bound churn
/// shape (it measures ~1.05–1.1× here; the guard is the no-loss floor
/// so machine variance cannot flake CI).
const CHURN_MIN_SPEEDUP: f64 = 1.0;

/// Reuse must never lose more than this on the run-dominated paper
/// shape (1.0 minus a machine-noise margin).
const PAPER_MIN_SPEEDUP: f64 = 0.90;

/// The acceptance-shape base config: n = 400, two tasks.
fn base_config() -> SimConfig {
    SimConfig::builder(400, vec![120, 80])
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
        .seed(11)
        .build()
        .expect("valid scenario")
}

/// A 4-point gamma grid over the base config — enough grid structure
/// to exercise the streamed per-grid-point config derivation.
fn sweep_for(rounds: u64, seeds: u64, workers: usize, reuse: bool) -> Sweep {
    Sweep::new(base_config())
        .axis(
            "gamma",
            [1.0 / 64.0, 1.0 / 32.0, 1.0 / 16.0, 1.0 / 8.0],
            |cfg, gamma| cfg.controller = ControllerSpec::Ant(AntParams::new(gamma)),
        )
        .seeds(0..seeds)
        .rounds(rounds)
        .threads(workers)
        .engine_reuse(reuse)
}

/// Runs the sweep `samples` times, returns the best runs/second and
/// the last pass's outcomes (for the bit-identity cross-check).
fn measure(
    rounds: u64,
    seeds: u64,
    workers: usize,
    reuse: bool,
    samples: usize,
) -> (f64, Vec<RunOutcome>) {
    let mut best = 0.0f64;
    let mut last = Vec::new();
    for _ in 0..samples {
        let t0 = Instant::now();
        let outcomes = sweep_for(rounds, seeds, workers, reuse)
            .run()
            .expect("sweep runs");
        let dt = t0.elapsed().as_secs_f64();
        best = best.max(outcomes.len() as f64 / dt);
        last = outcomes;
    }
    (best, last)
}

/// One (shape, workers) measurement: fresh vs reused.
struct Point {
    workers: usize,
    fresh: f64,
    reused: f64,
}

struct ShapeResult {
    name: &'static str,
    rounds: u64,
    seeds: u64,
    points: Vec<Point>,
}

impl ShapeResult {
    fn best_speedup(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.reused / p.fresh)
            .fold(0.0, f64::max)
    }
}

fn run_shape(name: &'static str, rounds: u64, seeds: u64, samples: usize) -> ShapeResult {
    let mut points = Vec::new();
    for &workers in &WORKERS {
        let (fresh, cold_outcomes) = measure(rounds, seeds, workers, false, samples);
        let (reused, warm_outcomes) = measure(rounds, seeds, workers, true, samples);
        // Engine reuse must be invisible in the results: outcome-for-
        // outcome identical regret, loads and job order.
        assert_eq!(cold_outcomes.len(), warm_outcomes.len());
        for (a, b) in cold_outcomes.iter().zip(&warm_outcomes) {
            assert_eq!(a.index, b.index, "{name}: job order diverged");
            assert_eq!(
                (a.final_regret, &a.final_loads, a.summary.total_regret()),
                (b.final_regret, &b.final_loads, b.summary.total_regret()),
                "{name}: reused engine diverged from fresh at job {}",
                a.index
            );
        }
        points.push(Point {
            workers,
            fresh,
            reused,
        });
    }
    ShapeResult {
        name,
        rounds,
        seeds,
        points,
    }
}

fn ensemble_throughput(_c: &mut Criterion) {
    // 4 grid points × seeds = total runs per sweep.
    let (paper_seeds, churn_seeds, samples) = if quick() {
        (32u64, 64u64, 2usize)
    } else {
        (256u64, 256u64, 2usize)
    };
    let shapes = [
        run_shape("paper", 200, paper_seeds, samples),
        run_shape("churn", 2, churn_seeds, samples),
    ];

    println!("\nbenchmark group: sweep_ensemble_throughput (n = 400, k = 2, 4 grid points)");
    let mut table = antalloc_bench::Table::new(
        "perf_sweep_ensemble",
        &[
            "shape",
            "rounds",
            "workers",
            "fresh_runs_per_sec",
            "reused_runs_per_sec",
            "speedup",
        ],
    );
    for shape in &shapes {
        for p in &shape.points {
            table.row(vec![
                shape.name.into(),
                shape.rounds.to_string(),
                p.workers.to_string(),
                format!("{:.1}", p.fresh),
                format!("{:.1}", p.reused),
                format!("{:.2}", p.reused / p.fresh),
            ]);
        }
    }
    table.finish();

    let shapes_json: Vec<String> = shapes
        .iter()
        .map(|shape| {
            let curve: Vec<String> = shape
                .points
                .iter()
                .map(|p| {
                    format!(
                        "        \"workers_{}\": {{ \"fresh_runs_per_sec\": {:.1}, \
                         \"reused_runs_per_sec\": {:.1}, \"speedup\": {:.3} }}",
                        p.workers,
                        p.fresh,
                        p.reused,
                        p.reused / p.fresh,
                    )
                })
                .collect();
            format!(
                "    \"{}\": {{\n      \"n\": 400,\n      \"tasks\": 2,\n      \
                 \"rounds\": {},\n      \"grid_points\": 4,\n      \"seeds\": {},\n      \
                 \"total_runs\": {},\n      \"workers\": {{\n{}\n      }},\n      \
                 \"speedup_best\": {:.3}\n    }}",
                shape.name,
                shape.rounds,
                shape.seeds,
                4 * shape.seeds,
                curve.join(",\n"),
                shape.best_speedup(),
            )
        })
        .collect();
    let path = antalloc_bench::out_dir().join("BENCH_sweep.json");
    let mut out = std::fs::File::create(&path).expect("create BENCH_sweep.json");
    writeln!(
        out,
        "{{\n  \"bench\": \"perf_sweep/ensemble_throughput\",\n  \"quick\": {},\n  \
         \"guards\": {{ \"churn_min_speedup\": {CHURN_MIN_SPEEDUP}, \
         \"paper_min_speedup\": {PAPER_MIN_SPEEDUP} }},\n  \"shapes\": {{\n{}\n  }}\n}}",
        quick(),
        shapes_json.join(",\n"),
    )
    .expect("write BENCH_sweep.json");
    println!("  [json: {}]", path.display());

    // Regression guards. On the setup-bound churn shape engine reuse
    // must win (best point over the worker curve at least matches
    // fresh builds); on the run-dominated paper shape it buys little,
    // but it must never cost.
    for shape in &shapes {
        let best = shape.best_speedup();
        assert!(
            best.is_finite() && best > 0.0,
            "{}: nonsensical speedup {best}",
            shape.name
        );
        let min = match shape.name {
            "churn" => CHURN_MIN_SPEEDUP,
            _ => PAPER_MIN_SPEEDUP,
        };
        assert!(
            best >= min,
            "{}: engine reuse peaks at {best:.2}x fresh-build throughput, below the \
             {min}x guard",
            shape.name
        );
    }
}

criterion_group!(benches, ensemble_throughput);
criterion_main!(benches);
