//! REC — regret transients after scripted shocks, all controllers.
//!
//! The paper's headline claim is *self-stabilization* (Theorem 3.1,
//! §6): the §4 Ant algorithm recovers from arbitrary states, population
//! changes and drifting demands. Related swarm work (Balachandran–
//! Harasha–Lynch 2024; Silva–Edwards–Hsieh 2022) evaluates exactly this
//! scenario class: scripted shocks, then the recovery transient.
//!
//! One declarative timeline scripts the whole experiment — kill-half →
//! demand step → scramble — and a labeled `Sweep` axis races every
//! controller kind through it under the batch runner, 8 seeds each.
//! For each shock the table reports the transient window (avg regret
//! right after the shock) against the settled window (just before the
//! *next* shock): self-stabilizing controllers show transient ≫ settled
//! with settled back near the static bound.
//!
//! `PERF_QUICK=1` shrinks the colony and the horizon for CI; the table
//! lands in `target/experiments/exp_recovery_transient.csv` (uploaded
//! by the `perf-smoke` job next to `BENCH_engine.json`).

use antalloc_bench::{banner, fmt, perf_quick as quick, Table};
use antalloc_core::{AntParams, ExactGreedyParams, PreciseSigmoidParams};
use antalloc_sim::{ControllerSpec, Scenario, Sweep};

fn main() {
    banner(
        "REC",
        "recovery transients: kill-half → demand step → scramble, all controllers",
        "each shock's transient decays back to the static steady band \
         (self-stabilization); fragile baselines stay elevated",
    );

    // Block length B: a shock fires at the start of blocks 2, 3, 4.
    let (n, block) = if quick() {
        (1600usize, 600u64)
    } else {
        (6000, 3000)
    };
    let window = block / 4;
    let kill = n / 2;
    let d1 = n as u64 / 8; // demands sum to n/4 before the step
    let d2 = n as u64 / 10;
    let scenario_toml = format!(
        r#"
name = "recovery-transient"
n = {n}
demands = [{d1}, {d1}]
seed = 3212

[controller]
kind = "ant"
gamma = 0.0625

[noise]
kind = "sigmoid"
lambda = 2.0

[[timeline]]
at = {kill_at}
kind = "kill"
count = {kill}

[[timeline]]
at = {step_at}
kind = "set-demands"
demands = [{d2}, {d1}]

[[timeline]]
at = {scramble_at}
kind = "scramble"
"#,
        kill_at = block + 1,
        step_at = 2 * block + 1,
        scramble_at = 3 * block + 1,
    );
    let scenario = Scenario::from_toml(&scenario_toml).expect("shock scenario validates");

    let controllers: Vec<(&str, ControllerSpec)> = vec![
        ("ant", ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
        (
            "ant-desync",
            ControllerSpec::AntDesync(AntParams::new(1.0 / 16.0)),
        ),
        (
            "precise-sigmoid",
            ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.05, 0.5)),
        ),
        (
            "exact-greedy",
            ControllerSpec::ExactGreedy(ExactGreedyParams::default()),
        ),
        ("trivial", ControllerSpec::Trivial),
    ];

    // Measurement windows, all driven by the same scripted run: the
    // transient right after each shock and the settled window at the
    // end of the block (just before the next shock).
    let shocks: [(&str, u64); 3] = [
        ("kill half", block + 1),
        ("demand step", 2 * block + 1),
        ("scramble", 3 * block + 1),
    ];

    let mut table = Table::new(
        "exp_recovery_transient",
        &[
            "controller",
            "shock",
            "transient avg regret",
            "settled avg regret",
            "max |r| in transient",
        ],
    );

    for (shock_name, at) in shocks {
        // Two batched sweeps per shock: the transient window starting
        // at the shock round, and the settled window ending the block.
        // Each window re-simulates from round 0 (warmup = window
        // start) — deliberately: every table cell is then bit-identical
        // to a standalone `Batch` run of that window, at the cost of
        // ~4× redundant warmup rounds over an observer that bins one
        // long run (the pattern `exp_dynamic_demands` uses).
        let sweep = |warmup: u64, rounds: u64| {
            Sweep::new(scenario.config.clone())
                .axis_labeled("controller", controllers.clone(), |cfg, spec| {
                    cfg.controller = spec.clone();
                })
                .seeds(0..8)
                .warmup(warmup)
                .rounds(rounds)
                .run()
                .expect("sweep runs")
        };
        let transient = sweep(at - 1, window);
        let settled = sweep(at - 1 + block - window, window);
        for (c, (label, _)) in controllers.iter().enumerate() {
            let avg = |outcomes: &[antalloc_sim::RunOutcome]| {
                let runs = &outcomes[c * 8..(c + 1) * 8];
                let avg = runs.iter().map(|o| o.summary.average_regret()).sum::<f64>()
                    / runs.len() as f64;
                let max = runs
                    .iter()
                    .map(|o| o.summary.max_instant_regret())
                    .max()
                    .unwrap_or(0);
                (avg, max)
            };
            let (t_avg, t_max) = avg(&transient);
            let (s_avg, _) = avg(&settled);
            table.row(vec![
                label.to_string(),
                shock_name.to_string(),
                fmt(t_avg),
                fmt(s_avg),
                fmt(t_max as f64),
            ]);
        }
    }
    table.finish();
    println!(
        "\nshape check: for self-stabilizing controllers every settled column \
         returns to the\nstatic band while the transient column spikes with the shock."
    );
}
