//! T35 — Theorem 3.5: under adversarial noise, *no* algorithm beats
//! `(1−o(1))·γ*·Σd` average regret.
//!
//! The Yao construction: demands `d` and `d' = d − 2τ` with a
//! load-threshold adversary that answers identically for both. We run
//! each algorithm once per demand vector (same seed): trajectories are
//! verified identical, so the regret averaged over the pair is at least
//! `k·τ` per round no matter what the algorithm does.
//!
//! Expected shape: every algorithm's pair-averaged regret ≥ ~0.9·k·τ,
//! and the ratio to the γ*Σd yardstick approaches 1 from below.

use antalloc_bench::{banner, fmt, worker_threads, Table};
use antalloc_core::{AntParams, PreciseAdversarialParams};
use antalloc_env::InitialConfig;
use antalloc_noise::{yao_demand_pair, GreyZonePolicy, NoiseModel};
use antalloc_sim::{ControllerSpec, FnObserver, NullObserver, RunSummary, SimConfig};

fn run_pair(name: &str, spec: &ControllerSpec, n: usize, gamma_ad: f64, table: &mut Table) {
    let k = 2usize;
    let (d, dp, theta) = yao_demand_pair(n, k, gamma_ad);
    let tau = (d[0] - dp[0]) / 2;
    let noise = NoiseModel::Adversarial {
        gamma_ad,
        policy: GreyZonePolicy::LoadThreshold(theta),
    };
    let mut results = Vec::new();
    let mut traces: Vec<Vec<u32>> = Vec::new();
    for demands in [d.clone(), dp.clone()] {
        // Start at the d-vector's saturation point in BOTH worlds (the
        // initial configuration may not depend on which world we are in,
        // or it would break indistinguishability).
        let cfg = SimConfig::builder(n, demands)
            .noise(noise.clone())
            .controller(spec.clone())
            .seed(0x7435)
            .initial(InitialConfig::AllIdle)
            .build()
            .expect("valid scenario");
        let mut engine = cfg.build();
        let mut sink = NullObserver;
        engine.run_parallel(20_000, worker_threads(), &mut sink);
        let mut sample_loads = Vec::new();
        let steady;
        {
            let mut obs = antalloc_sim::Both(
                RunSummary::new(),
                FnObserver::new(|r: &antalloc_sim::RoundRecord<'_>| {
                    if r.round.is_multiple_of(100) {
                        sample_loads.extend_from_slice(r.loads);
                    }
                }),
            );
            engine.run_parallel(4000, worker_threads(), &mut obs);
            steady = obs.0;
        }
        results.push(steady.average_regret());
        traces.push(sample_loads);
    }
    let identical = traces[0] == traces[1];
    let avg = 0.5 * (results[0] + results[1]);
    let floor = (k as u64 * tau) as f64;
    let yardstick = gamma_ad * (d[0] * k as u64) as f64;
    table.row(vec![
        name.to_string(),
        format!("{}/{}", d[0], dp[0]),
        tau.to_string(),
        if identical { "yes" } else { "NO (BUG)" }.to_string(),
        fmt(results[0]),
        fmt(results[1]),
        fmt(avg),
        fmt(floor),
        fmt(avg / yardstick),
    ]);
}

fn main() {
    banner(
        "T35",
        "adversarial lower bound via the Yao demand pair",
        "E[R(t)]/t ≥ (1−o(1))·γ*·Σd for ANY algorithm",
    );
    let n = 4000usize;
    let gamma_ad = 0.05;
    println!("n = {n}, k = 2, γ_ad = γ* = {gamma_ad}\n");

    let mut table = Table::new(
        "thm35_adversarial_lb",
        &[
            "algorithm",
            "d/d'",
            "τ",
            "identical traj?",
            "avg r (d)",
            "avg r (d')",
            "pair avg",
            "floor k·τ",
            "avg/(γ*Σd)",
        ],
    );
    run_pair(
        "algorithm ant γ=γ*",
        &ControllerSpec::Ant(AntParams::new(gamma_ad)),
        n,
        gamma_ad,
        &mut table,
    );
    run_pair(
        "precise adversarial ε=0.5",
        &ControllerSpec::PreciseAdversarial(PreciseAdversarialParams::new(gamma_ad, 0.5)),
        n,
        gamma_ad,
        &mut table,
    );
    run_pair("trivial", &ControllerSpec::Trivial, n, gamma_ad, &mut table);
    table.finish();
    println!(
        "\nshape check: identical trajectories under d and d' (the \
         indistinguishability), pair-averaged regret above k·τ for every \
         algorithm — even unlimited memory could not help."
    );
    println!(
        "note: Precise Adversarial's permanent-leave probability is \
         εγ/32 per phase, so its drain from the all-idle join stampede \
         takes Θ(32·ln n/(εγ)) phases — it is still descending at this \
         horizon. The floor claim (≥) is unaffected; its achievable rate \
         is measured in T36 from a near-band start."
    );
}
