//! T31b — Theorem 3.1's self-stabilization: from arbitrary initial
//! configurations, the deficit is bounded by `5γd(j) + 3` in all but
//! `O(k log n/γ)` rounds.
//!
//! Expected shape: wildly different starts (all idle, everyone on one
//! task, inverted demands, uniformly random) converge to the same
//! steady band; the number of out-of-band rounds is a small constant
//! multiple of `k·ln(n)/γ`, independent of the start.

use antalloc_bench::{banner, fmt, worker_threads, Table};
use antalloc_core::AntParams;
use antalloc_env::InitialConfig;
use antalloc_noise::NoiseModel;
use antalloc_sim::{ControllerSpec, FnObserver, SimConfig};

fn main() {
    banner(
        "T31b",
        "self-stabilization from arbitrary initial configurations",
        "|Δ(j)| ≤ 5γd(j) + 3 in all but O(k·log n/γ) rounds, any start",
    );

    let n = 4000usize;
    let demands = vec![400u64, 700, 300];
    let gamma = 1.0 / 16.0;
    let lambda = 2.0;
    let horizon = 30_000u64;
    let klogn_over_gamma = demands.len() as f64 * (n as f64).ln() / gamma;
    println!(
        "k·ln(n)/γ = {:.0}; horizon = {horizon} rounds\n",
        klogn_over_gamma
    );

    let mut table = Table::new(
        "thm31_selfstab",
        &[
            "initial config",
            "rounds out of band",
            "out/klogn_over_gamma",
            "first in-band round",
            "final regret",
            "steady avg r (last 25%)",
        ],
    );

    for (name, initial) in [
        ("all idle", InitialConfig::AllIdle),
        ("all on task 0", InitialConfig::AllOnTask(0)),
        ("inverted demands", InitialConfig::Inverted),
        ("uniform random", InitialConfig::UniformRandom),
        ("saturated (control)", InitialConfig::Saturated),
    ] {
        let cfg = SimConfig::builder(n, demands.clone())
            .noise(NoiseModel::Sigmoid { lambda })
            .controller(ControllerSpec::Ant(AntParams::new(gamma)))
            .seed(0x7431B)
            .initial(initial)
            .build()
            .expect("valid scenario");
        let mut engine = cfg.build();
        let mut out_of_band = 0u64;
        let mut first_in_band: Option<u64> = None;
        let mut tail_regret = 0u128;
        let mut tail_rounds = 0u64;
        let demands_ref = demands.clone();
        let mut obs = FnObserver::new(|r: &antalloc_sim::RoundRecord<'_>| {
            let in_band =
                r.deficits.iter().zip(&demands_ref).all(|(&delta, &d)| {
                    delta.unsigned_abs() as f64 <= 5.0 * gamma * d as f64 + 3.0
                });
            if !in_band {
                out_of_band += 1;
            } else if first_in_band.is_none() {
                first_in_band = Some(r.round);
            }
            if r.round > horizon * 3 / 4 {
                tail_regret += u128::from(r.instant_regret());
                tail_rounds += 1;
            }
        });
        engine.run_parallel(horizon, worker_threads(), &mut obs);
        let _ = obs; // closure borrows end here
        table.row(vec![
            name.to_string(),
            out_of_band.to_string(),
            fmt(out_of_band as f64 / klogn_over_gamma),
            first_in_band.map_or("never".into(), |r| r.to_string()),
            engine.colony().instant_regret().to_string(),
            fmt(tail_regret as f64 / tail_rounds as f64),
        ]);
    }
    table.finish();
    println!(
        "\nAll starts land in the same band; out-of-band rounds are a \
         small multiple of k·log n/γ as Theorem 3.1 predicts."
    );
}
