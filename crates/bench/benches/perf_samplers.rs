//! PERF — sampler and noise-preparation microbenchmarks (criterion).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use antalloc_noise::NoiseModel;
use antalloc_rng::{uniform_index, Bernoulli, StreamSeeder, Xoshiro256pp};

fn rng_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    group.throughput(Throughput::Elements(1));
    group.bench_function("xoshiro_next_u64", |b| {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        b.iter(|| black_box(rng.next_u64()));
    });
    group.bench_function("bernoulli_sample", |b| {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let bern = Bernoulli::new(0.15625);
        b.iter(|| black_box(bern.sample(&mut rng)));
    });
    group.bench_function("uniform_index_7", |b| {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        b.iter(|| black_box(uniform_index(&mut rng, 7)));
    });
    group.bench_function("stream_derivation", |b| {
        let seeder = StreamSeeder::new(4);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(seeder.stream(i))
        });
    });
    group.finish();
}

fn noise_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("noise");
    let k = 16usize;
    let deficits: Vec<i64> = (0..k as i64).map(|j| j * 3 - 20).collect();
    let demands: Vec<u64> = vec![500; k];

    group.throughput(Throughput::Elements(k as u64));
    group.bench_function("prepare_sigmoid_16_tasks", |b| {
        let model = NoiseModel::Sigmoid { lambda: 2.0 };
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            black_box(model.prepare(round, &deficits, &demands))
        });
    });
    group.bench_function("prepare_adversarial_16_tasks", |b| {
        let model = NoiseModel::Adversarial {
            gamma_ad: 0.05,
            policy: antalloc_noise::GreyZonePolicy::AlternateByRound,
        };
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            black_box(model.prepare(round, &deficits, &demands))
        });
    });

    group.throughput(Throughput::Elements(1));
    group.bench_function("sample_one_signal", |b| {
        let model = NoiseModel::Sigmoid { lambda: 2.0 };
        let prep = model.prepare(1, &deficits, &demands);
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut j = 0usize;
        b.iter(|| {
            j = (j + 1) % k;
            black_box(prep.sample(j, &mut rng))
        });
    });
    group.finish();
}

criterion_group!(benches, rng_core, noise_paths);
criterion_main!(benches);
