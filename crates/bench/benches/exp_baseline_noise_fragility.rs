//! BASE — single-sample baseline ([11]-style damped greedy) vs the
//! two-sample Algorithm Ant, across feedback worlds.
//!
//! What the data shows (and EXPERIMENTS.md records):
//!
//! * an *aggressive* single-sample rule churns Θ(p·n) regret in every
//!   world and the undamped limit (p → 1) is Appendix D.2's Θ(n)
//!   flip-flop;
//! * a *well-damped* rule (small p) can sit near the constant-memory
//!   floor `γ*Σd` under benign sigmoid noise — but it is exactly the
//!   kind of algorithm the adversarial model punishes: grey-zone lies
//!   drive its load back and forth across the whole zone, while
//!   Algorithm Ant's paired samples keep it parked;
//! * recovery from a demand step is measured against each algorithm's
//!   own steady band (1.5× steady + 30), so damping cannot hide slow
//!   reaction behind a loose absolute threshold.

use antalloc_bench::{banner, fmt, worker_threads, Table};
use antalloc_core::{AntParams, ExactGreedyParams};
use antalloc_env::DemandSchedule;
use antalloc_noise::{GreyZonePolicy, NoiseModel};
use antalloc_sim::{ControllerSpec, FnObserver, NullObserver, SimConfig};

struct Outcome {
    steady_regret: f64,
    band: f64,
    recovery_rounds: Option<u64>,
}

fn run(spec: ControllerSpec, noise: NoiseModel) -> Outcome {
    let n = 2000usize;
    let step_round = 12_000u64;
    let cfg = SimConfig::builder(n, vec![200, 350, 150])
        .noise(noise)
        .controller(spec)
        .seed(0xBA5E)
        .schedule(DemandSchedule::Step {
            at: step_round,
            demands: vec![260, 455, 195],
        })
        .build()
        .expect("valid scenario");
    let mut engine = cfg.build();
    let mut sink = NullObserver;
    engine.run_parallel(8_000, worker_threads(), &mut sink);

    let mut steady_sum = 0u128;
    let mut steady_rounds = 0u64;
    let mut band = f64::INFINITY;
    let mut recovered_at: Option<u64> = None;
    let mut in_band_run = 0u64;
    let mut obs = FnObserver::new(|r: &antalloc_sim::RoundRecord<'_>| {
        if r.round < step_round {
            steady_sum += u128::from(r.instant_regret());
            steady_rounds += 1;
            if r.round == step_round - 1 {
                // Freeze this algorithm's own recovery band.
                band = 1.5 * steady_sum as f64 / steady_rounds as f64 + 30.0;
            }
        } else if recovered_at.is_none() {
            if (r.instant_regret() as f64) <= band {
                in_band_run += 1;
                if in_band_run == 50 {
                    recovered_at = Some(r.round - 49 - step_round);
                }
            } else {
                in_band_run = 0;
            }
        }
    });
    engine.run_parallel(4_000 + 36_000, worker_threads(), &mut obs);
    let _ = obs; // closure borrows end here
    Outcome {
        steady_regret: steady_sum as f64 / steady_rounds as f64,
        band,
        recovery_rounds: recovered_at,
    }
}

fn main() {
    banner(
        "BASE",
        "single-sample baseline vs Algorithm Ant across feedback worlds",
        "single samples churn Θ(p·n) or, damped, lose all worst-case \
         robustness; two-sample phases hold in every world",
    );
    let gamma = 1.0 / 16.0;
    println!(
        "n = 2000, Σd = 700 → 910 (+30%) at round 12000; recovery = \
         regret within 1.5× own steady + 30 for 50 straight rounds\n"
    );

    let mut table = Table::new(
        "baseline_noise_fragility",
        &[
            "algorithm",
            "feedback",
            "steady avg r",
            "recovery band",
            "recovery rounds",
        ],
    );
    let worlds: Vec<(String, NoiseModel)> = vec![
        ("exact".into(), NoiseModel::Exact),
        ("sigmoid λ=4".into(), NoiseModel::Sigmoid { lambda: 4.0 }),
        ("sigmoid λ=1".into(), NoiseModel::Sigmoid { lambda: 1.0 }),
        (
            "adversarial γ_ad=0.05 inverted".into(),
            NoiseModel::Adversarial {
                gamma_ad: 0.05,
                policy: GreyZonePolicy::Inverted,
            },
        ),
    ];
    for (world, noise) in &worlds {
        for (name, spec) in [
            (
                "baseline p=0.2",
                ControllerSpec::ExactGreedy(ExactGreedyParams {
                    p_join: 0.2,
                    p_leave: 0.2,
                }),
            ),
            (
                "baseline p=0.02",
                ControllerSpec::ExactGreedy(ExactGreedyParams {
                    p_join: 0.02,
                    p_leave: 0.02,
                }),
            ),
            (
                "algorithm ant γ=1/16",
                ControllerSpec::Ant(AntParams::new(gamma)),
            ),
        ] {
            let o = run(spec, noise.clone());
            table.row(vec![
                name.to_string(),
                world.clone(),
                fmt(o.steady_regret),
                fmt(o.band),
                o.recovery_rounds.map_or("never".into(), |r| r.to_string()),
            ]);
        }
    }
    table.finish();
    println!(
        "\nshape check: p = 0.2 churns ~Θ(p·n) everywhere; p = 0.02 \
         approaches the γ*Σd floor under benign sigmoid noise. In the \
         adversarial world at THIS small demand scale (c_sγ·d_min ≈ 23) \
         every algorithm degrades: Ant's pause-dip concentration fails \
         below c_sγ·d ≈ 100 and the inverted adversary triggers join \
         stampedes — see ABL1 part 3 for the demand-scale sweep showing \
         Ant recovering its Theorem 3.1 bound once Assumption 2.1's \
         scale is respected."
    );
}
