//! PERF — engine throughput (criterion).
//!
//! Tracks ant-rounds/second for the serial and parallel paths and the
//! per-algorithm step cost, so the experiment suite stays laptop-sized.
//!
//! The `banks_vs_seed` comparison races the banked engine against a
//! faithful replica of the pre-bank (array-of-enums, per-ant-probe)
//! loop on a million-ant homogeneous Ant colony, asserts the two are
//! bit-identical, and emits `target/experiments/BENCH_engine.json` —
//! the artifact the `perf-smoke` CI job uploads so the repo keeps a
//! perf trajectory. Set `PERF_QUICK=1` for a CI-sized run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::io::Write as _;
use std::time::Instant;

use antalloc_bench::perf_quick as quick;
use antalloc_core::{AntParams, AnyController, Controller, PreciseSigmoidParams};
use antalloc_env::ColonyState;
use antalloc_noise::{FeedbackProbe, NoiseModel};
use antalloc_rng::{AntRng, StreamSeeder};
use antalloc_sim::{ControllerSpec, NullObserver, SimConfig};

fn engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000, 100_000] {
        let demands = vec![(n / 8) as u64, (n / 8) as u64, (n / 8) as u64];
        let cfg = SimConfig::builder(n, demands)
            .noise(NoiseModel::Sigmoid { lambda: 2.0 })
            .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
            .seed(1)
            .build()
            .expect("valid scenario");
        let rounds = 64u64;
        group.throughput(Throughput::Elements(n as u64 * rounds));
        group.bench_with_input(BenchmarkId::new("serial", n), &cfg, |b, cfg| {
            let mut engine = cfg.build();
            let mut obs = NullObserver;
            b.iter(|| {
                engine.run(rounds, &mut obs);
                black_box(engine.colony().instant_regret())
            });
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &cfg, |b, cfg| {
            let mut engine = cfg.build();
            let mut obs = NullObserver;
            let threads = antalloc_bench::worker_threads();
            b.iter(|| {
                engine.run_parallel(rounds, threads, &mut obs);
                black_box(engine.colony().instant_regret())
            });
        });
    }
    group.finish();
}

fn algorithm_step_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm_step_cost");
    group.sample_size(10);
    let n = 10_000usize;
    let demands = vec![2000u64, 2000];
    let rounds = 64u64;
    let specs: [(&str, ControllerSpec); 5] = [
        ("ant", ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
        (
            "precise_sigmoid",
            ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.05, 0.5)),
        ),
        ("trivial", ControllerSpec::Trivial),
        (
            "hysteresis8",
            ControllerSpec::Hysteresis {
                depth: 8,
                lazy: Some(0.5),
            },
        ),
        (
            "mix_ant_greedy_hyst",
            ControllerSpec::Mix(vec![
                (2.0, ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
                (1.0, ControllerSpec::ExactGreedy(Default::default())),
                (
                    1.0,
                    ControllerSpec::Hysteresis {
                        depth: 4,
                        lazy: Some(0.5),
                    },
                ),
            ]),
        ),
    ];
    for (name, spec) in specs {
        let demands = if matches!(
            spec,
            ControllerSpec::Hysteresis { .. } | ControllerSpec::Mix(_)
        ) {
            vec![2000u64]
        } else {
            demands.clone()
        };
        let cfg = SimConfig::builder(n, demands)
            .noise(NoiseModel::Sigmoid { lambda: 2.0 })
            .controller(spec)
            .seed(2)
            .build()
            .expect("valid scenario");
        group.throughput(Throughput::Elements(n as u64 * rounds));
        group.bench_function(name, |b| {
            let mut engine = cfg.build();
            let mut obs = NullObserver;
            b.iter(|| {
                engine.run(rounds, &mut obs);
                black_box(engine.colony().instant_regret())
            });
        });
    }
    group.finish();
}

/// A faithful replica of the pre-bank engine loop: `Vec<AnyController>`
/// with one enum dispatch and one probe per ant per round, decisions
/// applied in ant order as they are made. The controllers are cloned
/// out of a banked engine so the initial state matches exactly.
struct SeedReplica {
    controllers: Vec<AnyController>,
    rngs: Vec<AntRng>,
    colony: ColonyState,
    noise: NoiseModel,
    round: u64,
    deficits: Vec<i64>,
}

impl SeedReplica {
    fn new(cfg: &SimConfig) -> Self {
        let engine = cfg.build();
        let controllers = engine.reference_controllers();
        let seeder = StreamSeeder::new(cfg.seed);
        let rngs = (0..cfg.n).map(|i| seeder.ant(i)).collect();
        let colony = ColonyState::new(cfg.n, antalloc_env::DemandVector::new(cfg.demands.clone()));
        // cfg.initial is AllIdle here; the fresh colony already is.
        let k = colony.num_tasks();
        Self {
            controllers,
            rngs,
            colony,
            noise: cfg.noise.clone(),
            round: 0,
            deficits: vec![0; k],
        }
    }

    fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.round += 1;
            self.colony.deficits_into(&mut self.deficits);
            let prepared =
                self.noise
                    .prepare(self.round, &self.deficits, self.colony.demands().as_slice());
            for i in 0..self.controllers.len() {
                let mut probe = FeedbackProbe::new(&prepared, &mut self.rngs[i]);
                let next = self.controllers[i].step(&mut probe);
                if next != self.colony.assignment(i) {
                    self.colony.apply(i, next);
                }
            }
        }
    }
}

/// Times `step` over `samples` batches of `rounds` rounds; returns the
/// best ant-rounds/second (max over samples, the standard perf metric
/// for throughput floors).
fn measure(n: usize, rounds: u64, samples: usize, mut step: impl FnMut(u64)) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..samples {
        let t0 = Instant::now();
        step(rounds);
        let dt = t0.elapsed().as_secs_f64();
        best = best.max(n as f64 * rounds as f64 / dt);
    }
    best
}

fn banks_vs_seed(_c: &mut Criterion) {
    let (n, rounds, samples) = if quick() {
        (150_000usize, 8u64, 3usize)
    } else {
        (1_000_000usize, 16u64, 5usize)
    };
    let demands = vec![(n / 8) as u64; 3];
    let cfg = SimConfig::builder(n, demands)
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
        .seed(3)
        .build()
        .expect("valid scenario");

    println!("\nbenchmark group: banks_vs_seed (n = {n}, {rounds} rounds × {samples} samples)");

    // Warm both to the same steady state, asserting bit-identity on the
    // way — the comparison is meaningless if the layouts diverge.
    let warm = 32u64;
    let mut banked = cfg.build();
    let mut obs = NullObserver;
    banked.run(warm, &mut obs);
    let mut seed = SeedReplica::new(&cfg);
    seed.run(warm);
    assert_eq!(
        banked.colony().loads(),
        seed.colony.loads(),
        "bank layout diverged from the seed layout"
    );

    let seed_tput = measure(n, rounds, samples, |r| seed.run(r));
    let banks_tput = measure(n, rounds, samples, |r| banked.run(r, &mut NullObserver));
    let threads = antalloc_bench::worker_threads();
    let banks_par_tput = measure(n, rounds, samples, |r| {
        banked.run_parallel(r, threads, &mut NullObserver)
    });
    // Catch the seed replica up (banked ran one extra measurement
    // block on the parallel path) and re-check bit-identity.
    seed.run(rounds * samples as u64);
    assert_eq!(
        banked.colony().loads(),
        seed.colony.loads(),
        "layouts diverged during measurement"
    );

    let speedup = banks_tput / seed_tput;
    let mut table = antalloc_bench::Table::new(
        "perf_engine_banks_vs_seed",
        &["layout", "ant_rounds_per_sec", "speedup_vs_seed"],
    );
    table.row(vec![
        "seed_per_ant".into(),
        format!("{seed_tput:.3e}"),
        "1.00".into(),
    ]);
    table.row(vec![
        "banks_serial".into(),
        format!("{banks_tput:.3e}"),
        format!("{speedup:.2}"),
    ]);
    table.row(vec![
        format!("banks_parallel_{threads}"),
        format!("{banks_par_tput:.3e}"),
        format!("{:.2}", banks_par_tput / seed_tput),
    ]);
    table.finish();

    let path = antalloc_bench::out_dir().join("BENCH_engine.json");
    let mut out = std::fs::File::create(&path).expect("create BENCH_engine.json");
    writeln!(
        out,
        "{{\n  \"bench\": \"perf_engine/banks_vs_seed\",\n  \"quick\": {},\n  \
         \"n\": {n},\n  \"tasks\": 3,\n  \"rounds_per_sample\": {rounds},\n  \
         \"samples\": {samples},\n  \"threads\": {threads},\n  \"layouts\": {{\n    \
         \"seed_per_ant\": {{ \"ant_rounds_per_sec\": {seed_tput:.1} }},\n    \
         \"banks_serial\": {{ \"ant_rounds_per_sec\": {banks_tput:.1} }},\n    \
         \"banks_parallel\": {{ \"ant_rounds_per_sec\": {banks_par_tput:.1} }}\n  }},\n  \
         \"speedup_serial_vs_seed\": {speedup:.3},\n  \
         \"speedup_parallel_vs_seed\": {:.3}\n}}",
        quick(),
        banks_par_tput / seed_tput,
    )
    .expect("write BENCH_engine.json");
    println!("  [json: {}]", path.display());
    assert!(
        speedup > 0.0 && speedup.is_finite(),
        "nonsensical speedup {speedup}"
    );
}

/// Regression guard for the timeline cursor: consuming a long event
/// script must cost O(1) per round, not O(events). The old
/// `DemandSchedule::Steps::update` did a linear `find` over all steps
/// every round; the cursor replaced it. With 50k pending events the
/// linear scan would be orders of magnitude slower — assert the scripted
/// run stays within 2× of the static run (generous noise margin).
fn timeline_cursor_scaling(_c: &mut Criterion) {
    use antalloc_env::{Event, Timeline};

    let n = 2_000usize;
    let rounds = 2_000u64;
    let demands = vec![(n / 8) as u64; 2];
    let base = SimConfig::builder(n, demands.clone())
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
        .seed(4)
        .build()
        .expect("valid scenario");
    // 50k one-shot events, all far beyond the horizon: the cursor must
    // never scan them.
    let mut timeline = Timeline::new();
    for i in 0..50_000u64 {
        timeline = timeline.at(1_000_000 + i, Event::SetDemands(demands.clone()));
    }
    let mut scripted = base.clone();
    scripted.timeline = timeline;

    let samples = 5usize;
    let mut static_engine = base.build();
    let mut scripted_engine = scripted.build(); // validates the script too
                                                // Warm both once to even out allocation effects.
    static_engine.run(rounds, &mut NullObserver);
    scripted_engine.run(rounds, &mut NullObserver);
    let static_tput = measure(n, rounds, samples, |r| {
        static_engine.run(r, &mut NullObserver)
    });
    let scripted_tput = measure(n, rounds, samples, |r| {
        scripted_engine.run(r, &mut NullObserver)
    });
    let slowdown = static_tput / scripted_tput;

    println!("\nbenchmark group: timeline_cursor_scaling (n = {n}, 50k pending events)");
    let mut table = antalloc_bench::Table::new(
        "perf_engine_timeline_cursor",
        &["timeline", "ant_rounds_per_sec", "slowdown_vs_static"],
    );
    table.row(vec![
        "static".into(),
        format!("{static_tput:.3e}"),
        "1.00".into(),
    ]);
    table.row(vec![
        "50k_pending_events".into(),
        format!("{scripted_tput:.3e}"),
        format!("{slowdown:.2}"),
    ]);
    table.finish();
    assert!(
        slowdown < 2.0,
        "timeline consumption regressed to O(events)/round: {slowdown:.2}x slower \
         ({static_tput:.3e} vs {scripted_tput:.3e} ant-rounds/s)"
    );
}

criterion_group!(
    benches,
    engine_throughput,
    algorithm_step_cost,
    banks_vs_seed,
    timeline_cursor_scaling
);
criterion_main!(benches);
