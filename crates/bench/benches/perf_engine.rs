//! PERF — engine throughput (criterion).
//!
//! Tracks ant-rounds/second for the serial and parallel paths and the
//! per-algorithm step cost, so the experiment suite stays laptop-sized.
//!
//! The `banks_vs_seed` comparison races the banked engine against a
//! faithful replica of the pre-bank (array-of-enums, per-ant-probe)
//! loop on a million-ant homogeneous Ant colony, asserts the two are
//! bit-identical, and emits `target/experiments/BENCH_engine.json` —
//! the artifact the `perf-smoke` CI job uploads so the repo keeps a
//! perf trajectory. Set `PERF_QUICK=1` for a CI-sized run.

// disallowed_methods: a bench exists to read the wall clock; timing
// here never feeds a simulation (audit.toml relaxes bench files too).
#![allow(clippy::disallowed_methods)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::io::Write as _;
use std::time::Instant;

use antalloc_bench::perf_quick as quick;
use antalloc_core::{
    AntParams, AnyController, Controller, PreciseSigmoidParams, ProportionalParams,
};
use antalloc_env::{ArenaConfig, ColonyState};
use antalloc_noise::{FeedbackProbe, NoiseModel};
use antalloc_rng::{AntRng, StreamSeeder};
use antalloc_sim::{ControllerSpec, NullObserver, SimConfig};

fn engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000, 100_000] {
        let demands = vec![(n / 8) as u64, (n / 8) as u64, (n / 8) as u64];
        let cfg = SimConfig::builder(n, demands)
            .noise(NoiseModel::Sigmoid { lambda: 2.0 })
            .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
            .seed(1)
            .build()
            .expect("valid scenario");
        let rounds = 64u64;
        group.throughput(Throughput::Elements(n as u64 * rounds));
        group.bench_with_input(BenchmarkId::new("serial", n), &cfg, |b, cfg| {
            let mut engine = cfg.build();
            let mut obs = NullObserver;
            b.iter(|| {
                engine.run(rounds, &mut obs);
                black_box(engine.colony().instant_regret())
            });
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &cfg, |b, cfg| {
            let mut engine = cfg.build();
            let mut obs = NullObserver;
            let threads = antalloc_bench::worker_threads();
            b.iter(|| {
                engine.run_parallel(rounds, threads, &mut obs);
                black_box(engine.colony().instant_regret())
            });
        });
    }
    group.finish();
}

fn algorithm_step_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm_step_cost");
    group.sample_size(10);
    let n = 10_000usize;
    let demands = vec![2000u64, 2000];
    let rounds = 64u64;
    let specs: [(&str, ControllerSpec); 5] = [
        ("ant", ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
        (
            "precise_sigmoid",
            ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.05, 0.5)),
        ),
        ("trivial", ControllerSpec::Trivial),
        (
            "hysteresis8",
            ControllerSpec::Hysteresis {
                depth: 8,
                lazy: Some(0.5),
            },
        ),
        (
            "mix_ant_greedy_hyst",
            ControllerSpec::Mix(vec![
                (2.0, ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
                (1.0, ControllerSpec::ExactGreedy(Default::default())),
                (
                    1.0,
                    ControllerSpec::Hysteresis {
                        depth: 4,
                        lazy: Some(0.5),
                    },
                ),
            ]),
        ),
    ];
    for (name, spec) in specs {
        let demands = if matches!(
            spec,
            ControllerSpec::Hysteresis { .. } | ControllerSpec::Mix(_)
        ) {
            vec![2000u64]
        } else {
            demands.clone()
        };
        let cfg = SimConfig::builder(n, demands)
            .noise(NoiseModel::Sigmoid { lambda: 2.0 })
            .controller(spec)
            .seed(2)
            .build()
            .expect("valid scenario");
        group.throughput(Throughput::Elements(n as u64 * rounds));
        group.bench_function(name, |b| {
            let mut engine = cfg.build();
            let mut obs = NullObserver;
            b.iter(|| {
                engine.run(rounds, &mut obs);
                black_box(engine.colony().instant_regret())
            });
        });
    }
    group.finish();
}

/// A faithful replica of the pre-bank engine loop: `Vec<AnyController>`
/// with one enum dispatch and one probe per ant per round, decisions
/// applied in ant order as they are made. The controllers are cloned
/// out of a banked engine so the initial state matches exactly.
struct SeedReplica {
    controllers: Vec<AnyController>,
    rngs: Vec<AntRng>,
    colony: ColonyState,
    noise: NoiseModel,
    round: u64,
    deficits: Vec<i64>,
}

impl SeedReplica {
    fn new(cfg: &SimConfig) -> Self {
        let engine = cfg.build();
        let controllers = engine.reference_controllers();
        let seeder = StreamSeeder::new(cfg.seed);
        let rngs = (0..cfg.n).map(|i| seeder.ant(i)).collect();
        let colony = ColonyState::new(cfg.n, antalloc_env::DemandVector::new(cfg.demands.clone()));
        // cfg.initial is AllIdle here; the fresh colony already is.
        let k = colony.num_tasks();
        Self {
            controllers,
            rngs,
            colony,
            noise: cfg.noise.clone(),
            round: 0,
            deficits: vec![0; k],
        }
    }

    fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.round += 1;
            self.colony.deficits_into(&mut self.deficits);
            let prepared =
                self.noise
                    .prepare(self.round, &self.deficits, self.colony.demands().as_slice());
            for i in 0..self.controllers.len() {
                let mut probe = FeedbackProbe::new(&prepared, &mut self.rngs[i]);
                let next = self.controllers[i].step(&mut probe);
                if next != self.colony.assignment(i) {
                    self.colony.apply(i, next);
                }
            }
        }
    }
}

/// Times `step` over `samples` batches of `rounds` rounds; returns the
/// best ant-rounds/second (max over samples, the standard perf metric
/// for throughput floors).
fn measure(n: usize, rounds: u64, samples: usize, mut step: impl FnMut(u64)) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..samples {
        let t0 = Instant::now();
        step(rounds);
        let dt = t0.elapsed().as_secs_f64();
        best = best.max(n as f64 * rounds as f64 / dt);
    }
    best
}

/// One controller kind's SoA-bank-vs-per-ant-reference comparison.
struct KindResult {
    kind: &'static str,
    seed_tput: f64,
    banks_tput: f64,
    banks_par_tput: f64,
    kernel_generic_tput: f64,
    kernel_soa_tput: f64,
    /// `(threads, ant_rounds_per_sec)` for the fused parallel path.
    scaling: Vec<(usize, f64)>,
}

/// Colony size above which the fused parallel path is documented to
/// beat the serial path (given > 2 hardware threads). The scaling
/// guard in [`banks_vs_seed`] enforces this; `docs/ARCHITECTURE.md`
/// and the README state it.
const PARALLEL_CROSSOVER_N: usize = 100_000;

/// Thread counts for the per-kind parallel scaling curve.
const SCALING_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Like-for-like kernel race: the SoA bank's `step_batch` against the
/// generic monomorphic per-ant loop (`step_slice` over a `Vec` of
/// controllers — the exact layout the SoA banks replaced), same rounds,
/// same per-ant RNG streams, no engine around either. Asserts
/// bit-identity and returns (generic, soa) ant-rounds/second.
fn kernel_race<C>(n: usize, rounds: u64, samples: usize, make: impl Fn() -> C) -> (f64, f64)
where
    C: Controller + Clone + Into<AnyController>,
{
    use antalloc_rng::StreamSeeder;

    let k = 3usize;
    let demands = vec![(n / 8) as u64; k];
    let noise = NoiseModel::Sigmoid { lambda: 2.0 };
    let seeder = StreamSeeder::new(5);
    let mut generic: Vec<C> = (0..n).map(|_| make()).collect();
    let mut soa: antalloc_core::ControllerBank = (0..n).map(|_| make().into()).collect();
    let mut generic_rngs: Vec<AntRng> = (0..n).map(|i| seeder.ant(i)).collect();
    let mut soa_rngs: Vec<AntRng> = (0..n).map(|i| seeder.ant(i)).collect();
    let mut out_a = vec![antalloc_env::Assignment::Idle; n];
    let mut out_b = vec![antalloc_env::Assignment::Idle; n];
    // Small rotating deficits keep every signal stochastic (saturated
    // sigmoids compile to draw-free fixed feedback and would flatter
    // both loops equally but measure nothing).
    let deficits = |round: u64| {
        let mut d = vec![0i64; k];
        for (j, slot) in d.iter_mut().enumerate() {
            *slot = [2i64, 0, -2][(round as usize + j) % 3];
        }
        d
    };
    let mut round = 0u64;
    for _ in 0..16 {
        round += 1;
        let prep = noise.prepare(round, &deficits(round), &demands);
        antalloc_core::step_slice(&mut generic, prep.view(), &mut generic_rngs, &mut out_a);
        soa.step_batch(prep.view(), &mut soa_rngs, &mut out_b);
        assert_eq!(out_a, out_b, "kernel outputs diverged in warmup");
    }
    let mut generic_best = 0.0f64;
    let mut soa_best = 0.0f64;
    for _ in 0..samples {
        let start = round;
        let t0 = Instant::now();
        for _ in 0..rounds {
            round += 1;
            let prep = noise.prepare(round, &deficits(round), &demands);
            antalloc_core::step_slice(&mut generic, prep.view(), &mut generic_rngs, &mut out_a);
        }
        generic_best = generic_best.max(n as f64 * rounds as f64 / t0.elapsed().as_secs_f64());
        round = start;
        let t0 = Instant::now();
        for _ in 0..rounds {
            round += 1;
            let prep = noise.prepare(round, &deficits(round), &demands);
            soa.step_batch(prep.view(), &mut soa_rngs, &mut out_b);
        }
        soa_best = soa_best.max(n as f64 * rounds as f64 / t0.elapsed().as_secs_f64());
    }
    assert_eq!(out_a, out_b, "kernel outputs diverged during measurement");
    black_box((&generic, &soa));
    (generic_best, soa_best)
}

/// Sensing-layer overhead: the same Ant colony well-mixed, through the
/// degenerate single-site arena (which must compile to the shared
/// view — near-zero overhead), and through multi-site geometries where
/// per-ant sense rows, wandering and travel latency are actually live.
/// Returns `(label, ant_rounds_per_sec)` rows, well-mixed first.
fn arena_overhead(n: usize, rounds: u64, samples: usize) -> Vec<(&'static str, f64)> {
    let k = 4usize;
    let demands = vec![(n / 10) as u64; k];
    let geometries: [(&'static str, Option<ArenaConfig>); 4] = [
        ("wellmixed", None),
        ("arena_single_site", Some(ArenaConfig::single_site(k))),
        (
            "arena_2_sites",
            Some(ArenaConfig {
                site_of_task: vec![0, 0, 1, 1],
                travel_rounds: 2,
                wander_probability: 0.05,
            }),
        ),
        (
            "arena_4_sites",
            Some(ArenaConfig {
                site_of_task: vec![0, 1, 2, 3],
                travel_rounds: 2,
                wander_probability: 0.05,
            }),
        ),
    ];
    let mut rows = Vec::new();
    for (label, arena) in geometries {
        let mut builder = SimConfig::builder(n, demands.clone())
            .noise(NoiseModel::Sigmoid { lambda: 2.0 })
            .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
            .seed(6);
        if let Some(a) = arena {
            builder = builder.arena(a);
        }
        let cfg = builder.build().expect("valid scenario");
        let mut engine = cfg.build();
        engine.run(16, &mut NullObserver); // warm to steady state
        let tput = measure(n, rounds, samples, |r| engine.run(r, &mut NullObserver));
        rows.push((label, tput));
    }
    rows
}

/// Races every SoA-banked controller kind against a faithful replica of
/// the pre-bank (array-of-enums, per-ant-probe) loop on a million-ant
/// homogeneous colony, asserting bit-identity along the way, and emits
/// one per-kind entry into `BENCH_engine.json`. Under `PERF_QUICK` the
/// colony shrinks to CI size and a **regression guard** fires: the run
/// fails if any SoA bank is slower than the generic per-ant path.
fn banks_vs_seed(_c: &mut Criterion) {
    let (n, rounds, samples) = if quick() {
        (150_000usize, 8u64, 3usize)
    } else {
        (1_000_000usize, 16u64, 5usize)
    };
    let threads = antalloc_bench::worker_threads();
    // One spec per kind, shared by the engine comparison AND the kernel
    // race below (via the match on `spec`), so both halves of a
    // per-kind JSON entry always measure the same configuration.
    let kinds: [(&'static str, ControllerSpec); 5] = [
        ("ant", ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
        (
            "precise_sigmoid",
            ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.05, 0.5)),
        ),
        ("trivial", ControllerSpec::Trivial),
        (
            "exact_greedy",
            ControllerSpec::ExactGreedy(Default::default()),
        ),
        (
            "proportional",
            ControllerSpec::Proportional(ProportionalParams::default()),
        ),
    ];

    println!(
        "\nbenchmark group: banks_vs_seed (n = {n}, {rounds} rounds × {samples} samples, \
         per controller kind)"
    );

    let mut results: Vec<KindResult> = Vec::new();
    for (kind, spec) in kinds {
        let demands = vec![(n / 8) as u64; 3];
        let cfg = SimConfig::builder(n, demands)
            .noise(NoiseModel::Sigmoid { lambda: 2.0 })
            .controller(spec.clone())
            .seed(3)
            .build()
            .expect("valid scenario");

        // Warm both to the same steady state, asserting bit-identity on
        // the way — the comparison is meaningless if the layouts
        // diverge.
        let warm = 32u64;
        let mut banked = cfg.build();
        let mut obs = NullObserver;
        banked.run(warm, &mut obs);
        let mut seed = SeedReplica::new(&cfg);
        seed.run(warm);
        assert_eq!(
            banked.colony().loads(),
            seed.colony.loads(),
            "{kind}: bank layout diverged from the seed layout"
        );

        let seed_tput = measure(n, rounds, samples, |r| seed.run(r));
        let banks_tput = measure(n, rounds, samples, |r| banked.run(r, &mut NullObserver));
        let banks_par_tput = measure(n, rounds, samples, |r| {
            banked.run_parallel(r, threads, &mut NullObserver)
        });
        // Catch the seed replica up (banked ran one extra measurement
        // block on the parallel path) and re-check bit-identity.
        seed.run(rounds * samples as u64);
        assert_eq!(
            banked.colony().loads(),
            seed.colony.loads(),
            "{kind}: layouts diverged during measurement"
        );

        // Parallel scaling curve: the fused path at fixed thread counts
        // (requested threads — the engine still clamps to its
        // min-ants-per-worker floor, and 1 requested thread takes the
        // serial fallback). Bit-identity across thread counts is pinned
        // by the determinism proptests; here we only measure.
        let scaling: Vec<(usize, f64)> = SCALING_THREADS
            .iter()
            .map(|&t| {
                let tput = measure(n, rounds, samples, |r| {
                    banked.run_parallel(r, t, &mut NullObserver)
                });
                (t, tput)
            })
            .collect();

        // Like-for-like kernel race: SoA step_batch vs the generic
        // monomorphic per-ant loop it replaced, no engine around
        // either — this is the number the regression guard watches
        // (the end-to-end comparison above also carries harness
        // differences: the seed replica skips the engine's
        // double-buffered apply and round records). Constructors come
        // from the same `spec` the engine comparison ran.
        let (kernel_generic_tput, kernel_soa_tput) = match &spec {
            ControllerSpec::Ant(p) => {
                let p = *p;
                kernel_race(n, rounds, samples, move || {
                    antalloc_core::AlgorithmAnt::new(3, p)
                })
            }
            ControllerSpec::PreciseSigmoid(p) => {
                let p = *p;
                kernel_race(n, rounds, samples, move || {
                    antalloc_core::PreciseSigmoid::new(3, p)
                })
            }
            ControllerSpec::Trivial => {
                kernel_race(n, rounds, samples, || antalloc_core::Trivial::new(3))
            }
            ControllerSpec::ExactGreedy(p) => {
                let p = *p;
                kernel_race(n, rounds, samples, move || {
                    antalloc_core::ExactGreedy::new(3, p)
                })
            }
            ControllerSpec::Proportional(p) => {
                let p = *p;
                kernel_race(n, rounds, samples, move || {
                    antalloc_core::ProportionalController::new(3, p)
                })
            }
            other => unreachable!("unknown kind {other:?}"),
        };
        results.push(KindResult {
            kind,
            seed_tput,
            banks_tput,
            banks_par_tput,
            kernel_generic_tput,
            kernel_soa_tput,
            scaling,
        });
    }

    // The arena-vs-well-mixed overhead curve rides in the same JSON
    // artifact (and carries its own quick-mode guard below).
    let arena_rows = arena_overhead(n, rounds, samples);
    let wellmixed_tput = arena_rows[0].1;

    let mut table = antalloc_bench::Table::new(
        "perf_engine_banks_vs_seed",
        &["kind", "layout", "ant_rounds_per_sec", "speedup"],
    );
    for r in &results {
        table.row(vec![
            r.kind.into(),
            "engine_seed_per_ant".into(),
            format!("{:.3e}", r.seed_tput),
            "1.00".into(),
        ]);
        table.row(vec![
            r.kind.into(),
            "engine_banks_serial".into(),
            format!("{:.3e}", r.banks_tput),
            format!("{:.2}", r.banks_tput / r.seed_tput),
        ]);
        table.row(vec![
            r.kind.into(),
            format!("engine_banks_parallel_{threads}"),
            format!("{:.3e}", r.banks_par_tput),
            format!("{:.2}", r.banks_par_tput / r.seed_tput),
        ]);
        table.row(vec![
            r.kind.into(),
            "kernel_generic_loop".into(),
            format!("{:.3e}", r.kernel_generic_tput),
            "1.00".into(),
        ]);
        table.row(vec![
            r.kind.into(),
            "kernel_soa_bank".into(),
            format!("{:.3e}", r.kernel_soa_tput),
            format!("{:.2}", r.kernel_soa_tput / r.kernel_generic_tput),
        ]);
        for &(t, tput) in &r.scaling {
            table.row(vec![
                r.kind.into(),
                format!("engine_scaling_threads_{t}"),
                format!("{tput:.3e}"),
                format!("{:.2}", tput / r.banks_tput),
            ]);
        }
    }
    table.finish();

    let mut arena_table = antalloc_bench::Table::new(
        "perf_engine_arena_overhead",
        &["geometry", "ant_rounds_per_sec", "vs_wellmixed"],
    );
    for &(label, tput) in &arena_rows {
        arena_table.row(vec![
            label.into(),
            format!("{tput:.3e}"),
            format!("{:.2}", tput / wellmixed_tput),
        ]);
    }
    arena_table.finish();

    let arena_json: Vec<String> = arena_rows
        .iter()
        .map(|&(label, tput)| format!("\"{label}\": {tput:.1}"))
        .collect();

    let kinds_json: Vec<String> = results
        .iter()
        .map(|r| {
            let curve: Vec<String> = r
                .scaling
                .iter()
                .map(|&(t, tput)| format!("\"threads_{t}\": {tput:.1}"))
                .collect();
            format!(
                "    \"{}\": {{\n      \
                 \"engine_seed_per_ant\": {{ \"ant_rounds_per_sec\": {:.1} }},\n      \
                 \"engine_banks_serial\": {{ \"ant_rounds_per_sec\": {:.1} }},\n      \
                 \"engine_banks_parallel\": {{ \"ant_rounds_per_sec\": {:.1} }},\n      \
                 \"kernel_generic_loop\": {{ \"ant_rounds_per_sec\": {:.1} }},\n      \
                 \"kernel_soa_bank\": {{ \"ant_rounds_per_sec\": {:.1} }},\n      \
                 \"parallel_scaling\": {{ {} }},\n      \
                 \"speedup_engine_serial_vs_seed\": {:.3},\n      \
                 \"speedup_engine_parallel_vs_seed\": {:.3},\n      \
                 \"speedup_kernel_soa_vs_generic\": {:.3}\n    }}",
                r.kind,
                r.seed_tput,
                r.banks_tput,
                r.banks_par_tput,
                r.kernel_generic_tput,
                r.kernel_soa_tput,
                curve.join(", "),
                r.banks_tput / r.seed_tput,
                r.banks_par_tput / r.seed_tput,
                r.kernel_soa_tput / r.kernel_generic_tput,
            )
        })
        .collect();
    let path = antalloc_bench::out_dir().join("BENCH_engine.json");
    let mut out = std::fs::File::create(&path).expect("create BENCH_engine.json");
    writeln!(
        out,
        "{{\n  \"bench\": \"perf_engine/banks_vs_seed\",\n  \"quick\": {},\n  \
         \"n\": {n},\n  \"tasks\": 3,\n  \"rounds_per_sample\": {rounds},\n  \
         \"samples\": {samples},\n  \"threads\": {threads},\n  \
         \"parallel_crossover_n\": {PARALLEL_CROSSOVER_N},\n  \
         \"arena_overhead\": {{ {}, \"ratio_single_site_vs_wellmixed\": {:.3} }},\n  \
         \"kinds\": {{\n{}\n  }}\n}}",
        quick(),
        arena_json.join(", "),
        arena_rows[1].1 / wellmixed_tput,
        kinds_json.join(",\n"),
    )
    .expect("write BENCH_engine.json");
    println!("  [json: {}]", path.display());

    // The well-mixed non-regression guard: the degenerate single-site
    // arena must compile to the shared view, so its throughput must
    // stay within noise of the well-mixed path — a big gap means the
    // sensing layer started taxing colonies that never asked for an
    // arena geometry. 0.6 is a generous CI-noise margin, not a target.
    if quick() {
        let single = arena_rows
            .iter()
            .find(|&&(label, _)| label == "arena_single_site")
            .expect("single-site row")
            .1;
        assert!(
            single >= 0.6 * wellmixed_tput,
            "single-site arena runs at {single:.3e} ant-rounds/s vs well-mixed \
             {wellmixed_tput:.3e} — the degenerate geometry no longer compiles to the \
             shared view"
        );
    }

    for r in &results {
        let engine_speedup = r.banks_tput / r.seed_tput;
        let kernel_speedup = r.kernel_soa_tput / r.kernel_generic_tput;
        assert!(
            engine_speedup > 0.0 && engine_speedup.is_finite(),
            "{}: nonsensical engine speedup {engine_speedup}",
            r.kind
        );
        // The PERF_QUICK regression guard: an SoA bank slower than the
        // generic per-ant loop it replaced means the fast layout
        // regressed. Guarded on the like-for-like kernel race — the
        // end-to-end engine/seed-replica comparison also reflects
        // harness differences and machine noise, so it stays
        // informational.
        if quick() {
            assert!(
                kernel_speedup >= 1.0,
                "{}: SoA bank kernel is {kernel_speedup:.2}x the generic per-ant loop — \
                 slower than the layout it replaces",
                r.kind
            );
        }
        // The scaling guard: above the documented crossover size and
        // given real hardware parallelism (> 2 threads, matching
        // `worker_threads`' own floor), the best point on the fused
        // parallel scaling curve must not lose to the serial path.
        // On 1–2-thread boxes requested-parallel degenerates to the
        // serial fallback and the curve is flat, so there is nothing
        // to enforce.
        let hw = std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1);
        if n >= PARALLEL_CROSSOVER_N && hw > 2 {
            let best = r
                .scaling
                .iter()
                .map(|&(_, tput)| tput)
                .fold(0.0f64, f64::max);
            assert!(
                best >= r.banks_tput,
                "{}: parallel scaling curve peaks at {best:.3e} ant-rounds/s, below the \
                 serial path's {:.3e} at n = {n} (>= documented crossover {PARALLEL_CROSSOVER_N})",
                r.kind,
                r.banks_tput
            );
        }
    }
}

/// Regression guard for the timeline cursor: consuming a long event
/// script must cost O(1) per round, not O(events). The old
/// `DemandSchedule::Steps::update` did a linear `find` over all steps
/// every round; the cursor replaced it. With 50k pending events the
/// linear scan would be orders of magnitude slower — assert the scripted
/// run stays within 2× of the static run (generous noise margin).
fn timeline_cursor_scaling(_c: &mut Criterion) {
    use antalloc_env::{Event, Timeline};

    let n = 2_000usize;
    let rounds = 2_000u64;
    let demands = vec![(n / 8) as u64; 2];
    let base = SimConfig::builder(n, demands.clone())
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
        .seed(4)
        .build()
        .expect("valid scenario");
    // 50k one-shot events, all far beyond the horizon: the cursor must
    // never scan them.
    let mut timeline = Timeline::new();
    for i in 0..50_000u64 {
        timeline = timeline.at(1_000_000 + i, Event::SetDemands(demands.clone()));
    }
    let mut scripted = base.clone();
    scripted.timeline = timeline;

    let samples = 5usize;
    let mut static_engine = base.build();
    let mut scripted_engine = scripted.build(); // validates the script too
                                                // Warm both once to even out allocation effects.
    static_engine.run(rounds, &mut NullObserver);
    scripted_engine.run(rounds, &mut NullObserver);
    let static_tput = measure(n, rounds, samples, |r| {
        static_engine.run(r, &mut NullObserver)
    });
    let scripted_tput = measure(n, rounds, samples, |r| {
        scripted_engine.run(r, &mut NullObserver)
    });
    let slowdown = static_tput / scripted_tput;

    println!("\nbenchmark group: timeline_cursor_scaling (n = {n}, 50k pending events)");
    let mut table = antalloc_bench::Table::new(
        "perf_engine_timeline_cursor",
        &["timeline", "ant_rounds_per_sec", "slowdown_vs_static"],
    );
    table.row(vec![
        "static".into(),
        format!("{static_tput:.3e}"),
        "1.00".into(),
    ]);
    table.row(vec![
        "50k_pending_events".into(),
        format!("{scripted_tput:.3e}"),
        format!("{slowdown:.2}"),
    ]);
    table.finish();
    assert!(
        slowdown < 2.0,
        "timeline consumption regressed to O(events)/round: {slowdown:.2}x slower \
         ({static_tput:.3e} vs {scripted_tput:.3e} ant-rounds/s)"
    );
}

criterion_group!(
    benches,
    engine_throughput,
    algorithm_step_cost,
    banks_vs_seed,
    timeline_cursor_scaling
);
criterion_main!(benches);
