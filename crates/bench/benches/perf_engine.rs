//! PERF — engine throughput (criterion).
//!
//! Tracks ant-rounds/second for the serial and parallel paths and the
//! per-algorithm step cost, so the experiment suite stays laptop-sized.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use antalloc_core::{AntParams, PreciseSigmoidParams};
use antalloc_noise::NoiseModel;
use antalloc_sim::{ControllerSpec, NullObserver, SimConfig};

fn engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000, 100_000] {
        let demands = vec![(n / 8) as u64, (n / 8) as u64, (n / 8) as u64];
        let cfg = SimConfig::builder(n, demands)
            .noise(NoiseModel::Sigmoid { lambda: 2.0 })
            .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
            .seed(1)
            .build()
            .expect("valid scenario");
        let rounds = 64u64;
        group.throughput(Throughput::Elements(n as u64 * rounds));
        group.bench_with_input(BenchmarkId::new("serial", n), &cfg, |b, cfg| {
            let mut engine = cfg.build();
            let mut obs = NullObserver;
            b.iter(|| {
                engine.run(rounds, &mut obs);
                black_box(engine.colony().instant_regret())
            });
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &cfg, |b, cfg| {
            let mut engine = cfg.build();
            let mut obs = NullObserver;
            let threads = antalloc_bench::worker_threads();
            b.iter(|| {
                engine.run_parallel(rounds, threads, &mut obs);
                black_box(engine.colony().instant_regret())
            });
        });
    }
    group.finish();
}

fn algorithm_step_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm_step_cost");
    group.sample_size(10);
    let n = 10_000usize;
    let demands = vec![2000u64, 2000];
    let rounds = 64u64;
    let specs: [(&str, ControllerSpec); 4] = [
        ("ant", ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
        (
            "precise_sigmoid",
            ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.05, 0.5)),
        ),
        ("trivial", ControllerSpec::Trivial),
        (
            "hysteresis8",
            ControllerSpec::Hysteresis {
                depth: 8,
                lazy: Some(0.5),
            },
        ),
    ];
    for (name, spec) in specs {
        let demands = if matches!(spec, ControllerSpec::Hysteresis { .. }) {
            vec![2000u64]
        } else {
            demands.clone()
        };
        let cfg = SimConfig::builder(n, demands)
            .noise(NoiseModel::Sigmoid { lambda: 2.0 })
            .controller(spec)
            .seed(2)
            .build()
            .expect("valid scenario");
        group.throughput(Throughput::Elements(n as u64 * rounds));
        group.bench_function(name, |b| {
            let mut engine = cfg.build();
            let mut obs = NullObserver;
            b.iter(|| {
                engine.run(rounds, &mut obs);
                black_box(engine.colony().instant_regret())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, engine_throughput, algorithm_step_cost);
criterion_main!(benches);
