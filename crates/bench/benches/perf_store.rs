//! PERF — durable-store sweep resume throughput (runs/second).
//!
//! Measures the cost/benefit curve of attaching a [`CheckpointStore`]
//! to an ensemble sweep on the acceptance shape (n = 400, k = 2,
//! 200 rounds, 4 grid points):
//!
//! - **no_store** — the plain sweep, the baseline everything is
//!   relative to;
//! - **cold** — an empty store: every run computes *and* is captured
//!   (fingerprint + encode + two atomic publishes per run). The tax of
//!   durability; guarded so capture can never silently eat the sweep;
//! - **warm** — a fully populated archive: every run is served from
//!   verified entries (fingerprint + manifest/payload verification +
//!   decode). The resume payoff; guarded to actually beat recomputing;
//! - **resume60** — an archive holding 60% of the runs, the
//!   killed-at-60% restart: it must sit at or above cold throughput
//!   (skipping finished work cannot cost).
//!
//! Every warm pass is cross-checked outcome-for-outcome bit-identical
//! against its cold pass. Emits `target/experiments/BENCH_store.json`
//! (uploaded by the `perf-smoke` CI job next to `BENCH_sweep.json`).
//! Set `PERF_QUICK=1` for a CI-sized run.

// disallowed_methods: a bench exists to read the wall clock; timing
// here never feeds a simulation (audit.toml relaxes bench files too).
#![allow(clippy::disallowed_methods)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use antalloc_bench::perf_quick as quick;
use antalloc_core::AntParams;
use antalloc_noise::NoiseModel;
use antalloc_sim::{ControllerSpec, RunOutcome, SimConfig, Sweep};
use antalloc_store::CheckpointStore;

/// Sweep worker counts the cold/warm curves are measured at.
const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Serving a verified entry must beat recomputing a 200-round run by
/// at least this factor (it measures orders of magnitude higher; the
/// guard is a conservative floor so machine variance cannot flake CI).
const WARM_MIN_SPEEDUP: f64 = 2.0;

/// Capture overhead floor: a cold store-attached sweep must keep at
/// least this fraction of the no-store throughput.
const COLD_MIN_FRACTION: f64 = 0.5;

/// A 60% archive must not be slower than a cold start beyond noise.
const RESUME_MIN_VS_COLD: f64 = 0.9;

fn base_config() -> SimConfig {
    SimConfig::builder(400, vec![120, 80])
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
        .seed(11)
        .build()
        .expect("valid scenario")
}

/// The same 4-point gamma grid `perf_sweep` uses.
fn sweep_for(seeds: u64, workers: usize) -> Sweep {
    Sweep::new(base_config())
        .axis(
            "gamma",
            [1.0 / 64.0, 1.0 / 32.0, 1.0 / 16.0, 1.0 / 8.0],
            |cfg, gamma| cfg.controller = ControllerSpec::Ant(AntParams::new(gamma)),
        )
        .seeds(0..seeds)
        .rounds(200)
        .threads(workers)
}

/// A scratch store root under the experiments dir, wiped on open.
fn store_at(root: &PathBuf) -> Arc<CheckpointStore> {
    Arc::new(CheckpointStore::local(root).expect("open store root"))
}

fn wipe(root: &PathBuf) {
    let _ = std::fs::remove_dir_all(root);
}

/// Runs one sweep pass, returns (runs/sec, outcomes).
fn timed(sweep: Sweep) -> (f64, Vec<RunOutcome>) {
    let t0 = Instant::now();
    let outcomes = sweep.run().expect("sweep runs");
    let dt = t0.elapsed().as_secs_f64();
    (outcomes.len() as f64 / dt, outcomes)
}

fn assert_identical(label: &str, a: &[RunOutcome], b: &[RunOutcome]) {
    assert_eq!(a.len(), b.len(), "{label}: outcome counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(
            (
                x.index,
                x.seed,
                x.final_regret,
                &x.final_loads,
                x.summary.total_regret()
            ),
            (
                y.index,
                y.seed,
                y.final_regret,
                &y.final_loads,
                y.summary.total_regret()
            ),
            "{label}: stored outcome diverged from computed at job {}",
            x.index
        );
    }
}

struct Point {
    workers: usize,
    cold: f64,
    warm: f64,
}

fn sweep_resume_throughput(_c: &mut Criterion) {
    let (seeds, samples) = if quick() {
        (16u64, 2usize)
    } else {
        (64u64, 2usize)
    };
    let total = 4 * seeds as usize;
    let root = antalloc_bench::out_dir().join("perf_store_scratch");

    // Plain-sweep baseline (best over the worker curve).
    let mut no_store = 0.0f64;
    for &workers in &WORKERS {
        for _ in 0..samples {
            no_store = no_store.max(timed(sweep_for(seeds, workers)).0);
        }
    }

    let mut points = Vec::new();
    for &workers in &WORKERS {
        let mut cold = 0.0f64;
        let mut warm = 0.0f64;
        for _ in 0..samples {
            wipe(&root);
            let (cold_rate, cold_outcomes) =
                timed(sweep_for(seeds, workers).store(store_at(&root)));
            assert!(cold_outcomes.iter().all(|o| !o.cached));
            // Re-open the archive as a restarted process would.
            let (warm_rate, warm_outcomes) =
                timed(sweep_for(seeds, workers).store(store_at(&root)));
            assert!(
                warm_outcomes.iter().all(|o| o.cached),
                "warm pass recomputed archived runs"
            );
            assert_identical("warm replay", &cold_outcomes, &warm_outcomes);
            cold = cold.max(cold_rate);
            warm = warm.max(warm_rate);
        }
        points.push(Point {
            workers,
            cold,
            warm,
        });
    }

    // The killed-at-60% restart: archive the first 60% of seeds, then
    // time the full sweep over that archive (fixed 4 workers).
    let archived_seeds = seeds * 6 / 10;
    let mut resume = 0.0f64;
    let mut archived_runs = 0usize;
    for _ in 0..samples {
        wipe(&root);
        sweep_for(seeds, 4)
            .seeds(0..archived_seeds)
            .store(store_at(&root))
            .run()
            .expect("archive the 60% prefix");
        let (rate, outcomes) = timed(sweep_for(seeds, 4).store(store_at(&root)));
        archived_runs = outcomes.iter().filter(|o| o.cached).count();
        assert_eq!(archived_runs, 4 * archived_seeds as usize);
        resume = resume.max(rate);
    }
    wipe(&root);

    let best = |f: fn(&Point) -> f64| points.iter().map(f).fold(0.0, f64::max);
    let (cold_best, warm_best) = (best(|p| p.cold), best(|p| p.warm));

    println!("\nbenchmark group: store_sweep_resume (n = 400, k = 2, 200 rounds, 4 grid points)");
    let mut table = antalloc_bench::Table::new(
        "perf_store_resume",
        &[
            "workers",
            "cold_runs_per_sec",
            "warm_runs_per_sec",
            "warm_speedup",
        ],
    );
    for p in &points {
        table.row(vec![
            p.workers.to_string(),
            format!("{:.1}", p.cold),
            format!("{:.1}", p.warm),
            format!("{:.2}", p.warm / p.cold),
        ]);
    }
    table.row(vec![
        "no_store(best)".into(),
        format!("{no_store:.1}"),
        "-".into(),
        "-".into(),
    ]);
    table.row(vec![
        "resume60(w=4)".into(),
        format!("{resume:.1}"),
        "-".into(),
        format!("{:.2}", resume / cold_best),
    ]);
    table.finish();

    let curve: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    \"workers_{}\": {{ \"cold_runs_per_sec\": {:.1}, \
                 \"warm_runs_per_sec\": {:.1}, \"warm_speedup\": {:.3} }}",
                p.workers,
                p.cold,
                p.warm,
                p.warm / p.cold,
            )
        })
        .collect();
    let path = antalloc_bench::out_dir().join("BENCH_store.json");
    let mut out = std::fs::File::create(&path).expect("create BENCH_store.json");
    writeln!(
        out,
        "{{\n  \"bench\": \"perf_store/sweep_resume\",\n  \"quick\": {},\n  \
         \"guards\": {{ \"warm_min_speedup\": {WARM_MIN_SPEEDUP}, \
         \"cold_min_fraction\": {COLD_MIN_FRACTION}, \
         \"resume_min_vs_cold\": {RESUME_MIN_VS_COLD} }},\n  \
         \"shape\": {{ \"n\": 400, \"tasks\": 2, \"rounds\": 200, \"grid_points\": 4, \
         \"seeds\": {seeds}, \"total_runs\": {total} }},\n  \
         \"no_store_runs_per_sec\": {no_store:.1},\n  \"workers\": {{\n{}\n  }},\n  \
         \"warm_speedup_best\": {:.3},\n  \
         \"resume60\": {{ \"workers\": 4, \"archived_runs\": {archived_runs}, \
         \"recomputed_runs\": {}, \"runs_per_sec\": {resume:.1}, \"vs_cold\": {:.3} }}\n}}",
        quick(),
        curve.join(",\n"),
        warm_best / cold_best,
        total - archived_runs,
        resume / cold_best,
    )
    .expect("write BENCH_store.json");
    println!("  [json: {}]", path.display());

    // Regression guards.
    assert!(
        warm_best >= WARM_MIN_SPEEDUP * cold_best,
        "serving archived runs peaks at {:.2}x cold throughput, below the \
         {WARM_MIN_SPEEDUP}x guard",
        warm_best / cold_best
    );
    assert!(
        cold_best >= COLD_MIN_FRACTION * no_store,
        "capture overhead: cold store sweep at {cold_best:.1} runs/s vs {no_store:.1} \
         without a store, below the {COLD_MIN_FRACTION} floor"
    );
    assert!(
        resume >= RESUME_MIN_VS_COLD * cold_best,
        "a 60% archive restart at {resume:.1} runs/s is slower than a cold start \
         ({cold_best:.1}) beyond the {RESUME_MIN_VS_COLD} noise margin"
    );
}

criterion_group!(benches, sweep_resume_throughput);
criterion_main!(benches);
