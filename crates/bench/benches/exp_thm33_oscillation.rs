//! T33b — Theorem 3.3's oscillation claim: "if the deficit for all
//! tasks is below `2εγ*d` for a constant number of consecutive steps,
//! then w.o.p. there will be a task with an oscillation of order
//! `ω(γ*d)`."
//!
//! No algorithm can *hold* the deficit quiet (that is the claim), so we
//! place the colony in the quiet zone directly — a saturated start,
//! deficit exactly 0, where every signal is a fair coin — and measure:
//!
//! 1. the excursion that follows (the blow-up), and
//! 2. whether the algorithm re-enters the quiet zone afterwards
//!    (Trivial re-clamps toward 0 and blows up forever; Algorithm Ant
//!    escapes once and then parks *outside* the grey zone — the paper's
//!    prescription).

use antalloc_bench::{banner, fmt, Table};
use antalloc_core::AntParams;
use antalloc_env::InitialConfig;
use antalloc_noise::{critical_value_sigmoid, NoiseModel};
use antalloc_sim::{ControllerSpec, FnObserver, SimConfig};

struct Outcome {
    blowup_200: u64,
    quiet_rounds_steady: u64,
    steady_rounds: u64,
    crossings_steady: u64,
    max_abs_steady: u64,
}

fn run(spec: ControllerSpec, quiet_band: f64) -> Outcome {
    let n = 2000usize;
    let d = 500u64;
    let cfg = SimConfig::builder(n, vec![d])
        .noise(NoiseModel::Sigmoid { lambda: 1.0 })
        .controller(spec)
        .seed(0x7433B)
        .initial(InitialConfig::Saturated) // deficit 0: the quiet zone.
        .build()
        .expect("valid scenario");
    let mut engine = cfg.build();

    let mut blowup_200 = 0u64;
    let mut quiet_rounds = 0u64;
    let mut crossings = 0u64;
    let mut max_abs_steady = 0u64;
    let mut last_sign = 0i8;
    let steady_from = 5_000u64;
    let horizon = 25_000u64;
    let mut obs = FnObserver::new(|r: &antalloc_sim::RoundRecord<'_>| {
        let delta = r.deficits[0];
        let abs = delta.unsigned_abs();
        if r.round <= 200 {
            blowup_200 = blowup_200.max(abs);
        }
        if r.round > steady_from {
            if (abs as f64) <= quiet_band {
                quiet_rounds += 1;
            }
            let sign = delta.signum() as i8;
            if sign != 0 {
                if last_sign != 0 && sign != last_sign {
                    crossings += 1;
                }
                last_sign = sign;
            }
            max_abs_steady = max_abs_steady.max(abs);
        }
    });
    engine.run(horizon, &mut obs);
    let _ = obs; // closure borrows end here
    Outcome {
        blowup_200,
        quiet_rounds_steady: quiet_rounds,
        steady_rounds: horizon - steady_from,
        crossings_steady: crossings,
        max_abs_steady,
    }
}

fn main() {
    let n = 2000usize;
    let d = 500u64;
    let lambda = 1.0;
    let eps = 0.25;
    let cv = critical_value_sigmoid(lambda, n, &[d], 2.0);
    let gamma_star_d = cv.gamma_star * d as f64;
    let quiet_band = 2.0 * eps * gamma_star_d;
    banner(
        "T33b",
        "a quiet deficit cannot stay quiet: the ω(γ*d) blow-up",
        "deficit inside 2εγ*d for a few steps ⇒ excursion ≫ γ*d (w.o.p.)",
    );
    println!(
        "single task, d = {d}; γ*(q=2) = {:.4}, γ*d = {:.1} ants; quiet \
         band 2εγ*d = {:.1} ants; start: saturated (deficit 0)\n",
        cv.gamma_star, gamma_star_d, quiet_band
    );

    let mut table = Table::new(
        "thm33_oscillation",
        &[
            "algorithm",
            "blow-up in 200 rounds",
            "(…)/γ*d",
            "steady quiet-rounds/1k",
            "steady 0-crossings/1k",
            "steady max |Δ|",
        ],
    );
    for (name, spec) in [
        ("trivial (re-clamps at Δ≈0)", ControllerSpec::Trivial),
        (
            "algorithm ant γ=1/16 (exits the zone)",
            ControllerSpec::Ant(AntParams::new(1.0 / 16.0)),
        ),
    ] {
        let o = run(spec, quiet_band);
        table.row(vec![
            name.to_string(),
            o.blowup_200.to_string(),
            fmt(o.blowup_200 as f64 / gamma_star_d),
            fmt(o.quiet_rounds_steady as f64 * 1000.0 / o.steady_rounds as f64),
            fmt(o.crossings_steady as f64 * 1000.0 / o.steady_rounds as f64),
            o.max_abs_steady.to_string(),
        ]);
    }
    table.finish();
    println!(
        "\nshape check: both algorithms blow up by a large multiple of \
         γ*d within 200 rounds of sitting at deficit 0 — the theorem's \
         inevitability. The difference is what follows: Trivial keeps \
         passing through the quiet zone (high quiet-round and crossing \
         rates) and keeps exploding; Algorithm Ant leaves once and holds \
         a deficit *outside* the grey zone (≈0 steady quiet rounds), \
         converting the blow-up into a controlled, bounded oscillation."
    );
}
