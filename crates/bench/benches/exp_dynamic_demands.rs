//! DYN — changing demands and population shocks (§2.1 remark, §6).
//!
//! Expected shape: after every demand step / kill / spawn / scramble /
//! stampede the colony re-converges within a transient comparable to
//! the cold-start one (Θ(c_d/γ) phases for the overload direction,
//! faster for lack), and the steady regret between events matches the
//! static bound.
//!
//! Everything dynamic here is declarative: one `Timeline` in the config
//! scripts the whole run (the old version interleaved imperative
//! `engine.perturb(..)` calls with stepping; those are gone).

use antalloc_bench::{banner, fmt, worker_threads, Table};
use antalloc_core::AntParams;
use antalloc_env::{DemandSchedule, Event, Timeline};
use antalloc_metrics::SaturationDetector;
use antalloc_noise::NoiseModel;
use antalloc_sim::{ControllerSpec, FnObserver, SimConfig};

fn main() {
    banner(
        "DYN",
        "demand schedules and population shocks, scripted as one timeline",
        "self-stabilization: recovery after every event, steady regret \
         per Theorem 3.1 between events",
    );
    let n = 6000usize;
    let gamma = 1.0 / 16.0;
    let lambda = 2.0;

    // Part 1: a demand schedule with two steps (the legacy schedule
    // vocabulary compiles straight into the timeline).
    let cfg = SimConfig::builder(n, vec![800, 1200])
        .noise(NoiseModel::Sigmoid { lambda })
        .controller(ControllerSpec::Ant(AntParams::new(gamma)))
        .seed(0xD1A)
        .schedule(DemandSchedule::Steps(vec![
            (8_000, vec![1200, 800]),
            (16_000, vec![500, 500]),
        ]))
        .build()
        .expect("valid scenario");
    let mut engine = cfg.build();
    let mut detector = SaturationDetector::new(gamma, 5.0 * gamma, 100);
    let mut events: Vec<(u64, Option<u64>)> = Vec::new();
    let mut last_event = 0u64;
    let mut obs = FnObserver::new(|r: &antalloc_sim::RoundRecord<'_>| {
        if r.round == 8_000 || r.round == 16_000 {
            events.push((last_event, detector.stabilized_at()));
            detector.rearm();
            last_event = r.round;
        }
        detector.record(r.round, r.loads, r.demands);
    });
    engine.run_parallel(24_000, worker_threads(), &mut obs);
    let _ = obs; // closure borrows end here
    events.push((last_event, detector.stabilized_at()));

    let mut table = Table::new(
        "dynamic_demands_schedule",
        &["event at", "stabilized at", "recovery rounds"],
    );
    for (at, stab) in &events {
        table.row(vec![
            at.to_string(),
            stab.map_or("never".into(), |s| s.to_string()),
            stab.map_or("-".into(), |s| (s.saturating_sub(*at)).to_string()),
        ]);
    }
    table.finish();

    // Part 2: population shocks, one per 6000-round block — scripted
    // in the config, so the same run replays from a scenario file or a
    // checkpoint without any bench-side stepping logic.
    println!("\npopulation shocks (steady regret in the last 2000 rounds of each block):");
    let shocks: [(&str, u64, Event); 4] = [
        ("kill 2000 ants", 6_000, Event::Kill { count: 2000 }),
        ("spawn 2000 ants", 12_000, Event::Spawn { count: 2000 }),
        ("scramble all assignments", 18_000, Event::Scramble),
        ("stampede onto task 0", 24_000, Event::StampedeTo(0)),
    ];
    let mut timeline = Timeline::new();
    for (_, at, event) in &shocks {
        timeline = timeline.at(*at, event.clone());
    }
    let cfg = SimConfig::builder(n, vec![800, 1200])
        .noise(NoiseModel::Sigmoid { lambda })
        .controller(ControllerSpec::Ant(AntParams::new(gamma)))
        .seed(0xD1B)
        .timeline(timeline)
        .build()
        .expect("valid scenario");
    let mut engine = cfg.build();
    // Steady windows: the last 2000 rounds before the next shock.
    let windows: Vec<(u64, u64)> = shocks
        .iter()
        .map(|(_, at, _)| (*at + 4000, *at + 6000))
        .collect();
    let mut steady = vec![(0u128, 0u64); windows.len()];
    let mut n_after = vec![0u64; windows.len()];
    let mut obs = FnObserver::new(|r: &antalloc_sim::RoundRecord<'_>| {
        for (i, &(from, to)) in windows.iter().enumerate() {
            if r.round >= from && r.round < to {
                steady[i].0 += u128::from(r.instant_regret());
                steady[i].1 += 1;
            }
            if r.round == to - 1 {
                n_after[i] = r.idle + r.loads.iter().map(|&w| u64::from(w)).sum::<u64>();
            }
        }
    });
    engine.run_parallel(30_000, worker_threads(), &mut obs);
    let _ = obs;

    let bound = 5.0 * gamma * 2000.0 + 3.0;
    let mut t2 = Table::new(
        "dynamic_demands_shocks",
        &[
            "shock",
            "n after",
            "avg regret after recovery",
            "bound 5γΣd+3",
        ],
    );
    for (i, (name, _, _)) in shocks.iter().enumerate() {
        let (total, rounds) = steady[i];
        t2.row(vec![
            name.to_string(),
            n_after[i].to_string(),
            fmt(total as f64 / rounds.max(1) as f64),
            fmt(bound),
        ]);
    }
    t2.finish();
    println!("\nshape check: every shock is absorbed; steady regret returns under the bound.");
}
