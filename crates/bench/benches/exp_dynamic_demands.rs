//! DYN — changing demands and population shocks (§2.1 remark, §6).
//!
//! Expected shape: after every demand step / kill / spawn / scramble the
//! colony re-converges within a transient comparable to the cold-start
//! one (Θ(c_d/γ) phases for the overload direction, faster for lack),
//! and the steady regret between events matches the static bound.

use antalloc_bench::{banner, fmt, worker_threads, Table};
use antalloc_core::AntParams;
use antalloc_env::{DemandSchedule, Perturbation};
use antalloc_metrics::SaturationDetector;
use antalloc_noise::NoiseModel;
use antalloc_sim::{ControllerSpec, FnObserver, SimConfig};

fn main() {
    banner(
        "DYN",
        "demand schedules and population shocks",
        "self-stabilization: recovery after every event, steady regret \
         per Theorem 3.1 between events",
    );
    let n = 6000usize;
    let gamma = 1.0 / 16.0;
    let lambda = 2.0;

    // Part 1: a demand schedule with two steps.
    let cfg = SimConfig::builder(n, vec![800, 1200])
        .noise(NoiseModel::Sigmoid { lambda })
        .controller(ControllerSpec::Ant(AntParams::new(gamma)))
        .seed(0xD1A)
        .schedule(DemandSchedule::Steps(vec![
            (8_000, vec![1200, 800]),
            (16_000, vec![500, 500]),
        ]))
        .build()
        .expect("valid scenario");
    let mut engine = cfg.build();
    let mut detector = SaturationDetector::new(gamma, 5.0 * gamma, 100);
    let mut events: Vec<(u64, Option<u64>)> = Vec::new();
    let mut last_event = 0u64;
    let mut obs = FnObserver::new(|r: &antalloc_sim::RoundRecord<'_>| {
        if r.round == 8_000 || r.round == 16_000 {
            events.push((last_event, detector.stabilized_at()));
            detector.rearm();
            last_event = r.round;
        }
        detector.record(r.round, r.loads, r.demands);
    });
    engine.run_parallel(24_000, worker_threads(), &mut obs);
    let _ = obs; // closure borrows end here
    events.push((last_event, detector.stabilized_at()));

    let mut table = Table::new(
        "dynamic_demands_schedule",
        &["event at", "stabilized at", "recovery rounds"],
    );
    for (at, stab) in &events {
        table.row(vec![
            at.to_string(),
            stab.map_or("never".into(), |s| s.to_string()),
            stab.map_or("-".into(), |s| (s.saturating_sub(*at)).to_string()),
        ]);
    }
    table.finish();

    // Part 2: population shocks.
    println!("\npopulation shocks (steady regret after each, 4000-round recovery):");
    let mut t2 = Table::new(
        "dynamic_demands_shocks",
        &[
            "shock",
            "n after",
            "avg regret after recovery",
            "bound 5γΣd+3",
        ],
    );
    let cfg = SimConfig::builder(n, vec![800, 1200])
        .noise(NoiseModel::Sigmoid { lambda })
        .controller(ControllerSpec::Ant(AntParams::new(gamma)))
        .seed(0xD1B)
        .build()
        .expect("valid scenario");
    let mut engine = cfg.build();
    let mut sink = antalloc_sim::NullObserver;
    engine.run_parallel(6000, worker_threads(), &mut sink);
    let bound = 5.0 * gamma * 2000.0 + 3.0;
    for (name, shock) in [
        ("kill 2000 ants", Perturbation::KillRandom { count: 2000 }),
        ("spawn 2000 ants", Perturbation::Spawn { count: 2000 }),
        ("scramble all assignments", Perturbation::Scramble),
        ("stampede onto task 0", Perturbation::StampedeTo(0)),
    ] {
        engine.perturb(&shock);
        engine.run_parallel(4000, worker_threads(), &mut sink);
        let mut steady = antalloc_sim::RunSummary::new();
        engine.run_parallel(2000, worker_threads(), &mut steady);
        t2.row(vec![
            name.to_string(),
            engine.colony().num_ants().to_string(),
            fmt(steady.average_regret()),
            fmt(bound),
        ]);
    }
    t2.finish();
    println!("\nshape check: every shock is absorbed; steady regret returns under the bound.");
}
