//! ABL2 — Remark 3.4: the guarantees survive arbitrarily *correlated*
//! feedback as long as the marginal error outside the grey zone stays
//! polynomially small.
//!
//! We sweep the correlation ρ (probability that a (task, round) uses a
//! single shared draw for every ant) from 0 (the i.i.d. model) to 1
//! (fully correlated) and measure Algorithm Ant's steady regret across
//! several seeds with the scenario sweep runner.
//!
//! Expected shape: flat — correlation does not change the marginal
//! error, and the algorithm's decisions hinge on samples taken outside
//! the grey zone where even a shared coin is almost surely correct.

use antalloc_bench::{banner, batch_table, fmt};
use antalloc_core::AntParams;
use antalloc_noise::NoiseModel;
use antalloc_sim::{ControllerSpec, SimConfig, Sweep};

fn main() {
    banner(
        "ABL2",
        "Remark 3.4: correlated feedback",
        "Theorem 3.1's guarantee holds under arbitrary correlation with \
         small marginal error outside the grey zone",
    );
    let n = 4000usize;
    let demands = vec![400u64, 700, 300];
    let sum_d: u64 = demands.iter().sum();
    let gamma = 1.0 / 16.0;
    let lambda = 2.0;
    let bound = 5.0 * gamma * sum_d as f64 + 3.0;
    println!("n = {n}, Σd = {sum_d}, γ = {gamma:.4}; bound 5γΣd+3 = {bound:.0}\n");

    let base = SimConfig::builder(n, demands)
        .controller(ControllerSpec::Ant(AntParams::new(gamma)))
        .build()
        .expect("valid scenario");

    let outcomes = Sweep::new(base)
        .axis("rho", [0.0, 0.25, 0.5, 0.75, 1.0], move |cfg, rho| {
            cfg.noise = if rho == 0.0 {
                NoiseModel::Sigmoid { lambda }
            } else {
                NoiseModel::CorrelatedSigmoid {
                    lambda,
                    rho,
                    seed: 0xC0,
                }
            };
        })
        .seeds(0xAB3..0xAB3 + 3)
        .warmup(6000)
        .rounds(8000)
        .run()
        .expect("sweep grid is valid");

    batch_table("remark34_correlated", &outcomes).finish();

    let violations = outcomes
        .iter()
        .filter(|o| o.summary.average_regret() > bound)
        .count();
    println!(
        "\nruns over the 5γΣd+3 bound: {violations}/{} (expected 0); \
         worst avg regret {}",
        outcomes.len(),
        fmt(outcomes
            .iter()
            .map(|o| o.summary.average_regret())
            .fold(0.0, f64::max))
    );
    println!(
        "shape check: regret flat in ρ — the per-round signals the \
         algorithm acts on are outside the grey zone, where even a \
         single shared coin is w.h.p. the truth (Remark 3.4)."
    );
}
