//! ABL2 — Remark 3.4: the guarantees survive arbitrarily *correlated*
//! feedback as long as the marginal error outside the grey zone stays
//! polynomially small.
//!
//! We sweep the correlation ρ (probability that a (task, round) uses a
//! single shared draw for every ant) from 0 (the i.i.d. model) to 1
//! (fully correlated) and measure Algorithm Ant's steady regret.
//!
//! Expected shape: flat — correlation does not change the marginal
//! error, and the algorithm's decisions hinge on samples taken outside
//! the grey zone where even a shared coin is almost surely correct.

use antalloc_bench::{banner, fmt, steady_state, Table};
use antalloc_core::AntParams;
use antalloc_noise::NoiseModel;
use antalloc_sim::{ControllerSpec, SimConfig};

fn main() {
    banner(
        "ABL2",
        "Remark 3.4: correlated feedback",
        "Theorem 3.1's guarantee holds under arbitrary correlation with \
         small marginal error outside the grey zone",
    );
    let n = 4000usize;
    let demands = vec![400u64, 700, 300];
    let sum_d: u64 = demands.iter().sum();
    let gamma = 1.0 / 16.0;
    let lambda = 2.0;
    let bound = 5.0 * gamma * sum_d as f64 + 3.0;
    println!("n = {n}, Σd = {sum_d}, γ = {gamma:.4}; bound 5γΣd+3 = {bound:.0}\n");

    let mut table = Table::new(
        "remark34_correlated",
        &["ρ (shared-draw prob)", "avg regret", "max regret", "within 5γΣd+3?"],
    );
    for rho in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let noise = if rho == 0.0 {
            NoiseModel::Sigmoid { lambda }
        } else {
            NoiseModel::CorrelatedSigmoid { lambda, rho, seed: 0xC0 }
        };
        let cfg = SimConfig::new(
            n,
            demands.clone(),
            noise,
            ControllerSpec::Ant(AntParams::new(gamma)),
            0xAB3,
        );
        let m = steady_state(&cfg, gamma, 6000, 8000);
        table.row(vec![
            fmt(rho),
            fmt(m.avg_regret),
            fmt(m.max_regret),
            if m.avg_regret <= bound { "yes" } else { "NO" }.to_string(),
        ]);
    }
    table.finish();
    println!(
        "\nshape check: regret flat in ρ — the per-round signals the \
         algorithm acts on are outside the grey zone, where even a \
         single shared coin is w.h.p. the truth (Remark 3.4)."
    );
}
