//! MIX1 — heterogeneous colonies: Ant vs ExactGreedy vs Hysteresis
//! racing head-to-head *inside one colony* under sigmoid noise.
//!
//! The paper's colonies are homogeneous by construction; related swarm
//! work (Balachandran–Harasha–Lynch 2024, Silva–Edwards–Hsieh 2022)
//! studies mixed populations explicitly. `ControllerSpec::Mix` makes
//! that a first-class scenario: one colony, one noisy environment,
//! weighted fractions of controllers. Expected shape:
//!
//! * noise-robust Ant fractions end up *holding* the task — the greedy
//!   baseline churns near Δ ≈ 0 (phantom overloads every round, cf.
//!   `exp_baseline_noise_fragility`) while Ant parks in its stable
//!   band;
//! * colony-level regret degrades as the noise-fragile fraction grows;
//! * deep-hysteresis machines are sticky: they hold what they grab but
//!   are slow to let go after shocks.
//!
//! Both experiment grids run through the `Sweep` machinery with
//! *labeled* axes — the mix compositions are one categorical axis, and
//! the Ant weight fraction is a numeric axis that rewrites the mix
//! weights in place — streaming every seed's outcome through a
//! `JsonlSink` (the constant-memory path a million-run sweep would use).

use antalloc_bench::{banner, fmt, out_dir, Table};
use antalloc_core::{AntParams, ExactGreedyParams};
use antalloc_noise::NoiseModel;
use antalloc_sim::{ControllerSpec, JsonlSink, NullObserver, RunSink as _, SimConfig, Sweep};

fn ant() -> ControllerSpec {
    ControllerSpec::Ant(AntParams::new(1.0 / 16.0))
}

fn greedy() -> ControllerSpec {
    ControllerSpec::ExactGreedy(ExactGreedyParams::default())
}

fn hysteresis() -> ControllerSpec {
    ControllerSpec::Hysteresis {
        depth: 4,
        lazy: Some(0.5),
    }
}

fn spec_label(spec: &ControllerSpec) -> &'static str {
    match spec {
        ControllerSpec::Ant(_) => "ant",
        ControllerSpec::ExactGreedy(_) => "greedy",
        ControllerSpec::Hysteresis { .. } => "hysteresis",
        _ => "other",
    }
}

fn main() {
    banner(
        "MIX1",
        "mixed colonies: Ant vs ExactGreedy vs Hysteresis in one colony",
        "noise-robust fractions hold the task; regret grows with the fragile fraction",
    );

    let n = 3000usize;
    let demand = (n / 4) as u64; // single task: hysteresis machines observe one task
    let rounds = 4000u64;
    let warmup = 2000u64;

    let base = SimConfig::builder(n, vec![demand])
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(ant())
        .seed(0x1113)
        .build()
        .expect("valid scenario");

    // Grid 1: mix *compositions* as a labeled controller-kind axis —
    // pure colonies as anchors, then Ant fraction sweeps with the
    // remainder split between the two baselines.
    let mixes: Vec<(String, ControllerSpec)> = vec![
        ("ant 100%".into(), ant()),
        ("greedy 100%".into(), greedy()),
        ("hysteresis 100%".into(), hysteresis()),
        (
            "ant 80 / greedy 10 / hyst 10".into(),
            ControllerSpec::Mix(vec![(8.0, ant()), (1.0, greedy()), (1.0, hysteresis())]),
        ),
        (
            "ant 50 / greedy 25 / hyst 25".into(),
            ControllerSpec::Mix(vec![(2.0, ant()), (1.0, greedy()), (1.0, hysteresis())]),
        ),
        (
            "ant 20 / greedy 40 / hyst 40".into(),
            ControllerSpec::Mix(vec![(1.0, ant()), (2.0, greedy()), (2.0, hysteresis())]),
        ),
    ];

    let jsonl_path = out_dir().join("exp_mixed_colony.jsonl");
    let mut sink = JsonlSink::create(&jsonl_path).expect("create jsonl sink");

    let outcomes = Sweep::new(base.clone())
        .axis_labeled("mix", mixes.clone(), |cfg, spec| {
            cfg.controller = spec.clone();
        })
        .seeds(0..8)
        .warmup(warmup)
        .rounds(rounds)
        .run_with(|o| sink.on_outcome(o).expect("jsonl write"))
        .expect("mixed sweep runs under the batch runner");
    assert_eq!(outcomes.len(), mixes.len() * 8);

    let mut table = Table::new(
        "exp_mixed_colony",
        &[
            "mix",
            "avg regret",
            "max |r|",
            "ant share of work",
            "greedy share",
            "hyst share",
        ],
    );
    for (m, (label, spec)) in mixes.iter().enumerate() {
        let runs = &outcomes[m * 8..(m + 1) * 8];
        let avg = runs.iter().map(|o| o.summary.average_regret()).sum::<f64>() / 8.0;
        let max_r = runs
            .iter()
            .map(|o| o.summary.max_instant_regret())
            .max()
            .unwrap_or(0) as f64;

        // Census on one representative run: who ends up holding the task?
        let mut cfg = base.clone();
        cfg.controller = spec.clone();
        let mut engine = cfg.build();
        engine.run(warmup + rounds, &mut NullObserver);
        let census = engine.bank_census();
        let total_working: u64 = census.iter().map(|b| b.working).sum();
        let share = |name: &str| -> f64 {
            let w: u64 = census
                .iter()
                .filter(|b| spec_label(&b.spec) == name)
                .map(|b| b.working)
                .sum();
            if total_working == 0 {
                0.0
            } else {
                w as f64 / total_working as f64
            }
        };

        table.row(vec![
            label.clone(),
            fmt(avg),
            fmt(max_r),
            fmt(share("ant")),
            fmt(share("greedy")),
            fmt(share("hysteresis")),
        ]);
    }
    table.finish();

    // Grid 2: mix *weights* as a first-class numeric axis. The setter
    // rewrites the Ant weight in place, holding the greedy fraction's
    // weight at the remainder — a continuous slice through the same
    // composition space the labeled axis samples.
    println!("\nant weight fraction sweep (ant w / greedy 1−w, 8 seeds each):");
    let weighted = Sweep::new(base.clone())
        .axis("ant_weight", [0.2, 0.4, 0.6, 0.8], |cfg, w| {
            cfg.controller = ControllerSpec::Mix(vec![(w, ant()), (1.0 - w, greedy())]);
        })
        .seeds(0..8)
        .warmup(warmup)
        .rounds(rounds)
        .run_with(|o| sink.on_outcome(o).expect("jsonl write"))
        .expect("weight sweep runs");
    let mut t2 = Table::new(
        "exp_mixed_colony_weights",
        &["ant weight", "avg regret", "max |r|"],
    );
    for (i, w) in [0.2, 0.4, 0.6, 0.8].iter().enumerate() {
        let runs = &weighted[i * 8..(i + 1) * 8];
        let avg = runs.iter().map(|o| o.summary.average_regret()).sum::<f64>() / 8.0;
        let max_r = runs
            .iter()
            .map(|o| o.summary.max_instant_regret())
            .max()
            .unwrap_or(0) as f64;
        t2.row(vec![fmt(*w), fmt(avg), fmt(max_r)]);
    }
    t2.finish();

    sink.finish().expect("flush jsonl sink");
    println!("  [jsonl: {}]", jsonl_path.display());
}
