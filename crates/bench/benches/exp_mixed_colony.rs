//! MIX1 — heterogeneous colonies: Ant vs ExactGreedy vs Hysteresis
//! racing head-to-head *inside one colony* under sigmoid noise.
//!
//! The paper's colonies are homogeneous by construction; related swarm
//! work (Balachandran–Harasha–Lynch 2024, Silva–Edwards–Hsieh 2022)
//! studies mixed populations explicitly. `ControllerSpec::Mix` makes
//! that a first-class scenario: one colony, one noisy environment,
//! weighted fractions of controllers. Expected shape:
//!
//! * noise-robust Ant fractions end up *holding* the task — the greedy
//!   baseline churns near Δ ≈ 0 (phantom overloads every round, cf.
//!   `exp_baseline_noise_fragility`) while Ant parks in its stable
//!   band;
//! * colony-level regret degrades as the noise-fragile fraction grows;
//! * deep-hysteresis machines are sticky: they hold what they grab but
//!   are slow to let go after shocks.
//!
//! Every mix runs under the batch runner across seeds, streaming each
//! seed's outcome through a `JsonlSink` (the constant-memory path a
//! million-run sweep would use).

use antalloc_bench::{banner, fmt, out_dir, Table};
use antalloc_core::{AntParams, ExactGreedyParams};
use antalloc_noise::NoiseModel;
use antalloc_sim::{Batch, ControllerSpec, JsonlSink, NullObserver, RunSink as _, SimConfig};

fn ant() -> ControllerSpec {
    ControllerSpec::Ant(AntParams::new(1.0 / 16.0))
}

fn greedy() -> ControllerSpec {
    ControllerSpec::ExactGreedy(ExactGreedyParams::default())
}

fn hysteresis() -> ControllerSpec {
    ControllerSpec::Hysteresis {
        depth: 4,
        lazy: Some(0.5),
    }
}

fn spec_label(spec: &ControllerSpec) -> &'static str {
    match spec {
        ControllerSpec::Ant(_) => "ant",
        ControllerSpec::ExactGreedy(_) => "greedy",
        ControllerSpec::Hysteresis { .. } => "hysteresis",
        _ => "other",
    }
}

fn main() {
    banner(
        "MIX1",
        "mixed colonies: Ant vs ExactGreedy vs Hysteresis in one colony",
        "noise-robust fractions hold the task; regret grows with the fragile fraction",
    );

    let n = 3000usize;
    let demand = (n / 4) as u64; // single task: hysteresis machines observe one task
    let rounds = 4000u64;
    let warmup = 2000u64;
    let seeds = 0..8u64;

    // Mix grid: pure colonies as anchors, then Ant fraction sweeps with
    // the remainder split between the two baselines.
    let mixes: Vec<(String, ControllerSpec)> = vec![
        ("ant 100%".into(), ant()),
        ("greedy 100%".into(), greedy()),
        ("hysteresis 100%".into(), hysteresis()),
        (
            "ant 80 / greedy 10 / hyst 10".into(),
            ControllerSpec::Mix(vec![(8.0, ant()), (1.0, greedy()), (1.0, hysteresis())]),
        ),
        (
            "ant 50 / greedy 25 / hyst 25".into(),
            ControllerSpec::Mix(vec![(2.0, ant()), (1.0, greedy()), (1.0, hysteresis())]),
        ),
        (
            "ant 20 / greedy 40 / hyst 40".into(),
            ControllerSpec::Mix(vec![(1.0, ant()), (2.0, greedy()), (2.0, hysteresis())]),
        ),
    ];

    let mut table = Table::new(
        "exp_mixed_colony",
        &[
            "mix",
            "avg regret",
            "max |r|",
            "ant share of work",
            "greedy share",
            "hyst share",
        ],
    );

    let jsonl_path = out_dir().join("exp_mixed_colony.jsonl");
    let mut sink = JsonlSink::create(&jsonl_path).expect("create jsonl sink");

    for (label, spec) in &mixes {
        let cfg = SimConfig::builder(n, vec![demand])
            .noise(NoiseModel::Sigmoid { lambda: 2.0 })
            .controller(spec.clone())
            .seed(0x1113)
            .build()
            .expect("valid mixed scenario");

        // One batch across seeds: each outcome streams to the JSONL
        // sink AND folds into the table aggregates as it completes.
        let batch = Batch::new(cfg.clone(), rounds)
            .seeds(seeds.clone())
            .warmup(warmup);
        let mut avg = 0.0f64;
        let mut max_r = 0.0f64;
        let runs = batch
            .for_each(|o| {
                sink.on_outcome(o).expect("jsonl write");
                avg += o.summary.average_regret() / 8.0;
                max_r = max_r.max(o.summary.max_instant_regret() as f64);
            })
            .expect("mixed batch runs under the batch runner");
        assert_eq!(runs, 8);

        // Census on one representative run: who ends up holding the task?
        let mut engine = cfg.build();
        engine.run(warmup + rounds, &mut NullObserver);
        let census = engine.bank_census();
        let total_working: u64 = census.iter().map(|b| b.working).sum();
        let share = |name: &str| -> f64 {
            let w: u64 = census
                .iter()
                .filter(|b| spec_label(&b.spec) == name)
                .map(|b| b.working)
                .sum();
            if total_working == 0 {
                0.0
            } else {
                w as f64 / total_working as f64
            }
        };

        table.row(vec![
            label.clone(),
            fmt(avg),
            fmt(max_r),
            fmt(share("ant")),
            fmt(share("greedy")),
            fmt(share("hysteresis")),
        ]);
    }
    table.finish();
    sink.finish().expect("flush jsonl sink");
    println!("  [jsonl: {}]", jsonl_path.display());
}
