//! FIG1 — Figure 1: the feedback probability curve and the grey zone.
//!
//! Paper: "Whenever the overload is in the green (red) region, all ants
//! receive w.h.p. the feedback lack (overload). Whenever the overload is
//! in the grey region, the closer the overload is to 0, the more
//! unpredictable is the feedback."
//!
//! We sweep the deficit across `[−2γ*d, +2γ*d]`, draw 100k ant-samples
//! per point under the sigmoid model, and print the empirical P[overload
//! feedback] next to the analytic `1 − s(λΔ)`, marking the grey zone.
//! The adversarial model's hard envelope is shown alongside.

use antalloc_bench::{banner, fmt, Table};
use antalloc_noise::{
    critical_value_sigmoid, lack_probability, GreyZone, GreyZonePolicy, NoiseModel,
};
use antalloc_rng::Xoshiro256pp;

fn main() {
    let n = 4000;
    let d = 300u64;
    let lambda = 0.5;
    // The paper's reliability exponent is 8; at simulation scale we plot
    // q = 2 as well to show the same shape at the horizon-relevant zone.
    let cv8 = critical_value_sigmoid(lambda, n, &[d], 8.0);
    let cv2 = critical_value_sigmoid(lambda, n, &[d], 2.0);
    banner(
        "FIG1",
        "feedback probability vs deficit (sigmoid + adversarial envelope)",
        "P[lack] = s(λΔ); outside ±γ*d all ants see the truth w.h.p.",
    );
    println!(
        "d = {d}, λ = {lambda}; γ*(q=8) = {:.4} (zone ±{:.1} ants), γ*(q=2) = {:.4} (±{:.1})",
        cv8.gamma_star,
        cv8.gamma_star * d as f64,
        cv2.gamma_star,
        cv2.gamma_star * d as f64
    );

    let zone8 = GreyZone::of(cv8.gamma_star, d);
    let zone2 = GreyZone::of(cv2.gamma_star, d);
    let sigmoid = NoiseModel::Sigmoid { lambda };
    let adversarial = NoiseModel::Adversarial {
        gamma_ad: cv2.gamma_star,
        policy: GreyZonePolicy::AlternateByRound,
    };
    let mut rng = Xoshiro256pp::seed_from_u64(0xF161);

    let mut table = Table::new(
        "fig1_feedback_curve",
        &[
            "deficit",
            "analytic P[overload]",
            "empirical P[overload]",
            "abs err",
            "zone(q=8)",
            "zone(q=2)",
            "adversary forced?",
        ],
    );

    // Sweep ±1.2× the horizon-relevant (q=2) zone: the S-transition and
    // both zone edges are visible at this resolution; the q=8 zone
    // extends 4× further with error already below 1e-29 at its edge.
    let edge = (cv2.gamma_star * d as f64 * 1.2).ceil() as i64;
    let points = 25usize;
    for i in 0..points {
        let delta = -edge + (2 * edge) * i as i64 / (points as i64 - 1);
        let analytic = 1.0 - lack_probability(lambda, delta);
        let prep = sigmoid.prepare(1, &[delta], &[d]);
        let draws = 100_000u32;
        let overloads = (0..draws)
            .filter(|_| !prep.sample(0, &mut rng).is_lack())
            .count();
        let empirical = f64::from(overloads as u32) / f64::from(draws);
        // Is the adversary forced to tell the truth here?
        let adv = adversarial.marginal_lack_probability(delta, d);
        let forced = if adv == Some(1.0) {
            "lack"
        } else if adv == Some(0.0) {
            "overload"
        } else {
            "free"
        };
        table.row(vec![
            delta.to_string(),
            fmt(analytic),
            fmt(empirical),
            fmt((analytic - empirical).abs()),
            if zone8.contains(delta) {
                "grey"
            } else {
                "clear"
            }
            .to_string(),
            if zone2.contains(delta) {
                "grey"
            } else {
                "clear"
            }
            .to_string(),
            forced.to_string(),
        ]);
    }
    table.finish();

    println!("\nchecks:");
    println!("  s(0) = 1/2 at deficit 0 (maximal uncertainty)  [axiom §2.2]");
    println!(
        "  error at the q=8 zone edge: {:.2e} (target n^-8 = {:.2e})",
        cv8.edge_error_probability(lambda, d),
        (n as f64).powf(-8.0)
    );
}
