//! FIG2 — Figure 2: a typical two-sample phase of Algorithm Ant.
//!
//! Paper: each phase the ants pause w.p. ~c_s·γ, producing a load dip;
//! if both samples show overload a few ants leave permanently; once the
//! first sample is overload and the second is lack, "no ant will join
//! or leave the task for a polynomial number of steps" — the stable
//! zone.
//!
//! We start one task moderately overloaded and print the exact per-round
//! loads: odd rounds show the dip (W·(1−c_sγ)), even rounds the
//! permanent decisions; the trace ends parked, with the paper's stable
//! zone annotated.

use antalloc_bench::{banner, Table};
use antalloc_core::AntParams;
use antalloc_env::InitialConfig;
use antalloc_noise::NoiseModel;
use antalloc_sim::{ControllerSpec, NullObserver, SimConfig, TraceRecorder};

fn main() {
    let n = 4000;
    let d = 1000u64;
    let gamma = 1.0 / 16.0;
    let lambda = 2.0;
    let params = AntParams::new(gamma);
    banner(
        "FIG2",
        "one task through Algorithm Ant's phases (two samples per phase)",
        "dip ≈ c_sγ·W each odd round; leaves only on double overload; \
         parks once the dip straddles the demand",
    );
    println!(
        "d = {d}, γ = {gamma:.4}, c_s = {}, c_d = {}; paper stable zone \
         [d(1+γ), d(1+(0.9c_s−1)γ)] = [{:.0}, {:.0}]",
        params.cs,
        params.cd,
        d as f64 * (1.0 + gamma),
        d as f64 * (1.0 + (0.9 * params.cs - 1.0) * gamma)
    );

    let cfg = SimConfig::builder(n, vec![d])
        .noise(NoiseModel::Sigmoid { lambda })
        .controller(ControllerSpec::Ant(params))
        .seed(0xF162)
        // +25%: well above the zone, so the trace shows the drain.
        .initial(InitialConfig::SaturatedPlus { extra: d / 4 })
        .build()
        .expect("valid scenario");
    let mut engine = cfg.build();

    let head = 40u64;
    let mut recorder = TraceRecorder::new(1, 50, head);
    engine.run(2000, &mut recorder);

    let mut table = Table::new(
        "fig2_phase_trace",
        &["round", "sub-round", "load W", "deficit", "phase event"],
    );
    // Permanent movement shows between consecutive *even* rounds; the
    // odd-round dip is the temporary pause (those ants resume).
    let mut prev_even: i64 = (d + d / 4) as i64;
    let mut prev_load: i64 = prev_even;
    for (i, loads) in recorder.head_loads().iter().enumerate() {
        let t = i as u64 + 1;
        let w = i64::from(loads[0]);
        let event = if t % 2 == 1 {
            format!("pause dip ({} temporarily idle)", prev_load - w)
        } else {
            let net = prev_even - w;
            prev_even = w;
            match net.cmp(&0) {
                core::cmp::Ordering::Greater => {
                    format!("paused ants resume; net {net} left permanently")
                }
                core::cmp::Ordering::Less => {
                    format!("paused ants resume; net {} joined", -net)
                }
                core::cmp::Ordering::Equal => "paused ants resume; no net change".into(),
            }
        };
        table.row(vec![
            t.to_string(),
            if t % 2 == 1 {
                "1st sample"
            } else {
                "2nd sample"
            }
            .to_string(),
            w.to_string(),
            (d as i64 - w).to_string(),
            event,
        ]);
        prev_load = w;
    }
    table.finish();

    // Long-run summary: where did it park?
    let final_load = engine.colony().load(0);
    let mut tail = antalloc_sim::RunSummary::new();
    engine.run(2000, &mut tail);
    let mut sink = NullObserver;
    engine.run(1, &mut sink);
    println!(
        "\nparked at W = {final_load} (deficit {}); avg regret over the \
         next 2000 rounds = {:.1} — within Theorem 3.1's 5γd + 3 = {:.1}",
        d as i64 - final_load as i64,
        tail.average_regret(),
        5.0 * gamma * d as f64 + 3.0
    );
    println!(
        "note: the *effective* stable band at finite λ is [d + O(1/λ), \
         d/(1−c_sγ) − O(1/λ)] ⊃ the paper's asymptotic zone; the trace \
         parks wherever the drain first enters it."
    );
}
