//! OPEN1 — §6's open problem: "it would be interesting to see if
//! variations of this algorithm also work in settings of less
//! synchronization."
//!
//! We take the most basic desynchronization: half the colony runs its
//! two-round phase one round out of step with the other half. The
//! collective pause — the mechanism that spaces the two samples apart —
//! is destroyed: while half the ants dip the load for their second
//! sample, the other half reads that dipped load as its *first* sample.
//!
//! Measured shape (recorded in EXPERIMENTS.md): staggering the phases
//! halves the collective dip, which acts like halving the effective
//! learning rate — with both of that trade's edges. At small γ the
//! halved dip no longer clears the grey zone and the colony suffers
//! episodic join stampedes (max regret an order of magnitude above the
//! synchronized run); at large γ the halved dip still straddles the
//! zone and the steady oscillation actually shrinks. Desynchronization
//! is survivable but it silently rescales the one parameter the
//! guarantees are calibrated against.

use antalloc_bench::{banner, fmt, steady_state, Table};
use antalloc_core::AntParams;
use antalloc_noise::NoiseModel;
use antalloc_sim::{ControllerSpec, SimConfig};

fn main() {
    banner(
        "OPEN1",
        "desynchronized phases (the §6 open problem, simplest variant)",
        "the paper assumes all ants share phase boundaries; what if half \
         the colony is one round out of step?",
    );
    let n = 4000usize;
    let demands = vec![400u64, 700, 300];
    let sum_d: u64 = demands.iter().sum();
    let lambda = 2.0;
    println!("n = {n}, Σd = {sum_d}, λ = {lambda}\n");

    let mut table = Table::new(
        "open_desync",
        &[
            "variant",
            "γ",
            "avg regret",
            "vs bound 5γΣd+3",
            "max regret",
            "switches/ant/round",
        ],
    );
    for gamma in [1.0 / 32.0, 1.0 / 16.0] {
        let bound = 5.0 * gamma * sum_d as f64 + 3.0;
        for (name, spec) in [
            ("synchronized", ControllerSpec::Ant(AntParams::new(gamma))),
            (
                "desynchronized (half offset)",
                ControllerSpec::AntDesync(AntParams::new(gamma)),
            ),
        ] {
            let cfg = SimConfig::builder(n, demands.clone())
                .noise(NoiseModel::Sigmoid { lambda })
                .controller(spec)
                .seed(0x0BE1)
                .build()
                .expect("valid scenario");
            let warmup = (8.0 * 19.0 / gamma) as u64;
            let m = steady_state(&cfg, gamma, warmup, 8000);
            table.row(vec![
                name.to_string(),
                fmt(gamma),
                fmt(m.avg_regret),
                fmt(m.avg_regret / bound),
                fmt(m.max_regret),
                fmt(m.switches_per_ant_round),
            ]);
        }
    }
    table.finish();
    println!(
        "\nshape check: staggered phases halve the collective dip — an \
         implicit γ_eff ≈ γ/2. At γ = 1/32 the halved dip stops clearing \
         the grey zone: episodic join stampedes appear (compare max \
         regret). At γ = 1/16 the halved dip still straddles the zone \
         and steady regret even improves. Verdict on the §6 open \
         problem: mild desynchronization is survivable but silently \
         rescales the learning rate the guarantees are calibrated \
         against — the safe window [γ*, 1/16] effectively shrinks."
    );
}
