//! ABL1 — ablations over Algorithm Ant's constants and the
//! DESIGN.md §2 faithfulness decisions.
//!
//! 1. `c_s`/`c_d` grid around the paper's (2.5, 19): the proofs pin
//!    `c_s ∈ [2.34, 2.5]`; we show what actually breaks outside it —
//!    small `c_s` fails to straddle the grey zone (samples stop being
//!    "spaced apart"), huge `c_s` pays a large oscillation every phase.
//! 2. γ beyond 1/16: the admissible-window violation.
//! 3. Precise Sigmoid's leave probability: the pseudocode's literal
//!    `γ/(c_χ·c_d)` (which drops an ε) vs the proof-consistent
//!    `εγ/(c_χ·c_d)` — the literal value overshoots the ε-narrow band.

use antalloc_bench::{banner, fmt, steady_state, Table};
use antalloc_core::{AntParams, PreciseSigmoidParams};
use antalloc_env::InitialConfig;
use antalloc_noise::NoiseModel;
use antalloc_sim::{ControllerSpec, SimConfig};

fn main() {
    banner(
        "ABL1",
        "constants ablation: c_s, c_d, γ-window, PS leave probability",
        "the paper's c_s = 2.5, c_d = 19 sit inside the narrow window \
         the proofs allow (DESIGN.md §2)",
    );
    let n = 4000usize;
    let demands = vec![400u64, 700, 300];
    let sum_d: u64 = demands.iter().sum();
    let lambda = 2.0;
    let gamma = 1.0 / 16.0;

    let mut table = Table::new(
        "ablation_constants",
        &[
            "variant",
            "γ",
            "c_s",
            "c_d",
            "avg regret",
            "vs paper-constants",
            "note",
        ],
    );

    let mut reference = f64::NAN;
    for (label, g, cs, cd, note) in [
        ("paper constants", gamma, 2.5, 19.0, ""),
        (
            "c_s too small",
            gamma,
            0.8,
            19.0,
            "samples not spaced: dip stays in grey zone",
        ),
        ("c_s = proofs' lower edge", gamma, 2.34, 19.0, ""),
        (
            "c_s too large",
            gamma,
            8.0,
            19.0,
            "dip = c_sγW overshoots: big oscillation",
        ),
        (
            "c_d small (leaves 4x)",
            gamma,
            2.5,
            4.75,
            "drains fast but churns",
        ),
        (
            "c_d large (leaves /4)",
            gamma,
            2.5,
            76.0,
            "slow drain: long transients",
        ),
        (
            "γ above window (0.125)",
            0.125,
            2.5,
            19.0,
            "violates γ ≤ 1/16",
        ),
        (
            "γ tiny (0.01)",
            0.01,
            2.5,
            19.0,
            "γ < γ*: samples inside grey zone",
        ),
    ] {
        let params = AntParams { gamma: g, cs, cd };
        let cfg = SimConfig::builder(n, demands.clone())
            .noise(NoiseModel::Sigmoid { lambda })
            .controller(ControllerSpec::Ant(params))
            .seed(0xAB1)
            // Several rows deliberately leave the admissible window
            // (that is the point of the ablation).
            .out_of_spec_params()
            .build()
            .expect("structurally valid scenario");
        let warmup = (8.0 * cd / g) as u64;
        let m = steady_state(&cfg, g, warmup.min(60_000), 8000);
        if label == "paper constants" {
            reference = m.avg_regret;
        }
        table.row(vec![
            label.to_string(),
            fmt(g),
            fmt(cs),
            fmt(cd),
            fmt(m.avg_regret),
            fmt(m.avg_regret / reference),
            note.to_string(),
        ]);
    }
    table.finish();
    println!(
        "note: these rows run under benign sigmoid noise, where small \
         c_s *reduces* regret (smaller deliberate oscillation) and tiny \
         γ looks great — what those settings forfeit is the worst-case \
         guarantee: c_s ≥ 2.34 is what makes the two samples straddle \
         the grey zone against an adversary (part 3 below and BASE), \
         and γ ≥ γ* is what keeps the sampling points reliable."
    );

    // Part 2: Precise Sigmoid leave-probability discrepancy.
    println!("\nPS leave probability: pseudocode-literal vs proof-consistent");
    let mut t2 = Table::new(
        "ablation_ps_leave_prob",
        &["mode", "leave prob", "avg regret", "note"],
    );
    let d = 5000u64;
    let eps = 0.4;
    for literal in [false, true] {
        let mut params = PreciseSigmoidParams::new(gamma, eps);
        params.paper_literal_leave_prob = literal;
        let band = params.gamma_prime() * d as f64;
        let phase = params.phase_len();
        let cfg = SimConfig::builder(12_000, vec![d])
            .noise(NoiseModel::Sigmoid { lambda: 1.5 })
            .controller(ControllerSpec::PreciseSigmoid(params))
            .seed(0xAB2)
            .initial(InitialConfig::SaturatedPlus {
                extra: (band * 1.5) as u64 + 2,
            })
            .build()
            .expect("valid scenario");
        let m = steady_state(&cfg, gamma, 30 * phase, 90 * phase);
        t2.row(vec![
            if literal {
                "literal γ/(c_χc_d)"
            } else {
                "proof εγ/(c_χc_d)"
            }
            .into(),
            fmt(params.leave_probability()),
            fmt(m.avg_regret),
            if literal {
                "1/ε× larger steps: band overshoot risk".into()
            } else {
                format!("paper rate γεΣd = {}", fmt(gamma * eps * sum_d as f64))
            },
        ]);
    }
    t2.finish();
    println!(
        "note: at this scale both leave probabilities park in the same \
         integer band, so the measured rates coincide; the discrepancy \
         matters when γ'd is small enough that the larger literal step \
         can cross the band (DESIGN.md §2.2)."
    );

    // Part 3: the Assumption 2.1 demand-scale threshold, exposed by an
    // adversary. The pause dip is Binomial(W, c_sγ); the proofs'
    // concentration event needs its relative deviation ≤ 10%, i.e.
    // c_sγ·d ≳ 100. Below that, a grey-zone adversary can ride the dip
    // fluctuations into the zone and trigger repeated join stampedes —
    // and Theorem 3.1's bound genuinely fails.
    println!("\ndemand scale under an inverted grey-zone adversary (γ_ad = 0.05):");
    let mut t3 = Table::new(
        "ablation_demand_scale",
        &[
            "n",
            "demands",
            "c_sγ·d_min",
            "avg regret",
            "bound 5γΣd+3",
            "bound holds?",
        ],
    );
    for (n, demands) in [
        (2000usize, vec![200u64, 350, 150]),
        (4000, vec![400, 700, 300]),
        (7000, vec![800, 1400, 600]),
    ] {
        let sum: u64 = demands.iter().sum();
        let cfg = SimConfig::builder(n, demands.clone())
            .noise(NoiseModel::Adversarial {
                gamma_ad: 0.05,
                policy: antalloc_noise::GreyZonePolicy::Inverted,
            })
            .controller(ControllerSpec::Ant(AntParams::new(gamma)))
            .seed(0xAB4)
            .build()
            .expect("valid scenario");
        let m = steady_state(&cfg, gamma, 8000, 8000);
        let bound = 5.0 * gamma * sum as f64 + 3.0;
        let scale = 2.5 * gamma * *demands.iter().min().expect("non-empty") as f64;
        t3.row(vec![
            n.to_string(),
            format!("{demands:?}"),
            fmt(scale),
            fmt(m.avg_regret),
            fmt(bound),
            if m.avg_regret <= bound {
                "yes"
            } else {
                "NO (below scale)"
            }
            .into(),
        ]);
    }
    t3.finish();
    println!(
        "shape check: the bound holds exactly when c_sγ·d_min clears the \
         concentration threshold — the finite-size content of \
         Assumption 2.1's d = Ω(log n/γ²)."
    );
}
