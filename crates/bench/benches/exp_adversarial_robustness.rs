//! ADV — adversarial robustness: every controller kind raced across
//! generated shock ensembles plus a state-reactive trigger.
//!
//! The paper's self-stabilization guarantee (Theorem 3.1, §6) is about
//! recovery from *arbitrary* states — which a fixed shock script probes
//! only at the rounds its author chose. This experiment stresses the
//! regime the dynamic-environment swarm literature actually evaluates
//! (Balachandran–Harasha–Lynch 2024; Silva–Edwards–Hsieh 2022): shock
//! schedules drawn from a seeded distribution, plus an adversary that
//! *reacts* — a trigger that scrambles the colony the moment it has
//! looked settled for a stretch of rounds.
//!
//! One declarative scenario carries the whole threat model: a
//! `[[timeline.trigger]]` regret-reactive scramble and
//! `[[timeline.generate]]` Poisson kill / demand-step schedules. A
//! `Sweep::product` axis races (controller × shock intensity) with
//! shared labels, 8 seeds each — every seed draws a different schedule
//! from the reserved TIMELINE stream, so each row aggregates an
//! *ensemble*, not one handpicked script.
//!
//! `PERF_QUICK=1` shrinks the colony and horizon for CI; the table
//! lands in `target/experiments/exp_adversarial_robustness.csv`
//! (uploaded by the `perf-smoke` job).

use antalloc_bench::{banner, fmt, perf_quick as quick, Table};
use antalloc_core::{AntParams, ExactGreedyParams, PreciseSigmoidParams};
use antalloc_sim::{ControllerSpec, RunOutcome, Scenario, Sweep};

const SEEDS: u64 = 8;

fn main() {
    banner(
        "ADV",
        "adversarial robustness: generated Poisson shocks + regret-reactive scramble",
        "self-stabilizing controllers keep the ensemble-average regret bounded \
         under randomized kill/demand schedules; fragile baselines degrade",
    );

    let (n, horizon) = if quick() {
        (1500usize, 1200u64)
    } else {
        (6000, 6000)
    };
    let warmup = horizon / 6;
    let d = n as u64 / 8;
    // The base scenario: settled start, regret-reactive scramble, and
    // shock generators whose intensity the sweep scales below.
    let scenario_toml = format!(
        r#"
name = "adversarial-robustness"
n = {n}
demands = [{d}, {d}]
seed = 9090

[controller]
kind = "ant"
gamma = 0.0625

[noise]
kind = "sigmoid"
lambda = 2.0

[initial]
kind = "saturated-plus"
extra = 4

[[timeline.trigger]]
kind = "scramble"
when = {{ kind = "regret-below", threshold = {settle}, for_rounds = 20 }}
cooldown = {cooldown}
max_firings = 0

[[timeline.generate]]
kind = "kill"
until = {horizon}
mean_gap = {kill_gap}
min_frac = 0.1
max_frac = 0.3

[[timeline.generate]]
kind = "demand-step"
until = {horizon}
mean_gap = {demand_gap}
min_factor = 0.6
max_factor = 1.5
"#,
        settle = d / 2,
        cooldown = horizon / 8,
        kill_gap = horizon as f64 / 4.0,
        demand_gap = horizon as f64 / 3.0,
    );
    let scenario = Scenario::from_toml(&scenario_toml).expect("adversarial scenario validates");

    let controllers: Vec<(&str, ControllerSpec)> = vec![
        ("ant", ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
        (
            "ant-desync",
            ControllerSpec::AntDesync(AntParams::new(1.0 / 16.0)),
        ),
        (
            "precise-sigmoid",
            ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.05, 0.5)),
        ),
        (
            "exact-greedy",
            ControllerSpec::ExactGreedy(ExactGreedyParams::default()),
        ),
        ("trivial", ControllerSpec::Trivial),
    ];
    // Shock intensity rescales every generator's mean gap: `calm`
    // disables the generated shocks entirely (the trigger still bites),
    // `storm` fires them twice as often as the base scenario.
    let intensities: Vec<(&str, Option<f64>)> =
        vec![("calm", None), ("shocks", Some(1.0)), ("storm", Some(0.5))];

    let grid = Sweep::product(controllers.clone(), intensities.clone());
    let outcomes = Sweep::new(scenario.config.clone())
        .axis_labeled("controller×shocks", grid, |cfg, (spec, intensity)| {
            cfg.controller = spec.clone();
            match intensity {
                None => cfg.timeline.generators.clear(),
                Some(scale) => {
                    for generator in &mut cfg.timeline.generators {
                        generator.mean_gap *= scale;
                    }
                }
            }
        })
        .seeds(0..SEEDS)
        .warmup(warmup)
        .rounds(horizon - warmup)
        .run()
        .expect("sweep runs");

    let mut table = Table::new(
        "exp_adversarial_robustness",
        &[
            "controller",
            "shocks",
            "avg regret",
            "max regret",
            "final regret",
        ],
    );
    let cell = |runs: &[RunOutcome]| {
        let avg = runs.iter().map(|o| o.summary.average_regret()).sum::<f64>() / runs.len() as f64;
        let max = runs
            .iter()
            .map(|o| o.summary.max_instant_regret())
            .max()
            .unwrap_or(0);
        let fin = runs.iter().map(|o| o.final_regret).sum::<u64>() as f64 / runs.len() as f64;
        (avg, max, fin)
    };
    for (c, (controller, _)) in controllers.iter().enumerate() {
        for (i, (intensity, _)) in intensities.iter().enumerate() {
            let slot = (c * intensities.len() + i) * SEEDS as usize;
            let (avg, max, fin) = cell(&outcomes[slot..slot + SEEDS as usize]);
            table.row(vec![
                controller.to_string(),
                intensity.to_string(),
                fmt(avg),
                fmt(max as f64),
                fmt(fin),
            ]);
        }
    }
    table.finish();
    println!(
        "\nshape check: per controller, avg regret should grow modestly from calm \
         → storm for\nself-stabilizing algorithms (they re-converge between shocks) \
         and blow up for the\nnoise-fragile baselines; every row aggregates {SEEDS} \
         independently drawn schedules."
    );
}
