//! Shared harness for the experiment benches.
//!
//! Every figure and theorem-level claim of the paper has a `harness =
//! false` bench target in this crate; `cargo bench --workspace`
//! regenerates all of them. Each experiment prints an aligned text
//! table with a `paper` column next to `measured`, and mirrors the
//! table to `target/experiments/<name>.csv`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write as _;
use std::path::PathBuf;

use antalloc_sim::{BasicObserver, NullObserver, RunOutcome, SimConfig, SyncEngine};

/// Prints the experiment banner: id, title and the paper's claim.
pub fn banner(id: &str, title: &str, claim: &str) {
    println!("\n================================================================");
    println!("{id}: {title}");
    println!("paper claim: {claim}");
    println!("================================================================");
}

/// Where experiment CSVs land (`target/experiments`).
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// An aligned text table that also saves itself as CSV.
pub struct Table {
    name: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table named `name` (used for the CSV filename).
    pub fn new(name: &str, headers: &[&str]) -> Self {
        Self {
            name: name.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Prints aligned and writes `target/experiments/<name>.csv`.
    pub fn finish(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let body: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("  {}", body.join("  "));
        };
        line(&self.headers);
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&rule);
        for row in &self.rows {
            line(row);
        }

        let path = out_dir().join(format!("{}.csv", self.name));
        let mut out =
            std::io::BufWriter::new(std::fs::File::create(&path).expect("create experiment csv"));
        writeln!(out, "{}", self.headers.join(",")).unwrap();
        for row in &self.rows {
            writeln!(out, "{}", row.join(",")).unwrap();
        }
        println!("  [csv: {}]", path.display());
    }
}

/// Steady-state measurement of one configuration.
pub struct Measured {
    /// Average regret per post-warmup round.
    pub avg_regret: f64,
    /// Standard error of the per-round regret mean.
    pub regret_sem: f64,
    /// Largest instantaneous regret in the measurement window.
    pub max_regret: f64,
    /// Mean assignment changes per ant per round.
    pub switches_per_ant_round: f64,
    /// Fraction of (round, task) pairs violating `|Δ| ≤ 5γd`.
    pub violation_fraction: f64,
    /// The engine, for further inspection.
    pub engine: SyncEngine,
}

/// Runs `warmup` rounds unobserved, then `measure` rounds under a
/// [`BasicObserver`] with the given γ (for the regret decomposition).
pub fn steady_state(cfg: &SimConfig, gamma: f64, warmup: u64, measure: u64) -> Measured {
    let threads = worker_threads();
    let mut engine = cfg.build();
    let mut sink = NullObserver;
    engine.run_parallel(warmup, threads, &mut sink);
    let mut obs = BasicObserver::new(gamma, 2.5, 0);
    engine.run_parallel(measure, threads, &mut obs);
    let b = obs.regret.breakdown();
    let n = engine.colony().num_ants();
    let k = engine.colony().num_tasks();
    Measured {
        avg_regret: b.average(),
        regret_sem: obs.instant.sem(),
        max_regret: obs.instant.max(),
        switches_per_ant_round: obs.switches.per_ant_round(n),
        violation_fraction: b.deficit_bound_violations as f64 / (b.rounds as f64 * k as f64),
        engine,
    }
}

/// Whether `PERF_QUICK` asks for a CI-sized run (`0`/empty = off).
/// Shared by every bench that scales its workload down for the
/// `perf-smoke` job.
// disallowed_methods: PERF_QUICK only scales workload size; it cannot
// change any simulated trajectory (audit.toml relaxes bench too).
#[allow(clippy::disallowed_methods)]
pub fn perf_quick() -> bool {
    std::env::var("PERF_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Worker threads for the parallel engine, capped at 8.
///
/// On boxes with ≤ 2 hardware threads the coordinator+worker pair
/// contends with itself and the serial path wins, so this returns 1
/// there (the engine's own small-colony fallback also applies).
pub fn worker_threads() -> usize {
    let hw = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    if hw <= 2 {
        1
    } else {
        hw.min(8)
    }
}

/// Renders [`Batch`](antalloc_sim::Batch)/[`Sweep`](antalloc_sim::Sweep)
/// outcomes as a [`Table`]: one row per run, one column per sweep axis,
/// plus the standard regret aggregates. Call [`Table::finish`] on the
/// result to print and mirror it to CSV.
pub fn batch_table(name: &str, outcomes: &[RunOutcome]) -> Table {
    let axis_names: Vec<String> = outcomes
        .first()
        .map(|o| o.params.iter().map(|(n, _)| n.clone()).collect())
        .unwrap_or_default();
    let mut headers: Vec<&str> = vec!["seed"];
    headers.extend(axis_names.iter().map(String::as_str));
    headers.extend(["rounds", "avg regret", "max regret", "final regret"]);
    let mut table = Table::new(name, &headers);
    for o in outcomes {
        let mut row = vec![o.seed.to_string()];
        row.extend(o.params.iter().map(|(_, v)| match v {
            antalloc_sim::AxisValue::Float(x) => fmt(*x),
            antalloc_sim::AxisValue::Text(s) => s.clone(),
        }));
        row.extend([
            o.rounds.to_string(),
            fmt(o.summary.average_regret()),
            fmt(o.summary.max_instant_regret() as f64),
            o.final_regret.to_string(),
        ]);
        table.row(row);
    }
    table
}

/// Compact float formatting for tables: 4 significant-ish digits.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 10_000.0 || x.abs() < 0.01 {
        format!("{x:.3e}")
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(123.456), "123.5");
        assert_eq!(fmt(1.23456), "1.235");
        assert!(fmt(1.0e6).contains('e'));
        assert!(fmt(0.0001).contains('e'));
    }

    #[test]
    fn batch_table_shapes_rows_from_outcomes() {
        let config = SimConfig::builder(100, vec![20]).build().unwrap();
        let outcomes = antalloc_sim::Sweep::new(config)
            .axis("lambda", [1.0, 2.0], |cfg, lambda| {
                cfg.noise = antalloc_noise::NoiseModel::Sigmoid { lambda };
            })
            .seeds([3, 4])
            .rounds(20)
            .threads(2)
            .run()
            .unwrap();
        let table = batch_table("batch_table_test", &outcomes);
        assert_eq!(table.headers.len(), 1 + 1 + 4);
        assert_eq!(table.rows.len(), 4);
        assert_eq!(table.rows[0][0], "3");
        assert_eq!(table.rows[1][0], "4");
    }

    #[test]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("test_table", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.row(vec!["1".into()]);
        }));
        assert!(result.is_err());
    }
}
