//! Pluggable byte-level storage behind the checkpoint store.
//!
//! A [`StoreBackend`] is a flat namespace of `/`-separated string
//! paths mapping to byte blobs. The store layers its manifest/payload
//! discipline on top, so a backend only has to promise one thing:
//! [`publish`](StoreBackend::publish) is atomic — a concurrent reader
//! sees either the previous blob (or absence) or the complete new
//! blob, never a torn prefix. Two backends ship: [`LocalDirBackend`]
//! (one file per path, temp-file + rename publishes) and
//! [`MemBackend`] (a mutexed map, for tests).

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Byte-level storage: string paths to blobs.
///
/// Paths use `/` separators; segments are validated by implementations
/// (no `..`, no absolute paths). All methods take `&self` — backends
/// are shared across sweep workers.
pub trait StoreBackend: Send + Sync {
    /// Reads a blob. `Ok(None)` means the path does not exist;
    /// `Err` is reserved for real I/O failures.
    fn read(&self, path: &str) -> io::Result<Option<Vec<u8>>>;

    /// Atomically replaces (or creates) the blob at `path`.
    fn publish(&self, path: &str, bytes: &[u8]) -> io::Result<()>;

    /// Removes the blob at `path`; absent paths are not an error.
    fn remove(&self, path: &str) -> io::Result<()>;

    /// All stored paths starting with `prefix`, sorted, so listings
    /// are deterministic across backends and filesystems.
    fn list(&self, prefix: &str) -> io::Result<Vec<String>>;
}

fn validate(path: &str) -> io::Result<()> {
    let ok = !path.is_empty()
        && path
            .split('/')
            .all(|seg| !seg.is_empty() && seg != "." && seg != ".." && !seg.contains('\\'));
    if ok {
        Ok(())
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("invalid store path {path:?}"),
        ))
    }
}

/// Backend storing one file per path under a root directory.
///
/// Publishes write a uniquely named temp file (process id + a global
/// counter — no clocks or randomness, which the sim-path audit bans)
/// in the destination directory, then `rename` it into place, so
/// concurrent writers race to an intact winner and readers never
/// observe a half-written blob. A crash *between* the store's payload
/// and manifest publishes leaves an orphaned payload, which the store
/// reports as a plain miss.
pub struct LocalDirBackend {
    root: PathBuf,
}

static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl LocalDirBackend {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    /// The root directory backing this store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn resolve(&self, path: &str) -> io::Result<PathBuf> {
        validate(path)?;
        Ok(self.root.join(path))
    }
}

impl StoreBackend for LocalDirBackend {
    fn read(&self, path: &str) -> io::Result<Option<Vec<u8>>> {
        let full = self.resolve(path)?;
        match std::fs::read(&full) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn publish(&self, path: &str, bytes: &[u8]) -> io::Result<()> {
        let full = self.resolve(path)?;
        let dir = full.parent().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "store path has no parent")
        })?;
        std::fs::create_dir_all(dir)?;
        let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = dir.join(format!(".tmp.{}.{}", std::process::id(), seq));
        std::fs::write(&tmp, bytes)?;
        match std::fs::rename(&tmp, &full) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        let full = self.resolve(path)?;
        match std::fs::remove_file(&full) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn list(&self, prefix: &str) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        let mut stack = vec![self.root.clone()];
        while let Some(dir) = stack.pop() {
            let entries = match std::fs::read_dir(&dir) {
                Ok(e) => e,
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e),
            };
            for entry in entries {
                let entry = entry?;
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else if let Ok(rel) = path.strip_prefix(&self.root) {
                    let rel: Vec<_> = rel
                        .components()
                        .map(|c| c.as_os_str().to_string_lossy().into_owned())
                        .collect();
                    let rel = rel.join("/");
                    // In-flight temp files are not published blobs.
                    if rel.starts_with(prefix) && !rel.rsplit('/').next().is_some_and(is_temp) {
                        out.push(rel);
                    }
                }
            }
        }
        out.sort();
        Ok(out)
    }
}

fn is_temp(name: &str) -> bool {
    name.starts_with(".tmp.")
}

/// In-memory backend for tests: a mutexed ordered map.
#[derive(Default)]
pub struct MemBackend {
    map: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl MemBackend {
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Vec<u8>>> {
        // A panicked holder can only have been mid-`insert`/`remove`
        // on a std BTreeMap, which leaves the map structurally intact.
        self.map.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl StoreBackend for MemBackend {
    fn read(&self, path: &str) -> io::Result<Option<Vec<u8>>> {
        validate(path)?;
        Ok(self.lock().get(path).cloned())
    }

    fn publish(&self, path: &str, bytes: &[u8]) -> io::Result<()> {
        validate(path)?;
        self.lock().insert(path.to_owned(), bytes.to_vec());
        Ok(())
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        validate(path)?;
        self.lock().remove(path);
        Ok(())
    }

    fn list(&self, prefix: &str) -> io::Result<Vec<String>> {
        Ok(self
            .lock()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "antalloc_store_backend_{}_{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn exercise(backend: &dyn StoreBackend) {
        assert_eq!(backend.read("a/b").unwrap(), None);
        backend.publish("a/b", b"one").unwrap();
        backend.publish("a/c", b"two").unwrap();
        backend.publish("z", b"three").unwrap();
        assert_eq!(backend.read("a/b").unwrap().as_deref(), Some(&b"one"[..]));
        backend.publish("a/b", b"replaced").unwrap();
        assert_eq!(
            backend.read("a/b").unwrap().as_deref(),
            Some(&b"replaced"[..])
        );
        assert_eq!(backend.list("").unwrap(), vec!["a/b", "a/c", "z"]);
        assert_eq!(backend.list("a/").unwrap(), vec!["a/b", "a/c"]);
        backend.remove("a/b").unwrap();
        backend.remove("a/b").unwrap(); // idempotent
        assert_eq!(backend.read("a/b").unwrap(), None);
    }

    #[test]
    fn mem_backend_contract() {
        exercise(&MemBackend::new());
    }

    #[test]
    fn local_backend_contract() {
        let root = temp_root("contract");
        exercise(&LocalDirBackend::new(&root).unwrap());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn invalid_paths_are_rejected() {
        let backend = MemBackend::new();
        for bad in ["", "..", "a/../b", "a//b", "/abs", "a/."] {
            assert!(backend.publish(bad, b"x").is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn local_list_skips_temp_files() {
        let root = temp_root("temps");
        let backend = LocalDirBackend::new(&root).unwrap();
        backend.publish("entry/manifest", b"m").unwrap();
        std::fs::write(root.join("entry/.tmp.1.2"), b"torn").unwrap();
        assert_eq!(backend.list("").unwrap(), vec!["entry/manifest"]);
        let _ = std::fs::remove_dir_all(&root);
    }
}
