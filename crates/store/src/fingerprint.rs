//! Content fingerprints for store entries.
//!
//! A [`Fingerprint`] is a SHA-256 digest over a *domain-separated,
//! length-prefixed* sequence of labeled parts, so two different part
//! sequences can never serialize to the same byte stream (no
//! `["ab","c"]` / `["a","bc"]` ambiguity) and two different entry
//! kinds can never collide even over identical inputs. The digest is a
//! pure function of its inputs — no clocks, hosts, or paths leak in —
//! which is what lets a sweep on one machine reuse entries written by
//! another, and what makes cache *invalidation* automatic: change any
//! fingerprinted input and the key moves.
//!
//! SHA-256 is implemented here (FIPS 180-4) rather than pulled in as a
//! dependency because the container resolves external names to local
//! shims; the implementation is ~80 lines, `#![forbid(unsafe_code)]`
//! applies, and the NIST test vectors below pin it.

/// Round constants: fractional parts of the cube roots of the first 64
/// primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state: fractional parts of the square roots of the
/// first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 (FIPS 180-4).
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    block: [u8; 64],
    fill: usize,
    total: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    pub fn new() -> Self {
        Self {
            state: H0,
            block: [0; 64],
            fill: 0,
            total: 0,
        }
    }

    pub fn update(&mut self, mut data: &[u8]) {
        self.total = self.total.wrapping_add(data.len() as u64);
        if self.fill > 0 {
            let take = (64 - self.fill).min(data.len());
            self.block[self.fill..self.fill + take].copy_from_slice(&data[..take]);
            self.fill += take;
            data = &data[take..];
            if self.fill < 64 {
                return; // data exhausted inside a still-partial block
            }
            let block = self.block;
            self.compress(&block);
            self.fill = 0;
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        self.block[..data.len()].copy_from_slice(data);
        self.fill = data.len();
    }

    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total.wrapping_mul(8);
        self.update(&[0x80]);
        while self.fill != 56 {
            self.update(&[0]);
        }
        // Append the length directly: `update` would recount it.
        self.block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.block;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One-shot digest of a single byte string.
    pub fn digest(data: &[u8]) -> [u8; 32] {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// A 256-bit content fingerprint keying one store entry.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(pub [u8; 32]);

impl Fingerprint {
    /// Full 64-char lowercase hex rendering.
    pub fn hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for byte in self.0 {
            s.push(hex_digit(byte >> 4));
            s.push(hex_digit(byte & 0xF));
        }
        s
    }

    /// First 16 hex chars — the on-disk entry directory name. The
    /// manifest stores the *full* fingerprint, so a (deliberately
    /// short, hence constructible-in-tests) directory collision is
    /// detected on load, never silently served.
    pub fn short_hex(&self) -> String {
        let mut s = self.hex();
        s.truncate(16);
        s
    }
}

fn hex_digit(nibble: u8) -> char {
    char::from(if nibble < 10 {
        b'0' + nibble
    } else {
        b'a' + nibble - 10
    })
}

impl std::fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Fingerprint({})", self.hex())
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hex())
    }
}

/// Builds a [`Fingerprint`] from labeled, length-prefixed parts.
///
/// Every part — the domain tag, each label, each value — is hashed as
/// `u64-LE length ‖ bytes`, so the digest is injective over the part
/// *sequence*, not just the concatenated bytes.
pub struct FingerprintBuilder {
    hasher: Sha256,
}

impl FingerprintBuilder {
    /// Starts a fingerprint in the given domain (e.g.
    /// `"antalloc.outcome.v1"`). Distinct domains can never collide.
    pub fn new(domain: &str) -> Self {
        let mut b = Self {
            hasher: Sha256::new(),
        };
        b.push(domain.as_bytes());
        b
    }

    fn push(&mut self, bytes: &[u8]) {
        self.hasher.update(&(bytes.len() as u64).to_le_bytes());
        self.hasher.update(bytes);
    }

    pub fn bytes(mut self, label: &str, data: &[u8]) -> Self {
        self.push(label.as_bytes());
        self.push(data);
        self
    }

    pub fn u64(self, label: &str, value: u64) -> Self {
        self.bytes(label, &value.to_le_bytes())
    }

    pub fn finish(self) -> Fingerprint {
        Fingerprint(self.hasher.finalize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: [u8; 32]) -> String {
        Fingerprint(digest).hex()
    }

    #[test]
    fn nist_vectors() {
        assert_eq!(
            hex(Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_million_a() {
        let mut h = Sha256::new();
        for _ in 0..1_000 {
            h.update(&[b'a'; 1_000]);
        }
        assert_eq!(
            hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn chunked_updates_match_one_shot() {
        let data: Vec<u8> = (0u32..1000).map(|i| (i % 251) as u8).collect();
        let whole = Sha256::digest(&data);
        for chunk in [1usize, 3, 63, 64, 65, 127] {
            let mut h = Sha256::new();
            for piece in data.chunks(chunk) {
                h.update(piece);
            }
            assert_eq!(h.finalize(), whole, "chunk size {chunk}");
        }
    }

    #[test]
    fn builder_separates_part_boundaries() {
        let ab_c = FingerprintBuilder::new("d")
            .bytes("x", b"ab")
            .bytes("y", b"c")
            .finish();
        let a_bc = FingerprintBuilder::new("d")
            .bytes("x", b"a")
            .bytes("y", b"bc")
            .finish();
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn builder_separates_domains_and_labels() {
        let base = FingerprintBuilder::new("dom1").u64("seed", 7).finish();
        assert_ne!(
            base,
            FingerprintBuilder::new("dom2").u64("seed", 7).finish()
        );
        assert_ne!(
            base,
            FingerprintBuilder::new("dom1").u64("round", 7).finish()
        );
        assert_ne!(
            base,
            FingerprintBuilder::new("dom1").u64("seed", 8).finish()
        );
        assert_eq!(
            base,
            FingerprintBuilder::new("dom1").u64("seed", 7).finish()
        );
    }

    #[test]
    fn hex_renderings() {
        let fp = Fingerprint(Sha256::digest(b"abc"));
        assert_eq!(fp.hex().len(), 64);
        assert_eq!(fp.short_hex(), &fp.hex()[..16]);
        assert_eq!(format!("{fp}"), fp.hex());
    }
}
