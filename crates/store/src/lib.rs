#![forbid(unsafe_code)]
//! Durable, content-fingerprinted store for checkpoints and run
//! outcomes.
//!
//! A sweep run is a pure function of its scenario, seed, and round
//! budget, so its artifacts can be cached under a [`Fingerprint`] of
//! exactly those inputs and reused by any later process — a sweep
//! killed at 60% restarts and recomputes only what is missing. The
//! store's one hard rule is that it must never *change* a result:
//! every load re-verifies the entry end to end (manifest shape, store
//! version, entry kind, full fingerprint, payload length, payload
//! SHA-256) and any discrepancy — truncation, bit flips, version
//! skew, path collisions, torn concurrent writes — degrades to a
//! typed [`StoreMiss`], which callers treat as "recompute". A corrupt
//! store can cost time; it cannot cost correctness.
//!
//! Layout: each entry lives at `entries/<short-hex>/` with two blobs,
//! `manifest` (81 fixed bytes, written last) and `payload`. The
//! directory name is a deliberately *truncated* fingerprint — the
//! manifest carries the full 32 bytes, so directory collisions are
//! detected on load rather than silently served, and tests can
//! actually construct them. Blob storage is pluggable via
//! [`StoreBackend`]; [`LocalDirBackend`] publishes via temp-file +
//! rename so readers never observe a torn blob.
//!
//! Policy knobs ([`UsePolicy`], [`CapturePolicy`]) let callers pick
//! where on the trust/freshness spectrum a sweep sits; the default
//! (`IfFresh` + `IfMissing`) reuses verified entries and fills gaps.
//! See docs/CHECKPOINTS.md § Durable store.

mod backend;
mod fingerprint;

pub use backend::{LocalDirBackend, MemBackend, StoreBackend};
pub use fingerprint::{Fingerprint, FingerprintBuilder, Sha256};

use std::io;
use std::path::PathBuf;

/// Manifest magic: `"ANTS"` little-endian, sibling of the checkpoint
/// stream's `"ANTA"`.
pub const STORE_MAGIC: u32 = 0x414E_5453;

/// On-disk manifest format version. Entries written by any other
/// version are misses ([`StoreMiss::VersionSkew`]), never errors.
pub const STORE_VERSION: u32 = 1;

/// Exact manifest size: magic(4) + version(4) + kind(1) +
/// fingerprint(32) + payload len(8) + payload SHA-256(32).
pub const MANIFEST_LEN: usize = 81;

/// What an entry's payload contains. The kind byte travels in the
/// manifest so a checkpoint can never be decoded as an outcome row
/// (or vice versa) even if their fingerprints were somehow confused.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EntryKind {
    /// A serialized `antalloc_sim::Checkpoint` stream.
    Checkpoint,
    /// An encoded sweep outcome row.
    Outcome,
}

impl EntryKind {
    fn tag(self) -> u8 {
        match self {
            EntryKind::Checkpoint => 0,
            EntryKind::Outcome => 1,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(EntryKind::Checkpoint),
            1 => Some(EntryKind::Outcome),
            _ => None,
        }
    }
}

/// When a sweep consults the store before running.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum UsePolicy {
    /// Never read the store; every run recomputes.
    Never,
    /// Use entries that verify end to end; recompute on any miss.
    #[default]
    IfFresh,
    /// Every run must be served from the store; a miss is an error.
    /// For replay-only pipelines where recomputation would hide an
    /// incomplete or corrupted archive.
    Require,
}

/// When a sweep writes artifacts back to the store.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CapturePolicy {
    /// Never write.
    Never,
    /// Write entries that are missing or fail verification.
    #[default]
    IfMissing,
    /// Write every computed result, overwriting verified entries too.
    Always,
}

/// Why a store entry could not be served. Every variant is a safe
/// "recompute" signal — the load path cannot panic on hostile bytes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StoreMiss {
    /// `UsePolicy::Never` — the store was not consulted.
    Disabled,
    /// No manifest published at this fingerprint's path.
    NotFound,
    /// Manifest exists but is not exactly [`MANIFEST_LEN`] bytes
    /// (torn write or truncation).
    TruncatedManifest { len: usize },
    /// Manifest does not start with [`STORE_MAGIC`].
    BadMagic { found: u32 },
    /// Manifest written by a different store format version.
    VersionSkew { found: u32 },
    /// Entry holds a different kind of payload than requested.
    KindMismatch { found: u8 },
    /// Full fingerprint in the manifest differs from the requested
    /// one: a (truncated-)path collision or a relocated entry.
    FingerprintMismatch,
    /// Manifest verified but its payload blob is absent (crash between
    /// the payload and manifest publishes of a concurrent writer).
    PayloadMissing,
    /// Payload blob length disagrees with the manifest.
    PayloadTruncated { expected: u64, found: u64 },
    /// Payload SHA-256 disagrees with the manifest (bit flips).
    ChecksumMismatch,
    /// The backend itself failed (permissions, disk errors).
    Backend { detail: String },
}

impl std::fmt::Display for StoreMiss {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreMiss::Disabled => write!(f, "store use disabled by policy"),
            StoreMiss::NotFound => write!(f, "no entry at this fingerprint"),
            StoreMiss::TruncatedManifest { len } => {
                write!(f, "manifest is {len} bytes, expected {MANIFEST_LEN}")
            }
            StoreMiss::BadMagic { found } => {
                write!(
                    f,
                    "manifest magic {found:#010x}, expected {STORE_MAGIC:#010x}"
                )
            }
            StoreMiss::VersionSkew { found } => {
                write!(
                    f,
                    "store format v{found}, this build writes v{STORE_VERSION}"
                )
            }
            StoreMiss::KindMismatch { found } => {
                write!(
                    f,
                    "entry holds payload kind tag {found}, not the requested kind"
                )
            }
            StoreMiss::FingerprintMismatch => {
                write!(
                    f,
                    "manifest fingerprint differs from the requested one (path collision)"
                )
            }
            StoreMiss::PayloadMissing => write!(f, "manifest present but payload blob missing"),
            StoreMiss::PayloadTruncated { expected, found } => {
                write!(f, "payload is {found} bytes, manifest says {expected}")
            }
            StoreMiss::ChecksumMismatch => write!(f, "payload SHA-256 mismatch"),
            StoreMiss::Backend { detail } => write!(f, "store backend error: {detail}"),
        }
    }
}

impl std::error::Error for StoreMiss {}

impl StoreMiss {
    fn backend(err: io::Error) -> Self {
        StoreMiss::Backend {
            detail: err.to_string(),
        }
    }
}

/// Indexed, verifying store of fingerprint-keyed entries.
pub struct CheckpointStore {
    backend: Box<dyn StoreBackend>,
}

impl CheckpointStore {
    /// Opens a store over a local directory.
    pub fn local(root: impl Into<PathBuf>) -> io::Result<Self> {
        Ok(Self::with_backend(Box::new(LocalDirBackend::new(root)?)))
    }

    /// A fresh in-memory store (tests, dry runs).
    pub fn in_memory() -> Self {
        Self::with_backend(Box::new(MemBackend::new()))
    }

    /// Wraps any backend implementation.
    pub fn with_backend(backend: Box<dyn StoreBackend>) -> Self {
        Self { backend }
    }

    /// The backing blob storage — exposed so fault-injection tests can
    /// corrupt entries through the same interface the store uses.
    pub fn backend(&self) -> &dyn StoreBackend {
        &*self.backend
    }

    /// Backend path of the manifest blob for `fp`.
    pub fn manifest_path(fp: &Fingerprint) -> String {
        format!("entries/{}/manifest", fp.short_hex())
    }

    /// Backend path of the payload blob for `fp`.
    pub fn payload_path(fp: &Fingerprint) -> String {
        format!("entries/{}/payload", fp.short_hex())
    }

    /// Loads and fully verifies the entry for `fp`. Returns the
    /// payload bytes, or the typed reason the entry is unusable.
    pub fn load(&self, fp: &Fingerprint, kind: EntryKind) -> Result<Vec<u8>, StoreMiss> {
        let manifest = self
            .backend
            .read(&Self::manifest_path(fp))
            .map_err(StoreMiss::backend)?
            .ok_or(StoreMiss::NotFound)?;
        if manifest.len() != MANIFEST_LEN {
            return Err(StoreMiss::TruncatedManifest {
                len: manifest.len(),
            });
        }
        let magic = le_u32(&manifest[0..4]);
        if magic != STORE_MAGIC {
            return Err(StoreMiss::BadMagic { found: magic });
        }
        let version = le_u32(&manifest[4..8]);
        if version != STORE_VERSION {
            return Err(StoreMiss::VersionSkew { found: version });
        }
        if EntryKind::from_tag(manifest[8]) != Some(kind) {
            return Err(StoreMiss::KindMismatch { found: manifest[8] });
        }
        if manifest[9..41] != fp.0 {
            return Err(StoreMiss::FingerprintMismatch);
        }
        let payload_len = u64::from_le_bytes(manifest[41..49].try_into().unwrap_or([0; 8]));
        let payload = self
            .backend
            .read(&Self::payload_path(fp))
            .map_err(StoreMiss::backend)?
            .ok_or(StoreMiss::PayloadMissing)?;
        if payload.len() as u64 != payload_len {
            return Err(StoreMiss::PayloadTruncated {
                expected: payload_len,
                found: payload.len() as u64,
            });
        }
        if Sha256::digest(&payload) != manifest[49..81] {
            return Err(StoreMiss::ChecksumMismatch);
        }
        Ok(payload)
    }

    /// Full verification without returning the payload — what
    /// `CapturePolicy::IfMissing` uses to decide whether to write.
    pub fn probe(&self, fp: &Fingerprint, kind: EntryKind) -> Result<(), StoreMiss> {
        self.load(fp, kind).map(drop)
    }

    /// Publishes an entry: payload first, manifest last, each
    /// atomically. A reader can therefore see (a) nothing, (b) an
    /// orphaned payload — a plain [`StoreMiss::NotFound`] — or (c) the
    /// complete verified entry; never a manifest describing bytes that
    /// are not yet there. Concurrent writers of the same fingerprint
    /// write identical bytes (the payload is a pure function of the
    /// fingerprinted inputs), so any interleaving converges.
    pub fn save(&self, fp: &Fingerprint, kind: EntryKind, payload: &[u8]) -> io::Result<()> {
        self.backend.publish(&Self::payload_path(fp), payload)?;
        let mut manifest = Vec::with_capacity(MANIFEST_LEN);
        manifest.extend_from_slice(&STORE_MAGIC.to_le_bytes());
        manifest.extend_from_slice(&STORE_VERSION.to_le_bytes());
        manifest.push(kind.tag());
        manifest.extend_from_slice(&fp.0);
        manifest.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        manifest.extend_from_slice(&Sha256::digest(payload));
        debug_assert_eq!(manifest.len(), MANIFEST_LEN);
        self.backend.publish(&Self::manifest_path(fp), &manifest)
    }

    /// Removes both blobs of the entry for `fp`, if present.
    pub fn remove(&self, fp: &Fingerprint) -> io::Result<()> {
        // Manifest first: a half-removed entry must be a miss, not a
        // manifest pointing at a vanished payload.
        self.backend.remove(&Self::manifest_path(fp))?;
        self.backend.remove(&Self::payload_path(fp))
    }

    /// Fingerprint short-hex prefixes of every entry with a published
    /// manifest (verified or not).
    pub fn entries(&self) -> io::Result<Vec<String>> {
        Ok(self
            .backend
            .list("entries/")?
            .into_iter()
            .filter_map(|p| {
                p.strip_prefix("entries/")
                    .and_then(|rest| rest.strip_suffix("/manifest"))
                    .map(str::to_owned)
            })
            .collect())
    }
}

fn le_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes.try_into().unwrap_or([0; 4]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(tag: &str) -> Fingerprint {
        FingerprintBuilder::new("test")
            .bytes("tag", tag.as_bytes())
            .finish()
    }

    fn store() -> CheckpointStore {
        CheckpointStore::in_memory()
    }

    #[test]
    fn save_then_load_roundtrips() {
        let s = store();
        let key = fp("a");
        s.save(&key, EntryKind::Checkpoint, b"payload bytes")
            .unwrap();
        assert_eq!(
            s.load(&key, EntryKind::Checkpoint).unwrap(),
            b"payload bytes"
        );
        assert!(s.probe(&key, EntryKind::Checkpoint).is_ok());
        assert_eq!(s.entries().unwrap(), vec![key.short_hex()]);
    }

    #[test]
    fn absent_entry_is_not_found() {
        assert_eq!(
            store().load(&fp("nope"), EntryKind::Outcome),
            Err(StoreMiss::NotFound)
        );
    }

    #[test]
    fn kind_confusion_is_a_miss() {
        let s = store();
        let key = fp("a");
        s.save(&key, EntryKind::Checkpoint, b"x").unwrap();
        assert_eq!(
            s.load(&key, EntryKind::Outcome),
            Err(StoreMiss::KindMismatch { found: 0 })
        );
    }

    #[test]
    fn truncated_manifest_is_a_miss() {
        let s = store();
        let key = fp("a");
        s.save(&key, EntryKind::Outcome, b"x").unwrap();
        let path = CheckpointStore::manifest_path(&key);
        let bytes = s.backend().read(&path).unwrap().unwrap();
        for cut in [0, 1, 8, 40, 80] {
            s.backend().publish(&path, &bytes[..cut]).unwrap();
            assert_eq!(
                s.load(&key, EntryKind::Outcome),
                Err(StoreMiss::TruncatedManifest { len: cut })
            );
        }
    }

    #[test]
    fn every_manifest_byte_flip_is_a_miss_never_a_panic() {
        let s = store();
        let key = fp("a");
        s.save(&key, EntryKind::Outcome, b"some payload").unwrap();
        let path = CheckpointStore::manifest_path(&key);
        let clean = s.backend().read(&path).unwrap().unwrap();
        for i in 0..clean.len() {
            let mut bent = clean.clone();
            bent[i] ^= 0x40;
            s.backend().publish(&path, &bent).unwrap();
            assert!(
                s.load(&key, EntryKind::Outcome).is_err(),
                "flip at manifest byte {i} was served"
            );
        }
        s.backend().publish(&path, &clean).unwrap();
        assert!(s.load(&key, EntryKind::Outcome).is_ok());
    }

    #[test]
    fn payload_corruption_is_typed() {
        let s = store();
        let key = fp("a");
        s.save(&key, EntryKind::Outcome, b"0123456789").unwrap();
        let path = CheckpointStore::payload_path(&key);

        s.backend().publish(&path, b"01234").unwrap();
        assert_eq!(
            s.load(&key, EntryKind::Outcome),
            Err(StoreMiss::PayloadTruncated {
                expected: 10,
                found: 5
            })
        );

        s.backend().publish(&path, b"0123456x89").unwrap();
        assert_eq!(
            s.load(&key, EntryKind::Outcome),
            Err(StoreMiss::ChecksumMismatch)
        );

        s.backend().remove(&path).unwrap();
        assert_eq!(
            s.load(&key, EntryKind::Outcome),
            Err(StoreMiss::PayloadMissing)
        );
    }

    #[test]
    fn version_skew_is_a_miss() {
        let s = store();
        let key = fp("a");
        s.save(&key, EntryKind::Outcome, b"x").unwrap();
        let path = CheckpointStore::manifest_path(&key);
        let mut bytes = s.backend().read(&path).unwrap().unwrap();
        bytes[4..8].copy_from_slice(&(STORE_VERSION + 1).to_le_bytes());
        s.backend().publish(&path, &bytes).unwrap();
        assert_eq!(
            s.load(&key, EntryKind::Outcome),
            Err(StoreMiss::VersionSkew {
                found: STORE_VERSION + 1
            })
        );
    }

    #[test]
    fn path_collision_is_detected_by_full_fingerprint() {
        let s = store();
        let a = fp("a");
        let b = fp("b");
        s.save(&a, EntryKind::Outcome, b"a's bytes").unwrap();
        // Simulate a short-hex directory collision: b's lookup lands
        // on a's entry.
        let stolen = s
            .backend()
            .read(&CheckpointStore::manifest_path(&a))
            .unwrap()
            .unwrap();
        s.backend()
            .publish(&CheckpointStore::manifest_path(&b), &stolen)
            .unwrap();
        assert_eq!(
            s.load(&b, EntryKind::Outcome),
            Err(StoreMiss::FingerprintMismatch)
        );
    }

    #[test]
    fn remove_makes_entry_not_found() {
        let s = store();
        let key = fp("a");
        s.save(&key, EntryKind::Checkpoint, b"x").unwrap();
        s.remove(&key).unwrap();
        assert_eq!(
            s.load(&key, EntryKind::Checkpoint),
            Err(StoreMiss::NotFound)
        );
        assert!(s.entries().unwrap().is_empty());
    }

    #[test]
    fn overwrite_replaces_entry() {
        let s = store();
        let key = fp("a");
        s.save(&key, EntryKind::Outcome, b"first").unwrap();
        s.save(&key, EntryKind::Outcome, b"second").unwrap();
        assert_eq!(s.load(&key, EntryKind::Outcome).unwrap(), b"second");
    }

    #[test]
    fn local_backend_end_to_end() {
        let root = std::env::temp_dir().join(format!("antalloc_store_lib_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let s = CheckpointStore::local(&root).unwrap();
        let key = fp("disk");
        s.save(&key, EntryKind::Checkpoint, b"on disk").unwrap();
        // A second store over the same root sees the entry.
        let s2 = CheckpointStore::local(&root).unwrap();
        assert_eq!(s2.load(&key, EntryKind::Checkpoint).unwrap(), b"on disk");
        let _ = std::fs::remove_dir_all(&root);
    }
}
