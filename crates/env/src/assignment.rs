//! An ant's task assignment: `a_t ∈ {idle, 1, …, k}`.

/// Where an ant is working (or not) at the end of a round.
///
/// The paper's state space per ant is `{idle, 1, …, k}`; tasks here are
/// 0-indexed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Assignment {
    /// Not working on any task.
    Idle,
    /// Working on the task with this index.
    Task(u32),
}

impl Assignment {
    /// The task index if working, else `None`.
    #[inline]
    pub fn task(self) -> Option<usize> {
        match self {
            Assignment::Idle => None,
            Assignment::Task(j) => Some(j as usize),
        }
    }

    /// True iff idle.
    #[inline]
    pub fn is_idle(self) -> bool {
        matches!(self, Assignment::Idle)
    }

    /// Builds from an optional task index.
    #[inline]
    pub fn from_task(task: Option<usize>) -> Self {
        match task {
            None => Assignment::Idle,
            Some(j) => Assignment::Task(j as u32),
        }
    }

    /// The packed `u32` wire/column encoding: the task index, or
    /// [`Assignment::RAW_IDLE`] for idle. This is the encoding the
    /// checkpoint codec, the SoA bank columns and the engine's
    /// double-buffered next-state column all share.
    #[inline]
    pub fn to_raw(self) -> u32 {
        match self {
            Assignment::Idle => Self::RAW_IDLE,
            Assignment::Task(j) => j,
        }
    }

    /// Decodes the packed `u32` encoding; inverse of
    /// [`Assignment::to_raw`].
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        if raw == Self::RAW_IDLE {
            Assignment::Idle
        } else {
            Assignment::Task(raw)
        }
    }

    /// The raw-encoding sentinel for idle. Valid task indices are
    /// strictly below it (colony sizes fit `u32`, so no task column can
    /// collide).
    pub const RAW_IDLE: u32 = u32::MAX;
}

impl core::fmt::Display for Assignment {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Assignment::Idle => f.write_str("idle"),
            Assignment::Task(j) => write!(f, "task {j}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_roundtrip() {
        assert_eq!(Assignment::from_task(Some(3)), Assignment::Task(3));
        assert_eq!(Assignment::from_task(None), Assignment::Idle);
        assert_eq!(Assignment::Task(3).task(), Some(3));
        assert_eq!(Assignment::Idle.task(), None);
        assert!(Assignment::Idle.is_idle());
        assert!(!Assignment::Task(0).is_idle());
    }

    #[test]
    fn raw_roundtrip() {
        assert_eq!(Assignment::Idle.to_raw(), u32::MAX);
        assert_eq!(Assignment::Task(7).to_raw(), 7);
        assert_eq!(Assignment::from_raw(u32::MAX), Assignment::Idle);
        assert_eq!(Assignment::from_raw(0), Assignment::Task(0));
        for a in [Assignment::Idle, Assignment::Task(0), Assignment::Task(41)] {
            assert_eq!(Assignment::from_raw(a.to_raw()), a);
        }
    }

    #[test]
    fn display() {
        assert_eq!(Assignment::Idle.to_string(), "idle");
        assert_eq!(Assignment::Task(2).to_string(), "task 2");
    }
}
