//! An ant's task assignment: `a_t ∈ {idle, 1, …, k}`.

/// Where an ant is working (or not) at the end of a round.
///
/// The paper's state space per ant is `{idle, 1, …, k}`; tasks here are
/// 0-indexed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Assignment {
    /// Not working on any task.
    Idle,
    /// Working on the task with this index.
    Task(u32),
}

impl Assignment {
    /// The task index if working, else `None`.
    #[inline]
    pub fn task(self) -> Option<usize> {
        match self {
            Assignment::Idle => None,
            Assignment::Task(j) => Some(j as usize),
        }
    }

    /// True iff idle.
    #[inline]
    pub fn is_idle(self) -> bool {
        matches!(self, Assignment::Idle)
    }

    /// Builds from an optional task index.
    #[inline]
    pub fn from_task(task: Option<usize>) -> Self {
        match task {
            None => Assignment::Idle,
            Some(j) => Assignment::Task(j as u32),
        }
    }
}

impl core::fmt::Display for Assignment {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Assignment::Idle => f.write_str("idle"),
            Assignment::Task(j) => write!(f, "task {j}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_roundtrip() {
        assert_eq!(Assignment::from_task(Some(3)), Assignment::Task(3));
        assert_eq!(Assignment::from_task(None), Assignment::Idle);
        assert_eq!(Assignment::Task(3).task(), Some(3));
        assert_eq!(Assignment::Idle.task(), None);
        assert!(Assignment::Idle.is_idle());
        assert!(!Assignment::Task(0).is_idle());
    }

    #[test]
    fn display() {
        assert_eq!(Assignment::Idle.to_string(), "idle");
        assert_eq!(Assignment::Task(2).to_string(), "task 2");
    }
}
