//! Demand schedules: the paper's "our results trivially extend to
//! changing demands" remark, as a compact description vocabulary.
//!
//! Since the timeline refactor this type is no longer engine-facing:
//! it is a thin constructor into [`crate::Timeline`] (via `From`), which
//! both engines consume through a cursor. Scenario builders accept a
//! `DemandSchedule` for convenience and compile it down immediately;
//! validation happens on the resulting timeline.

/// A time-varying demand specification.
#[derive(Clone, Debug, PartialEq)]
pub enum DemandSchedule {
    /// Demands never change.
    Static,
    /// Demands switch to `demands` at round `at` (one-shot step).
    Step {
        /// Round at which the new demands take effect.
        at: u64,
        /// The demands from that round on.
        demands: Vec<u64>,
    },
    /// A sequence of steps, each `(round, demands)`, applied in order.
    /// Rounds must be non-decreasing.
    Steps(Vec<(u64, Vec<u64>)>),
    /// Demands alternate between `a` and `b` every `half_period` rounds,
    /// starting with `a` — a standing oscillation in the environment.
    /// Compiles to a two-event [`crate::Cycle`].
    Alternating {
        /// First demand vector (the colony starts on these).
        a: Vec<u64>,
        /// Second demand vector.
        b: Vec<u64>,
        /// Half the oscillation period, in rounds.
        half_period: u64,
    },
}
