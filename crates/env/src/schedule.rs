//! Demand schedules: the paper's "our results trivially extend to
//! changing demands" remark, made testable.
//!
//! A schedule maps round numbers to demand vectors. The engine polls
//! [`DemandSchedule::update`] once per round; self-stabilization is then
//! measured as the regret transient after each change.

/// A time-varying demand specification.
#[derive(Clone, Debug, PartialEq)]
pub enum DemandSchedule {
    /// Demands never change.
    Static,
    /// Demands switch to `demands` at round `at` (one-shot step).
    Step {
        /// Round at which the new demands take effect.
        at: u64,
        /// The demands from that round on.
        demands: Vec<u64>,
    },
    /// A sequence of steps, each `(round, demands)`, applied in order.
    /// Rounds must be strictly increasing.
    Steps(Vec<(u64, Vec<u64>)>),
    /// Demands alternate between `a` and `b` every `half_period` rounds,
    /// starting with `a` — a standing oscillation in the environment.
    Alternating {
        /// First demand vector (rounds `[0, half_period)`, etc.).
        a: Vec<u64>,
        /// Second demand vector.
        b: Vec<u64>,
        /// Half the oscillation period, in rounds.
        half_period: u64,
    },
}

impl DemandSchedule {
    /// If the demands change at `round`, returns the new vector.
    ///
    /// The engine calls this exactly once per round with increasing round
    /// numbers; the method is pure, so replays agree.
    pub fn update(&self, round: u64) -> Option<&[u64]> {
        match self {
            DemandSchedule::Static => None,
            DemandSchedule::Step { at, demands } => (round == *at).then_some(demands.as_slice()),
            DemandSchedule::Steps(steps) => steps
                .iter()
                .find(|(at, _)| *at == round)
                .map(|(_, d)| d.as_slice()),
            DemandSchedule::Alternating { a, b, half_period } => {
                if round == 0 {
                    return Some(a.as_slice());
                }
                if !round.is_multiple_of(*half_period) {
                    return None;
                }
                let phase = (round / half_period) % 2;
                Some(if phase == 0 {
                    a.as_slice()
                } else {
                    b.as_slice()
                })
            }
        }
    }

    /// Validates internal consistency (sorted steps, equal task counts).
    /// Returns a description of the first problem found.
    pub fn validate(&self, num_tasks: usize) -> Result<(), String> {
        let check_len = |d: &[u64]| -> Result<(), String> {
            if d.len() != num_tasks {
                return Err(format!(
                    "schedule demand vector has {} tasks, colony has {num_tasks}",
                    d.len()
                ));
            }
            if d.contains(&0) {
                return Err("schedule contains a zero demand".to_string());
            }
            Ok(())
        };
        match self {
            DemandSchedule::Static => Ok(()),
            DemandSchedule::Step { demands, .. } => check_len(demands),
            DemandSchedule::Steps(steps) => {
                let mut prev: Option<u64> = None;
                for (at, d) in steps {
                    check_len(d)?;
                    if let Some(p) = prev {
                        if *at <= p {
                            return Err(format!(
                                "step rounds must strictly increase ({p} then {at})"
                            ));
                        }
                    }
                    prev = Some(*at);
                }
                Ok(())
            }
            DemandSchedule::Alternating { a, b, half_period } => {
                check_len(a)?;
                check_len(b)?;
                if *half_period == 0 {
                    return Err("half_period must be positive".to_string());
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_never_updates() {
        let s = DemandSchedule::Static;
        for r in 0..100 {
            assert_eq!(s.update(r), None);
        }
        assert_eq!(s.validate(3), Ok(()));
    }

    #[test]
    fn step_fires_once() {
        let s = DemandSchedule::Step {
            at: 10,
            demands: vec![5, 6],
        };
        assert_eq!(s.update(9), None);
        assert_eq!(s.update(10), Some(&[5u64, 6][..]));
        assert_eq!(s.update(11), None);
        assert_eq!(s.validate(2), Ok(()));
        assert!(s.validate(3).is_err());
    }

    #[test]
    fn steps_fire_in_order() {
        let s = DemandSchedule::Steps(vec![(5, vec![1, 1]), (9, vec![2, 2])]);
        assert_eq!(s.update(5), Some(&[1u64, 1][..]));
        assert_eq!(s.update(7), None);
        assert_eq!(s.update(9), Some(&[2u64, 2][..]));
        assert_eq!(s.validate(2), Ok(()));
    }

    #[test]
    fn steps_validation_catches_disorder_and_zero() {
        let s = DemandSchedule::Steps(vec![(9, vec![1]), (5, vec![2])]);
        assert!(s.validate(1).is_err());
        let s = DemandSchedule::Steps(vec![(3, vec![0])]);
        assert!(s.validate(1).is_err());
    }

    #[test]
    fn alternating_cycles() {
        let s = DemandSchedule::Alternating {
            a: vec![10],
            b: vec![20],
            half_period: 4,
        };
        assert_eq!(s.update(0), Some(&[10u64][..]));
        assert_eq!(s.update(1), None);
        assert_eq!(s.update(4), Some(&[20u64][..]));
        assert_eq!(s.update(8), Some(&[10u64][..]));
        assert_eq!(s.update(12), Some(&[20u64][..]));
        assert_eq!(s.validate(1), Ok(()));
        let bad = DemandSchedule::Alternating {
            a: vec![1],
            b: vec![1],
            half_period: 0,
        };
        assert!(bad.validate(1).is_err());
    }
}
