//! Initial configurations and mid-run perturbations.
//!
//! Theorem 3.1 holds "for an arbitrary initial allocation at time 0";
//! the self-stabilization experiments exercise exactly that, plus the
//! population changes (§6) the algorithms are claimed to survive.

use antalloc_rng::{uniform_index, AntRng};

use crate::assignment::Assignment;
use crate::colony::ColonyState;

/// How the colony is configured at time 0.
#[derive(Clone, Debug, PartialEq)]
pub enum InitialConfig {
    /// Every ant idle (the natural cold start).
    AllIdle,
    /// Every ant piled on one task — the worst overload start.
    AllOnTask(usize),
    /// Each ant independently uniform over `{idle, 1..k}`.
    UniformRandom,
    /// Exactly demand-satisfying: tasks filled to demand in ant order,
    /// the rest idle. Useful as a "converged" control.
    Saturated,
    /// Demand plus a flat surplus: task `j` is filled to
    /// `d(j) + extra`. Places the colony inside (or just above) an
    /// algorithm's stable parking band — the starting point the
    /// steady-state experiments need, since a deficit of exactly zero
    /// sits in the grey zone where feedback is a coin flip.
    SaturatedPlus {
        /// Extra workers per task beyond the demand.
        extra: u64,
    },
    /// Anti-aligned: task `j` is filled to the demand of task `k−1−j`
    /// (as far as the population allows) — a structured adversarial
    /// start used by the self-stabilization benches.
    Inverted,
}

impl InitialConfig {
    /// Applies this configuration to a fresh colony.
    pub fn apply(&self, colony: &mut ColonyState, rng: &mut AntRng) {
        let n = colony.num_ants();
        let k = colony.num_tasks();
        // Reset to idle first so configs compose from a known state.
        for i in 0..n {
            colony.apply(i, Assignment::Idle);
        }
        match self {
            InitialConfig::AllIdle => {}
            InitialConfig::AllOnTask(j) => {
                assert!(*j < k, "task index out of range");
                for i in 0..n {
                    colony.apply(i, Assignment::Task(*j as u32));
                }
            }
            InitialConfig::UniformRandom => {
                for i in 0..n {
                    let pick = uniform_index(rng, k + 1);
                    let next = if pick == k {
                        Assignment::Idle
                    } else {
                        Assignment::Task(pick as u32)
                    };
                    colony.apply(i, next);
                }
            }
            InitialConfig::Saturated | InitialConfig::SaturatedPlus { .. } => {
                let extra = match self {
                    InitialConfig::SaturatedPlus { extra } => *extra,
                    _ => 0,
                };
                let demands: Vec<u64> = colony.demands().as_slice().to_vec();
                let mut ant = 0usize;
                for (j, &d) in demands.iter().enumerate() {
                    for _ in 0..d + extra {
                        if ant >= n {
                            return;
                        }
                        colony.apply(ant, Assignment::Task(j as u32));
                        ant += 1;
                    }
                }
            }
            InitialConfig::Inverted => {
                let demands: Vec<u64> = colony.demands().as_slice().to_vec();
                let mut ant = 0usize;
                for j in 0..k {
                    let want = demands[k - 1 - j];
                    for _ in 0..want {
                        if ant >= n {
                            return;
                        }
                        colony.apply(ant, Assignment::Task(j as u32));
                        ant += 1;
                    }
                }
            }
        }
    }
}

/// A mid-run shock to the colony.
#[derive(Clone, Debug, PartialEq)]
pub enum Perturbation {
    /// Kill `count` ants chosen uniformly at random.
    KillRandom {
        /// Number of ants to remove.
        count: usize,
    },
    /// Spawn `count` new idle ants.
    Spawn {
        /// Number of ants to add.
        count: usize,
    },
    /// Re-draw every ant's assignment uniformly over `{idle, 1..k}`
    /// (memory of controllers is *not* touched — that is the point:
    /// the environment moved under the algorithm's feet).
    Scramble,
    /// Force every ant onto one task.
    StampedeTo(usize),
}

impl Perturbation {
    /// Applies the perturbation to the colony.
    ///
    /// Returns the list of swap-moves performed by kills, as
    /// `(removed_slot, moved_from)` pairs: the engine must mirror these
    /// swaps in its per-ant controller and RNG arrays.
    pub fn apply(&self, colony: &mut ColonyState, rng: &mut AntRng) -> Vec<(usize, usize)> {
        match self {
            Perturbation::KillRandom { count } => {
                let mut swaps = Vec::with_capacity(*count);
                for _ in 0..*count {
                    let n = colony.num_ants();
                    if n <= 1 {
                        break;
                    }
                    let victim = uniform_index(rng, n);
                    if let Some(moved) = colony.kill_ant(victim) {
                        swaps.push((victim, moved));
                    }
                }
                swaps
            }
            Perturbation::Spawn { count } => {
                for _ in 0..*count {
                    colony.spawn_ant();
                }
                Vec::new()
            }
            Perturbation::Scramble => {
                let n = colony.num_ants();
                let k = colony.num_tasks();
                for i in 0..n {
                    let pick = uniform_index(rng, k + 1);
                    let next = if pick == k {
                        Assignment::Idle
                    } else {
                        Assignment::Task(pick as u32)
                    };
                    colony.apply(i, next);
                }
                Vec::new()
            }
            Perturbation::StampedeTo(j) => {
                assert!(*j < colony.num_tasks());
                for i in 0..colony.num_ants() {
                    colony.apply(i, Assignment::Task(*j as u32));
                }
                Vec::new()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::DemandVector;
    use antalloc_rng::Xoshiro256pp;

    fn colony() -> ColonyState {
        ColonyState::new(100, DemandVector::new(vec![20, 30]))
    }

    #[test]
    fn initial_configs_are_consistent() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for config in [
            InitialConfig::AllIdle,
            InitialConfig::AllOnTask(1),
            InitialConfig::UniformRandom,
            InitialConfig::Saturated,
            InitialConfig::SaturatedPlus { extra: 3 },
            InitialConfig::Inverted,
        ] {
            let mut c = colony();
            config.apply(&mut c, &mut rng);
            assert!(c.recount_consistent(), "{config:?}");
            assert_eq!(c.num_ants(), 100);
        }
    }

    #[test]
    fn saturated_hits_demands_exactly() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut c = colony();
        InitialConfig::Saturated.apply(&mut c, &mut rng);
        assert_eq!(c.load(0), 20);
        assert_eq!(c.load(1), 30);
        assert_eq!(c.instant_regret(), 0);
    }

    #[test]
    fn saturated_plus_overfills_uniformly() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut c = colony();
        InitialConfig::SaturatedPlus { extra: 5 }.apply(&mut c, &mut rng);
        assert_eq!(c.load(0), 25);
        assert_eq!(c.load(1), 35);
        assert_eq!(c.instant_regret(), 10);
        assert!(c.recount_consistent());
        // Population-limited: a huge surplus stops at n.
        let mut c = colony();
        InitialConfig::SaturatedPlus { extra: 1000 }.apply(&mut c, &mut rng);
        assert_eq!(c.idle_count(), 0);
        assert!(c.recount_consistent());
    }

    #[test]
    fn inverted_crosses_demands() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut c = colony();
        InitialConfig::Inverted.apply(&mut c, &mut rng);
        // Task 0 gets demand of task 1 (30) and vice versa.
        assert_eq!(c.load(0), 30);
        assert_eq!(c.load(1), 20);
        assert_eq!(c.instant_regret(), 20);
    }

    #[test]
    fn all_on_task_overloads() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut c = colony();
        InitialConfig::AllOnTask(0).apply(&mut c, &mut rng);
        assert_eq!(c.load(0), 100);
        assert_eq!(c.deficit(0), -80);
    }

    #[test]
    fn kills_shrink_population_and_report_swaps() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut c = colony();
        InitialConfig::Saturated.apply(&mut c, &mut rng);
        let swaps = Perturbation::KillRandom { count: 40 }.apply(&mut c, &mut rng);
        assert_eq!(c.num_ants(), 60);
        assert!(c.recount_consistent());
        // Every reported swap source index was a valid pre-kill last slot.
        for (slot, from) in swaps {
            assert!(slot < from);
        }
    }

    #[test]
    fn spawn_grows_idle() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut c = colony();
        Perturbation::Spawn { count: 5 }.apply(&mut c, &mut rng);
        assert_eq!(c.num_ants(), 105);
        assert_eq!(c.idle_count(), 105);
    }

    #[test]
    fn scramble_and_stampede() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let mut c = colony();
        Perturbation::Scramble.apply(&mut c, &mut rng);
        assert!(c.recount_consistent());
        // With 100 ants over 3 states, not everything stays idle.
        assert!(c.idle_count() < 100);
        Perturbation::StampedeTo(1).apply(&mut c, &mut rng);
        assert_eq!(c.load(1), 100);
        assert_eq!(c.idle_count(), 0);
    }
}
