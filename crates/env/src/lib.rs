//! The colony environment of §2.1: `n` ants, `k` tasks with demands
//! `d(j)`, loads `W(j)_t`, and deficits `Δ(j)_t = d(j) − W(j)_t`.
//!
//! This crate owns the *ground truth* the ants never see directly:
//! assignments, loads, demand vectors and their validation against
//! Assumptions 2.1, the perturbation vocabulary used by
//! self-stabilization experiments (arbitrary initial configurations,
//! ant death/birth), and the [`Timeline`] subsystem that scripts every
//! kind of mid-run dynamism — demand steps, population shocks and
//! noise-regime switches — as one ordered, cursor-consumed event
//! stream, extended with state-conditional [`Trigger`]s and seeded
//! random shock-schedule [`TimelineGen`]s.
//!
//! # Examples
//!
//! A timeline mixing every scheduling flavor: a scripted demand step, a
//! periodic scramble, a regret-reactive kill, and a randomized
//! Poisson kill schedule (expanded by [`Timeline::compile`] as a pure
//! function of the master seed):
//!
//! ```
//! use antalloc_env::{
//!     Condition, Event, GenShock, Timeline, TimelineGen, Trigger,
//! };
//!
//! let timeline = Timeline::new()
//!     .at(500, Event::SetDemands(vec![300, 100]))
//!     .every(2_000, 2_000, vec![Event::Scramble])
//!     .trigger(Trigger::once(
//!         Condition::RegretBelow { threshold: 40, for_rounds: 16 },
//!         Event::Kill { count: 200 },
//!     ))
//!     .generate(TimelineGen {
//!         start: 1,
//!         until: 10_000,
//!         mean_gap: 1_500.0,
//!         shock: GenShock::Kill { min_frac: 0.1, max_frac: 0.3 },
//!     });
//! assert!(timeline.validate(2, 1_000).is_ok());
//! assert!(timeline.validate_triggers(2).is_ok());
//! // Compilation expands the generator; scripted entries survive as-is.
//! let compiled = timeline.compile(0xC0FFEE, 1_000, &[200, 200]);
//! assert!(compiled.generators.is_empty());
//! assert!(compiled.events.len() > 1);
//! assert_eq!(compiled.triggers.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apply;
mod arena;
mod assignment;
mod colony;
mod demand;
mod gen;
mod perturb;
mod schedule;
mod timeline;
mod trigger;

pub use apply::{ColumnWriter, RoundDelta, TaskColumn};
pub use arena::ArenaConfig;
pub use assignment::Assignment;
pub use colony::ColonyState;
pub use demand::{AssumptionReport, DemandVector};
pub use gen::{GenShock, TimelineGen};
pub use perturb::{InitialConfig, Perturbation};
pub use schedule::DemandSchedule;
pub use timeline::{Cycle, Event, TimedEvent, Timeline};
pub use trigger::{ColonyView, Condition, Trigger, TriggerState};
