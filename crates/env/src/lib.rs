//! The colony environment of §2.1: `n` ants, `k` tasks with demands
//! `d(j)`, loads `W(j)_t`, and deficits `Δ(j)_t = d(j) − W(j)_t`.
//!
//! This crate owns the *ground truth* the ants never see directly:
//! assignments, loads, demand vectors and their validation against
//! Assumptions 2.1, the perturbation vocabulary used by
//! self-stabilization experiments (arbitrary initial configurations,
//! ant death/birth), and the [`Timeline`] subsystem that scripts every
//! kind of mid-run dynamism — demand steps, population shocks and
//! noise-regime switches — as one ordered, cursor-consumed event
//! stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
mod colony;
mod demand;
mod perturb;
mod schedule;
mod timeline;

pub use assignment::Assignment;
pub use colony::ColonyState;
pub use demand::{AssumptionReport, DemandVector};
pub use perturb::{InitialConfig, Perturbation};
pub use schedule::DemandSchedule;
pub use timeline::{Cycle, Event, TimedEvent, Timeline};
