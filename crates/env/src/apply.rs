//! Fused-apply primitives: the double-buffered next-state column and
//! the commutative per-round delta.
//!
//! The synchronous engine no longer runs a separate apply pass over a
//! decisions buffer. Instead every step kernel writes each ant's next
//! assignment straight into a shared [`TaskColumn`] (the *next* column
//! of a double buffer) through a [`ColumnWriter`], which also folds the
//! transition into a local [`RoundDelta`]. Committing a round is then
//! an O(1) column swap plus an O(k) delta application — no O(n) sweep.
//!
//! Determinism: all of a round's column writes target disjoint slots
//! (one per ant), every delta field is a commutative sum, and each ant
//! flips idleness at most once per round, so the packed-mask XOR flips
//! commute too. Merge order therefore cannot affect the result — the
//! property the bit-identity contract rests on (see
//! `docs/DETERMINISM.md`).

use core::sync::atomic::{AtomicU32, Ordering};

use crate::assignment::Assignment;

/// Converts an ant id to a column index.
#[inline]
fn ix(id: u32) -> usize {
    id as usize // audit:allow(cast): u32 → usize widening (usize ≥ 32 bits on supported targets)
}

/// One u32-per-ant assignment column ([`Assignment::RAW_IDLE`] = idle).
///
/// Slots are atomics only so that scoped workers can write disjoint
/// slots of a shared column without `unsafe`; all accesses are
/// `Relaxed` (per-slot writers are disjoint within a round, and the
/// engine's barriers / scope join provide the cross-thread ordering).
#[derive(Debug)]
pub struct TaskColumn {
    slots: Vec<AtomicU32>,
}

impl TaskColumn {
    /// A column of `n` slots, all idle.
    pub fn new(n: usize) -> Self {
        let mut slots = Vec::with_capacity(n);
        slots.resize_with(n, || AtomicU32::new(Assignment::RAW_IDLE));
        Self { slots }
    }

    /// Number of slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True iff the column has no slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Resizes to `n` slots; new slots start idle.
    pub fn resize(&mut self, n: usize) {
        self.slots
            .resize_with(n, || AtomicU32::new(Assignment::RAW_IDLE));
    }

    /// Resets to `n` slots, all idle, reusing the allocation when the
    /// column shrinks or keeps its length (grow reallocates).
    ///
    /// Unlike [`TaskColumn::resize`], which only idles *new* slots,
    /// this re-idles every retained slot — the invariant an engine
    /// rebuilt in place (`SyncEngine::reset_from`) relies on to be
    /// bit-identical to a freshly constructed one.
    pub fn reset(&mut self, n: usize) {
        self.slots.truncate(n);
        for slot in &self.slots {
            slot.store(Assignment::RAW_IDLE, Ordering::Relaxed);
        }
        self.slots
            .resize_with(n, || AtomicU32::new(Assignment::RAW_IDLE));
    }

    /// Appends one slot holding `raw`.
    pub fn push(&mut self, raw: u32) {
        self.slots.push(AtomicU32::new(raw));
    }

    /// Swap-removes slot `i`, returning its raw value (mirrors
    /// `Vec::swap_remove`).
    pub fn swap_remove(&mut self, i: usize) -> u32 {
        self.slots.swap_remove(i).into_inner()
    }

    /// Raw value of slot `id`.
    #[inline]
    pub fn load(&self, id: u32) -> u32 {
        self.slots[ix(id)].load(Ordering::Relaxed)
    }

    /// Stores `raw` into slot `id`.
    #[inline]
    pub fn store(&self, id: u32, raw: u32) {
        self.slots[ix(id)].store(raw, Ordering::Relaxed);
    }
}

impl Clone for TaskColumn {
    fn clone(&self) -> Self {
        let slots = self
            .slots
            .iter()
            .map(|s| AtomicU32::new(s.load(Ordering::Relaxed)))
            .collect();
        Self { slots }
    }
}

/// The commutative summary of one round's transitions over some set of
/// ants: switch count, signed load/idle deltas, and the ids whose
/// idleness flipped (for the packed idle mask).
///
/// Every field is order-independent under merging — integer sums
/// commute, and `idle_flips` drives XOR bit flips that each touch a
/// distinct ant at most once per round — so per-worker deltas can be
/// applied in any order with a bit-identical result.
#[derive(Clone, Debug)]
pub struct RoundDelta {
    pub(crate) switches: u64,
    pub(crate) idle_delta: i64,
    pub(crate) load_deltas: Vec<i64>,
    pub(crate) idle_flips: Vec<u32>,
}

impl RoundDelta {
    /// An empty delta over `k` tasks.
    pub fn new(k: usize) -> Self {
        Self {
            switches: 0,
            idle_delta: 0,
            load_deltas: vec![0; k],
            idle_flips: Vec::new(),
        }
    }

    /// Clears all accumulators, resizing to `k` tasks.
    pub fn reset(&mut self, k: usize) {
        self.switches = 0;
        self.idle_delta = 0;
        self.load_deltas.clear();
        self.load_deltas.resize(k, 0);
        self.idle_flips.clear();
    }

    /// Folds one ant's transition (raw-encoded) into the delta.
    #[inline]
    pub fn record(&mut self, id: u32, prev: u32, next: u32) {
        if prev == next {
            return;
        }
        self.switches += 1;
        match (prev == Assignment::RAW_IDLE, next == Assignment::RAW_IDLE) {
            (true, false) => {
                self.idle_delta -= 1;
                self.load_deltas[ix(next)] += 1;
                self.idle_flips.push(id);
            }
            (false, true) => {
                self.load_deltas[ix(prev)] -= 1;
                self.idle_delta += 1;
                self.idle_flips.push(id);
            }
            (false, false) => {
                self.load_deltas[ix(prev)] -= 1;
                self.load_deltas[ix(next)] += 1;
            }
            (true, true) => unreachable!("prev == next was handled above"),
        }
    }

    /// Number of ants that changed assignment.
    #[inline]
    pub fn switches(&self) -> u64 {
        self.switches
    }
}

/// A kernel's fused output port: one `write` per ant stores the next
/// assignment into the *next* column and folds the transition into the
/// local delta, reading the prior assignment from the *previous*
/// column.
///
/// The previous column is the authoritative ground truth — the same
/// source the unfused engine's apply sweep compared against — so the
/// fused path counts switches and load deltas identically even when a
/// controller's internal state momentarily disagrees with the colony
/// (e.g. right after a population shock).
pub struct ColumnWriter<'a> {
    prev: &'a TaskColumn,
    next: &'a TaskColumn,
    delta: &'a mut RoundDelta,
}

impl<'a> ColumnWriter<'a> {
    /// A writer reading prior assignments from `prev`, storing into
    /// `next`, accumulating into `delta`.
    pub fn new(prev: &'a TaskColumn, next: &'a TaskColumn, delta: &'a mut RoundDelta) -> Self {
        Self { prev, next, delta }
    }

    /// Records ant `id` stepping to `next` (raw-encoded): stores it
    /// into the next column unconditionally and updates the delta iff
    /// the assignment changed relative to the previous column.
    #[inline]
    pub fn write(&mut self, id: u32, next: u32) {
        let prev = self.prev.load(id);
        self.next.store(id, next);
        self.delta.record(id, prev, next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const I: u32 = Assignment::RAW_IDLE;

    #[test]
    fn column_basics() {
        let mut col = TaskColumn::new(3);
        assert_eq!(col.len(), 3);
        assert!(!col.is_empty());
        assert_eq!(col.load(1), I);
        col.store(1, 7);
        assert_eq!(col.load(1), 7);
        let cloned = col.clone();
        assert_eq!(cloned.load(1), 7);
        col.push(2);
        assert_eq!(col.len(), 4);
        assert_eq!(col.swap_remove(0), I);
        assert_eq!(col.load(0), 2);
        col.resize(1);
        assert_eq!(col.len(), 1);
    }

    #[test]
    fn delta_records_transitions() {
        let mut d = RoundDelta::new(2);
        d.record(0, I, 1); // idle → task 1
        d.record(1, 0, 1); // task 0 → task 1
        d.record(2, 1, I); // task 1 → idle
        d.record(3, I, I); // no-op
        d.record(4, 0, 0); // no-op
        assert_eq!(d.switches(), 3);
        assert_eq!(d.idle_delta, 0);
        assert_eq!(d.load_deltas, vec![-1, 1]);
        assert_eq!(d.idle_flips, vec![0, 2]);
        d.reset(3);
        assert_eq!(d.switches(), 0);
        assert_eq!(d.load_deltas, vec![0, 0, 0]);
        assert!(d.idle_flips.is_empty());
    }

    #[test]
    fn writer_stores_and_records() {
        let prev = TaskColumn::new(2);
        prev.store(1, 0);
        let next = TaskColumn::new(2);
        let mut d = RoundDelta::new(1);
        let mut w = ColumnWriter::new(&prev, &next, &mut d);
        w.write(0, 0); // idle → task 0
        w.write(1, 0); // task 0 → task 0 (no switch)
        assert_eq!(next.load(0), 0);
        assert_eq!(next.load(1), 0);
        assert_eq!(d.switches(), 1);
        assert_eq!(d.idle_flips, vec![0]);
    }
}
