//! Event timelines: the unified dynamic-environment subsystem.
//!
//! A [`Timeline`] is an ordered stream of typed [`Event`]s — demand
//! steps, population shocks, noise-regime switches — plus periodic
//! [`Cycle`] generators for standing oscillations. Engines consume the
//! one-shot stream through a monotone cursor (O(1) per round, however
//! long the script) and evaluate cycles as pure functions of the round,
//! so a timeline-driven run stays a pure function of `(config, seed)`:
//! serial, parallel and checkpoint-restored runs replay bit-identically.
//!
//! This subsumes the three ad-hoc dynamism mechanisms that used to live
//! in separate places: the engine-polled `DemandSchedule` (kept as a
//! thin constructor via `From<DemandSchedule>`), imperative
//! `engine.perturb(..)` calls in bench code, and fixed-for-life noise
//! parameters. Rounds are 1-based; events fire at the *start* of their
//! round, before any ant observes feedback.

use antalloc_noise::NoiseModel;
use antalloc_rng::{reserved, StreamSeeder};

use crate::gen::TimelineGen;
use crate::perturb::Perturbation;
use crate::schedule::DemandSchedule;
use crate::trigger::{ColonyView, Trigger, TriggerState};

/// One typed mid-run change to the environment.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// Replace the demand vector (the paper's "changing demands").
    SetDemands(Vec<u64>),
    /// Step the demand of a single task, leaving the others untouched —
    /// the site-local demand shock of the arena experiments (a
    /// whole-vector [`Event::SetDemands`] would have to restate every
    /// unchanged demand).
    SetTaskDemand {
        /// Task whose demand changes (0-based).
        task: usize,
        /// Its new demand (must be positive).
        demand: u64,
    },
    /// Kill this many ants, chosen uniformly at random (§6 population
    /// changes). Clamped at runtime so at least one ant survives.
    Kill {
        /// Number of ants to remove.
        count: usize,
    },
    /// Spawn this many new idle ants.
    Spawn {
        /// Number of ants to add.
        count: usize,
    },
    /// Re-draw every ant's assignment uniformly over `{idle, 1..k}`,
    /// leaving controller memory untouched.
    Scramble,
    /// Force every ant onto one task (the worst overload shock).
    StampedeTo(usize),
    /// Switch the feedback generator from this round on — a noise-regime
    /// change mid-run.
    SetNoise(NoiseModel),
}

impl Event {
    /// The equivalent colony-level [`Perturbation`], if this event is a
    /// population shock (`None` for demand and noise changes).
    pub fn as_perturbation(&self) -> Option<Perturbation> {
        match self {
            Event::Kill { count } => Some(Perturbation::KillRandom { count: *count }),
            Event::Spawn { count } => Some(Perturbation::Spawn { count: *count }),
            Event::Scramble => Some(Perturbation::Scramble),
            Event::StampedeTo(j) => Some(Perturbation::StampedeTo(*j)),
            Event::SetDemands(_) | Event::SetTaskDemand { .. } | Event::SetNoise(_) => None,
        }
    }

    /// Checks the event against a colony with `num_tasks` tasks.
    pub(crate) fn validate(&self, num_tasks: usize) -> Result<(), String> {
        match self {
            Event::SetDemands(demands) => {
                if demands.len() != num_tasks {
                    return Err(format!(
                        "set-demands vector has {} tasks, colony has {num_tasks}",
                        demands.len()
                    ));
                }
                if demands.contains(&0) {
                    return Err("set-demands contains a zero demand".into());
                }
                Ok(())
            }
            Event::SetTaskDemand { task, demand } => {
                if *task >= num_tasks {
                    return Err(format!(
                        "set-task-demand references task {task}, colony has \
                         {num_tasks} tasks"
                    ));
                }
                if *demand == 0 {
                    return Err("set-task-demand sets a zero demand".into());
                }
                Ok(())
            }
            Event::StampedeTo(j) => {
                if *j >= num_tasks {
                    return Err(format!(
                        "stampede-to references task {j}, colony has {num_tasks} tasks"
                    ));
                }
                Ok(())
            }
            Event::SetNoise(model) => model.validate(num_tasks),
            Event::Kill { .. } | Event::Spawn { .. } | Event::Scramble => Ok(()),
        }
    }
}

/// A one-shot event scheduled for a specific round.
#[derive(Clone, Debug, PartialEq)]
pub struct TimedEvent {
    /// The round at which the event fires (rounds are 1-based).
    pub at: u64,
    /// What happens.
    pub event: Event,
}

/// A repeating generator: fires at rounds `start`, `start + period`,
/// `start + 2·period`, …, cycling through `events` one per firing.
///
/// The old `DemandSchedule::Alternating` is the two-event special case.
#[derive(Clone, Debug, PartialEq)]
pub struct Cycle {
    /// First firing round (must be ≥ 1).
    pub start: u64,
    /// Rounds between firings (must be ≥ 1).
    pub period: u64,
    /// Events applied cyclically, one per firing.
    pub events: Vec<Event>,
}

impl Cycle {
    /// Whether the cycle fires at `round`.
    #[inline]
    pub fn fires_at(&self, round: u64) -> bool {
        round >= self.start && (round - self.start).is_multiple_of(self.period)
    }

    /// The event fired at `round` (caller checked [`Cycle::fires_at`]).
    #[inline]
    pub fn event_at(&self, round: u64) -> &Event {
        let i = (round - self.start) / self.period;
        &self.events[(i % self.events.len() as u64) as usize]
    }

    /// The earliest firing round strictly after `after`.
    fn next_firing(&self, after: u64) -> u64 {
        if after < self.start {
            self.start
        } else {
            self.start + self.period * ((after - self.start) / self.period + 1)
        }
    }
}

/// An ordered stream of one-shot events, periodic generators,
/// state-conditional [`Trigger`]s, and seeded random shock-schedule
/// [`TimelineGen`]s.
///
/// Empty timelines (the default) describe a static environment. Before
/// stepping, engines call [`Timeline::compile`] to expand the random
/// generators into concrete one-shot events (a pure function of the
/// scenario and the master seed); triggers keep their runtime state in
/// engine-owned [`TriggerState`]s.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Timeline {
    /// One-shot events, sorted by non-decreasing `at` (several events
    /// may share a round; they apply in list order).
    pub events: Vec<TimedEvent>,
    /// Periodic generators, evaluated after the one-shots each round.
    pub cycles: Vec<Cycle>,
    /// Conditional events, evaluated from the end-of-round
    /// [`ColonyView`] and fired (after one-shots and cycles) at the
    /// start of the next round.
    pub triggers: Vec<Trigger>,
    /// Seeded random shock schedules, expanded into one-shot events by
    /// [`Timeline::compile`].
    pub generators: Vec<TimelineGen>,
}

impl Timeline {
    /// An empty (static-environment) timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a one-shot event (builder style). Events must be pushed
    /// in non-decreasing round order; validation enforces it.
    pub fn at(mut self, round: u64, event: Event) -> Self {
        self.events.push(TimedEvent { at: round, event });
        self
    }

    /// Appends a periodic generator (builder style).
    pub fn every(mut self, start: u64, period: u64, events: Vec<Event>) -> Self {
        self.cycles.push(Cycle {
            start,
            period,
            events,
        });
        self
    }

    /// Appends a conditional trigger (builder style); see [`Trigger`].
    pub fn trigger(mut self, trigger: Trigger) -> Self {
        self.triggers.push(trigger);
        self
    }

    /// Appends a seeded shock-schedule generator (builder style); see
    /// [`TimelineGen`].
    pub fn generate(mut self, generator: TimelineGen) -> Self {
        self.generators.push(generator);
        self
    }

    /// Whether the timeline contains no events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
            && self.cycles.is_empty()
            && self.triggers.is_empty()
            && self.generators.is_empty()
    }

    /// Whether any entry can fire at a round not known from the config
    /// alone (engines must then evaluate state after every round).
    pub fn has_triggers(&self) -> bool {
        !self.triggers.is_empty()
    }

    /// Expands the random generators into concrete one-shot events — a
    /// pure function of `(self, master_seed, n, base_demands)`, so the
    /// compiled timeline is identical however many times it is rebuilt
    /// (engine construction, checkpoint restore, parallel workers).
    ///
    /// Generator randomness comes from the reserved `TIMELINE` stream
    /// (one sub-stream per generator), never from ant streams; the
    /// merged one-shot list is stably sorted by round, scripted events
    /// ahead of generated ones at ties.
    pub fn compile(&self, master_seed: u64, n: usize, base_demands: &[u64]) -> Timeline {
        if self.generators.is_empty() {
            return self.clone();
        }
        let sub = StreamSeeder::new(
            StreamSeeder::new(master_seed)
                .stream(reserved::TIMELINE)
                .next_u64(),
        );
        let mut events = self.events.clone();
        for (i, generator) in self.generators.iter().enumerate() {
            let mut rng = sub.stream(i as u64);
            generator.events_into(&mut rng, n, base_demands, &mut events);
        }
        events.sort_by_key(|timed| timed.at);
        Timeline {
            events,
            cycles: self.cycles.clone(),
            triggers: self.triggers.clone(),
            generators: Vec::new(),
        }
    }

    /// Fresh runtime state for every trigger, in timeline order.
    pub fn initial_trigger_states(&self) -> Vec<TriggerState> {
        self.triggers.iter().map(TriggerState::new).collect()
    }

    /// Collects the events of every trigger armed at the end of the
    /// previous round (in timeline order, after one-shots and cycles),
    /// recording the firing in its state.
    pub fn fire_triggers_into(
        &self,
        round: u64,
        states: &mut [TriggerState],
        out: &mut Vec<Event>,
    ) {
        for (trigger, state) in self.triggers.iter().zip(states) {
            if state.pending {
                trigger.fire(state, round);
                out.push(trigger.event.clone());
            }
        }
    }

    /// Feeds one end-of-round view to every trigger. Returns whether
    /// any trigger is now armed (an event fires next round).
    pub fn observe_triggers(&self, states: &mut [TriggerState], view: &ColonyView<'_>) -> bool {
        let mut armed = false;
        for (trigger, state) in self.triggers.iter().zip(states) {
            armed |= trigger.observe(state, view);
        }
        armed
    }

    /// Validates the timeline against a colony of `n` ants and
    /// `num_tasks` tasks. Returns a description of the first problem:
    /// unsorted or round-zero events, demand-length mismatches, task
    /// indices out of range, kills that would empty the colony, bad
    /// noise parameters, degenerate cycles or generators. (Triggers are
    /// checked separately by [`Timeline::validate_triggers`].)
    ///
    /// Population tracking is exact over the scripted one-shot stream;
    /// kills inside cycles, triggers and generators cannot be tracked
    /// statically and instead clamp at runtime (at least one ant always
    /// survives).
    pub fn validate(&self, num_tasks: usize, n: usize) -> Result<(), String> {
        let mut prev = 0u64;
        let mut population = n as i128;
        for (i, timed) in self.events.iter().enumerate() {
            if timed.at == 0 {
                return Err(format!(
                    "event {i} fires at round 0; events fire at the start of a \
                     round and rounds are 1-based"
                ));
            }
            if timed.at < prev {
                return Err(format!(
                    "events must be sorted by round ({prev} then {} at event {i})",
                    timed.at
                ));
            }
            prev = timed.at;
            timed
                .event
                .validate(num_tasks)
                .map_err(|e| format!("event {i} (round {}): {e}", timed.at))?;
            match &timed.event {
                Event::Kill { count } => {
                    population -= *count as i128;
                    if population < 1 {
                        return Err(format!(
                            "event {i} (round {}): kill of {count} drops the \
                             population below 1",
                            timed.at
                        ));
                    }
                }
                Event::Spawn { count } => population += *count as i128,
                _ => {}
            }
        }
        for (i, cycle) in self.cycles.iter().enumerate() {
            if cycle.start == 0 {
                return Err(format!("cycle {i}: start must be ≥ 1 (rounds are 1-based)"));
            }
            if cycle.period == 0 {
                return Err(format!("cycle {i}: period must be positive"));
            }
            if cycle.events.is_empty() {
                return Err(format!("cycle {i}: needs at least one event"));
            }
            for (j, event) in cycle.events.iter().enumerate() {
                event
                    .validate(num_tasks)
                    .map_err(|e| format!("cycle {i} event {j}: {e}"))?;
            }
        }
        for (i, generator) in self.generators.iter().enumerate() {
            generator
                .validate()
                .map_err(|e| format!("generator {i}: {e}"))?;
        }
        Ok(())
    }

    /// Validates the conditional triggers against a colony with
    /// `num_tasks` tasks (reported separately from
    /// [`Timeline::validate`] so callers can surface trigger problems
    /// as their own error class).
    pub fn validate_triggers(&self, num_tasks: usize) -> Result<(), String> {
        for (i, trigger) in self.triggers.iter().enumerate() {
            trigger
                .validate(num_tasks)
                .map_err(|e| format!("trigger {i}: {e}"))?;
        }
        Ok(())
    }

    /// The earliest round strictly after `after` at which anything
    /// fires, given the one-shot cursor (`None` if the environment is
    /// static from here on). Engines use this to split parallel runs
    /// into event-free segments.
    pub fn next_firing(&self, after: u64, cursor: usize) -> Option<u64> {
        let mut next = self.events.get(cursor).map(|timed| timed.at.max(after + 1));
        for cycle in &self.cycles {
            let r = cycle.next_firing(after);
            next = Some(next.map_or(r, |n| n.min(r)));
        }
        next
    }

    /// Collects the events firing at `round` (one-shots in list order,
    /// then cycles in list order), advancing the cursor past every
    /// one-shot with `at ≤ round`.
    pub fn fire_into(&self, round: u64, cursor: &mut usize, out: &mut Vec<Event>) {
        while let Some(timed) = self.events.get(*cursor) {
            if timed.at > round {
                break;
            }
            if timed.at == round {
                out.push(timed.event.clone());
            }
            *cursor += 1;
        }
        for cycle in &self.cycles {
            if cycle.fires_at(round) {
                out.push(cycle.event_at(round).clone());
            }
        }
    }

    /// The cursor position after all rounds `≤ round` have fired — the
    /// recomputation used to cross-check checkpointed cursors.
    pub fn cursor_at(&self, round: u64) -> usize {
        self.events.partition_point(|timed| timed.at <= round)
    }

    /// Whether running `self` through round `round` produces the same
    /// environment history an uninterrupted run of `other` would have —
    /// the precondition for grafting a prefix of one timeline onto a
    /// continuation under another (sweep warm starts). Returns the
    /// first divergence as a human-readable reason, or `None` when the
    /// prefixes agree.
    ///
    /// Scripted one-shots with `at ≤ round` and cycles with
    /// `start ≤ round` must match exactly (they already fired, or
    /// started firing, in the prefix); later ones are free to differ.
    /// Triggers and generators must match *in full*: triggers carry
    /// runtime state accumulated over every round, and generators
    /// expand from the whole-run seed, so neither can be swapped
    /// mid-run.
    pub fn prefix_divergence(&self, other: &Timeline, round: u64) -> Option<String> {
        if self.triggers != other.triggers {
            return Some("triggers differ (trigger runtime state spans the whole run)".into());
        }
        if self.generators != other.generators {
            return Some("generators differ (schedules expand from the whole-run seed)".into());
        }
        let prefix = |t: &Timeline| -> Vec<TimedEvent> {
            t.events.iter().filter(|e| e.at <= round).cloned().collect()
        };
        if prefix(self) != prefix(other) {
            return Some(format!("one-shot events at or before round {round} differ"));
        }
        let started = |t: &Timeline| -> Vec<Cycle> {
            t.cycles
                .iter()
                .filter(|c| c.start <= round)
                .cloned()
                .collect()
        };
        if started(self) != started(other) {
            return Some(format!("cycles starting at or before round {round} differ"));
        }
        None
    }
}

/// The legacy demand-schedule vocabulary compiles down to a timeline:
/// `Step`/`Steps` become one-shot `SetDemands` events, `Alternating`
/// becomes a two-event [`Cycle`]. Firing rounds are identical to the
/// old engine-polled semantics.
impl From<DemandSchedule> for Timeline {
    fn from(schedule: DemandSchedule) -> Self {
        match schedule {
            DemandSchedule::Static => Timeline::new(),
            DemandSchedule::Step { at, demands } => {
                Timeline::new().at(at, Event::SetDemands(demands))
            }
            DemandSchedule::Steps(steps) => {
                let mut t = Timeline::new();
                for (at, demands) in steps {
                    t = t.at(at, Event::SetDemands(demands));
                }
                t
            }
            DemandSchedule::Alternating { a, b, half_period } => Timeline::new().every(
                half_period,
                half_period,
                vec![Event::SetDemands(b), Event::SetDemands(a)],
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fired(t: &Timeline, round: u64, cursor: &mut usize) -> Vec<Event> {
        let mut out = Vec::new();
        t.fire_into(round, cursor, &mut out);
        out
    }

    #[test]
    fn one_shots_fire_once_in_order() {
        let t = Timeline::new()
            .at(5, Event::SetDemands(vec![1, 1]))
            .at(5, Event::Kill { count: 2 })
            .at(9, Event::Scramble);
        let mut cursor = 0;
        assert!(fired(&t, 4, &mut cursor).is_empty());
        assert_eq!(
            fired(&t, 5, &mut cursor),
            vec![Event::SetDemands(vec![1, 1]), Event::Kill { count: 2 }]
        );
        assert!(fired(&t, 6, &mut cursor).is_empty());
        assert_eq!(fired(&t, 9, &mut cursor), vec![Event::Scramble]);
        assert!(fired(&t, 10, &mut cursor).is_empty());
        assert_eq!(cursor, 3);
    }

    #[test]
    fn cycles_repeat_and_alternate() {
        let t: Timeline = DemandSchedule::Alternating {
            a: vec![10],
            b: vec![20],
            half_period: 4,
        }
        .into();
        let mut cursor = 0;
        assert!(fired(&t, 1, &mut cursor).is_empty());
        assert_eq!(fired(&t, 4, &mut cursor), vec![Event::SetDemands(vec![20])]);
        assert_eq!(fired(&t, 8, &mut cursor), vec![Event::SetDemands(vec![10])]);
        assert_eq!(
            fired(&t, 12, &mut cursor),
            vec![Event::SetDemands(vec![20])]
        );
    }

    #[test]
    fn next_firing_accounts_for_cursor_and_cycles() {
        let t = Timeline::new()
            .at(5, Event::Scramble)
            .every(8, 8, vec![Event::Spawn { count: 1 }]);
        assert_eq!(t.next_firing(0, 0), Some(5));
        assert_eq!(t.next_firing(5, 1), Some(8));
        assert_eq!(t.next_firing(8, 1), Some(16));
        let static_t = Timeline::new();
        assert_eq!(static_t.next_firing(0, 0), None);
    }

    #[test]
    fn cursor_recomputation_matches_firing() {
        let t = Timeline::new()
            .at(3, Event::Scramble)
            .at(3, Event::Kill { count: 1 })
            .at(7, Event::Spawn { count: 1 });
        let mut cursor = 0;
        for round in 1..=10 {
            let mut out = Vec::new();
            t.fire_into(round, &mut cursor, &mut out);
            assert_eq!(cursor, t.cursor_at(round), "round {round}");
        }
    }

    #[test]
    fn validation_catches_each_defect() {
        let k = 2;
        let n = 100;
        let ok = Timeline::new()
            .at(5, Event::Kill { count: 99 })
            .at(6, Event::Spawn { count: 50 });
        assert_eq!(ok.validate(k, n), Ok(()));

        // Unsorted.
        let t = Timeline::new()
            .at(9, Event::Scramble)
            .at(5, Event::Scramble);
        assert!(t.validate(k, n).unwrap_err().contains("sorted"));
        // Round zero.
        let t = Timeline::new().at(0, Event::Scramble);
        assert!(t.validate(k, n).unwrap_err().contains("1-based"));
        // Demand-length mismatch and zero demand.
        let t = Timeline::new().at(5, Event::SetDemands(vec![1]));
        assert!(t.validate(k, n).unwrap_err().contains("tasks"));
        let t = Timeline::new().at(5, Event::SetDemands(vec![1, 0]));
        assert!(t.validate(k, n).unwrap_err().contains("zero"));
        // Kill below zero population (tracked through spawns).
        let t = Timeline::new().at(5, Event::Kill { count: 100 });
        assert!(t.validate(k, n).unwrap_err().contains("below 1"));
        let t = Timeline::new()
            .at(4, Event::Spawn { count: 10 })
            .at(5, Event::Kill { count: 105 });
        assert_eq!(t.validate(k, n), Ok(()));
        // Task out of range.
        let t = Timeline::new().at(5, Event::StampedeTo(2));
        assert!(t.validate(k, n).unwrap_err().contains("stampede"));
        // Single-task demand step: bad index, zero demand.
        let t = Timeline::new().at(5, Event::SetTaskDemand { task: 2, demand: 7 });
        assert!(t.validate(k, n).unwrap_err().contains("set-task-demand"));
        let t = Timeline::new().at(5, Event::SetTaskDemand { task: 0, demand: 0 });
        assert!(t.validate(k, n).unwrap_err().contains("zero"));
        let t = Timeline::new().at(5, Event::SetTaskDemand { task: 1, demand: 7 });
        assert_eq!(t.validate(k, n), Ok(()));
        // Bad noise switch.
        let t = Timeline::new().at(5, Event::SetNoise(NoiseModel::Sigmoid { lambda: -1.0 }));
        assert!(t.validate(k, n).unwrap_err().contains("λ"));
        // Degenerate cycles.
        let t = Timeline::new().every(0, 4, vec![Event::Scramble]);
        assert!(t.validate(k, n).unwrap_err().contains("start"));
        let t = Timeline::new().every(4, 0, vec![Event::Scramble]);
        assert!(t.validate(k, n).unwrap_err().contains("period"));
        let t = Timeline::new().every(4, 4, vec![]);
        assert!(t.validate(k, n).unwrap_err().contains("at least one"));
    }

    #[test]
    fn compile_merges_generated_events_stably_sorted() {
        use crate::gen::{GenShock, TimelineGen};

        let t = Timeline::new()
            .at(5, Event::SetDemands(vec![1, 1]))
            .at(900, Event::Scramble)
            .generate(TimelineGen {
                start: 1,
                until: 1000,
                mean_gap: 50.0,
                shock: GenShock::Kill {
                    min_frac: 0.05,
                    max_frac: 0.1,
                },
            });
        let compiled = t.compile(99, 400, &[1, 1]);
        assert!(compiled.generators.is_empty());
        assert!(compiled.events.len() > 2, "generator produced arrivals");
        assert!(
            compiled.events.windows(2).all(|w| w[0].at <= w[1].at),
            "merged stream is sorted"
        );
        // Deterministic in the master seed; different seeds differ.
        assert_eq!(compiled, t.compile(99, 400, &[1, 1]));
        assert_ne!(compiled, t.compile(100, 400, &[1, 1]));
        // A generator-free timeline compiles to itself.
        let static_t = Timeline::new().at(5, Event::Scramble);
        assert_eq!(static_t.compile(99, 400, &[1, 1]), static_t);
    }

    #[test]
    fn prefix_divergence_splits_past_from_future() {
        use crate::gen::{GenShock, TimelineGen};
        use crate::trigger::{Condition, Trigger};

        let base = Timeline::new()
            .at(10, Event::Kill { count: 5 })
            .at(80, Event::Scramble)
            .every(20, 40, vec![Event::Scramble]);

        // Identical timelines agree at any split.
        assert_eq!(base.prefix_divergence(&base, 50), None);

        // Differences strictly after the split round are fine…
        let later = Timeline::new()
            .at(10, Event::Kill { count: 5 })
            .at(81, Event::SetDemands(vec![9, 9]))
            .every(20, 40, vec![Event::Scramble])
            .every(60, 10, vec![Event::Scramble]);
        assert_eq!(base.prefix_divergence(&later, 50), None);

        // …but the same differences inside the prefix are not.
        assert!(base.prefix_divergence(&later, 80).is_some());
        let early_cycle =
            Timeline::new()
                .at(10, Event::Kill { count: 5 })
                .every(30, 40, vec![Event::Scramble]);
        assert!(base.prefix_divergence(&early_cycle, 50).is_some());

        // An event *at* the split round has already fired: it is part
        // of the prefix.
        let at_split = Timeline::new().at(50, Event::Scramble);
        assert!(Timeline::new().prefix_divergence(&at_split, 50).is_some());
        assert_eq!(Timeline::new().prefix_divergence(&at_split, 49), None);

        // Triggers and generators diverge regardless of position.
        let with_trigger = base.clone().trigger(Trigger::once(
            Condition::RegretBelow {
                threshold: 10,
                for_rounds: 2,
            },
            Event::Scramble,
        ));
        assert!(base.prefix_divergence(&with_trigger, 1).is_some());
        let with_gen = base.clone().generate(TimelineGen {
            start: 900,
            until: 1000,
            mean_gap: 50.0,
            shock: GenShock::Kill {
                min_frac: 0.05,
                max_frac: 0.1,
            },
        });
        assert!(base.prefix_divergence(&with_gen, 1).is_some());
    }

    #[test]
    fn triggers_arm_at_end_of_round_and_fire_next_round() {
        use crate::trigger::{ColonyView, Condition, Trigger};

        let t = Timeline::new().trigger(Trigger::once(
            Condition::RegretBelow {
                threshold: 10,
                for_rounds: 2,
            },
            Event::Scramble,
        ));
        let mut states = t.initial_trigger_states();
        let view = |round, regret| ColonyView {
            round,
            regret,
            population: 100,
            idle: 0,
            deficits: &[],
        };
        assert!(!t.observe_triggers(&mut states, &view(1, 5)));
        assert!(t.observe_triggers(&mut states, &view(2, 5)));
        let mut out = Vec::new();
        t.fire_triggers_into(3, &mut states, &mut out);
        assert_eq!(out, vec![Event::Scramble]);
        assert!(!states[0].pending);
        assert_eq!(states[0].firings, 1);
        // One-shot budget spent: it never arms again.
        assert!(!t.observe_triggers(&mut states, &view(3, 5)));
        assert!(!t.observe_triggers(&mut states, &view(4, 5)));
    }

    #[test]
    fn trigger_and_generator_validation_is_routed() {
        use crate::gen::{GenShock, TimelineGen};
        use crate::trigger::{Condition, Trigger};

        let bad_trigger = Timeline::new().trigger(Trigger::once(
            Condition::RoundReached { round: 0 },
            Event::Scramble,
        ));
        assert!(
            bad_trigger.validate(2, 100).is_ok(),
            "triggers validate separately"
        );
        assert!(bad_trigger
            .validate_triggers(2)
            .unwrap_err()
            .contains("trigger 0"));

        let bad_gen = Timeline::new().generate(TimelineGen {
            start: 1,
            until: 0,
            mean_gap: 10.0,
            shock: GenShock::Scramble,
        });
        assert!(bad_gen
            .validate(2, 100)
            .unwrap_err()
            .contains("generator 0"));
    }

    #[test]
    fn schedule_conversions_preserve_firing_rounds() {
        // Step fires once at `at`.
        let t: Timeline = DemandSchedule::Step {
            at: 10,
            demands: vec![5, 6],
        }
        .into();
        let mut cursor = 0;
        assert!(fired(&t, 9, &mut cursor).is_empty());
        assert_eq!(
            fired(&t, 10, &mut cursor),
            vec![Event::SetDemands(vec![5, 6])]
        );
        assert!(fired(&t, 11, &mut cursor).is_empty());
        // Steps fire in order.
        let t: Timeline = DemandSchedule::Steps(vec![(5, vec![1, 1]), (9, vec![2, 2])]).into();
        let mut cursor = 0;
        assert_eq!(
            fired(&t, 5, &mut cursor),
            vec![Event::SetDemands(vec![1, 1])]
        );
        assert!(fired(&t, 7, &mut cursor).is_empty());
        assert_eq!(
            fired(&t, 9, &mut cursor),
            vec![Event::SetDemands(vec![2, 2])]
        );
        // Static is empty.
        let t: Timeline = DemandSchedule::Static.into();
        assert!(t.is_empty());
    }
}
