//! Demand vectors and Assumptions 2.1.

use antalloc_noise::CriticalValue;

/// The demand vector `d = (d(1), …, d(k))`: how many ants each task needs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DemandVector {
    demands: Vec<u64>,
}

/// The outcome of checking a demand vector against Assumptions 2.1 (and
/// the relaxed slack condition of §3.3's final remark).
///
/// The checks produce warnings, not panics: lower-bound and ablation
/// experiments deliberately run outside the assumptions.
#[derive(Clone, Debug, PartialEq)]
pub struct AssumptionReport {
    /// `d(j) = Ω(log n)`: the smallest demand and the `c·ln n` floor used.
    pub d_min: u64,
    /// The logarithmic floor `c·ln n` the demands were compared against.
    pub log_floor: f64,
    /// Whether every demand clears the floor.
    pub demands_logarithmic: bool,
    /// `Σ_j (1+5γ*)·d(j) ≤ c*·n`: the measured left-hand side.
    pub slack_lhs: f64,
    /// The slack budget `c*·n`.
    pub slack_rhs: f64,
    /// Whether the slack condition holds.
    pub slack_ok: bool,
}

impl AssumptionReport {
    /// True iff all assumptions hold.
    pub fn all_ok(&self) -> bool {
        self.demands_logarithmic && self.slack_ok
    }

    /// Human-readable summary for experiment logs.
    pub fn summary(&self) -> String {
        format!(
            "demands ≥ {:.1} (min {}): {}; slack {:.0} ≤ {:.0}: {}",
            self.log_floor,
            self.d_min,
            if self.demands_logarithmic {
                "ok"
            } else {
                "VIOLATED"
            },
            self.slack_lhs,
            self.slack_rhs,
            if self.slack_ok { "ok" } else { "VIOLATED" },
        )
    }
}

impl DemandVector {
    /// Builds a demand vector.
    ///
    /// # Panics
    /// If `demands` is empty or any demand is zero (the paper's tasks all
    /// need at least one worker; a zero-demand task is simply omitted).
    pub fn new(demands: Vec<u64>) -> Self {
        assert!(!demands.is_empty(), "at least one task");
        assert!(demands.iter().all(|&d| d > 0), "demands must be positive");
        Self { demands }
    }

    /// Uniform demands: `k` tasks of demand `d` each.
    pub fn uniform(k: usize, d: u64) -> Self {
        Self::new(vec![d; k])
    }

    /// Number of tasks `k`.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.demands.len()
    }

    /// The demands as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u64] {
        &self.demands
    }

    /// Demand of task `j`.
    #[inline]
    pub fn demand(&self, j: usize) -> u64 {
        self.demands[j]
    }

    /// Sum of all demands `Σ_j d(j)`.
    #[inline]
    pub fn total(&self) -> u64 {
        self.demands.iter().sum()
    }

    /// Smallest demand (drives the sigmoid critical value).
    #[inline]
    pub fn min(&self) -> u64 {
        *self.demands.iter().min().expect("non-empty")
    }

    /// Replaces the demands in place (demand schedules); the task count
    /// must stay fixed — the paper's model has a fixed set of tasks.
    pub fn set(&mut self, new: &[u64]) {
        assert_eq!(new.len(), self.demands.len(), "task count is fixed");
        assert!(new.iter().all(|&d| d > 0), "demands must be positive");
        self.demands.copy_from_slice(new);
    }

    /// Replaces the demand of a single task in place (site-local demand
    /// steps); the other demands are untouched.
    pub fn set_task(&mut self, j: usize, d: u64) {
        assert!(j < self.demands.len(), "task index out of range");
        assert!(d > 0, "demands must be positive");
        self.demands[j] = d;
    }

    /// Replaces the demands in place, allowing the task count to change
    /// (engine reuse across sweep jobs rebuilds the vector wholesale);
    /// reuses the allocation when the count shrinks or stays put.
    pub fn rebuild_in(&mut self, new: &[u64]) {
        assert!(!new.is_empty(), "at least one task");
        assert!(new.iter().all(|&d| d > 0), "demands must be positive");
        self.demands.clear();
        self.demands.extend_from_slice(new);
    }

    /// Checks Assumptions 2.1 for a colony of `n` ants.
    ///
    /// * `d(j) = Ω(log n)` — compared against `log_constant · ln n`.
    /// * Slack: `Σ (1+5γ*)·d(j) ≤ slack_constant · n` (the relaxed form;
    ///   the paper's `Σd ≤ n/2` is the special case
    ///   `slack_constant = (1+5γ*)/2`).
    pub fn check_assumptions(
        &self,
        n: usize,
        critical: &CriticalValue,
        log_constant: f64,
        slack_constant: f64,
    ) -> AssumptionReport {
        let log_floor = log_constant * (n as f64).ln();
        let d_min = self.min();
        let demands_logarithmic = d_min as f64 >= log_floor;
        let slack_lhs = (1.0 + 5.0 * critical.gamma_star) * self.total() as f64;
        let slack_rhs = slack_constant * n as f64;
        AssumptionReport {
            d_min,
            log_floor,
            demands_logarithmic,
            slack_lhs,
            slack_rhs,
            slack_ok: slack_lhs <= slack_rhs,
        }
    }
}

impl From<Vec<u64>> for DemandVector {
    fn from(demands: Vec<u64>) -> Self {
        Self::new(demands)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antalloc_noise::critical_value_sigmoid;

    #[test]
    fn basic_accessors() {
        let d = DemandVector::new(vec![10, 30, 20]);
        assert_eq!(d.num_tasks(), 3);
        assert_eq!(d.total(), 60);
        assert_eq!(d.min(), 10);
        assert_eq!(d.demand(1), 30);
        assert_eq!(DemandVector::uniform(2, 5).as_slice(), &[5, 5]);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn rejects_empty() {
        DemandVector::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_demand() {
        DemandVector::new(vec![5, 0]);
    }

    #[test]
    fn set_replaces_in_place() {
        let mut d = DemandVector::new(vec![10, 20]);
        d.set(&[15, 25]);
        assert_eq!(d.as_slice(), &[15, 25]);
    }

    #[test]
    fn set_task_steps_one_demand() {
        let mut d = DemandVector::new(vec![10, 20]);
        d.set_task(1, 35);
        assert_eq!(d.as_slice(), &[10, 35]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn set_task_rejects_zero() {
        let mut d = DemandVector::new(vec![10, 20]);
        d.set_task(0, 0);
    }

    #[test]
    #[should_panic(expected = "task count is fixed")]
    fn set_rejects_resize() {
        let mut d = DemandVector::new(vec![10, 20]);
        d.set(&[15]);
    }

    #[test]
    fn assumptions_pass_for_paper_regime() {
        // n = 4000, demands well above ln n ≈ 8.3, Σd = 1400 ≤ n/2.
        // λ is chosen so γ* ≈ 0.09 < 1/2 (the paper's standing assumption
        // on γ*): γ* = q·ln n/(λ·d_min) needs λ·d_min ≳ 16·q·ln n for the
        // algorithm's γ ∈ [γ*, 1/16] window to be non-empty.
        let d = DemandVector::new(vec![400, 700, 300]);
        let cv = critical_value_sigmoid(2.5, 4000, d.as_slice(), 8.0);
        assert!(cv.gamma_star < 0.1, "γ* = {}", cv.gamma_star);
        let report = d.check_assumptions(4000, &cv, 1.0, 0.9);
        assert!(report.all_ok(), "{}", report.summary());
    }

    #[test]
    fn assumptions_flag_small_demands_and_no_slack() {
        let d = DemandVector::new(vec![2, 3]);
        let cv = critical_value_sigmoid(0.5, 1_000_000, d.as_slice(), 8.0);
        let report = d.check_assumptions(1_000_000, &cv, 1.0, 0.9);
        assert!(!report.demands_logarithmic);
        assert!(report.slack_ok);

        let d = DemandVector::new(vec![600, 600]);
        let cv = critical_value_sigmoid(0.5, 1000, d.as_slice(), 8.0);
        let report = d.check_assumptions(1000, &cv, 1.0, 0.9);
        assert!(!report.slack_ok);
        assert!(report.summary().contains("VIOLATED"));
    }
}
