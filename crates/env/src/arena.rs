//! Spatial arenas: tasks pinned at sites, demand sensed locally.
//!
//! The paper's model is *well-mixed*: every ant samples the feedback of
//! every task every round. An [`ArenaConfig`] breaks that assumption
//! spatially — tasks are pinned to sites, an ant standing at site `s`
//! senses real feedback only for the tasks at `s` (everything else reads
//! as a saturated `Overload`, so no kernel ever joins a task it cannot
//! see), and idle ants drift between sites via a per-round wander coin
//! with a travel latency during which they sense nothing.
//!
//! The config is pure data: engines own the per-ant position and travel
//! columns and the per-round sense-row construction. Two structural
//! guarantees make the mode safe to layer under the existing kernels:
//!
//! * Masked tasks are [`Fixed`](antalloc_noise::TaskFeedback::Fixed)
//!   feedback and consume **zero** RNG draws, so an ant's stream
//!   position depends only on its own decisions, never on where it
//!   stands — the bit-identity contract (serial == parallel ==
//!   checkpoint-restore) extends unchanged.
//! * A single-site arena with zero travel latency degenerates to the
//!   shared well-mixed view: every task is local, wandering has nowhere
//!   to go, and engines skip the sense-row indirection entirely, so the
//!   run is bit-identical to the same scenario without an arena.

/// Static geometry of a spatial arena.
///
/// Sites are dense indices `0..num_sites`; `site_of_task[j]` pins task
/// `j` to its site. Movement is modeled coarsely: each round, after
/// decisions commit, every *idle, non-traveling* ant flips a
/// `wander_probability` coin (on the reserved `ARENA` stream, in global
/// ant order) and, on success, departs for a uniformly chosen *other*
/// site, arriving `travel_rounds` rounds later. Working ants stay put —
/// they are at their task's site by construction — and travelers sense
/// all-`Overload` (they see no task, so every kernel keeps them idle
/// without consuming draws).
#[derive(Clone, Debug, PartialEq)]
pub struct ArenaConfig {
    /// Site of each task: `site_of_task[j]` is where task `j` lives.
    /// Length `k`; site ids must cover `0..num_sites` densely.
    pub site_of_task: Vec<u32>,
    /// Rounds an ant spends in transit between sites (0 = instant).
    pub travel_rounds: u32,
    /// Per-round probability that an idle, settled ant departs for a
    /// random other site. Must be in `[0, 1]`; 0 freezes everyone at
    /// their initial site.
    pub wander_probability: f64,
}

impl ArenaConfig {
    /// A single-site arena over `k` tasks — the well-mixed degenerate
    /// case (engines detect it and skip the sensing indirection).
    pub fn single_site(k: usize) -> Self {
        Self {
            site_of_task: vec![0; k],
            travel_rounds: 0,
            wander_probability: 0.0,
        }
    }

    /// Number of sites (`max(site_of_task) + 1`; 0 for no tasks).
    #[inline]
    pub fn num_sites(&self) -> usize {
        self.site_of_task
            .iter()
            .max()
            // audit:allow(cast): u32 → usize widening (usize ≥ 32 bits on supported targets).
            .map_or(0, |&m| m as usize + 1)
    }

    /// Whether every ant sees every task — the degenerate geometry
    /// engines compile down to the shared well-mixed view.
    #[inline]
    pub fn is_single_site(&self) -> bool {
        self.num_sites() <= 1
    }

    /// Site of task `j`.
    #[inline]
    pub fn site_of(&self, j: usize) -> u32 {
        self.site_of_task[j]
    }

    /// Checks the geometry against a colony with `num_tasks` tasks:
    /// one site per task, dense site ids (every site hosts at least one
    /// task), and a wander probability that is a probability.
    pub fn validate(&self, num_tasks: usize) -> Result<(), String> {
        if self.site_of_task.len() != num_tasks {
            return Err(format!(
                "arena pins {} tasks, colony has {num_tasks}",
                self.site_of_task.len()
            ));
        }
        let num_sites = self.num_sites();
        let mut seen = vec![false; num_sites];
        for &s in &self.site_of_task {
            // audit:allow(cast): u32 → usize widening (usize ≥ 32 bits on supported targets).
            seen[s as usize] = true;
        }
        if let Some(hole) = seen.iter().position(|&s| !s) {
            return Err(format!(
                "site ids must be dense: site {hole} hosts no task (max site id is {})",
                num_sites - 1
            ));
        }
        if !self.wander_probability.is_finite() || !(0.0..=1.0).contains(&self.wander_probability) {
            return Err(format!(
                "wander probability {} is not in [0, 1]",
                self.wander_probability
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_site_is_degenerate() {
        let a = ArenaConfig::single_site(3);
        assert_eq!(a.num_sites(), 1);
        assert!(a.is_single_site());
        assert!(a.validate(3).is_ok());
    }

    #[test]
    fn num_sites_and_site_of() {
        let a = ArenaConfig {
            site_of_task: vec![1, 0, 1, 2],
            travel_rounds: 3,
            wander_probability: 0.05,
        };
        assert_eq!(a.num_sites(), 3);
        assert!(!a.is_single_site());
        assert_eq!(a.site_of(0), 1);
        assert_eq!(a.site_of(3), 2);
        assert!(a.validate(4).is_ok());
    }

    #[test]
    fn validation_catches_each_defect() {
        let base = ArenaConfig {
            site_of_task: vec![0, 1],
            travel_rounds: 0,
            wander_probability: 0.1,
        };
        assert!(base.validate(2).is_ok());
        // Length mismatch.
        assert!(base.validate(3).unwrap_err().contains("2 tasks"));
        // Sparse site ids.
        let sparse = ArenaConfig {
            site_of_task: vec![0, 2],
            ..base.clone()
        };
        assert!(sparse.validate(2).unwrap_err().contains("dense"));
        // Bad probabilities.
        for p in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let bad = ArenaConfig {
                wander_probability: p,
                ..base.clone()
            };
            assert!(bad.validate(2).unwrap_err().contains("[0, 1]"), "p = {p}");
        }
    }
}
