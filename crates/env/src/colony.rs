//! Ground-truth colony bookkeeping: assignments, loads, deficits.

use crate::assignment::Assignment;
use crate::demand::DemandVector;

/// The observable-by-nobody global state: who works where.
///
/// Loads are maintained incrementally — applying one ant's decision is
/// O(1) — and a full recount is available as a (debug-asserted)
/// consistency check.
#[derive(Clone, Debug)]
pub struct ColonyState {
    assignments: Vec<Assignment>,
    loads: Vec<u32>,
    demands: DemandVector,
    idle: u32,
}

impl ColonyState {
    /// A colony of `n` ants, all initially idle.
    pub fn new(n: usize, demands: DemandVector) -> Self {
        assert!(n > 0, "empty colony");
        assert!(
            u32::try_from(n).is_ok(),
            "colony size must fit in u32 loads"
        );
        let k = demands.num_tasks();
        Self {
            assignments: vec![Assignment::Idle; n],
            loads: vec![0; k],
            demands,
            idle: n as u32,
        }
    }

    /// Number of ants `n`.
    #[inline]
    pub fn num_ants(&self) -> usize {
        self.assignments.len()
    }

    /// Number of tasks `k`.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.loads.len()
    }

    /// Current load `W(j)`.
    #[inline]
    pub fn load(&self, j: usize) -> u64 {
        u64::from(self.loads[j])
    }

    /// All loads.
    #[inline]
    pub fn loads(&self) -> &[u32] {
        &self.loads
    }

    /// Number of idle ants.
    #[inline]
    pub fn idle_count(&self) -> u64 {
        u64::from(self.idle)
    }

    /// The demand vector.
    #[inline]
    pub fn demands(&self) -> &DemandVector {
        &self.demands
    }

    /// Mutable access to demands (for schedules).
    #[inline]
    pub fn demands_mut(&mut self) -> &mut DemandVector {
        &mut self.demands
    }

    /// Assignment of ant `i`.
    #[inline]
    pub fn assignment(&self, i: usize) -> Assignment {
        self.assignments[i]
    }

    /// All assignments.
    #[inline]
    pub fn assignments(&self) -> &[Assignment] {
        &self.assignments
    }

    /// Deficit `Δ(j) = d(j) − W(j)` of task `j`.
    #[inline]
    pub fn deficit(&self, j: usize) -> i64 {
        self.demands.demand(j) as i64 - i64::from(self.loads[j])
    }

    /// Writes all deficits into `out` (resized to `k`).
    pub fn deficits_into(&self, out: &mut Vec<i64>) {
        out.clear();
        out.extend(
            self.demands
                .as_slice()
                .iter()
                .zip(&self.loads)
                .map(|(&d, &w)| d as i64 - i64::from(w)),
        );
    }

    /// Moves ant `i` to `next`, updating loads incrementally.
    #[inline]
    pub fn apply(&mut self, i: usize, next: Assignment) {
        let prev = self.assignments[i];
        if prev == next {
            return;
        }
        match prev {
            Assignment::Idle => self.idle -= 1,
            Assignment::Task(j) => self.loads[j as usize] -= 1,
        }
        match next {
            Assignment::Idle => self.idle += 1,
            Assignment::Task(j) => self.loads[j as usize] += 1,
        }
        self.assignments[i] = next;
    }

    /// Applies a batch of per-thread load deltas plus the new assignment
    /// array contents for a contiguous chunk — the parallel engine's
    /// reduce step. `deltas[j]` is the signed change to `W(j)`;
    /// `idle_delta` the signed change to the idle count.
    pub fn apply_deltas(&mut self, deltas: &[i64], idle_delta: i64) {
        assert_eq!(deltas.len(), self.loads.len());
        for (load, &delta) in self.loads.iter_mut().zip(deltas) {
            let next = i64::from(*load) + delta;
            assert!(next >= 0, "load went negative");
            *load = u32::try_from(next).expect("load fits u32");
        }
        let idle = i64::from(self.idle) + idle_delta;
        assert!(idle >= 0, "idle count went negative");
        self.idle = u32::try_from(idle).expect("idle fits u32");
    }

    /// Overwrites ant `i`'s assignment **without** touching loads; pair
    /// with [`ColonyState::apply_deltas`] (parallel engine only).
    #[inline]
    pub fn set_assignment_raw(&mut self, i: usize, next: Assignment) {
        self.assignments[i] = next;
    }

    /// Adds an idle ant; returns its index (self-stabilization under
    /// births).
    pub fn spawn_ant(&mut self) -> usize {
        self.assignments.push(Assignment::Idle);
        self.idle += 1;
        self.assignments.len() - 1
    }

    /// Removes ant `i` by swap-removal; returns the index of the ant that
    /// moved into slot `i` (the previous last ant), if any. Callers must
    /// mirror the swap in any parallel per-ant arrays (controllers, RNGs).
    pub fn kill_ant(&mut self, i: usize) -> Option<usize> {
        match self.assignments[i] {
            Assignment::Idle => self.idle -= 1,
            Assignment::Task(j) => self.loads[j as usize] -= 1,
        }
        self.assignments.swap_remove(i);
        if i < self.assignments.len() {
            Some(self.assignments.len())
        } else {
            None
        }
    }

    /// Full recount of loads and idle from assignments; true iff the
    /// incremental bookkeeping matches. Used by tests and debug asserts.
    pub fn recount_consistent(&self) -> bool {
        let mut loads = vec![0u32; self.loads.len()];
        let mut idle = 0u32;
        for a in &self.assignments {
            match a {
                Assignment::Idle => idle += 1,
                Assignment::Task(j) => loads[*j as usize] += 1,
            }
        }
        loads == self.loads && idle == self.idle
    }

    /// Regret of the current configuration: `r = Σ_j |Δ(j)|`.
    pub fn instant_regret(&self) -> u64 {
        self.demands
            .as_slice()
            .iter()
            .zip(&self.loads)
            .map(|(&d, &w)| (d as i64 - i64::from(w)).unsigned_abs())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn colony() -> ColonyState {
        ColonyState::new(10, DemandVector::new(vec![3, 4]))
    }

    #[test]
    fn starts_all_idle() {
        let c = colony();
        assert_eq!(c.num_ants(), 10);
        assert_eq!(c.num_tasks(), 2);
        assert_eq!(c.idle_count(), 10);
        assert_eq!(c.load(0), 0);
        assert_eq!(c.deficit(0), 3);
        assert_eq!(c.instant_regret(), 7);
        assert!(c.recount_consistent());
    }

    #[test]
    fn apply_moves_load() {
        let mut c = colony();
        c.apply(0, Assignment::Task(1));
        c.apply(1, Assignment::Task(1));
        assert_eq!(c.load(1), 2);
        assert_eq!(c.idle_count(), 8);
        assert_eq!(c.deficit(1), 2);
        c.apply(0, Assignment::Task(0));
        assert_eq!(c.load(0), 1);
        assert_eq!(c.load(1), 1);
        c.apply(0, Assignment::Idle);
        assert_eq!(c.load(0), 0);
        assert_eq!(c.idle_count(), 9);
        assert!(c.recount_consistent());
        // No-op apply is a no-op.
        c.apply(5, Assignment::Idle);
        assert!(c.recount_consistent());
    }

    #[test]
    fn deficits_into_matches_deficit() {
        let mut c = colony();
        for i in 0..5 {
            c.apply(i, Assignment::Task(1));
        }
        let mut buf = Vec::new();
        c.deficits_into(&mut buf);
        assert_eq!(buf, vec![3, -1]);
        assert_eq!(c.deficit(1), -1);
        assert_eq!(c.instant_regret(), 4);
    }

    #[test]
    fn spawn_and_kill() {
        let mut c = colony();
        c.apply(9, Assignment::Task(0));
        let idx = c.spawn_ant();
        assert_eq!(idx, 10);
        assert_eq!(c.num_ants(), 11);
        assert_eq!(c.idle_count(), 10);
        // Kill the working ant 9: ant 10 swaps into slot 9.
        let moved = c.kill_ant(9);
        assert_eq!(moved, Some(10));
        assert_eq!(c.num_ants(), 10);
        assert_eq!(c.load(0), 0);
        assert!(c.recount_consistent());
        // Killing the last ant reports no swap.
        let last = c.num_ants() - 1;
        assert_eq!(c.kill_ant(last), None);
        assert!(c.recount_consistent());
    }

    #[test]
    fn apply_deltas_reduces() {
        let mut c = colony();
        // Pretend a parallel chunk moved 3 ants to task 0, 1 to task 1.
        c.set_assignment_raw(0, Assignment::Task(0));
        c.set_assignment_raw(1, Assignment::Task(0));
        c.set_assignment_raw(2, Assignment::Task(0));
        c.set_assignment_raw(3, Assignment::Task(1));
        c.apply_deltas(&[3, 1], -4);
        assert!(c.recount_consistent());
        assert_eq!(c.load(0), 3);
        assert_eq!(c.idle_count(), 6);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn apply_deltas_rejects_negative_load() {
        let mut c = colony();
        c.apply_deltas(&[-1, 0], 1);
    }

    proptest! {
        /// Any sequence of assignment moves keeps incremental bookkeeping
        /// consistent with a recount, and total mass conserved.
        #[test]
        fn bookkeeping_is_consistent(moves in proptest::collection::vec((0usize..10, 0u32..3), 0..200)) {
            let mut c = colony();
            for (ant, target) in moves {
                let next = if target == 2 { Assignment::Idle } else { Assignment::Task(target) };
                c.apply(ant, next);
                prop_assert!(c.recount_consistent());
                let mass = c.idle_count() + c.load(0) + c.load(1);
                prop_assert_eq!(mass, 10);
            }
        }
    }
}
