//! Ground-truth colony bookkeeping: assignments, loads, deficits.

use crate::apply::{RoundDelta, TaskColumn};
use crate::assignment::Assignment;
use crate::demand::DemandVector;

/// The observable-by-nobody global state: who works where.
///
/// Assignments live in a packed u32 [`TaskColumn`] (idle =
/// [`Assignment::RAW_IDLE`]) shadowed by a packed idle bitmask — the
/// *current* half of the engine's double buffer. Step kernels write the
/// engine-owned *next* column directly; [`ColonyState::commit_round`]
/// swaps the columns in O(1) and folds in the round's commutative
/// [`RoundDelta`]. Loads are maintained incrementally — applying one
/// ant's decision is O(1) — and a full recount is available as a
/// (debug-asserted) consistency check.
#[derive(Clone, Debug)]
pub struct ColonyState {
    tasks: TaskColumn,
    idle_words: Vec<u64>,
    loads: Vec<u32>,
    demands: DemandVector,
    idle: u32,
}

/// Packed-mask word index and bit for ant `i`.
#[inline]
fn mask_slot(i: usize) -> (usize, u64) {
    (i / 64, 1u64 << (i % 64))
}

impl ColonyState {
    /// A colony of `n` ants, all initially idle.
    pub fn new(n: usize, demands: DemandVector) -> Self {
        assert!(n > 0, "empty colony");
        assert!(
            u32::try_from(n).is_ok(),
            "colony size must fit in u32 loads"
        );
        let k = demands.num_tasks();
        let mut idle_words = vec![u64::MAX; n.div_ceil(64)];
        if !n.is_multiple_of(64) {
            // Bits past `n` stay zero so popcounts stay honest.
            *idle_words.last_mut().expect("n > 0") = (1u64 << (n % 64)) - 1;
        }
        Self {
            tasks: TaskColumn::new(n),
            idle_words,
            loads: vec![0; k],
            demands,
            idle: n as u32,
        }
    }

    /// Rebuilds the colony in place to `n` all-idle ants over `demands`,
    /// reusing the task column, idle mask and load allocations (shrink
    /// keeps capacity, grow reallocates). The result is bit-identical to
    /// `ColonyState::new(n, DemandVector::new(demands.to_vec()))` — the
    /// contract the engine's `reset_from` reuse path rests on.
    pub fn rebuild_in(&mut self, n: usize, demands: &[u64]) {
        assert!(n > 0, "empty colony");
        assert!(
            u32::try_from(n).is_ok(),
            "colony size must fit in u32 loads"
        );
        self.tasks.reset(n);
        self.idle_words.clear();
        self.idle_words.resize(n.div_ceil(64), u64::MAX);
        if !n.is_multiple_of(64) {
            // Bits past `n` stay zero so popcounts stay honest.
            *self.idle_words.last_mut().expect("n > 0") = (1u64 << (n % 64)) - 1;
        }
        self.loads.clear();
        self.loads.resize(demands.len(), 0);
        self.demands.rebuild_in(demands);
        self.idle = n as u32;
        debug_assert!(self.recount_consistent());
    }

    /// Number of ants `n`.
    #[inline]
    pub fn num_ants(&self) -> usize {
        self.tasks.len()
    }

    /// Number of tasks `k`.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.loads.len()
    }

    /// Current load `W(j)`.
    #[inline]
    pub fn load(&self, j: usize) -> u64 {
        u64::from(self.loads[j])
    }

    /// All loads.
    #[inline]
    pub fn loads(&self) -> &[u32] {
        &self.loads
    }

    /// Number of idle ants.
    #[inline]
    pub fn idle_count(&self) -> u64 {
        u64::from(self.idle)
    }

    /// The demand vector.
    #[inline]
    pub fn demands(&self) -> &DemandVector {
        &self.demands
    }

    /// Mutable access to demands (for schedules).
    #[inline]
    pub fn demands_mut(&mut self) -> &mut DemandVector {
        &mut self.demands
    }

    /// Assignment of ant `i`.
    #[inline]
    pub fn assignment(&self, i: usize) -> Assignment {
        Assignment::from_raw(self.tasks.load(i as u32))
    }

    /// All assignments, decoded from the packed column.
    pub fn assignments(&self) -> Vec<Assignment> {
        (0..self.num_ants()).map(|i| self.assignment(i)).collect()
    }

    /// The packed idle bitmask (bit `i` of word `i / 64` set iff ant
    /// `i` is idle; bits past `n` are zero).
    #[inline]
    pub fn idle_mask(&self) -> &[u64] {
        &self.idle_words
    }

    /// The current packed assignment column (the step kernels' *prev*
    /// source in the serial fused path).
    #[inline]
    pub fn task_column(&self) -> &TaskColumn {
        &self.tasks
    }

    /// Takes the task column out of the colony for the duration of a
    /// parallel segment (workers share it immutably while the
    /// coordinator keeps `&mut` access to the load/idle bookkeeping).
    /// The colony's per-ant accessors are unusable until
    /// [`ColonyState::restore_column`] puts a column back.
    pub fn take_column(&mut self) -> TaskColumn {
        core::mem::replace(&mut self.tasks, TaskColumn::new(0))
    }

    /// Restores the (possibly parity-swapped) current column after a
    /// parallel segment; the per-round deltas were already applied via
    /// [`ColonyState::apply_round_delta`].
    pub fn restore_column(&mut self, column: TaskColumn) {
        debug_assert!(self.tasks.is_empty(), "column already present");
        let mass: u64 =
            u64::from(self.idle) + self.loads.iter().map(|&w| u64::from(w)).sum::<u64>();
        assert_eq!(column.len() as u64, mass, "column length mismatch");
        self.tasks = column;
        debug_assert!(self.recount_consistent());
    }

    /// Deficit `Δ(j) = d(j) − W(j)` of task `j`.
    #[inline]
    pub fn deficit(&self, j: usize) -> i64 {
        self.demands.demand(j) as i64 - i64::from(self.loads[j])
    }

    /// Writes all deficits into `out` (resized to `k`).
    pub fn deficits_into(&self, out: &mut Vec<i64>) {
        out.clear();
        out.extend(
            self.demands
                .as_slice()
                .iter()
                .zip(&self.loads)
                .map(|(&d, &w)| d as i64 - i64::from(w)),
        );
    }

    /// Moves ant `i` to `next`, updating loads incrementally.
    #[inline]
    pub fn apply(&mut self, i: usize, next: Assignment) {
        let prev = self.assignment(i);
        if prev == next {
            return;
        }
        match prev {
            Assignment::Idle => self.idle -= 1,
            Assignment::Task(j) => self.loads[j as usize] -= 1,
        }
        match next {
            Assignment::Idle => self.idle += 1,
            Assignment::Task(j) => self.loads[j as usize] += 1,
        }
        if prev.is_idle() != next.is_idle() {
            let (w, bit) = mask_slot(i);
            self.idle_words[w] ^= bit;
        }
        self.tasks.store(i as u32, next.to_raw());
    }

    /// Commits a fully-written next column (the serial round path):
    /// swaps it with the current column in O(1), then folds in the
    /// round's delta. `next` receives the previous column, becoming the
    /// scratch for the following round.
    pub fn commit_round(&mut self, next: &mut TaskColumn, delta: &RoundDelta) {
        assert_eq!(next.len(), self.num_ants(), "next column length mismatch");
        core::mem::swap(&mut self.tasks, next);
        self.apply_round_delta(delta);
        debug_assert!(self.recount_consistent());
    }

    /// Folds one round delta into loads, idle count and the idle mask
    /// **without** touching the task column (the parallel round path,
    /// where the column is on loan via [`ColonyState::take_column`] and
    /// double-buffered by parity until [`ColonyState::restore_column`]
    /// returns it). Mid-segment the task column is absent; loads, idle
    /// count and mask are current.
    pub fn apply_round_delta(&mut self, delta: &RoundDelta) {
        assert_eq!(delta.load_deltas.len(), self.loads.len());
        for (load, &d) in self.loads.iter_mut().zip(&delta.load_deltas) {
            let nxt = i64::from(*load) + d;
            assert!(nxt >= 0, "load went negative");
            *load = u32::try_from(nxt).expect("load fits u32");
        }
        let idle = i64::from(self.idle) + delta.idle_delta;
        assert!(idle >= 0, "idle count went negative");
        self.idle = u32::try_from(idle).expect("idle fits u32");
        for &id in &delta.idle_flips {
            let (w, bit) = mask_slot(id as usize);
            self.idle_words[w] ^= bit;
        }
    }

    /// Adds an idle ant; returns its index (self-stabilization under
    /// births).
    pub fn spawn_ant(&mut self) -> usize {
        let i = self.tasks.len();
        self.tasks.push(Assignment::RAW_IDLE);
        let (w, bit) = mask_slot(i);
        if w == self.idle_words.len() {
            self.idle_words.push(0);
        }
        self.idle_words[w] |= bit;
        self.idle += 1;
        i
    }

    /// Removes ant `i` by swap-removal; returns the index of the ant that
    /// moved into slot `i` (the previous last ant), if any. Callers must
    /// mirror the swap in any parallel per-ant arrays (controllers, RNGs).
    pub fn kill_ant(&mut self, i: usize) -> Option<usize> {
        match self.assignment(i) {
            Assignment::Idle => self.idle -= 1,
            Assignment::Task(j) => self.loads[j as usize] -= 1,
        }
        let last = self.tasks.len() - 1;
        let (lw, lbit) = mask_slot(last);
        let last_idle = self.idle_words[lw] & lbit != 0;
        self.idle_words[lw] &= !lbit;
        self.tasks.swap_remove(i);
        self.idle_words.truncate(self.tasks.len().div_ceil(64));
        if i < self.tasks.len() {
            let (w, bit) = mask_slot(i);
            if last_idle {
                self.idle_words[w] |= bit;
            } else {
                self.idle_words[w] &= !bit;
            }
            Some(last)
        } else {
            None
        }
    }

    /// Full recount of loads, idle count and the packed idle mask from
    /// the task column; true iff the incremental bookkeeping matches.
    /// Used by tests and debug asserts.
    pub fn recount_consistent(&self) -> bool {
        let mut loads = vec![0u32; self.loads.len()];
        let mut idle = 0u32;
        let mut words = vec![0u64; self.num_ants().div_ceil(64)];
        for i in 0..self.num_ants() {
            match self.assignment(i) {
                Assignment::Idle => {
                    idle += 1;
                    let (w, bit) = mask_slot(i);
                    words[w] |= bit;
                }
                Assignment::Task(j) => loads[j as usize] += 1,
            }
        }
        loads == self.loads && idle == self.idle && words == self.idle_words
    }

    /// Regret of the current configuration: `r = Σ_j |Δ(j)|`.
    pub fn instant_regret(&self) -> u64 {
        self.demands
            .as_slice()
            .iter()
            .zip(&self.loads)
            .map(|(&d, &w)| (d as i64 - i64::from(w)).unsigned_abs())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::ColumnWriter;
    use proptest::prelude::*;

    fn colony() -> ColonyState {
        ColonyState::new(10, DemandVector::new(vec![3, 4]))
    }

    #[test]
    fn starts_all_idle() {
        let c = colony();
        assert_eq!(c.num_ants(), 10);
        assert_eq!(c.num_tasks(), 2);
        assert_eq!(c.idle_count(), 10);
        assert_eq!(c.load(0), 0);
        assert_eq!(c.deficit(0), 3);
        assert_eq!(c.instant_regret(), 7);
        assert_eq!(c.idle_mask(), &[0x3FF]);
        assert!(c.recount_consistent());
    }

    #[test]
    fn apply_moves_load() {
        let mut c = colony();
        c.apply(0, Assignment::Task(1));
        c.apply(1, Assignment::Task(1));
        assert_eq!(c.load(1), 2);
        assert_eq!(c.idle_count(), 8);
        assert_eq!(c.deficit(1), 2);
        c.apply(0, Assignment::Task(0));
        assert_eq!(c.load(0), 1);
        assert_eq!(c.load(1), 1);
        c.apply(0, Assignment::Idle);
        assert_eq!(c.load(0), 0);
        assert_eq!(c.idle_count(), 9);
        assert!(c.recount_consistent());
        // No-op apply is a no-op.
        c.apply(5, Assignment::Idle);
        assert!(c.recount_consistent());
    }

    #[test]
    fn deficits_into_matches_deficit() {
        let mut c = colony();
        for i in 0..5 {
            c.apply(i, Assignment::Task(1));
        }
        let mut buf = Vec::new();
        c.deficits_into(&mut buf);
        assert_eq!(buf, vec![3, -1]);
        assert_eq!(c.deficit(1), -1);
        assert_eq!(c.instant_regret(), 4);
    }

    #[test]
    fn spawn_and_kill() {
        let mut c = colony();
        c.apply(9, Assignment::Task(0));
        let idx = c.spawn_ant();
        assert_eq!(idx, 10);
        assert_eq!(c.num_ants(), 11);
        assert_eq!(c.idle_count(), 10);
        // Kill the working ant 9: ant 10 swaps into slot 9.
        let moved = c.kill_ant(9);
        assert_eq!(moved, Some(10));
        assert_eq!(c.num_ants(), 10);
        assert_eq!(c.load(0), 0);
        assert!(c.recount_consistent());
        // Killing the last ant reports no swap.
        let last = c.num_ants() - 1;
        assert_eq!(c.kill_ant(last), None);
        assert!(c.recount_consistent());
    }

    #[test]
    fn spawn_kill_across_word_boundary() {
        let mut c = ColonyState::new(64, DemandVector::new(vec![10]));
        assert_eq!(c.idle_mask().len(), 1);
        let idx = c.spawn_ant();
        assert_eq!(idx, 64);
        assert_eq!(c.idle_mask().len(), 2);
        assert!(c.recount_consistent());
        c.apply(64, Assignment::Task(0));
        // Kill inside the first word: working ant 64 swaps into slot 0.
        assert_eq!(c.kill_ant(0), Some(64));
        assert_eq!(c.idle_mask().len(), 1);
        assert_eq!(c.load(0), 1);
        assert_eq!(c.assignment(0), Assignment::Task(0));
        assert!(c.recount_consistent());
    }

    #[test]
    fn commit_round_swaps_and_applies() {
        let mut c = colony();
        let mut next = TaskColumn::new(10);
        let mut delta = RoundDelta::new(2);
        {
            let prev = c.task_column().clone();
            let mut w = ColumnWriter::new(&prev, &next, &mut delta);
            // Ants 0..3 go to task 0, ant 3 to task 1, rest stay idle.
            for i in 0u32..10 {
                let target = match i {
                    0..=2 => 0,
                    3 => 1,
                    _ => Assignment::RAW_IDLE,
                };
                w.write(i, target);
            }
        }
        c.commit_round(&mut next, &delta);
        assert_eq!(delta.switches(), 4);
        assert_eq!(c.load(0), 3);
        assert_eq!(c.load(1), 1);
        assert_eq!(c.idle_count(), 6);
        assert_eq!(c.assignment(3), Assignment::Task(1));
        assert!(c.recount_consistent());
    }

    #[test]
    fn apply_round_delta_with_loaned_column() {
        let mut c = colony();
        // The parallel segment lends the column out and double-buffers
        // by parity; the colony tracks loads/idle/mask via deltas only.
        let columns = [c.take_column(), TaskColumn::new(10)];
        assert_eq!(c.num_ants(), 0, "column is on loan");
        let mut d0 = RoundDelta::new(2);
        let mut d1 = RoundDelta::new(2);
        {
            let mut w = ColumnWriter::new(&columns[0], &columns[1], &mut d0);
            for i in 0u32..5 {
                w.write(i, 0);
            }
        }
        {
            let mut w = ColumnWriter::new(&columns[0], &columns[1], &mut d1);
            for i in 5u32..10 {
                let t = if i == 5 { 1 } else { Assignment::RAW_IDLE };
                w.write(i, t);
            }
        }
        // Worker deltas merge in either order; the written column is
        // restored as authoritative at segment end (parity 1).
        c.apply_round_delta(&d1);
        c.apply_round_delta(&d0);
        assert_eq!(c.load(0), 5);
        assert_eq!(c.load(1), 1);
        assert_eq!(c.idle_count(), 4);
        let [_, written] = columns;
        c.restore_column(written);
        assert_eq!(c.assignment(5), Assignment::Task(1));
        assert!(c.recount_consistent());
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn apply_round_delta_rejects_negative_load() {
        let mut c = colony();
        let mut d = RoundDelta::new(2);
        d.load_deltas[0] = -1;
        d.idle_delta = 1;
        c.apply_round_delta(&d);
    }

    proptest! {
        /// Any sequence of assignment moves keeps incremental bookkeeping
        /// (loads, idle count and packed mask) consistent with a recount,
        /// and total mass conserved.
        #[test]
        fn bookkeeping_is_consistent(moves in proptest::collection::vec((0usize..10, 0u32..3), 0..200)) {
            let mut c = colony();
            for (ant, target) in moves {
                let next = if target == 2 { Assignment::Idle } else { Assignment::Task(target) };
                c.apply(ant, next);
                prop_assert!(c.recount_consistent());
                let mass = c.idle_count() + c.load(0) + c.load(1);
                prop_assert_eq!(mass, 10);
            }
        }

        /// A fused round (column writes + one delta) ends in the same
        /// state as the equivalent sequence of per-ant `apply` calls.
        #[test]
        fn fused_round_matches_apply(targets in proptest::collection::vec(0u32..4, 10)) {
            let mut fused = colony();
            let mut reference = colony();
            let mut next = TaskColumn::new(10);
            let mut delta = RoundDelta::new(2);
            {
                let prev = fused.task_column().clone();
                let mut w = ColumnWriter::new(&prev, &next, &mut delta);
                for (i, &t) in targets.iter().enumerate() {
                    let a = if t >= 2 { Assignment::Idle } else { Assignment::Task(t) };
                    w.write(i as u32, a.to_raw());
                    reference.apply(i, a);
                }
            }
            fused.commit_round(&mut next, &delta);
            prop_assert_eq!(fused.assignments(), reference.assignments());
            prop_assert_eq!(fused.loads(), reference.loads());
            prop_assert_eq!(fused.idle_count(), reference.idle_count());
            prop_assert_eq!(fused.idle_mask(), reference.idle_mask());
            prop_assert!(fused.recount_consistent());
        }
    }
}
