//! Triggered events: timeline entries whose firing condition is a
//! predicate over observable colony state rather than a round number.
//!
//! A [`Trigger`] pairs a [`Condition`] with an [`Event`]. At the end of
//! every round both engines summarize the colony into a [`ColonyView`]
//! and feed it to [`Trigger::observe`]; a trigger whose condition is
//! satisfied *arms* and its event fires at the start of the next round,
//! on the same reserved per-round `EVENT` stream as scripted one-shots
//! — so triggered runs keep the full bit-identity contract (serial ==
//! `run_parallel` == checkpoint-restore mid-script).
//!
//! The mutable part of a trigger (consecutive-round streaks, firing
//! count, cooldown bookkeeping, last-round deficits for the
//! rate-of-change conditions) lives in a separate [`TriggerState`] so
//! the scenario stays immutable config and checkpoints can carry the
//! runtime state verbatim (checkpoint format v4; the deficit history
//! was added in v7).
//!
//! # Examples
//!
//! "Scramble the colony the moment it has looked settled for 16
//! consecutive rounds, at most twice, no sooner than 300 rounds apart":
//!
//! ```
//! use antalloc_env::{ColonyView, Condition, Event, Trigger, TriggerState};
//!
//! let trigger = Trigger {
//!     when: Condition::RegretBelow { threshold: 40, for_rounds: 16 },
//!     event: Event::Scramble,
//!     cooldown: 300,
//!     max_firings: 2,
//! };
//! let mut state = TriggerState::new(&trigger);
//! // 15 settled rounds: not yet.
//! for round in 1..=15 {
//!     let view = ColonyView { round, regret: 10, population: 500, idle: 3, deficits: &[5, 5] };
//!     assert!(!trigger.observe(&mut state, &view));
//! }
//! // The 16th arms it; the event fires at the start of round 17.
//! let view = ColonyView { round: 16, regret: 10, population: 500, idle: 3, deficits: &[5, 5] };
//! assert!(trigger.observe(&mut state, &view));
//! ```

use crate::timeline::Event;

/// The end-of-round colony summary a [`Condition`] is evaluated over.
///
/// Deliberately coarse: these are colony-level observables any
/// experiment harness can compute, not per-ant state — the adversary
/// reacts to what a observer of the system could see.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ColonyView<'a> {
    /// The round that just completed (1-based).
    pub round: u64,
    /// Instantaneous regret `r(t) = Σ|Δ(j)_t|` after this round.
    pub regret: u64,
    /// Ants alive after this round.
    pub population: usize,
    /// Idle ants after this round.
    pub idle: u64,
    /// Per-task deficits `Δ(j) = d(j) − W(j)` after this round, in task
    /// order (length `k`; the per-task conditions index into it).
    pub deficits: &'a [i64],
}

/// A predicate over a [`ColonyView`], composable with [`Condition::And`]
/// / [`Condition::Or`].
///
/// The `for_rounds` variants hold only after the inequality has held
/// for that many *consecutive* end-of-round views; the streak counters
/// live in [`TriggerState`] (one per streaked leaf, in pre-order),
/// reset whenever the inequality breaks and whenever the trigger
/// fires. The rate-of-change leaf additionally remembers the previous
/// round's deficit (also in [`TriggerState`], *not* reset on firing —
/// it is observation history, not accumulation).
#[derive(Clone, Debug, PartialEq)]
pub enum Condition {
    /// Regret strictly above `threshold` for `for_rounds` consecutive
    /// rounds (the colony is visibly struggling).
    RegretAbove {
        /// Regret must exceed this.
        threshold: u64,
        /// ... for this many consecutive rounds (≥ 1).
        for_rounds: u32,
    },
    /// Regret strictly below `threshold` for `for_rounds` consecutive
    /// rounds (the adversarial "strike once it has settled").
    RegretBelow {
        /// Regret must stay under this.
        threshold: u64,
        /// ... for this many consecutive rounds (≥ 1).
        for_rounds: u32,
    },
    /// Population strictly below `threshold` ants.
    PopulationBelow {
        /// Ant count must be under this.
        threshold: usize,
    },
    /// The round counter has reached `round` (composes clock bounds
    /// into state predicates, e.g. "settled *and* past round 5000").
    RoundReached {
        /// Satisfied from this round on (≥ 1).
        round: u64,
    },
    /// Deficit of one task strictly above `threshold` for `for_rounds`
    /// consecutive rounds (that task is visibly starved; negative
    /// thresholds express "persistently overloaded below −t").
    DeficitAbove {
        /// Task index (0-based, must be `< k`).
        task: usize,
        /// Deficit must exceed this.
        threshold: i64,
        /// ... for this many consecutive rounds (≥ 1).
        for_rounds: u32,
    },
    /// Deficit of one task *rising* by strictly more than `min_rise`
    /// per round, for `for_rounds` consecutive rounds — a derivative
    /// condition that reacts to demand shocks before the absolute
    /// level clears any threshold. The first observed round never
    /// holds (there is no previous deficit to difference against).
    DeficitRateAbove {
        /// Task index (0-based, must be `< k`).
        task: usize,
        /// Round-over-round rise must exceed this (may be negative to
        /// mean "not falling faster than").
        min_rise: i64,
        /// ... for this many consecutive rounds (≥ 1).
        for_rounds: u32,
    },
    /// Both sub-conditions hold.
    And(Box<Condition>, Box<Condition>),
    /// Either sub-condition holds.
    Or(Box<Condition>, Box<Condition>),
}

/// Sentinel marking a rate leaf that has not yet observed a deficit
/// (checkpoints carry it verbatim, so a restored run differences
/// against exactly the rounds an uninterrupted run would have).
const PREV_UNSET: i64 = i64::MIN;

impl Condition {
    /// Number of streak counters this condition needs (one per
    /// `RegretAbove`/`RegretBelow`/`DeficitAbove`/`DeficitRateAbove`
    /// leaf, in pre-order).
    pub fn num_streaks(&self) -> usize {
        match self {
            Condition::RegretAbove { .. }
            | Condition::RegretBelow { .. }
            | Condition::DeficitAbove { .. }
            | Condition::DeficitRateAbove { .. } => 1,
            Condition::PopulationBelow { .. } | Condition::RoundReached { .. } => 0,
            Condition::And(a, b) | Condition::Or(a, b) => a.num_streaks() + b.num_streaks(),
        }
    }

    /// Number of previous-deficit slots this condition needs (one per
    /// `DeficitRateAbove` leaf, in pre-order).
    pub fn num_prevs(&self) -> usize {
        match self {
            Condition::DeficitRateAbove { .. } => 1,
            Condition::RegretAbove { .. }
            | Condition::RegretBelow { .. }
            | Condition::DeficitAbove { .. }
            | Condition::PopulationBelow { .. }
            | Condition::RoundReached { .. } => 0,
            Condition::And(a, b) | Condition::Or(a, b) => a.num_prevs() + b.num_prevs(),
        }
    }

    /// Evaluates against one view, advancing the streak counters and
    /// the previous-deficit history.
    ///
    /// Every leaf is evaluated every round — no boolean short-circuit —
    /// so streaks and histories advance identically whatever the
    /// surrounding `And`/`Or` structure evaluates to.
    fn eval(
        &self,
        view: &ColonyView<'_>,
        streaks: &mut [u32],
        next: &mut usize,
        prevs: &mut [i64],
        next_prev: &mut usize,
    ) -> bool {
        match self {
            Condition::RegretAbove {
                threshold,
                for_rounds,
            } => streak(view.regret > *threshold, *for_rounds, streaks, next),
            Condition::RegretBelow {
                threshold,
                for_rounds,
            } => streak(view.regret < *threshold, *for_rounds, streaks, next),
            Condition::PopulationBelow { threshold } => view.population < *threshold,
            Condition::RoundReached { round } => view.round >= *round,
            Condition::DeficitAbove {
                task,
                threshold,
                for_rounds,
            } => streak(
                view.deficits[*task] > *threshold,
                *for_rounds,
                streaks,
                next,
            ),
            Condition::DeficitRateAbove {
                task,
                min_rise,
                for_rounds,
            } => {
                let current = view.deficits[*task];
                let p = &mut prevs[*next_prev];
                *next_prev += 1;
                let held = *p != PREV_UNSET && current.saturating_sub(*p) > *min_rise;
                *p = current;
                streak(held, *for_rounds, streaks, next)
            }
            Condition::And(a, b) => {
                let left = a.eval(view, streaks, next, prevs, next_prev);
                let right = b.eval(view, streaks, next, prevs, next_prev);
                left && right
            }
            Condition::Or(a, b) => {
                let left = a.eval(view, streaks, next, prevs, next_prev);
                let right = b.eval(view, streaks, next, prevs, next_prev);
                left || right
            }
        }
    }

    /// Checks the condition's parameters against a colony with
    /// `num_tasks` tasks.
    ///
    /// Nesting is capped at the same 64 levels the checkpoint decoder
    /// accepts, so any condition that validates also round-trips
    /// through serialized checkpoints.
    pub(crate) fn validate(&self, num_tasks: usize) -> Result<(), String> {
        self.validate_at(0, num_tasks)
    }

    fn validate_at(&self, depth: u32, num_tasks: usize) -> Result<(), String> {
        if depth > 64 {
            return Err("condition nests deeper than 64 levels".into());
        }
        match self {
            Condition::RegretAbove { for_rounds, .. }
            | Condition::RegretBelow { for_rounds, .. } => {
                if *for_rounds == 0 {
                    return Err("for_rounds must be at least 1".into());
                }
                Ok(())
            }
            Condition::DeficitAbove {
                task, for_rounds, ..
            }
            | Condition::DeficitRateAbove {
                task, for_rounds, ..
            } => {
                if *task >= num_tasks {
                    return Err(format!(
                        "deficit condition references task {task}, colony has \
                         {num_tasks} tasks"
                    ));
                }
                if *for_rounds == 0 {
                    return Err("for_rounds must be at least 1".into());
                }
                Ok(())
            }
            Condition::PopulationBelow { threshold } => {
                if *threshold == 0 {
                    return Err("population-below threshold must be at least 1".into());
                }
                Ok(())
            }
            Condition::RoundReached { round } => {
                if *round == 0 {
                    return Err("round-reached round must be ≥ 1 (rounds are 1-based)".into());
                }
                Ok(())
            }
            Condition::And(a, b) | Condition::Or(a, b) => {
                a.validate_at(depth + 1, num_tasks)?;
                b.validate_at(depth + 1, num_tasks)
            }
        }
    }
}

/// Advances one streak counter and reports whether it reached
/// `for_rounds`.
fn streak(held: bool, for_rounds: u32, streaks: &mut [u32], next: &mut usize) -> bool {
    let s = &mut streaks[*next];
    *next += 1;
    if held {
        *s = s.saturating_add(1);
    } else {
        *s = 0;
    }
    *s >= for_rounds
}

/// A conditional timeline entry: `event` fires (at the start of the
/// next round) whenever `when` is satisfied by the end-of-round
/// [`ColonyView`], subject to `cooldown` and `max_firings`.
#[derive(Clone, Debug, PartialEq)]
pub struct Trigger {
    /// The firing condition.
    pub when: Condition,
    /// What happens when it fires.
    pub event: Event,
    /// Minimum rounds between firings (0 = none): after firing at
    /// round `f`, the trigger cannot re-arm before round `f + cooldown`
    /// completes. Streaks keep accumulating through the cooldown.
    pub cooldown: u64,
    /// Firing budget (0 = unlimited). An exhausted trigger stops
    /// observing entirely.
    pub max_firings: u32,
}

impl Trigger {
    /// A one-shot trigger (`max_firings = 1`, no cooldown).
    pub fn once(when: Condition, event: Event) -> Self {
        Self {
            when,
            event,
            cooldown: 0,
            max_firings: 1,
        }
    }

    /// Whether the firing budget is spent.
    pub fn exhausted(&self, state: &TriggerState) -> bool {
        self.max_firings != 0 && state.firings >= self.max_firings
    }

    /// Feeds one end-of-round view to the trigger. Returns whether the
    /// trigger is now armed (its event fires at the start of the next
    /// round).
    pub fn observe(&self, state: &mut TriggerState, view: &ColonyView<'_>) -> bool {
        if state.pending {
            return true;
        }
        if self.exhausted(state) {
            return false;
        }
        let mut next = 0;
        let mut next_prev = 0;
        let satisfied = self.when.eval(
            view,
            &mut state.streaks,
            &mut next,
            &mut state.prev_deficits,
            &mut next_prev,
        );
        debug_assert_eq!(next, state.streaks.len());
        debug_assert_eq!(next_prev, state.prev_deficits.len());
        let cooling = self.cooldown > 0
            && state.firings > 0
            && view.round < state.last_fired.saturating_add(self.cooldown);
        if satisfied && !cooling {
            state.pending = true;
        }
        state.pending
    }

    /// Records a firing at the start of `round`, disarming the trigger
    /// and resetting its streaks (so `for_rounds` re-accumulates).
    pub fn fire(&self, state: &mut TriggerState, round: u64) {
        debug_assert!(state.pending, "fire without arm");
        state.firings = state.firings.saturating_add(1);
        state.last_fired = round;
        state.pending = false;
        state.streaks.fill(0);
    }

    /// Checks the trigger against a colony with `num_tasks` tasks.
    ///
    /// Population tracking is *not* attempted for triggered kills —
    /// their firing rounds depend on the run — so, like kills inside
    /// cycles, they clamp at runtime (at least one ant survives).
    pub(crate) fn validate(&self, num_tasks: usize) -> Result<(), String> {
        self.when.validate(num_tasks)?;
        self.event.validate(num_tasks)
    }
}

/// The mutable runtime state of one [`Trigger`], carried by engines and
/// serialized into v4 checkpoints (the previous-deficit history was
/// added in v7; older checkpoints decode it as unset).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TriggerState {
    /// Consecutive-round counters, one per streaked leaf of the
    /// condition (pre-order).
    pub streaks: Vec<u32>,
    /// Last observed deficit, one per `DeficitRateAbove` leaf of the
    /// condition (pre-order); `i64::MIN` marks "not yet observed".
    /// Unlike streaks, this is *not* cleared when the trigger fires.
    pub prev_deficits: Vec<i64>,
    /// Firings so far.
    pub firings: u32,
    /// Round of the last firing (0 = never fired).
    pub last_fired: u64,
    /// Armed at the end of the previous round: the event fires at the
    /// start of the next round.
    pub pending: bool,
}

impl TriggerState {
    /// Fresh state for `trigger` (streaks and deficit history sized to
    /// its condition).
    pub fn new(trigger: &Trigger) -> Self {
        Self {
            streaks: vec![0; trigger.when.num_streaks()],
            prev_deficits: vec![PREV_UNSET; trigger.when.num_prevs()],
            ..Self::default()
        }
    }

    /// Whether the state's shape matches `trigger` (checkpoint decode
    /// uses this to reject corrupted state sections).
    pub fn matches(&self, trigger: &Trigger) -> bool {
        self.streaks.len() == trigger.when.num_streaks()
            && self.prev_deficits.len() == trigger.when.num_prevs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(round: u64, regret: u64, population: usize) -> ColonyView<'static> {
        ColonyView {
            round,
            regret,
            population,
            idle: 0,
            deficits: &[],
        }
    }

    fn deficit_view(round: u64, deficits: &[i64]) -> ColonyView<'_> {
        ColonyView {
            round,
            regret: 0,
            population: 100,
            idle: 0,
            deficits,
        }
    }

    #[test]
    fn regret_streaks_require_consecutive_rounds() {
        let t = Trigger::once(
            Condition::RegretBelow {
                threshold: 10,
                for_rounds: 3,
            },
            Event::Scramble,
        );
        let mut s = TriggerState::new(&t);
        assert!(!t.observe(&mut s, &view(1, 5, 100)));
        assert!(!t.observe(&mut s, &view(2, 5, 100)));
        // Streak broken: restart.
        assert!(!t.observe(&mut s, &view(3, 50, 100)));
        assert!(!t.observe(&mut s, &view(4, 5, 100)));
        assert!(!t.observe(&mut s, &view(5, 5, 100)));
        assert!(t.observe(&mut s, &view(6, 5, 100)));
        assert!(s.pending);
    }

    #[test]
    fn max_firings_exhausts_the_trigger() {
        let t = Trigger {
            when: Condition::RegretAbove {
                threshold: 10,
                for_rounds: 1,
            },
            event: Event::Scramble,
            cooldown: 0,
            max_firings: 2,
        };
        let mut s = TriggerState::new(&t);
        let mut firings = 0;
        for round in 1..=10 {
            if t.observe(&mut s, &view(round, 100, 50)) {
                t.fire(&mut s, round + 1);
                firings += 1;
            }
        }
        assert_eq!(firings, 2);
        assert!(t.exhausted(&s));
    }

    #[test]
    fn cooldown_blocks_rearming_but_streaks_keep_counting() {
        let t = Trigger {
            when: Condition::RegretAbove {
                threshold: 10,
                for_rounds: 2,
            },
            event: Event::Scramble,
            cooldown: 5,
            max_firings: 0,
        };
        let mut s = TriggerState::new(&t);
        assert!(!t.observe(&mut s, &view(1, 99, 50)));
        assert!(t.observe(&mut s, &view(2, 99, 50)));
        t.fire(&mut s, 3);
        // Rounds 3..7 are inside the cooldown (3 + 5 = 8): never armed,
        // even though the streak is satisfied again from round 4 on.
        for round in 3..8 {
            assert!(!t.observe(&mut s, &view(round, 99, 50)), "round {round}");
        }
        // Round 8 is out of cooldown and the streak is long satisfied.
        assert!(t.observe(&mut s, &view(8, 99, 50)));
    }

    #[test]
    fn and_or_compose_and_update_all_streaks() {
        let c = Condition::And(
            Box::new(Condition::RegretBelow {
                threshold: 10,
                for_rounds: 2,
            }),
            Box::new(Condition::RoundReached { round: 5 }),
        );
        assert_eq!(c.num_streaks(), 1);
        let t = Trigger::once(c, Event::Scramble);
        let mut s = TriggerState::new(&t);
        // Settled well before round 5: the round gate holds it back,
        // but the streak accumulates, so round 5 arms immediately.
        for round in 1..5 {
            assert!(!t.observe(&mut s, &view(round, 0, 100)), "round {round}");
        }
        assert!(t.observe(&mut s, &view(5, 0, 100)));

        let c = Condition::Or(
            Box::new(Condition::PopulationBelow { threshold: 50 }),
            Box::new(Condition::RegretAbove {
                threshold: 1000,
                for_rounds: 1,
            }),
        );
        let t = Trigger::once(c, Event::Scramble);
        let mut s = TriggerState::new(&t);
        assert!(!t.observe(&mut s, &view(1, 0, 100)));
        assert!(t.observe(&mut s, &view(2, 0, 49)));
    }

    #[test]
    fn deficit_above_streaks_on_one_task() {
        let t = Trigger::once(
            Condition::DeficitAbove {
                task: 1,
                threshold: 10,
                for_rounds: 2,
            },
            Event::Scramble,
        );
        let mut s = TriggerState::new(&t);
        assert_eq!(s.streaks.len(), 1);
        assert!(s.prev_deficits.is_empty());
        // Task 0 starving is irrelevant; task 1 must hold for 2 rounds.
        assert!(!t.observe(&mut s, &deficit_view(1, &[99, 11])));
        assert!(!t.observe(&mut s, &deficit_view(2, &[99, 5])));
        assert!(!t.observe(&mut s, &deficit_view(3, &[0, 11])));
        assert!(t.observe(&mut s, &deficit_view(4, &[0, 12])));
    }

    #[test]
    fn deficit_rate_differences_consecutive_rounds() {
        let t = Trigger::once(
            Condition::DeficitRateAbove {
                task: 0,
                min_rise: 5,
                for_rounds: 2,
            },
            Event::Scramble,
        );
        let mut s = TriggerState::new(&t);
        assert_eq!(s.prev_deficits.len(), 1);
        // First observation can never hold: no previous deficit.
        assert!(!t.observe(&mut s, &deficit_view(1, &[100])));
        assert_eq!(s.prev_deficits, vec![100]);
        // +6 > 5 holds; a second consecutive +6 arms it.
        assert!(!t.observe(&mut s, &deficit_view(2, &[106])));
        assert!(t.observe(&mut s, &deficit_view(3, &[112])));
        t.fire(&mut s, 4);
        // Firing clears streaks but keeps the observation history.
        assert_eq!(s.streaks, vec![0]);
        assert_eq!(s.prev_deficits, vec![112]);

        // A flat or falling deficit breaks the streak.
        let t = Trigger::once(
            Condition::DeficitRateAbove {
                task: 0,
                min_rise: 0,
                for_rounds: 2,
            },
            Event::Scramble,
        );
        let mut s = TriggerState::new(&t);
        assert!(!t.observe(&mut s, &deficit_view(1, &[10])));
        assert!(!t.observe(&mut s, &deficit_view(2, &[11])));
        assert!(!t.observe(&mut s, &deficit_view(3, &[11])));
        assert!(!t.observe(&mut s, &deficit_view(4, &[12])));
        assert!(t.observe(&mut s, &deficit_view(5, &[13])));
    }

    #[test]
    fn validation_rejects_degenerate_parameters() {
        assert!(Condition::RegretBelow {
            threshold: 5,
            for_rounds: 0
        }
        .validate(2)
        .is_err());
        assert!(Condition::RoundReached { round: 0 }.validate(2).is_err());
        assert!(Condition::PopulationBelow { threshold: 0 }
            .validate(2)
            .is_err());
        assert!(Condition::And(
            Box::new(Condition::RoundReached { round: 1 }),
            Box::new(Condition::RegretAbove {
                threshold: 1,
                for_rounds: 0
            }),
        )
        .validate(2)
        .is_err());
        // Deficit leaves check the task index and the streak length.
        assert!(Condition::DeficitAbove {
            task: 2,
            threshold: 0,
            for_rounds: 1
        }
        .validate(2)
        .unwrap_err()
        .contains("task 2"));
        assert!(Condition::DeficitRateAbove {
            task: 0,
            min_rise: 0,
            for_rounds: 0
        }
        .validate(2)
        .is_err());
        assert!(Condition::DeficitRateAbove {
            task: 1,
            min_rise: -3,
            for_rounds: 1
        }
        .validate(2)
        .is_ok());
        // Event payloads are validated too (task index out of range).
        let t = Trigger::once(Condition::RoundReached { round: 1 }, Event::StampedeTo(4));
        assert!(t.validate(2).is_err());
        let t = Trigger::once(Condition::RoundReached { round: 1 }, Event::Scramble);
        assert!(t.validate(2).is_ok());
        // Nesting past the checkpoint decoder's depth cap is rejected
        // up front (a condition that validates must also round-trip).
        let mut deep = Condition::RoundReached { round: 1 };
        for _ in 0..70 {
            deep = Condition::And(
                Box::new(deep),
                Box::new(Condition::RoundReached { round: 1 }),
            );
        }
        assert!(deep.validate(2).unwrap_err().contains("64"));
    }

    #[test]
    fn state_shape_matches_condition() {
        let t = Trigger::once(
            Condition::And(
                Box::new(Condition::RegretAbove {
                    threshold: 1,
                    for_rounds: 2,
                }),
                Box::new(Condition::RegretBelow {
                    threshold: 9,
                    for_rounds: 3,
                }),
            ),
            Event::Scramble,
        );
        let s = TriggerState::new(&t);
        assert_eq!(s.streaks.len(), 2);
        assert!(s.matches(&t));
        let other = Trigger::once(Condition::RoundReached { round: 1 }, Event::Scramble);
        assert!(!s.matches(&other));
    }
}
