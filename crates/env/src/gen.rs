//! Seeded shock-schedule generation: Poisson-spaced adversarial
//! timelines drawn from the reserved `TIMELINE` stream.
//!
//! A [`TimelineGen`] describes a *distribution* over shock schedules —
//! exponentially spaced kills, spawns, scrambles or demand steps with
//! configurable magnitude ranges. [`crate::Timeline::compile`] expands
//! every generator into concrete one-shot events as a pure function of
//! `(scenario, master seed)`, so one scenario file plus a seed list
//! yields an adversarial-robustness *ensemble*: every seed sees a
//! different schedule, and every run remains exactly reproducible
//! (including across checkpoint restore, which re-expands identically).

use antalloc_rng::{uniform_f64, AntRng};

use crate::timeline::{Event, TimedEvent};

/// What kind of shock a generator emits, with its magnitude range.
///
/// Magnitudes are *relative to the scenario's initial state* (initial
/// colony size `n`, initial demand vector), so a generator's meaning is
/// independent of when its arrivals happen to land.
#[derive(Clone, Debug, PartialEq)]
pub enum GenShock {
    /// Kill a uniform fraction of the initial colony, drawn from
    /// `[min_frac, max_frac]` per arrival. Kills clamp at runtime so at
    /// least one ant survives (like kills inside cycles, generated
    /// firing counts cannot be tracked statically).
    Kill {
        /// Smallest fraction of the initial `n` to kill (> 0).
        min_frac: f64,
        /// Largest fraction of the initial `n` to kill (≤ 1).
        max_frac: f64,
    },
    /// Spawn a uniform fraction of the initial colony.
    Spawn {
        /// Smallest fraction of the initial `n` to spawn (> 0).
        min_frac: f64,
        /// Largest fraction of the initial `n` to spawn.
        max_frac: f64,
    },
    /// Re-draw every assignment uniformly (no magnitude).
    Scramble,
    /// Replace the demand vector: each task's demand is its *initial*
    /// demand times an independent uniform factor from
    /// `[min_factor, max_factor]`, floored at 1.
    DemandStep {
        /// Smallest per-task multiplier (> 0).
        min_factor: f64,
        /// Largest per-task multiplier.
        max_factor: f64,
    },
}

/// A seeded random shock schedule: arrivals form a discretized Poisson
/// process (i.i.d. exponential gaps of mean `mean_gap`, ceiled to whole
/// rounds) on `[start, until]`, each arrival drawing one [`GenShock`]
/// magnitude.
#[derive(Clone, Debug, PartialEq)]
pub struct TimelineGen {
    /// First round an arrival may land on (≥ 1).
    pub start: u64,
    /// Last round an arrival may land on (inclusive).
    pub until: u64,
    /// Mean rounds between arrivals (finite, ≥ 1).
    pub mean_gap: f64,
    /// The shock each arrival applies.
    pub shock: GenShock,
}

/// Validation ceiling on `(until − start + 1) / mean_gap`: one event is
/// materialized per arrival at compile time, so the expected arrival
/// count must stay small enough that expansion is always cheap.
const MAX_EXPECTED_ARRIVALS: f64 = 1e6;

impl TimelineGen {
    /// Checks the generator's parameters.
    pub(crate) fn validate(&self) -> Result<(), String> {
        if self.start == 0 {
            return Err("start must be ≥ 1 (rounds are 1-based)".into());
        }
        if self.until < self.start {
            return Err(format!(
                "until ({}) must be ≥ start ({})",
                self.until, self.start
            ));
        }
        if !(self.mean_gap.is_finite() && self.mean_gap >= 1.0) {
            return Err(format!(
                "mean_gap must be finite and ≥ 1 round, got {}",
                self.mean_gap
            ));
        }
        // Bound the expected arrival count: compilation materializes one
        // event per arrival, so `until = u64::MAX` with a small gap
        // would otherwise hang engine construction on a config that
        // passed every other check.
        let expected = ((self.until - self.start) as f64 + 1.0) / self.mean_gap;
        if expected > MAX_EXPECTED_ARRIVALS {
            return Err(format!(
                "window/mean_gap implies ~{expected:.0} arrivals; at most \
                 {MAX_EXPECTED_ARRIVALS:.0} expected arrivals are supported \
                 (shrink the window or raise mean_gap)"
            ));
        }
        let range = |name: &str, lo: f64, hi: f64, cap: Option<f64>| -> Result<(), String> {
            if !(lo.is_finite() && hi.is_finite() && 0.0 < lo && lo <= hi) {
                return Err(format!(
                    "{name} range must satisfy 0 < min ≤ max, got [{lo}, {hi}]"
                ));
            }
            if let Some(cap) = cap {
                if hi > cap {
                    return Err(format!("{name} range must stay ≤ {cap}, got max {hi}"));
                }
            }
            Ok(())
        };
        match &self.shock {
            GenShock::Kill { min_frac, max_frac } => {
                range("kill fraction", *min_frac, *max_frac, Some(1.0))
            }
            GenShock::Spawn { min_frac, max_frac } => {
                range("spawn fraction", *min_frac, *max_frac, None)
            }
            GenShock::Scramble => Ok(()),
            GenShock::DemandStep {
                min_factor,
                max_factor,
            } => range("demand factor", *min_factor, *max_factor, None),
        }
    }

    /// Expands the schedule, appending one-shot events to `out`.
    ///
    /// Draw order per arrival is fixed (gap, then magnitude), so the
    /// expansion is a pure function of the generator, the RNG stream,
    /// and the initial `(n, base_demands)`.
    pub(crate) fn events_into(
        &self,
        rng: &mut AntRng,
        n: usize,
        base_demands: &[u64],
        out: &mut Vec<TimedEvent>,
    ) {
        // Arrivals at start − 1 + cumulative gaps; gaps are ≥ 1, so the
        // earliest possible arrival is exactly `start`.
        let mut round = self.start.saturating_sub(1);
        loop {
            round = round.saturating_add(exponential_gap(rng, self.mean_gap));
            if round > self.until {
                return;
            }
            let count_in = |rng: &mut AntRng, lo: f64, hi: f64| -> usize {
                let frac = uniform_f64(rng, lo, hi);
                ((n as f64 * frac).round() as usize).max(1)
            };
            let event = match &self.shock {
                GenShock::Kill { min_frac, max_frac } => Event::Kill {
                    count: count_in(rng, *min_frac, *max_frac),
                },
                GenShock::Spawn { min_frac, max_frac } => Event::Spawn {
                    count: count_in(rng, *min_frac, *max_frac),
                },
                GenShock::Scramble => Event::Scramble,
                GenShock::DemandStep {
                    min_factor,
                    max_factor,
                } => Event::SetDemands(
                    base_demands
                        .iter()
                        .map(|&d| {
                            let factor = uniform_f64(rng, *min_factor, *max_factor);
                            ((d as f64 * factor).round() as u64).max(1)
                        })
                        .collect(),
                ),
            };
            out.push(TimedEvent { at: round, event });
        }
    }
}

/// One exponential inter-arrival gap of the given mean, ceiled to a
/// whole round (≥ 1).
fn exponential_gap(rng: &mut AntRng, mean: f64) -> u64 {
    let u = rng.next_f64(); // in [0, 1), so 1 − u is in (0, 1]
    let gap = -(1.0 - u).ln() * mean;
    (gap.ceil() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use antalloc_rng::Xoshiro256pp;

    fn expand(gen: &TimelineGen, seed: u64) -> Vec<TimedEvent> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut out = Vec::new();
        gen.events_into(&mut rng, 1000, &[100, 200], &mut out);
        out
    }

    fn kill_gen(mean_gap: f64) -> TimelineGen {
        TimelineGen {
            start: 1,
            until: 10_000,
            mean_gap,
            shock: GenShock::Kill {
                min_frac: 0.1,
                max_frac: 0.3,
            },
        }
    }

    #[test]
    fn expansion_is_deterministic_and_seed_sensitive() {
        let gen = kill_gen(500.0);
        assert_eq!(expand(&gen, 7), expand(&gen, 7));
        assert_ne!(expand(&gen, 7), expand(&gen, 8));
    }

    #[test]
    fn arrivals_are_sorted_within_window_and_magnitudes_in_range() {
        let gen = kill_gen(200.0);
        let events = expand(&gen, 3);
        assert!(!events.is_empty());
        let mut prev = 0;
        for timed in &events {
            assert!(timed.at >= gen.start && timed.at <= gen.until);
            assert!(timed.at > prev, "gaps are ≥ 1 so rounds strictly increase");
            prev = timed.at;
            let Event::Kill { count } = &timed.event else {
                panic!("kill generator emitted {timed:?}");
            };
            assert!((100..=300).contains(count), "count {count}");
        }
    }

    #[test]
    fn mean_gap_controls_the_arrival_rate() {
        // Over a 10k window, mean gap 100 should give roughly 100
        // arrivals; a loose 3σ band is plenty to catch a broken clock.
        let n = expand(&kill_gen(100.0), 11).len() as f64;
        assert!((60.0..=140.0).contains(&n), "arrivals {n}");
    }

    #[test]
    fn demand_steps_scale_the_initial_demands() {
        let gen = TimelineGen {
            start: 50,
            until: 5_000,
            mean_gap: 300.0,
            shock: GenShock::DemandStep {
                min_factor: 0.5,
                max_factor: 2.0,
            },
        };
        let events = expand(&gen, 5);
        assert!(!events.is_empty());
        for timed in &events {
            let Event::SetDemands(demands) = &timed.event else {
                panic!("demand generator emitted {timed:?}");
            };
            assert_eq!(demands.len(), 2);
            assert!((50..=200).contains(&demands[0]), "{demands:?}");
            assert!((100..=400).contains(&demands[1]), "{demands:?}");
        }
    }

    #[test]
    fn validation_rejects_degenerate_generators() {
        let ok = kill_gen(100.0);
        assert!(ok.validate().is_ok());
        let mut bad = ok.clone();
        bad.start = 0;
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.until = 0;
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.mean_gap = 0.5;
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.mean_gap = f64::INFINITY;
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.shock = GenShock::Kill {
            min_frac: 0.0,
            max_frac: 0.5,
        };
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.shock = GenShock::Kill {
            min_frac: 0.5,
            max_frac: 1.5,
        };
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.shock = GenShock::DemandStep {
            min_factor: 2.0,
            max_factor: 1.0,
        };
        assert!(bad.validate().is_err());
        let mut ok2 = ok;
        ok2.shock = GenShock::Scramble;
        assert!(ok2.validate().is_ok());
    }

    #[test]
    fn validation_bounds_the_expected_arrival_count() {
        // `until = u64::MAX` (the tempting "shocks forever" spelling)
        // must be rejected: compilation materializes one event per
        // arrival, so the expected count is capped.
        let mut gen = kill_gen(100.0);
        gen.until = u64::MAX;
        assert!(gen.validate().unwrap_err().contains("arrivals"));
        let mut gen = kill_gen(1.0);
        gen.until = 2_000_000;
        assert!(gen.validate().is_err());
        // A million-round window at a sane gap stays fine.
        let mut gen = kill_gen(100.0);
        gen.until = 1_000_000;
        assert!(gen.validate().is_ok());
    }
}
