//! Per-agent stream derivation.
//!
//! Each ant (and each engine subsystem) gets its own [`Xoshiro256pp`]
//! derived from `(master_seed, stream_id)`. Because the derivation is a
//! pure function of the pair, the simulation is reproducible no matter how
//! ants are sharded across threads, and a checkpoint only has to store the
//! generator states, not any global RNG position.

use crate::splitmix::{mix, SplitMix64};
use crate::xoshiro::Xoshiro256pp;

/// Derives independent generator streams from a single master seed.
///
/// ```
/// use antalloc_rng::StreamSeeder;
/// let seeder = StreamSeeder::new(0xfeed);
/// let mut ant0 = seeder.stream(0);
/// let mut ant1 = seeder.stream(1);
/// assert_ne!(ant0.next_u64(), ant1.next_u64());
/// // Same pair, same stream:
/// assert_eq!(
///     seeder.stream(0).next_u64(),
///     {
///         let mut g = StreamSeeder::new(0xfeed).stream(0);
///         g.next_u64()
///     }
/// );
/// ```
#[derive(Clone, Copy, Debug)]
pub struct StreamSeeder {
    master: u64,
}

/// Reserved stream ids for engine subsystems, far above any ant index so
/// the two namespaces cannot collide (ants are indexed from 0).
pub mod reserved {
    /// Engine-level decisions (sequential-model scheduling, perturbations).
    pub const ENGINE: u64 = u64::MAX;
    /// Noise-model internal randomness (e.g. correlated feedback coins).
    pub const NOISE: u64 = u64::MAX - 1;
    /// Initial-configuration scrambling.
    pub const INIT: u64 = u64::MAX - 2;
    /// Mixed-colony membership: the stream whose first output re-seeds
    /// the dedicated sub-seeder that assigns ants to controller
    /// sub-specs (initial shuffle and spawn draws).
    pub const MIX: u64 = u64::MAX - 3;
    /// Timeline events: the stream whose first output re-seeds the
    /// dedicated sub-seeder that hands each event round its own
    /// generator (a pure function of `(master seed, round)`, so
    /// scripted shocks replay bit-identically across serial, parallel
    /// and checkpoint-restored runs).
    pub const EVENT: u64 = u64::MAX - 4;
    /// Timeline *generation*: the stream whose first output re-seeds
    /// the dedicated sub-seeder that hands each shock-schedule
    /// generator its own generator (a pure function of
    /// `(master seed, generator index)`, so a generated timeline is
    /// fully determined by the scenario plus the seed and re-expands
    /// identically on checkpoint restore).
    pub const TIMELINE: u64 = u64::MAX - 5;
    /// Spatial-arena movement: the stream whose first output re-seeds
    /// the dedicated sub-seeder that hands each round its own wander
    /// generator (a pure function of `(master seed, round)`, so ant
    /// movement between sites replays bit-identically across serial,
    /// parallel and checkpoint-restored runs).
    pub const ARENA: u64 = u64::MAX - 6;
}

impl StreamSeeder {
    /// Creates a seeder for `master`.
    #[inline]
    pub fn new(master: u64) -> Self {
        Self { master }
    }

    /// Returns the master seed.
    #[inline]
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derives the generator for `stream`.
    ///
    /// The state words come from a SplitMix64 run seeded with a bijective
    /// mix of `(master, stream)`; distinct pairs therefore yield distinct
    /// SplitMix64 counters and (with overwhelming probability over the
    /// mixes) unrelated xoshiro states.
    #[inline]
    pub fn stream(&self, stream: u64) -> Xoshiro256pp {
        // Mix the pair into a single 64-bit seed. `mix` is bijective, so
        // for a fixed master all streams get distinct seeds.
        let seed = mix(self.master ^ mix(stream));
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        sm.fill(&mut s);
        Xoshiro256pp::from_state(s)
    }

    /// Convenience: the stream for ant `index`.
    #[inline]
    pub fn ant(&self, index: usize) -> Xoshiro256pp {
        self.stream(index as u64)
    }
}

#[cfg(test)]
// disallowed_types: the collision test only needs membership, never
// iteration order, so the randomized hasher is harmless here.
#[allow(clippy::disallowed_types)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn streams_are_deterministic() {
        let a = StreamSeeder::new(77).stream(5).next_u64();
        let b = StreamSeeder::new(77).stream(5).next_u64();
        assert_eq!(a, b);
    }

    #[test]
    fn streams_differ_across_ids_and_masters() {
        let seeder = StreamSeeder::new(123);
        let mut seen = HashSet::new();
        for id in 0..10_000u64 {
            assert!(
                seen.insert(seeder.stream(id).next_u64()),
                "collision at {id}"
            );
        }
        assert_ne!(
            StreamSeeder::new(1).stream(0).next_u64(),
            StreamSeeder::new(2).stream(0).next_u64()
        );
    }

    #[test]
    fn reserved_ids_do_not_collide_with_small_ant_indices() {
        let seeder = StreamSeeder::new(9);
        let engine = seeder.stream(reserved::ENGINE).next_u64();
        for ant in 0..1000 {
            assert_ne!(engine, seeder.ant(ant).next_u64());
        }
    }

    #[test]
    fn first_outputs_look_uniform() {
        // Cross-stream first outputs are the values the simulator actually
        // consumes in round 1; check their mean.
        let seeder = StreamSeeder::new(2024);
        let n = 50_000u64;
        let mean = (0..n).map(|id| seeder.stream(id).next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
