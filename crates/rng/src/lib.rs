//! Deterministic pseudo-randomness substrate for the `antalloc` simulator.
//!
//! The simulator needs randomness with three properties that `rand`'s
//! default generators do not provide out of the box:
//!
//! 1. **Per-agent streams.** Every ant owns an independent generator so the
//!    simulation is bit-reproducible regardless of how ants are partitioned
//!    across threads (see `antalloc-sim::parallel`).
//! 2. **Cheap seeding.** Colonies have up to millions of ants; stream
//!    derivation is a handful of multiplies ([`StreamSeeder`]), not a
//!    cryptographic expansion.
//! 3. **Branch-light sampling.** The hot loop draws one Bernoulli variate
//!    per (ant, task) pair per round; [`Bernoulli`] reduces that to a
//!    64-bit compare against a precomputed threshold, quantized
//!    round-to-nearest onto the `2^-64` grid (realized probability within
//!    `2^-65` of the request). [`Bernoulli::fill`] is the batched form —
//!    N draws against one threshold in one monomorphic loop, bit-identical
//!    to repeated `sample` calls — which the structure-of-arrays bank
//!    loops in `antalloc-core` build their full-vector sampling step on.
//!
//! The generators are the public-domain reference designs:
//! [`SplitMix64`] (stream derivation / state expansion) and
//! [`Xoshiro256pp`] (the workhorse generator, with `jump`/`long_jump`).
//! [`Xoshiro256pp`] also implements [`rand_core::RngCore`] so it can drive
//! any `rand` distribution in tests and examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bernoulli;
mod splitmix;
mod stream;
mod uniform;
mod xoshiro;

pub use bernoulli::Bernoulli;
pub use splitmix::SplitMix64;
pub use stream::{reserved, StreamSeeder};
pub use uniform::{uniform_f64, uniform_index, UniformRange};
pub use xoshiro::Xoshiro256pp;

/// The RNG type carried by every simulated ant.
///
/// A plain alias so call sites say what they mean; the concrete generator
/// is an implementation detail that has changed once already during
/// development and may change again.
pub type AntRng = Xoshiro256pp;
