//! Unbiased uniform integer sampling (Lemire's method).
//!
//! Used for "join one underloaded task uniformly at random" — the one
//! place in the paper's algorithms where a uniform choice over a dynamic
//! set is required, so bias here would directly skew load distributions.

use crate::xoshiro::Xoshiro256pp;

/// Draws a uniform index in `[0, bound)`. Panics if `bound == 0`.
///
/// Lemire's widening-multiply rejection method: unbiased, and in the
/// common case costs one multiply and no division. The rare rejection
/// path delegates to [`UniformRange::sample`] — there is exactly one
/// implementation of the accept/reject loop, so the two entry points
/// cannot drift apart (they must consume identical draws and return
/// identical indices for bit-identity to hold across call sites).
#[inline]
pub fn uniform_index(rng: &mut Xoshiro256pp, bound: usize) -> usize {
    assert!(bound > 0, "uniform_index: empty range");
    // audit:allow(cast): usize → u64 is lossless on every supported (≤64-bit) target.
    let bound = bound as u64;
    let m = u128::from(rng.next_u64()).wrapping_mul(u128::from(bound));
    // audit:allow(cast): intentional — the low 64 bits of the 128-bit product select the rejection zone (Lemire).
    let low = m as u64;
    if low < bound {
        // Possibly in the rejection zone (2^64 mod bound < bound):
        // compute the threshold — deferred until here so the common
        // case pays no division — and let the shared loop finish.
        let range = UniformRange {
            bound,
            threshold: bound.wrapping_neg() % bound,
        };
        if low < range.threshold {
            return range.sample(rng);
        }
    }
    // audit:allow(cast): the high word of the product is < bound, which came from a usize.
    (m >> 64) as usize
}

/// A reusable uniform range `[0, bound)` that precomputes the rejection
/// threshold; worthwhile when the same bound is sampled many times.
#[derive(Clone, Copy, Debug)]
pub struct UniformRange {
    bound: u64,
    threshold: u64,
}

impl UniformRange {
    /// Creates the range `[0, bound)`. Panics if `bound == 0`.
    #[inline]
    pub fn new(bound: usize) -> Self {
        assert!(bound > 0, "UniformRange: empty range");
        // audit:allow(cast): usize → u64 is lossless on every supported (≤64-bit) target.
        let bound = bound as u64;
        Self {
            bound,
            threshold: bound.wrapping_neg() % bound,
        }
    }

    /// Draws one index.
    #[inline]
    pub fn sample(&self, rng: &mut Xoshiro256pp) -> usize {
        loop {
            let m = u128::from(rng.next_u64()).wrapping_mul(u128::from(self.bound));
            // audit:allow(cast): intentional — the low 64 bits of the 128-bit product select the rejection zone (Lemire).
            if (m as u64) >= self.threshold {
                // audit:allow(cast): the high word of the product is < bound, which came from a usize.
                return (m >> 64) as usize;
            }
        }
    }
}

/// Draws a uniform `f64` in `[lo, hi)`.
#[inline]
pub fn uniform_f64(rng: &mut Xoshiro256pp, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.next_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn respects_bounds() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        for bound in [1usize, 2, 3, 7, 100, 1 << 20] {
            for _ in 0..200 {
                assert!(uniform_index(&mut rng, bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn zero_bound_panics() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        uniform_index(&mut rng, 0);
    }

    #[test]
    fn is_close_to_uniform() {
        // Chi-square over 7 buckets (7 doesn't divide 2^64, exercising the
        // rejection path).
        let mut rng = Xoshiro256pp::seed_from_u64(17);
        let bound = 7usize;
        let draws = 70_000;
        let mut counts = vec![0u32; bound];
        for _ in 0..draws {
            counts[uniform_index(&mut rng, bound)] += 1;
        }
        let expect = draws as f64 / bound as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = f64::from(c) - expect;
                d * d / expect
            })
            .sum();
        // dof = 6; 4-sigma is ~ 6 + 4*sqrt(12) ~ 19.9.
        assert!(chi2 < 20.0, "chi2 {chi2}");
    }

    #[test]
    fn range_struct_matches_free_function_distributionally() {
        let mut a = Xoshiro256pp::seed_from_u64(5);
        let mut b = Xoshiro256pp::seed_from_u64(5);
        let range = UniformRange::new(13);
        for _ in 0..1000 {
            assert_eq!(range.sample(&mut a), uniform_index(&mut b, 13));
        }
    }

    proptest! {
        #[test]
        fn uniform_f64_in_bounds(seed: u64, lo in -1e6f64..1e6, width in 1e-6f64..1e6) {
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            let hi = lo + width;
            let x = uniform_f64(&mut rng, lo, hi);
            prop_assert!(x >= lo && x < hi);
        }

        #[test]
        fn uniform_index_in_bounds(seed: u64, bound in 1usize..1_000_000) {
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            prop_assert!(uniform_index(&mut rng, bound) < bound);
        }

        /// The lock-step contract behind the delegation: from identical
        /// generator state, the free function and the precomputed range
        /// must return the same index *and* leave the generator in the
        /// same state (same number of draws consumed) — including across
        /// rejection-path bounds like `(2^63) + 1` where nearly half of
        /// all draws reject.
        #[test]
        fn free_fn_and_range_consume_identical_draws(
            seed: u64,
            pick in 0usize..7,
            small in 1usize..100,
        ) {
            let bound = [
                small,
                3,
                7,
                (1usize << 20) - 1,
                (1usize << 31) + 1,
                usize::MAX / 2 + 2, // huge rejection zone
                usize::MAX,
            ][pick];
            let mut a = Xoshiro256pp::seed_from_u64(seed);
            let mut b = a.clone();
            let range = UniformRange::new(bound);
            for _ in 0..32 {
                prop_assert_eq!(uniform_index(&mut a, bound), range.sample(&mut b));
                prop_assert_eq!(a.state(), b.state());
            }
        }
    }
}
