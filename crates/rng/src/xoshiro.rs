//! Xoshiro256++: the simulator's workhorse generator.
//!
//! Public-domain design by Blackman & Vigna. 256 bits of state, period
//! `2^256 − 1`, passes BigCrush, and the `++` output scrambler avoids the
//! low-linear-complexity low bits of the `+` variant, which matters
//! because [`crate::Bernoulli`] compares raw outputs against thresholds.

use crate::splitmix::SplitMix64;

/// Xoshiro256++ generator.
///
/// ```
/// use antalloc_rng::Xoshiro256pp;
/// let mut a = Xoshiro256pp::seed_from_u64(1);
/// let mut b = Xoshiro256pp::seed_from_u64(1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

#[inline(always)]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

/// Polynomial for `jump()`: advances the stream by `2^128` steps.
const JUMP: [u64; 4] = [
    0x180e_c6d3_3cfd_0aba,
    0xd5a6_1266_f0c9_392c,
    0xa958_2618_e03f_c9aa,
    0x39ab_dc45_29b1_661c,
];

/// Polynomial for `long_jump()`: advances the stream by `2^192` steps.
const LONG_JUMP: [u64; 4] = [
    0x76e1_5d3e_fefd_cbbf,
    0xc500_4e44_1c52_2fb3,
    0x7771_0069_854e_e241,
    0x3910_9bb0_2acb_e635,
];

impl Xoshiro256pp {
    /// Seeds the generator by expanding `seed` through SplitMix64, per the
    /// reference implementation's recommendation.
    #[inline]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        sm.fill(&mut s);
        Self::from_state(s)
    }

    /// Builds a generator from raw state words.
    ///
    /// The all-zero state is a fixed point of the transition function and
    /// is remapped to a fixed non-zero state.
    #[inline]
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0, 0, 0, 0] {
            // Any non-zero constant works; this one is SplitMix64(0..4).
            return Self::seed_from_u64(0);
        }
        Self { s }
    }

    /// Returns the raw state words (for checkpointing).
    #[inline]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Returns the next 64-bit output.
    #[inline(always)]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        result
    }

    /// Returns the next output truncated to 32 bits (upper half, which has
    /// the better statistical quality).
    #[inline(always)]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform `f64` in `[0, 1)` using the top 53 bits.
    #[inline(always)]
    pub fn next_f64(&mut self) -> f64 {
        // 2^-53 * top 53 bits: the canonical open-interval construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn apply_jump(&mut self, poly: &[u64; 4]) {
        let mut acc = [0u64; 4];
        for &word in poly {
            for bit in 0..64 {
                if word & (1u64 << bit) != 0 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                self.next_u64();
            }
        }
        self.s = acc;
    }

    /// Advances the stream by `2^128` outputs. Two generators separated by
    /// a jump never overlap in any feasible simulation.
    pub fn jump(&mut self) {
        self.apply_jump(&JUMP);
    }

    /// Advances the stream by `2^192` outputs.
    pub fn long_jump(&mut self) {
        self.apply_jump(&LONG_JUMP);
    }
}

// rand_core 0.10 interop: implementing the infallible `TryRng` gives
// `Rng` and `RngCore` through blanket impls, so `rand` distributions can
// consume this generator in tests and examples.
impl rand_core::TryRng for Xoshiro256pp {
    type Error = core::convert::Infallible;

    #[inline]
    fn try_next_u32(&mut self) -> Result<u32, Self::Error> {
        Ok(Xoshiro256pp::next_u32(self))
    }

    #[inline]
    fn try_next_u64(&mut self) -> Result<u64, Self::Error> {
        Ok(Xoshiro256pp::next_u64(self))
    }

    #[inline]
    fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Self::Error> {
        let mut chunks = dst.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&Xoshiro256pp::next_u64(self).to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = Xoshiro256pp::next_u64(self).to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
        Ok(())
    }
}

impl rand_core::SeedableRng for Xoshiro256pp {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        Self::from_state(s)
    }

    fn seed_from_u64(seed: u64) -> Self {
        Xoshiro256pp::seed_from_u64(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First outputs for the state produced by SplitMix64(0), checked
    /// against the reference C implementation.
    #[test]
    fn reference_vector() {
        let mut g = Xoshiro256pp::seed_from_u64(0);
        assert_eq!(g.next_u64(), 0x5317_5d61_490b_23df);
        assert_eq!(g.next_u64(), 0x61da_6f3d_c380_d507);
        assert_eq!(g.next_u64(), 0x5c0f_df91_ec9a_7bfc);
        assert_eq!(g.next_u64(), 0x02ee_bf8c_3bbe_5e1a);
    }

    #[test]
    fn zero_state_is_remapped() {
        let g = Xoshiro256pp::from_state([0; 4]);
        assert_ne!(g.state(), [0; 4]);
        // And it must still generate (not be stuck at zero).
        let mut g = g;
        assert_ne!(g.next_u64(), g.next_u64());
    }

    #[test]
    fn jump_changes_stream_deterministically() {
        let mut a = Xoshiro256pp::seed_from_u64(9);
        let mut b = Xoshiro256pp::seed_from_u64(9);
        a.jump();
        b.jump();
        assert_eq!(a.state(), b.state());
        let mut c = Xoshiro256pp::seed_from_u64(9);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn long_jump_differs_from_jump() {
        let mut a = Xoshiro256pp::seed_from_u64(9);
        let mut b = Xoshiro256pp::seed_from_u64(9);
        a.jump();
        b.long_jump();
        assert_ne!(a.state(), b.state());
    }

    #[test]
    fn f64_range_and_mean() {
        let mut g = Xoshiro256pp::seed_from_u64(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn fill_bytes_handles_ragged_lengths() {
        use rand_core::Rng as _;
        for len in [0usize, 1, 7, 8, 9, 31, 64] {
            let mut g = Xoshiro256pp::seed_from_u64(5);
            let mut buf = vec![0u8; len];
            g.fill_bytes(&mut buf);
            if len >= 8 {
                // First 8 bytes must equal the first raw output.
                let mut h = Xoshiro256pp::seed_from_u64(5);
                assert_eq!(&buf[..8], &h.next_u64().to_le_bytes());
            }
        }
    }

    #[test]
    fn chi_square_on_bytes_is_plausible() {
        // 256-bin chi-square over 1<<16 byte draws; generous 4-sigma band.
        let mut g = Xoshiro256pp::seed_from_u64(11);
        let mut counts = [0u32; 256];
        let draws = 1 << 16;
        for _ in 0..draws / 8 {
            for byte in g.next_u64().to_le_bytes() {
                counts[usize::from(byte)] += 1;
            }
        }
        let expect = f64::from(draws) / 256.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let diff = f64::from(c) - expect;
                diff * diff / expect
            })
            .sum();
        // dof = 255, sigma = sqrt(2*255) ~ 22.6.
        assert!(chi2 < 255.0 + 4.0 * 22.6, "chi2 {chi2}");
    }
}
