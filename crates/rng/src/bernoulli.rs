//! Threshold Bernoulli sampling.
//!
//! The simulator's hot loop draws an enormous number of Bernoulli variates
//! whose success probabilities are fixed for a whole round (feedback
//! probabilities, pause/leave probabilities). Precomputing the probability
//! as a 64-bit integer threshold turns each draw into one generator call
//! and one compare.

use crate::xoshiro::Xoshiro256pp;

/// A Bernoulli distribution with precomputed integer threshold.
///
/// `sample` returns `true` with probability `p` up to a quantization error
/// of at most `2^-64` (exact for `p ∈ {0, 1}`).
///
/// ```
/// use antalloc_rng::{Bernoulli, Xoshiro256pp};
/// let mut rng = Xoshiro256pp::seed_from_u64(1);
/// let fair = Bernoulli::new(0.5);
/// let heads = (0..10_000).filter(|_| fair.sample(&mut rng)).count();
/// assert!((4_700..5_300).contains(&heads));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bernoulli {
    /// Success iff `rng.next_u64() < threshold`; `u64::MAX` plus the
    /// `always` flag encodes probability exactly 1.
    threshold: u64,
    always: bool,
}

impl Bernoulli {
    /// Builds the sampler for probability `p`.
    ///
    /// `p` is clamped to `[0, 1]`; NaN maps to probability 0 (the
    /// conservative choice for "no action" probabilities).
    #[inline]
    pub fn new(p: f64) -> Self {
        if p <= 0.0 || p.is_nan() {
            return Self {
                threshold: 0,
                always: false,
            };
        }
        if p >= 1.0 {
            return Self {
                threshold: u64::MAX,
                always: true,
            };
        }
        // p * 2^64, computed in f64. For p in (0,1) this fits in u64
        // because p <= 1 - 2^-53 implies p * 2^64 <= 2^64 - 2^11.
        let threshold = (p * 18_446_744_073_709_551_616.0) as u64;
        Self {
            threshold,
            always: false,
        }
    }

    /// The success probability the sampler actually realizes.
    #[inline]
    pub fn probability(&self) -> f64 {
        if self.always {
            1.0
        } else {
            self.threshold as f64 / 18_446_744_073_709_551_616.0
        }
    }

    /// Draws one variate.
    #[inline(always)]
    pub fn sample(&self, rng: &mut Xoshiro256pp) -> bool {
        self.always || rng.next_u64() < self.threshold
    }

    /// True iff the probability is exactly 0 (useful to skip whole loops).
    #[inline]
    pub fn never(&self) -> bool {
        self.threshold == 0 && !self.always
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn degenerate_probabilities() {
        let mut rng = Xoshiro256pp::seed_from_u64(0);
        let zero = Bernoulli::new(0.0);
        let one = Bernoulli::new(1.0);
        for _ in 0..1000 {
            assert!(!zero.sample(&mut rng));
            assert!(one.sample(&mut rng));
        }
        assert!(zero.never());
        assert!(!one.never());
        assert!(Bernoulli::new(f64::NAN).never());
        assert!(Bernoulli::new(-0.3).never());
        assert!(Bernoulli::new(1.5).sample(&mut rng));
    }

    #[test]
    fn tiny_probability_never_fires_below_resolution() {
        // p < 2^-64 quantizes to 0: important for the paper's n^-8
        // feedback-error probabilities at large n, which must simply never
        // fire rather than panic or misbehave.
        let b = Bernoulli::new(1e-30);
        assert!(b.never());
    }

    #[test]
    fn empirical_frequency_tracks_p() {
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        for &p in &[0.01, 0.1, 0.25, 0.5, 0.9] {
            let b = Bernoulli::new(p);
            let n = 200_000u32;
            let hits = (0..n).filter(|_| b.sample(&mut rng)).count() as f64;
            let freq = hits / f64::from(n);
            // 5-sigma band around p.
            let sigma = (p * (1.0 - p) / f64::from(n)).sqrt();
            assert!((freq - p).abs() < 5.0 * sigma + 1e-9, "p={p} freq={freq}");
        }
    }

    proptest! {
        #[test]
        fn probability_roundtrip(p in 0.0f64..1.0) {
            let b = Bernoulli::new(p);
            prop_assert!((b.probability() - p).abs() < 1e-15);
        }

        #[test]
        fn sample_is_monotone_in_p(p1 in 0.0f64..1.0, p2 in 0.0f64..1.0, seed: u64) {
            // With a shared random source, a draw that succeeds under the
            // smaller p must succeed under the larger p.
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let mut r1 = Xoshiro256pp::seed_from_u64(seed);
            let mut r2 = Xoshiro256pp::seed_from_u64(seed);
            let s_lo = Bernoulli::new(lo).sample(&mut r1);
            let s_hi = Bernoulli::new(hi).sample(&mut r2);
            prop_assert!(!s_lo || s_hi);
        }
    }
}
