//! Threshold Bernoulli sampling.
//!
//! The simulator's hot loop draws an enormous number of Bernoulli variates
//! whose success probabilities are fixed for a whole round (feedback
//! probabilities, pause/leave probabilities). Precomputing the probability
//! as a 64-bit integer threshold turns each draw into one generator call
//! and one compare — and [`Bernoulli::fill`] amortizes even the call
//! overhead by drawing a whole batch against one threshold (the
//! SIMD-width sampling step the bank loops build on).

use crate::xoshiro::Xoshiro256pp;

/// A Bernoulli distribution with precomputed integer threshold.
///
/// # Quantization guarantee
///
/// The requested probability is quantized to the grid `t/2^64` with
/// `t = round_to_nearest(p · 2^64)` (ties away from zero), so the
/// probability the sampler *realizes* differs from `p` by at most
/// `2^-65` — half a grid step. `p ∈ {0, 1}` is exact, and the
/// quantization never crosses the degenerate endpoints: `0 < p` small
/// enough still quantizes to "never" only when `p < 2^-65`, and no
/// `p < 1` quantizes to "always".
///
/// ```
/// use antalloc_rng::{Bernoulli, Xoshiro256pp};
/// let mut rng = Xoshiro256pp::seed_from_u64(1);
/// let fair = Bernoulli::new(0.5);
/// let heads = (0..10_000).filter(|_| fair.sample(&mut rng)).count();
/// assert!((4_700..5_300).contains(&heads));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bernoulli {
    /// Success iff `rng.next_u64() < threshold`; `u64::MAX` plus the
    /// `always` flag encodes probability exactly 1.
    threshold: u64,
    always: bool,
}

impl Bernoulli {
    /// Builds the sampler for probability `p`.
    ///
    /// `p` is clamped to `[0, 1]`; NaN maps to probability 0 (the
    /// conservative choice for "no action" probabilities).
    #[inline]
    pub fn new(p: f64) -> Self {
        if p <= 0.0 || p.is_nan() {
            return Self {
                threshold: 0,
                always: false,
            };
        }
        if p >= 1.0 {
            return Self {
                threshold: u64::MAX,
                always: true,
            };
        }
        // p * 2^64 is exact (scaling by a power of two), so the only
        // rounding is the conversion to the integer grid — which must be
        // to-nearest: an `as u64` cast truncates, biasing every realized
        // probability low by up to one whole grid step for p < 2^-12
        // (where the product has a fractional part). For p in (0,1) the
        // rounded product fits in u64 because p <= 1 - 2^-53 implies
        // p * 2^64 <= 2^64 - 2^11.
        // audit:allow(cast): saturating float→int IS the quantization — p ∈ (0,1) here, so the rounded product fits u64 (proof above).
        let threshold = (p * 18_446_744_073_709_551_616.0).round() as u64;
        Self {
            threshold,
            always: false,
        }
    }

    /// The probability as its raw `2^64`-scaled threshold, with the
    /// probability-1 case flagged separately (it cannot be encoded as a
    /// finite threshold). Lossless, unlike [`Bernoulli::probability`],
    /// which rounds the 64-bit threshold through an `f64` mantissa —
    /// consumers that re-derive sampling state (the noise models) must
    /// use this.
    #[inline]
    pub fn raw_threshold(&self) -> (u64, bool) {
        (self.threshold, self.always)
    }

    /// The success probability the sampler actually realizes.
    #[inline]
    pub fn probability(&self) -> f64 {
        if self.always {
            1.0
        } else {
            // audit:allow(cast): u64 → f64 rounds to nearest; probability() is documented lossy (2^-53) — raw_threshold is the lossless readback.
            self.threshold as f64 / 18_446_744_073_709_551_616.0
        }
    }

    /// Draws one variate.
    #[inline(always)]
    pub fn sample(&self, rng: &mut Xoshiro256pp) -> bool {
        self.always || rng.next_u64() < self.threshold
    }

    /// Draws `out.len()` variates from one stream against the one
    /// precomputed threshold — the batched form of [`Bernoulli::sample`],
    /// bit-identical to calling it `out.len()` times in slice order
    /// (same draws consumed, same results). The monomorphic loop lets
    /// the compiler unroll and vectorize the generator advance + compare,
    /// which per-call sampling defeats.
    ///
    /// ```
    /// use antalloc_rng::{Bernoulli, Xoshiro256pp};
    /// let b = Bernoulli::new(0.25);
    /// let mut a = Xoshiro256pp::seed_from_u64(7);
    /// let mut c = a.clone();
    /// let mut batch = [false; 32];
    /// b.fill(&mut a, &mut batch);
    /// for (i, &got) in batch.iter().enumerate() {
    ///     assert_eq!(got, b.sample(&mut c), "draw {i}");
    /// }
    /// ```
    #[inline]
    pub fn fill(&self, rng: &mut Xoshiro256pp, out: &mut [bool]) {
        if self.always {
            out.fill(true);
            return;
        }
        for slot in out.iter_mut() {
            *slot = rng.next_u64() < self.threshold;
        }
    }

    /// True iff the probability is exactly 0 (useful to skip whole loops).
    #[inline]
    pub fn never(&self) -> bool {
        self.threshold == 0 && !self.always
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn degenerate_probabilities() {
        let mut rng = Xoshiro256pp::seed_from_u64(0);
        let zero = Bernoulli::new(0.0);
        let one = Bernoulli::new(1.0);
        for _ in 0..1000 {
            assert!(!zero.sample(&mut rng));
            assert!(one.sample(&mut rng));
        }
        assert!(zero.never());
        assert!(!one.never());
        assert!(Bernoulli::new(f64::NAN).never());
        assert!(Bernoulli::new(-0.3).never());
        assert!(Bernoulli::new(1.5).sample(&mut rng));
    }

    #[test]
    fn tiny_probability_never_fires_below_resolution() {
        // p < 2^-64 quantizes to 0: important for the paper's n^-8
        // feedback-error probabilities at large n, which must simply never
        // fire rather than panic or misbehave.
        let b = Bernoulli::new(1e-30);
        assert!(b.never());
    }

    #[test]
    fn empirical_frequency_tracks_p() {
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        for &p in &[0.01, 0.1, 0.25, 0.5, 0.9] {
            let b = Bernoulli::new(p);
            let n = 200_000u32;
            let hits = (0..n).filter(|_| b.sample(&mut rng)).count() as f64;
            let freq = hits / f64::from(n);
            // 5-sigma band around p.
            let sigma = (p * (1.0 - p) / f64::from(n)).sqrt();
            assert!((freq - p).abs() < 5.0 * sigma + 1e-9, "p={p} freq={freq}");
        }
    }

    #[test]
    fn threshold_rounds_to_nearest_not_down() {
        // Regression: the truncating cast biased every probability whose
        // 2^64-scaled value has a fractional part (p ≲ 2^-12, where the
        // f64 mantissa extends below the grid — exactly the regime of
        // the paper's n^-8 feedback-error probabilities) low by up to
        // one ulp. 1e-5 * 2^64 = …095.516… must round up to …096.
        let b = Bernoulli::new(1e-5);
        assert_eq!(b.raw_threshold(), (184_467_440_737_096, false));
        // Exactly representable probabilities stay exact.
        let b = Bernoulli::new(0.5);
        assert_eq!(b.raw_threshold(), (1u64 << 63, false));
        let b = Bernoulli::new(2f64.powi(-20));
        assert_eq!(b.raw_threshold(), (1u64 << 44, false));
        // Half a grid step rounds away from zero, not to never.
        let b = Bernoulli::new(2f64.powi(-65));
        assert_eq!(b.raw_threshold(), (1, false));
        assert!(!b.never());
    }

    proptest! {
        #[test]
        fn probability_roundtrip(p in 0.0f64..1.0) {
            // Quantization is at most half a grid step (2^-65); reading
            // the threshold back through `probability()`'s f64 division
            // adds at most 2^-54. Total well under 2^-53 — the old
            // truncating constructor fails this bound for small p.
            let b = Bernoulli::new(p);
            prop_assert!((b.probability() - p).abs() <= 2f64.powi(-53));
            // And the realized probability is *exactly* the documented
            // grid point.
            let (t, always) = b.raw_threshold();
            prop_assert!(!always);
            prop_assert_eq!(t, (p * 18_446_744_073_709_551_616.0).round() as u64);
        }

        #[test]
        fn fill_is_bit_identical_to_repeated_sampling(
            p in 0.0f64..1.0,
            n in 0usize..70,
            seed: u64,
        ) {
            let b = Bernoulli::new(p);
            let mut batched = Xoshiro256pp::seed_from_u64(seed);
            let mut single = batched.clone();
            let mut out = vec![false; n];
            b.fill(&mut batched, &mut out);
            for (i, &got) in out.iter().enumerate() {
                prop_assert_eq!(got, b.sample(&mut single), "draw {}", i);
            }
            // Both consumed the same number of draws.
            prop_assert_eq!(batched.next_u64(), single.next_u64());
        }

        #[test]
        fn sample_is_monotone_in_p(p1 in 0.0f64..1.0, p2 in 0.0f64..1.0, seed: u64) {
            // With a shared random source, a draw that succeeds under the
            // smaller p must succeed under the larger p.
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let mut r1 = Xoshiro256pp::seed_from_u64(seed);
            let mut r2 = Xoshiro256pp::seed_from_u64(seed);
            let s_lo = Bernoulli::new(lo).sample(&mut r1);
            let s_hi = Bernoulli::new(hi).sample(&mut r2);
            prop_assert!(!s_lo || s_hi);
        }
    }
}
