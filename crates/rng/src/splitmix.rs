//! SplitMix64: Sebastiano Vigna's public-domain mixer.
//!
//! Used here for two jobs where statistical quality per output matters
//! more than period: expanding a 64-bit master seed into generator state,
//! and hashing `(master, stream)` pairs into per-ant seeds. Every output
//! is a bijective mix of the counter, so distinct inputs can never
//! collide into identical state words.

/// The SplitMix64 generator.
///
/// ```
/// use antalloc_rng::SplitMix64;
/// let mut g = SplitMix64::new(0);
/// assert_eq!(g.next_u64(), 0xe220_a839_7b1d_cdaf);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// Creates a generator whose first output is `mix(seed + γ)`.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix(self.state)
    }

    /// Fills `out` with successive outputs.
    #[inline]
    pub fn fill(&mut self, out: &mut [u64]) {
        for slot in out {
            *slot = self.next_u64();
        }
    }
}

/// The finalizer of SplitMix64: a bijective avalanche mix of `z`.
///
/// Exposed because stream derivation uses it directly as a hash.
#[inline]
pub(crate) fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference outputs for seed 0 (cross-checked against the C
    /// reference implementation).
    #[test]
    fn reference_vector_seed_zero() {
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(g.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(g.next_u64(), 0x06c4_5d18_8009_454f);
        assert_eq!(g.next_u64(), 0xf88b_b8a8_724c_81ec);
    }

    #[test]
    fn distinct_seeds_distinct_first_outputs() {
        // mix() is bijective, so nearby seeds must not collide.
        let outs: Vec<u64> = (0u64..1000)
            .map(|s| SplitMix64::new(s).next_u64())
            .collect();
        let mut sorted = outs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), outs.len());
    }

    #[test]
    fn fill_matches_next() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let mut buf = [0u64; 8];
        a.fill(&mut buf);
        for &word in &buf {
            assert_eq!(word, b.next_u64());
        }
    }

    #[test]
    fn bit_balance_is_sane() {
        // Average popcount over many outputs should be very close to 32.
        let mut g = SplitMix64::new(7);
        let total: u32 = (0..10_000).map(|_| g.next_u64().count_ones()).sum();
        let avg = f64::from(total) / 10_000.0;
        assert!((avg - 32.0).abs() < 0.2, "avg popcount {avg}");
    }
}
