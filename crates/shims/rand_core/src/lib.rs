//! Std-only stand-in for `rand_core` (0.10-style trait split).
//!
//! Provides the fallible [`TryRng`] trait plus the infallible [`Rng`]
//! blanket that `antalloc-rng` implements against, and [`SeedableRng`]
//! with the SplitMix64 `seed_from_u64` default the real crate documents.

#![forbid(unsafe_code)]

use core::convert::Infallible;

/// A random generator whose draws may fail.
pub trait TryRng {
    /// The failure type (use [`Infallible`] for deterministic PRNGs).
    type Error: core::fmt::Debug;

    /// Returns the next `u32`, or an error.
    fn try_next_u32(&mut self) -> Result<u32, Self::Error>;

    /// Returns the next `u64`, or an error.
    fn try_next_u64(&mut self) -> Result<u64, Self::Error>;

    /// Fills `dst` with random bytes, or reports an error.
    fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Self::Error>;
}

/// Infallible random generation; blanket-implemented for every
/// [`TryRng`] whose error is [`Infallible`].
pub trait Rng: TryRng<Error = Infallible> {
    /// Returns the next `u32`.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.try_next_u32().unwrap()
    }

    /// Returns the next `u64`.
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.try_next_u64().unwrap()
    }

    /// Fills `dst` with random bytes.
    #[inline]
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        self.try_fill_bytes(dst).unwrap()
    }
}

impl<T: TryRng<Error = Infallible> + ?Sized> Rng for T {}

/// Compatibility alias: the pre-0.10 name for the infallible trait.
pub trait RngCore: Rng {}

impl<T: Rng + ?Sized> RngCore for T {}

/// A generator seedable from a fixed-width byte seed.
pub trait SeedableRng: Sized {
    /// The seed type (e.g. `[u8; 32]`).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64, then seeds.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 reference step.
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let take = chunk.len();
            chunk.copy_from_slice(&bytes[..take]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl TryRng for Counter {
        type Error = Infallible;

        fn try_next_u32(&mut self) -> Result<u32, Infallible> {
            Ok(self.try_next_u64()? as u32)
        }

        fn try_next_u64(&mut self) -> Result<u64, Infallible> {
            self.0 += 1;
            Ok(self.0)
        }

        fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Infallible> {
            for b in dst {
                *b = self.try_next_u64()? as u8;
            }
            Ok(())
        }
    }

    impl SeedableRng for Counter {
        type Seed = [u8; 8];

        fn from_seed(seed: [u8; 8]) -> Self {
            Counter(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn blanket_rng_works() {
        let mut c = Counter(0);
        assert_eq!(c.next_u64(), 1);
        let mut buf = [0u8; 3];
        c.fill_bytes(&mut buf);
        assert_eq!(buf, [2, 3, 4]);
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_nontrivial() {
        let a = Counter::seed_from_u64(9);
        let b = Counter::seed_from_u64(9);
        assert_eq!(a.0, b.0);
        assert_ne!(a.0, 0);
    }
}
