//! Std-only stand-in for `parking_lot`.
//!
//! Wraps [`std::sync::RwLock`] behind parking_lot's guard-returning
//! (non-`Result`) API. Poisoning is transparently ignored, matching
//! parking_lot's semantics of not poisoning at all.

#![forbid(unsafe_code)]

use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates the lock.
    #[inline]
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (exclusive borrow proves safety).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates the lock.
    #[inline]
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    #[inline]
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() = 2;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }
}
