//! Std-only stand-in for the `crossbeam::thread` scoped-spawn API,
//! implemented over [`std::thread::scope`] (stable since 1.63).
//!
//! One semantic difference: on a worker panic, `std::thread::scope`
//! propagates the panic after joining instead of returning `Err`, so
//! [`thread::scope`] here only ever returns `Ok` — callers that
//! `.expect(..)` the result behave identically (abort on panic).

#![forbid(unsafe_code)]

/// Scoped threads.
pub mod thread {
    /// The result of a scope: `Ok` unless a worker panicked (in which
    /// case the panic propagates before this is ever constructed).
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope handle; crossbeam passes it to every spawned closure so
    /// workers can spawn further workers.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker; the closure receives the scope again,
        /// mirroring crossbeam's `spawn(|scope| ...)` signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = Scope { inner: self.inner };
            self.inner.spawn(move || f(&handle))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; joins them all before returning.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let total = AtomicU64::new(0);
        let data = vec![1u64, 2, 3, 4];
        super::thread::scope(|scope| {
            for &x in &data {
                let total = &total;
                scope.spawn(move |_| {
                    total.fetch_add(x, Ordering::Relaxed);
                });
            }
        })
        .expect("no panics");
        assert_eq!(total.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let flag = AtomicU64::new(0);
        super::thread::scope(|scope| {
            let flag = &flag;
            scope.spawn(move |inner| {
                inner.spawn(move |_| {
                    flag.store(7, Ordering::Release);
                });
            });
        })
        .expect("no panics");
        assert_eq!(flag.load(Ordering::Acquire), 7);
    }
}
