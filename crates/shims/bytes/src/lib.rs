//! Std-only stand-in for the `bytes` crate.
//!
//! Implements exactly the little-endian [`Buf`]/[`BufMut`] surface the
//! checkpoint codec uses, over `&[u8]` and `Vec<u8>`. Semantics match
//! the real crate for that surface: readers advance the slice and panic
//! when the buffer is too short (callers length-check via
//! [`Buf::remaining`] first).

#![forbid(unsafe_code)]

/// Sequential little-endian reads from a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64;
    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64;
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn get_u8(&mut self) -> u8 {
        let (head, tail) = self.split_at(1);
        *self = tail;
        head[0]
    }

    #[inline]
    fn get_u16_le(&mut self) -> u16 {
        let (head, tail) = self.split_at(2);
        *self = tail;
        u16::from_le_bytes(head.try_into().expect("2 bytes"))
    }

    #[inline]
    fn get_u32_le(&mut self) -> u32 {
        let (head, tail) = self.split_at(4);
        *self = tail;
        u32::from_le_bytes(head.try_into().expect("4 bytes"))
    }

    #[inline]
    fn get_u64_le(&mut self) -> u64 {
        let (head, tail) = self.split_at(8);
        *self = tail;
        u64::from_le_bytes(head.try_into().expect("8 bytes"))
    }

    #[inline]
    fn get_i64_le(&mut self) -> i64 {
        let (head, tail) = self.split_at(8);
        *self = tail;
        i64::from_le_bytes(head.try_into().expect("8 bytes"))
    }

    #[inline]
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Sequential little-endian writes into a byte sink.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64);
    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64);
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    #[inline]
    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_i64_le(&mut self, v: i64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut out = Vec::new();
        out.put_u8(7);
        out.put_u16_le(0xBEEF);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(0x0123_4567_89AB_CDEF);
        out.put_i64_le(-42);
        out.put_f64_le(-1.5);
        let mut buf = out.as_slice();
        assert_eq!(buf.remaining(), 1 + 2 + 4 + 8 + 8 + 8);
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u16_le(), 0xBEEF);
        assert_eq!(buf.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(buf.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(buf.get_i64_le(), -42);
        assert_eq!(buf.get_f64_le(), -1.5);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    #[should_panic]
    fn short_reads_panic() {
        let mut buf: &[u8] = &[1, 2];
        let _ = buf.get_u32_le();
    }
}
