//! Std-only stand-in for the slice of `proptest` this workspace uses.
//!
//! Supported surface: the [`proptest!`] macro (with `pat in strategy`
//! and `name: Type` parameters), [`prop_assert!`], [`prop_assert_eq!`],
//! [`prop_assert_ne!`], [`prop_assume!`], [`prop_oneof!`], range and
//! tuple strategies, [`Just`], [`Strategy::prop_map`],
//! [`collection::vec`], [`num::f64::NORMAL`], and [`arbitrary::any`].
//!
//! No shrinking: a failing case panics with the sampled inputs'
//! recorded seed so the run reproduces exactly (the generator is
//! deterministic per test name). Case count defaults to 64 and is
//! overridable via `PROPTEST_CASES`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.
    pub use crate::arbitrary::any;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        Strategy, TestCaseError,
    };
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the whole property fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

/// The deterministic generator driving all sampling (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name so every property has its own stream.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis.
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, bound)`.
    pub fn next_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty choice");
        (self.next_u64() % bound as u64) as usize
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies (built by [`prop_oneof!`]).
pub struct Union<V> {
    choices: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Wraps a non-empty choice list.
    pub fn new(choices: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        Self { choices }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.next_index(self.choices.len());
        self.choices[i].sample(rng)
    }
}

/// Primitive types uniformly samplable from half-open/closed ranges.
pub trait SampleRange: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_range_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo < hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + off) as $t
            }

            fn sample_range_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo < hi, "empty range");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }

            fn sample_range_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo <= hi, "empty range");
                // Include the top endpoint by scaling a closed unit draw.
                let u = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

impl<T: SampleRange> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

impl<T: SampleRange> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_range_inclusive(*self.start(), *self.end(), rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

pub mod collection {
    //! Collection strategies.

    use super::{SampleRange, Strategy, TestRng};

    /// Element-count specification for [`vec()`](fn@vec).
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = usize::sample_range_inclusive(self.size.lo, self.size.hi_inclusive, rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod num {
    //! Numeric special-value strategies.

    #[allow(nonstandard_style)]
    pub mod f64 {
        //! `f64` strategies.

        use crate::{Strategy, TestRng};

        /// Strategy over *normal* floats: finite, non-zero, non-subnormal,
        /// either sign.
        #[derive(Clone, Copy, Debug)]
        pub struct NormalStrategy;

        /// All normal `f64` values.
        pub const NORMAL: NormalStrategy = NormalStrategy;

        impl Strategy for NormalStrategy {
            type Value = core::primitive::f64;

            fn sample(&self, rng: &mut TestRng) -> core::primitive::f64 {
                loop {
                    let x = core::primitive::f64::from_bits(rng.next_u64());
                    if x.is_normal() {
                        return x;
                    }
                }
            }
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for the `name: Type` parameter form.

    use super::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::from_bits(rng.next_u64())
        }
    }
}

/// Runs one property: samples cases until the target count passes,
/// skipping rejects, panicking on the first failure. Used by the
/// [`proptest!`] expansion; not part of the public surface.
#[doc(hidden)]
pub fn __run_proptest<F>(name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let cases: u32 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let mut rng = TestRng::from_name(name);
    let mut accepted = 0u32;
    let mut attempts = 0u32;
    while accepted < cases {
        attempts += 1;
        assert!(
            attempts <= cases.saturating_mul(64),
            "property `{name}`: too many prop_assume! rejections \
             ({accepted}/{cases} cases after {attempts} attempts)"
        );
        let state_before = rng.clone();
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => panic!(
                "property `{name}` failed at case {accepted} \
                 (rng state {:#x}): {msg}",
                state_before.state
            ),
        }
    }
}

/// Defines property tests. See module docs for the supported surface.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__run_proptest(
                    stringify!($name),
                    |__proptest_rng: &mut $crate::TestRng|
                        -> ::std::result::Result<(), $crate::TestCaseError> {
                        $crate::__proptest_bind!(__proptest_rng, $($params)*);
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Parameter-list muncher for [`proptest!`]; internal.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $p:ident : $t:ty $(, $($rest:tt)*)?) => {
        let $p: $t = $crate::Strategy::sample(
            &$crate::arbitrary::any::<$t>(),
            $rng,
        );
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
    ($rng:ident, $p:pat in $s:expr $(, $($rest:tt)*)?) => {
        let $p = $crate::Strategy::sample(&($s), $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
}

/// Property-scoped assertion: fails the current case without panicking
/// through the sampling machinery.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Property-scoped equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
}

/// Property-scoped inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __a
            )));
        }
    }};
}

/// Skips the current case when its sampled inputs are out of scope.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        let __choices: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($s)),+];
        $crate::Union::new(__choices)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(
            x in -50i64..50,
            y in 0.0f64..1.0,
            z in (10usize..=20),
            w: u64,
        ) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert!((10..=20).contains(&z));
            let _ = w;
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            xs in crate::collection::vec((0usize..5, -2i32..3), 1..40),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 40);
            for (a, b) in xs {
                prop_assert!(a < 5);
                prop_assert!((-2..3).contains(&b));
            }
        }

        #[test]
        fn assume_rejects_and_oneof_mixes(a in 0u32..100, b in 0u32..100) {
            prop_assume!(a != b);
            let strat = prop_oneof![Just(1u8), Just(2u8), (3u8..5).prop_map(|v| v)];
            let mut rng = crate::TestRng::from_name("inner");
            let mut seen_small = false;
            for _ in 0..64 {
                let v = strat.sample(&mut rng);
                prop_assert!((1..5).contains(&v));
                seen_small |= v < 3;
            }
            prop_assert!(seen_small);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn normal_floats_are_normal(x in crate::num::f64::NORMAL) {
            prop_assert!(x.is_normal());
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_context() {
        crate::__run_proptest("always_fails", |_rng| {
            prop_assert!(false, "boom");
            #[allow(unreachable_code)]
            Ok(())
        });
    }
}
