//! Std-only stand-in for the slice of `proptest` this workspace uses.
//!
//! Supported surface: the [`proptest!`] macro (with `pat in strategy`
//! and `name: Type` parameters), [`prop_assert!`], [`prop_assert_eq!`],
//! [`prop_assert_ne!`], [`prop_assume!`], [`prop_oneof!`], range and
//! tuple strategies, [`Just`], [`Strategy::prop_map`],
//! [`collection::vec`], [`num::f64::NORMAL`], and [`arbitrary::any`].
//!
//! Failing cases **shrink**: the runner repeatedly replaces the failing
//! input with the first still-failing candidate from
//! [`Strategy::shrinks`] — halving/bisection toward the range origin
//! for numeric strategies, length halving plus element-wise shrinking
//! for collections, component-wise shrinking for tuples — and reports
//! the minimal failing input alongside the recorded generator state, so
//! a counterexample sampled as a million-element spec arrives as the
//! few elements that matter. Strategies that cannot shrink (mapped,
//! one-of, `Just`) report the sampled value unshrunk. The generator is
//! deterministic per test name; case count defaults to 64 and is
//! overridable via `PROPTEST_CASES`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.
    pub use crate::arbitrary::any;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        Strategy, TestCaseError,
    };
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the whole property fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

/// The deterministic generator driving all sampling (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name so every property has its own stream.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis.
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, bound)`.
    pub fn next_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty choice");
        (self.next_u64() % bound as u64) as usize
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of a failing `value`, most aggressive
    /// first. The runner keeps the first candidate that still fails and
    /// repeats until none do, so candidates should move toward the
    /// strategy's origin (range start, empty-ish collection). The
    /// default — no candidates — is correct for any strategy and merely
    /// skips shrinking.
    fn shrinks(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Maps produced values through `f`. Mapped strategies do not
    /// shrink (the mapping is not invertible in general).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }

    fn shrinks(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrinks(value)
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }

    fn shrinks(&self, value: &V) -> Vec<V> {
        (**self).shrinks(value)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies (built by [`prop_oneof!`]).
/// Does not shrink: the producing arm of a sampled value is unknown.
pub struct Union<V> {
    choices: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Wraps a non-empty choice list.
    pub fn new(choices: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        Self { choices }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.next_index(self.choices.len());
        self.choices[i].sample(rng)
    }
}

/// Primitive types uniformly samplable from half-open/closed ranges.
pub trait SampleRange: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_range_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    /// Shrink candidates for `value`, moving toward `origin` (the range
    /// start): the origin itself, the bisection midpoint, one step.
    fn shrink_toward(origin: Self, value: Self) -> Vec<Self>;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo < hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + off) as $t
            }

            fn sample_range_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + off) as $t
            }

            fn shrink_toward(origin: Self, value: Self) -> Vec<Self> {
                if value == origin {
                    return Vec::new();
                }
                let (o, v) = (origin as i128, value as i128);
                let step = if v > o { -1 } else { 1 };
                let mut out = vec![origin, (o + (v - o) / 2) as $t, (v + step) as $t];
                out.dedup();
                out.retain(|&c| c != value);
                out
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo < hi, "empty range");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }

            fn sample_range_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo <= hi, "empty range");
                // Include the top endpoint by scaling a closed unit draw.
                let u = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + u * (hi - lo)
            }

            fn shrink_toward(origin: Self, value: Self) -> Vec<Self> {
                if !value.is_finite() || value == origin {
                    return Vec::new();
                }
                let mut out = vec![origin, origin + (value - origin) / 2.0];
                out.retain(|&c| c != value && c.is_finite());
                out.dedup_by(|a, b| a == b);
                out
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

impl<T: SampleRange> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_range(self.start, self.end, rng)
    }

    fn shrinks(&self, value: &T) -> Vec<T> {
        T::shrink_toward(self.start, *value)
    }
}

impl<T: SampleRange> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_range_inclusive(*self.start(), *self.end(), rng)
    }

    fn shrinks(&self, value: &T) -> Vec<T> {
        T::shrink_toward(*self.start(), *value)
    }
}

/// The unit strategy (parameterless properties).
impl Strategy for () {
    type Value = ();

    fn sample(&self, _rng: &mut TestRng) -> Self::Value {}
}

macro_rules! impl_tuple_strategy {
    ($($name:ident . $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone),+
        {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }

            /// Component-wise: shrink one coordinate, keep the rest.
            fn shrinks(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrinks(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

pub mod collection {
    //! Collection strategies.

    use super::{SampleRange, Strategy, TestRng};

    /// Element-count specification for [`vec()`](fn@vec).
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = usize::sample_range_inclusive(self.size.lo, self.size.hi_inclusive, rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }

        /// Length halving toward the minimum size, then dropping single
        /// elements, then shrinking elements in place — so an oversized
        /// counterexample collapses to the few elements that matter.
        fn shrinks(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let len = value.len();
            if len > self.size.lo {
                let half = (len / 2).max(self.size.lo);
                if half < len {
                    out.push(value[..half].to_vec());
                }
                // Drop one element at a time (front bias: later elements
                // often depend on earlier ones staying put).
                for i in 0..len {
                    let mut next = value.clone();
                    next.remove(i);
                    out.push(next);
                }
            }
            for (i, elem) in value.iter().enumerate() {
                for cand in self.element.shrinks(elem) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }
}

pub mod num {
    //! Numeric special-value strategies.

    #[allow(nonstandard_style)]
    pub mod f64 {
        //! `f64` strategies.

        use crate::{Strategy, TestRng};

        /// Strategy over *normal* floats: finite, non-zero, non-subnormal,
        /// either sign.
        #[derive(Clone, Copy, Debug)]
        pub struct NormalStrategy;

        /// All normal `f64` values.
        pub const NORMAL: NormalStrategy = NormalStrategy;

        impl Strategy for NormalStrategy {
            type Value = core::primitive::f64;

            fn sample(&self, rng: &mut TestRng) -> core::primitive::f64 {
                loop {
                    let x = core::primitive::f64::from_bits(rng.next_u64());
                    if x.is_normal() {
                        return x;
                    }
                }
            }

            fn shrinks(&self, value: &core::primitive::f64) -> Vec<core::primitive::f64> {
                // Stay inside the normal domain: halve toward ±1.0.
                let origin = value.signum();
                let mut out = vec![origin, origin + (value - origin) / 2.0];
                out.retain(|c| c.is_normal() && c != value);
                out.dedup_by(|a, b| a == b);
                out
            }
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for the `name: Type` parameter form.

    use super::{SampleRange, Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;

        /// Shrink candidates toward the type's origin (0 / `false`).
        fn shrink(value: &Self) -> Vec<Self> {
            let _ = value;
            Vec::new()
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }

        fn shrinks(&self, value: &T) -> Vec<T> {
            T::shrink(value)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }

                fn shrink(value: &Self) -> Vec<Self> {
                    <$t as SampleRange>::shrink_toward(0, *value)
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }

        fn shrink(value: &Self) -> Vec<Self> {
            if *value {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::from_bits(rng.next_u64())
        }

        fn shrink(value: &Self) -> Vec<Self> {
            <f64 as SampleRange>::shrink_toward(0.0, *value)
        }
    }
}

/// Hard cap on accepted shrink steps, so a pathological strategy cannot
/// loop forever minimizing (each accepted step re-runs the case).
const MAX_SHRINK_STEPS: u32 = 4096;

/// Runs one case, converting a panic in the property body (a plain
/// `assert!`/`expect` rather than `prop_assert!`) into a normal
/// failure, so panicking inputs shrink like asserting ones instead of
/// aborting the minimizer mid-search.
fn run_case<V, F>(case: &mut F, value: V) -> Result<(), TestCaseError>
where
    F: FnMut(V) -> Result<(), TestCaseError>,
{
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(value))) {
        Ok(outcome) => outcome,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("property body panicked");
            Err(TestCaseError::Fail(format!("panicked: {msg}")))
        }
    }
}

/// Runs one property over `strategy`: samples cases until the target
/// count passes, skipping rejects; on the first failure, shrinks the
/// input to a minimal still-failing value and panics with it. Used by
/// the [`proptest!`] expansion; not part of the public surface.
#[doc(hidden)]
// disallowed_methods: PROPTEST_CASES only scales the case count for
// local soak runs; the per-case RNG stays seeded from the test name.
#[allow(clippy::disallowed_methods)]
pub fn __run_proptest<S, F>(name: &str, strategy: &S, mut case: F)
where
    S: Strategy,
    S::Value: Clone + core::fmt::Debug,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let cases: u32 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let mut rng = TestRng::from_name(name);
    let mut accepted = 0u32;
    let mut attempts = 0u32;
    while accepted < cases {
        attempts += 1;
        assert!(
            attempts <= cases.saturating_mul(64),
            "property `{name}`: too many prop_assume! rejections \
             ({accepted}/{cases} cases after {attempts} attempts)"
        );
        let state_before = rng.clone();
        let value = strategy.sample(&mut rng);
        match run_case(&mut case, value.clone()) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                let (minimal, msg, steps) = minimize(strategy, value, msg, &mut case);
                panic!(
                    "property `{name}` failed at case {accepted} \
                     (rng state {:#x}, {steps} shrink steps)\n\
                     minimal failing input: {minimal:?}\n{msg}",
                    state_before.state
                )
            }
        }
    }
}

/// Greedy shrink: take the first candidate that still fails, repeat
/// until no candidate fails (or the step budget runs out). Rejected
/// candidates (via `prop_assume!`) count as passing — they are not
/// valid counterexamples.
fn minimize<S, F>(
    strategy: &S,
    mut value: S::Value,
    mut msg: String,
    case: &mut F,
) -> (S::Value, String, u32)
where
    S: Strategy,
    S::Value: Clone,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut steps = 0u32;
    'minimizing: while steps < MAX_SHRINK_STEPS {
        for candidate in strategy.shrinks(&value) {
            if let Err(TestCaseError::Fail(m)) = run_case(case, candidate.clone()) {
                value = candidate;
                msg = m;
                steps += 1;
                continue 'minimizing;
            }
        }
        break; // No candidate fails: `value` is locally minimal.
    }
    (value, msg, steps)
}

/// Defines property tests. See module docs for the supported surface.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__proptest_case!($name, $body; (); (); $($params)*);
            }
        )*
    };
}

/// Parameter-list muncher for [`proptest!`]: accumulates one strategy
/// tuple and one pattern tuple, then hands both to the runner; internal.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // All parameters consumed: run.
    ($name:ident, $body:block; ($($strat:expr,)*); ($($pat:pat,)*);) => {
        $crate::__run_proptest(
            stringify!($name),
            &($($strat,)*),
            |($($pat,)*)| -> ::std::result::Result<(), $crate::TestCaseError> {
                $body
                Ok(())
            },
        );
    };
    // `name: Type` parameter → the type's canonical strategy.
    ($name:ident, $body:block; ($($strat:expr,)*); ($($pat:pat,)*);
     $p:ident : $t:ty $(, $($rest:tt)*)?) => {
        $crate::__proptest_case!(
            $name, $body;
            ($($strat,)* $crate::arbitrary::any::<$t>(),);
            ($($pat,)* $p,);
            $($($rest)*)?
        );
    };
    // `pat in strategy` parameter.
    ($name:ident, $body:block; ($($strat:expr,)*); ($($pat:pat,)*);
     $p:pat in $s:expr $(, $($rest:tt)*)?) => {
        $crate::__proptest_case!(
            $name, $body;
            ($($strat,)* $s,);
            ($($pat,)* $p,);
            $($($rest)*)?
        );
    };
}

/// Property-scoped assertion: fails the current case without panicking
/// through the sampling machinery.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Property-scoped equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
                stringify!($a),
                stringify!($b),
                __a,
                __b,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Property-scoped inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __a
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}\n{}",
                stringify!($a),
                stringify!($b),
                __a,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Skips the current case when its sampled inputs are out of scope.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        let __choices: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($s)),+];
        $crate::Union::new(__choices)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(
            x in -50i64..50,
            y in 0.0f64..1.0,
            z in (10usize..=20),
            w: u64,
        ) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert!((10..=20).contains(&z));
            let _ = w;
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            xs in crate::collection::vec((0usize..5, -2i32..3), 1..40),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 40);
            for (a, b) in xs {
                prop_assert!(a < 5);
                prop_assert!((-2..3).contains(&b));
            }
        }

        #[test]
        fn assume_rejects_and_oneof_mixes(a in 0u32..100, b in 0u32..100) {
            prop_assume!(a != b);
            let strat = prop_oneof![Just(1u8), Just(2u8), (3u8..5).prop_map(|v| v)];
            let mut rng = crate::TestRng::from_name("inner");
            let mut seen_small = false;
            for _ in 0..64 {
                let v = strat.sample(&mut rng);
                prop_assert!((1..5).contains(&v));
                seen_small |= v < 3;
            }
            prop_assert!(seen_small);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn normal_floats_are_normal(x in crate::num::f64::NORMAL) {
            prop_assert!(x.is_normal());
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_context() {
        crate::__run_proptest("always_fails", &(0u32..10,), |(_x,)| {
            prop_assert!(false, "boom");
            #[allow(unreachable_code)]
            Ok(())
        });
    }

    /// Shrinking drives a range failure to its boundary: any x ≥ 10
    /// fails, so the minimal counterexample is exactly 10.
    #[test]
    fn numeric_failures_shrink_to_the_boundary() {
        let err = std::panic::catch_unwind(|| {
            crate::__run_proptest("shrink_numeric", &(0u64..1_000_000,), |(x,)| {
                prop_assert!(x < 10, "too big: {x}");
                Ok(())
            });
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(
            msg.contains("minimal failing input: (10,)"),
            "not shrunk to the boundary: {msg}"
        );
    }

    /// A million-element-style collection counterexample shrinks to the
    /// one element that matters.
    #[test]
    fn collection_failures_shrink_to_one_element() {
        let strategy = (crate::collection::vec(0u32..1000, 0..300),);
        let err = std::panic::catch_unwind(|| {
            crate::__run_proptest("shrink_vec", &strategy, |(xs,)| {
                prop_assert!(xs.iter().all(|&x| x < 500), "bad element");
                Ok(())
            });
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(
            msg.contains("minimal failing input: ([500],)"),
            "not shrunk to the minimal element: {msg}"
        );
    }

    /// Property bodies that panic outright (plain `assert!`/`expect`
    /// rather than `prop_assert!`) still shrink to the minimal input
    /// instead of aborting the minimizer with the candidate's panic.
    #[test]
    fn panicking_bodies_shrink_like_asserting_ones() {
        let err = std::panic::catch_unwind(|| {
            crate::__run_proptest("shrink_panic", &(0u64..100_000,), |(x,)| {
                assert!(x < 10, "plain panic at {x}");
                Ok(())
            });
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(
            msg.contains("minimal failing input: (10,)"),
            "not shrunk to the boundary: {msg}"
        );
        assert!(msg.contains("plain panic at 10"), "wrong message: {msg}");
    }

    /// Component-wise tuple shrinking leaves passing coordinates at
    /// their origins.
    #[test]
    fn tuple_failures_shrink_componentwise() {
        let err = std::panic::catch_unwind(|| {
            crate::__run_proptest("shrink_tuple", &(0i64..100, 0i64..100), |(a, b)| {
                prop_assert!(a + b < 50, "sum too big");
                Ok(())
            });
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        // Greedy bisection lands on a locally minimal pair: both
        // coordinates unable to move toward 0 without passing.
        let start = msg.find("minimal failing input: (").expect("has input") + 24;
        let end = msg[start..].find(')').unwrap() + start;
        let parts: Vec<i64> = msg[start..end]
            .split(", ")
            .map(|s| s.trim().parse().unwrap())
            .collect();
        assert_eq!(parts[0] + parts[1], 50, "not locally minimal: {msg}");
    }
}
