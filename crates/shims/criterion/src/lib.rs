//! Std-only stand-in for the slice of `criterion` the perf benches use.
//!
//! Provides [`criterion_group!`]/[`criterion_main!`], benchmark groups
//! with `sample_size`/`throughput`/`bench_function`/`bench_with_input`,
//! and a [`Bencher`] whose `iter` measures wall-clock time. Output is a
//! plain table line per benchmark (mean ns/iter plus derived
//! throughput) — no statistics, plots, or baselines.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Mirrors criterion's CLI hook; accepted and ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 20,
            throughput: None,
        }
    }
}

/// Units-of-work declaration for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterized benchmark name.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` display form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{parameter}", function_name.into()),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the work done per iteration for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&id.to_string(), self.throughput);
        self
    }

    /// Runs a benchmark closure with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&id.to_string(), self.throughput);
        self
    }

    /// Ends the group (criterion parity; nothing buffered here).
    pub fn finish(&mut self) {}
}

/// Times a closure over warmup + measured iterations.
pub struct Bencher {
    samples: usize,
    mean_ns: f64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            mean_ns: f64::NAN,
        }
    }

    /// Measures `routine`, keeping its return value alive via a sink so
    /// the optimizer cannot delete the work.
    // disallowed_methods: this shim IS the sanctioned timer — wall
    // clock here measures benches, it never feeds a simulation.
    #[allow(clippy::disallowed_methods)]
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warmup: one-eighth of the samples, at least one.
        for _ in 0..(self.samples / 8).max(1) {
            std::hint::black_box(routine());
        }
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            total += start.elapsed();
        }
        self.mean_ns = total.as_nanos() as f64 / self.samples as f64;
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.mean_ns.is_nan() {
            println!("  {label:<40} (no measurement: iter never called)");
            return;
        }
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 / (self.mean_ns * 1e-9))
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.0} B/s", n as f64 / (self.mean_ns * 1e-9))
            }
            None => String::new(),
        };
        println!("  {label:<40} {:>14.1} ns/iter{rate}", self.mean_ns);
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(5);
        group.throughput(Throughput::Elements(10));
        group.bench_function("sum", |b| {
            b.iter(|| (0u64..10).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("sum_to", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    criterion_group!(smoke, trivial_bench);

    #[test]
    fn group_runs_to_completion() {
        smoke();
    }
}
