//! The banked ant population shared by both engines.
//!
//! A [`Population`] owns one [`ControllerBank`] per controller kind
//! plus a stable **ant → (bank, slot) index**. All engine operations —
//! stepping, perturbations, checkpointing, parallel partitioning — are
//! bank-wise; the index is the only piece that thinks in global ant
//! ids.
//!
//! ## Index invariants
//!
//! For every global ant id `i` and every bank `b` with slot `s`:
//!
//! * `index.len()` equals the colony population `n`;
//! * `index[i] == (b, s)`  ⇔  `banks[b].ants[s] == i` (the two maps are
//!   mutual inverses);
//! * within a bank, `controllers`, `rngs` and `ants` all share one
//!   length;
//! * a homogeneous colony has exactly one bank and (absent kills that
//!   are later refilled) `ants[s] == s`;
//! * banks may be empty (a mix fraction can be killed off entirely) but
//!   are never dropped, so spawns can always rejoin their sub-spec.
//!
//! Kills mirror the colony's swap-removal: the victim's bank slot is
//! swap-removed, then the *global* last ant takes over the victim's
//! global id — both maps are patched in O(1).
//!
//! ## Mixed-colony membership
//!
//! `ControllerSpec::Mix` assigns ants to sub-specs deterministically
//! from the master seed: exact largest-remainder quotas of the weights,
//! interleaved by a seeded Fisher–Yates shuffle (the dedicated
//! [`reserved::MIX`] stream). Spawned ants draw their sub-spec from a
//! stream keyed by their RNG stream id, so checkpoint + spawn replays
//! bit-identically to an uninterrupted run.

use antalloc_core::{AnyController, BankSliceMut, ControllerBank, ControllerScratch};
use antalloc_env::{Assignment, ColonyState, ColumnWriter, RoundDelta, TaskColumn};
use antalloc_noise::{PreparedRound, SensedRound};
use antalloc_rng::{reserved, uniform_index, AntRng, StreamSeeder};

use crate::config::ControllerSpec;

/// One worker's share of the colony: disjoint (controller chunk, RNG
/// chunk, global-id chunk) triples (see [`Population::partition_mut`]).
pub(crate) type WorkerPart<'a> = Vec<(BankSliceMut<'a>, &'a mut [AntRng], &'a [u32])>;

/// One homogeneous sub-population: controllers plus their per-slot
/// parallel arrays.
pub(crate) struct Bank {
    /// The (non-`Mix`) spec this bank runs; used for spawns and census.
    pub spec: ControllerSpec,
    /// The controllers, in slot order.
    pub controllers: ControllerBank,
    /// Per-slot RNG streams (ant `ants[s]` owns `rngs[s]`).
    pub rngs: Vec<AntRng>,
    /// Slot → global ant id.
    pub ants: Vec<u32>,
}

impl Bank {
    fn new(spec: ControllerSpec, num_tasks: usize, ids: Vec<u32>, seeder: &StreamSeeder) -> Self {
        let controllers = spec.build_bank(num_tasks, &ids);
        let rngs = ids.iter().map(|&i| seeder.ant(i as usize)).collect();
        Self {
            spec,
            controllers,
            rngs,
            ants: ids,
        }
    }

    pub fn len(&self) -> usize {
        self.ants.len()
    }
}

/// The banked population: banks plus the stable two-way ant index.
pub(crate) struct Population {
    banks: Vec<Bank>,
    /// Global ant id → (bank, slot).
    index: Vec<(u32, u32)>,
    /// Mixed-colony membership machinery (`None` for homogeneous).
    mix: Option<MixMembership>,
}

/// Deterministic sub-spec assignment for `ControllerSpec::Mix`.
struct MixMembership {
    weights: Vec<f64>,
    /// Sub-seeder derived from the master seed's `MIX` stream.
    seeder: StreamSeeder,
}

impl MixMembership {
    fn new(seed: u64, weights: Vec<f64>) -> Self {
        Self {
            weights,
            seeder: mix_seeder(seed),
        }
    }

    /// The sub-spec a *spawned* ant with RNG stream id `stream` joins:
    /// one weighted draw from a stream keyed by `(master seed, stream)`,
    /// so the pick depends on nothing but checkpointed state.
    fn pick_spawn(&self, stream: u64) -> usize {
        let total: f64 = self.weights.iter().sum();
        let x = self.seeder.stream(stream).next_f64() * total;
        let mut acc = 0.0;
        for (b, &w) in self.weights.iter().enumerate() {
            acc += w;
            if x < acc {
                return b;
            }
        }
        self.weights.len() - 1
    }
}

/// The sub-seeder every mixed-membership draw derives from.
fn mix_seeder(seed: u64) -> StreamSeeder {
    StreamSeeder::new(StreamSeeder::new(seed).stream(reserved::MIX).next_u64())
}

/// Exact largest-remainder quotas: `quotas[i]` ants for weight
/// `weights[i]`, summing to `n`. Ties go to the lower index.
pub(crate) fn mix_quotas(weights: &[f64], n: usize) -> Vec<usize> {
    let total: f64 = weights.iter().sum();
    let exact: Vec<f64> = weights.iter().map(|&w| w / total * n as f64).collect();
    let mut quotas: Vec<usize> = exact.iter().map(|&x| x.floor() as usize).collect();
    let assigned: usize = quotas.iter().sum();
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = exact[a] - exact[a].floor();
        let fb = exact[b] - exact[b].floor();
        fb.total_cmp(&fa).then(a.cmp(&b))
    });
    for i in 0..n.saturating_sub(assigned) {
        quotas[order[i % order.len()]] += 1;
    }
    quotas
}

/// Deterministic initial membership: bank index per global ant id.
///
/// Quotas first, then a Fisher–Yates shuffle driven by the dedicated
/// mix sub-seeder — a pure function of `(seed, weights, n)`.
pub(crate) fn mix_members(seed: u64, weights: &[f64], n: usize) -> Vec<u16> {
    let quotas = mix_quotas(weights, n);
    let mut members = Vec::with_capacity(n);
    for (b, &q) in quotas.iter().enumerate() {
        members.extend(std::iter::repeat_n(b as u16, q));
    }
    let mut rng = mix_seeder(seed).stream(reserved::INIT);
    for i in (1..members.len()).rev() {
        members.swap(i, uniform_index(&mut rng, i + 1));
    }
    members
}

impl Population {
    /// Builds the population for `spec` with ants `0..n`.
    pub fn build(spec: &ControllerSpec, seed: u64, num_tasks: usize, n: usize) -> Self {
        match spec.mix_parts() {
            None => {
                let seeder = StreamSeeder::new(seed);
                let ids: Vec<u32> = (0..n as u32).collect();
                let bank = Bank::new(spec.clone(), num_tasks, ids, &seeder);
                Self {
                    index: (0..n as u32).map(|s| (0, s)).collect(),
                    banks: vec![bank],
                    mix: None,
                }
            }
            Some(parts) => {
                let weights: Vec<f64> = parts.iter().map(|(w, _)| *w).collect();
                let members = mix_members(seed, &weights, n);
                Self::from_members(spec, seed, num_tasks, &members)
            }
        }
    }

    /// Rebuilds a population from an explicit membership vector (the
    /// checkpoint-restore path; kills permute memberships, so they
    /// cannot be recomputed from the seed).
    pub fn from_members(
        spec: &ControllerSpec,
        seed: u64,
        num_tasks: usize,
        members: &[u16],
    ) -> Self {
        let seeder = StreamSeeder::new(seed);
        match spec.mix_parts() {
            None => Self::build(spec, seed, num_tasks, members.len()),
            Some(parts) => {
                let mut bank_ids: Vec<Vec<u32>> = vec![Vec::new(); parts.len()];
                let mut index = vec![(0u32, 0u32); members.len()];
                for (i, &b) in members.iter().enumerate() {
                    let b = b as usize;
                    assert!(b < parts.len(), "membership references unknown sub-spec");
                    index[i] = (b as u32, bank_ids[b].len() as u32);
                    bank_ids[b].push(i as u32);
                }
                let banks = parts
                    .iter()
                    .zip(bank_ids)
                    .map(|((_, sub), ids)| Bank::new(sub.clone(), num_tasks, ids, &seeder))
                    .collect();
                let weights = parts.iter().map(|(w, _)| *w).collect();
                Self {
                    banks,
                    index,
                    mix: Some(MixMembership::new(seed, weights)),
                }
            }
        }
    }

    /// Rebuilds this population in place to the state
    /// [`Population::build`] would produce, reusing bank, RNG and index
    /// allocations whenever the bank structure carries over (the
    /// engine-reuse fast path for sweeps; shrink keeps capacity, grow
    /// reallocates). Falls back to a fresh build when the number of
    /// banks changes (e.g. homogeneous ↔ mix, or a different mix
    /// arity).
    pub fn rebuild_in(&mut self, spec: &ControllerSpec, seed: u64, num_tasks: usize, n: usize) {
        match spec.mix_parts() {
            None => self.rebuild_homogeneous(spec, seed, num_tasks, n),
            Some(_) => {
                // Membership is a pure function of (seed, weights, n);
                // the O(n) vector is transient, unlike the banks.
                let members = Self::initial_members(spec, seed, n);
                self.rebuild_with_members(spec, seed, num_tasks, &members);
            }
        }
    }

    /// In-place counterpart of [`Population::from_members`] (the
    /// checkpoint-restore-into-a-reused-engine path).
    pub fn rebuild_from_members_in(
        &mut self,
        spec: &ControllerSpec,
        seed: u64,
        num_tasks: usize,
        members: &[u16],
    ) {
        match spec.mix_parts() {
            None => self.rebuild_homogeneous(spec, seed, num_tasks, members.len()),
            Some(_) => self.rebuild_with_members(spec, seed, num_tasks, members),
        }
    }

    /// The deterministic initial membership vector for a mix spec.
    fn initial_members(spec: &ControllerSpec, seed: u64, n: usize) -> Vec<u16> {
        let weights: Vec<f64> = match spec.mix_parts() {
            Some(parts) => parts.iter().map(|(w, _)| *w).collect(),
            None => Vec::new(),
        };
        assert!(!weights.is_empty(), "initial_members requires a mix spec");
        mix_members(seed, &weights, n)
    }

    fn rebuild_homogeneous(
        &mut self,
        spec: &ControllerSpec,
        seed: u64,
        num_tasks: usize,
        n: usize,
    ) {
        let seeder = StreamSeeder::new(seed);
        self.mix = None;
        self.banks.truncate(1);
        match self.banks.first_mut() {
            Some(bank) => {
                if bank.spec != *spec {
                    bank.spec = spec.clone();
                }
                bank.ants.clear();
                bank.ants.extend(0..n as u32);
                spec.rebuild_bank(num_tasks, &bank.ants, &mut bank.controllers);
                bank.rngs.clear();
                bank.rngs.extend((0..n).map(|i| seeder.ant(i)));
            }
            None => {
                let ids: Vec<u32> = (0..n as u32).collect();
                self.banks
                    .push(Bank::new(spec.clone(), num_tasks, ids, &seeder));
            }
        }
        self.index.clear();
        self.index.extend((0..n as u32).map(|s| (0, s)));
        debug_assert!(self.check_invariants());
    }

    fn rebuild_with_members(
        &mut self,
        spec: &ControllerSpec,
        seed: u64,
        num_tasks: usize,
        members: &[u16],
    ) {
        let Some(parts) = spec.mix_parts() else {
            // audit:allow(panic-path): both callers route homogeneous specs to rebuild_homogeneous.
            unreachable!("rebuild_with_members requires a mix spec");
        };
        if self.banks.len() != parts.len() {
            // Bank structure changed wholesale; nothing worth salvaging.
            *self = Self::from_members(spec, seed, num_tasks, members);
            return;
        }
        let n = members.len();
        let seeder = StreamSeeder::new(seed);
        for bank in &mut self.banks {
            bank.ants.clear();
        }
        self.index.clear();
        self.index.resize(n, (0, 0));
        for (i, &b) in members.iter().enumerate() {
            let b = b as usize;
            assert!(b < parts.len(), "membership references unknown sub-spec");
            self.index[i] = (b as u32, self.banks[b].ants.len() as u32);
            self.banks[b].ants.push(i as u32);
        }
        for (bank, (_, sub)) in self.banks.iter_mut().zip(parts) {
            if bank.spec != *sub {
                bank.spec = sub.clone();
            }
            sub.rebuild_bank(num_tasks, &bank.ants, &mut bank.controllers);
            bank.rngs.clear();
            bank.rngs
                .extend(bank.ants.iter().map(|&i| seeder.ant(i as usize)));
        }
        let weights = parts.iter().map(|(w, _)| *w).collect();
        self.mix = Some(MixMembership::new(seed, weights));
        debug_assert!(self.check_invariants());
    }

    /// Number of ants.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// The banks (census, diagnostics).
    pub fn banks(&self) -> &[Bank] {
        &self.banks
    }

    /// The bank index of every ant, in global ant order — the
    /// checkpointed representation of mixed membership.
    pub fn members(&self) -> Vec<u16> {
        self.index.iter().map(|&(b, _)| b as u16).collect()
    }

    /// Whether this population carries mixed membership.
    pub fn is_mixed(&self) -> bool {
        self.mix.is_some()
    }

    /// One synchronous round over every bank, fused: each bank's step
    /// kernels write every ant's next assignment straight into the
    /// `next` column (at the ant's colony id) and fold the transition
    /// into `delta`, reading prior assignments from the authoritative
    /// `prev` column — no decisions buffer and no apply sweep. No ant
    /// observes another's move: kernels read only their own bank state,
    /// the frozen `prev` column and the shared frozen `prepared`
    /// feedback. The caller commits with
    /// [`ColonyState::commit_round`] (O(1) column swap + O(k) delta).
    ///
    /// Write order (bank-major here, worker-sharded in the parallel
    /// engine) is immaterial: slots are disjoint, delta fields are
    /// commutative sums, and the switch count is a sum. Randomness
    /// consumption stays per-ant, so fused rounds are draw-for-draw
    /// identical to the buffered path they replaced.
    pub fn step_round(
        &mut self,
        sensed: SensedRound<'_>,
        prev: &TaskColumn,
        next: &TaskColumn,
        delta: &mut RoundDelta,
    ) {
        for bank in &mut self.banks {
            let mut writer = ColumnWriter::new(prev, next, delta);
            bank.controllers
                .step_batch_fused(sensed, &mut bank.rngs, &bank.ants, &mut writer);
        }
    }

    /// Steps the single ant `i` (the sequential model's round).
    pub fn step_one(&mut self, i: usize, prepared: &PreparedRound) -> Assignment {
        let (b, s) = self.index[i];
        let bank = &mut self.banks[b as usize];
        bank.controllers
            .step_slot(s as usize, prepared.view(), &mut bank.rngs[s as usize])
    }

    /// Forces every controller to its colony assignment (initial
    /// configurations, scramble/stampede perturbations).
    pub fn reset_to_colony(&mut self, colony: &ColonyState) {
        for bank in &mut self.banks {
            for s in 0..bank.len() {
                let a = colony.assignment(bank.ants[s] as usize);
                bank.controllers.reset_slot(s, a);
            }
        }
    }

    /// Persistent memory of ant `i`'s controller, in bits.
    pub fn memory_bits(&self, i: usize) -> u32 {
        let (b, s) = self.index[i];
        self.banks[b as usize].controllers.memory_bits(s as usize)
    }

    /// Removes the ant with global id `victim`, mirroring the colony's
    /// swap-removal: the global last ant takes over id `victim`.
    pub fn remove(&mut self, victim: usize) {
        let last = self.index.len() - 1;
        let (b, s) = self.index[victim];
        let (b, s) = (b as usize, s as usize);
        let bank = &mut self.banks[b];
        bank.controllers.swap_remove(s);
        bank.rngs.swap_remove(s);
        bank.ants.swap_remove(s);
        if s < bank.ants.len() {
            // The bank's last ant moved into slot `s`.
            self.index[bank.ants[s] as usize] = (b as u32, s as u32);
        }
        if victim != last {
            let home = self.index[last];
            self.index[victim] = home;
            self.banks[home.0 as usize].ants[home.1 as usize] = victim as u32;
        }
        self.index.pop();
        debug_assert!(self.check_invariants());
    }

    /// Appends a freshly spawned ant (global id `len()`) with RNG
    /// stream `stream`. Homogeneous colonies spawn into their single
    /// bank; mixes draw the sub-spec deterministically from `stream`.
    pub fn spawn(&mut self, num_tasks: usize, stream: u64, rng: AntRng) {
        let b = match &self.mix {
            None => 0,
            Some(mix) => mix.pick_spawn(stream),
        };
        let id = self.index.len() as u32;
        let bank = &mut self.banks[b];
        // Spawns use the spec's plain single-ant build (desync spawns
        // get offset 0, matching the pre-bank engines).
        bank.controllers.push(bank.spec.build(num_tasks));
        bank.rngs.push(rng);
        self.index.push((b as u32, bank.ants.len() as u32));
        bank.ants.push(id);
        debug_assert!(self.check_invariants());
    }

    /// Every ant's mid-phase controller scratch, in global ant order —
    /// only ants of kinds that carry scratch (Precise Sigmoid counters)
    /// produce entries. This is what lets checkpoints capture *between*
    /// those kinds' phase boundaries.
    pub fn scratches(&self) -> Vec<(u32, ControllerScratch)> {
        let mut out = Vec::new();
        for (i, &(b, s)) in self.index.iter().enumerate() {
            if let Some(scratch) = self.banks[b as usize].controllers.scratch(s as usize) {
                out.push((i as u32, scratch));
            }
        }
        out
    }

    /// Overwrites ant `i`'s mid-phase controller scratch (checkpoint
    /// restore; apply after [`Population::reset_to_colony`]).
    pub fn apply_scratch(&mut self, i: usize, scratch: &ControllerScratch) {
        let (b, s) = self.index[i];
        self.banks[b as usize]
            .controllers
            .apply_scratch(s as usize, scratch);
    }

    /// Every ant's RNG state, in global ant order (checkpoint capture).
    pub fn rng_states(&self) -> Vec<[u64; 4]> {
        self.index
            .iter()
            .map(|&(b, s)| self.banks[b as usize].rngs[s as usize].state())
            .collect()
    }

    /// Overwrites every ant's RNG state, in global ant order
    /// (checkpoint restore).
    pub fn set_rng_states(&mut self, states: &[[u64; 4]]) {
        assert_eq!(states.len(), self.index.len());
        for (i, &st) in states.iter().enumerate() {
            let (b, s) = self.index[i];
            self.banks[b as usize].rngs[s as usize] = AntRng::from_state(st);
        }
    }

    /// Clones every controller into the per-ant dispatch enum, in
    /// global ant order — the reference representation the bank
    /// equivalence tests and the pre-bank baseline replay use.
    pub fn reference_controllers(&self) -> Vec<AnyController> {
        self.index
            .iter()
            .map(|&(b, s)| self.banks[b as usize].controllers.to_any(s as usize))
            .collect()
    }

    /// Splits the whole population into `workers` disjoint parts of
    /// ~`chunk` ants each, cutting across banks as needed. Each part is
    /// a list of (controller chunk, RNG chunk, global-id chunk)
    /// triples; the parallel engine hands one part to each worker for a
    /// whole run. The final part absorbs any remainder.
    pub fn partition_mut(&mut self, workers: usize, chunk: usize) -> Vec<WorkerPart<'_>> {
        assert!(workers >= 1 && chunk >= 1);
        let mut parts: Vec<WorkerPart<'_>> = (0..workers).map(|_| Vec::new()).collect();
        let mut cur = 0usize;
        let mut fill = 0usize;
        for bank in &mut self.banks {
            let mut slice = bank.controllers.as_slice_mut();
            let mut rngs: &mut [AntRng] = &mut bank.rngs;
            let mut ids: &[u32] = &bank.ants;
            while !slice.is_empty() {
                if fill == chunk && cur + 1 < workers {
                    cur += 1;
                    fill = 0;
                }
                let room = if cur + 1 < workers {
                    chunk - fill
                } else {
                    usize::MAX
                };
                let take = room.min(slice.len());
                let (head, tail) = slice.split_at_mut(take);
                let (rng_head, rng_tail) = rngs.split_at_mut(take);
                let (id_head, id_tail) = ids.split_at(take);
                parts[cur].push((head, rng_head, id_head));
                fill += take;
                slice = tail;
                rngs = rng_tail;
                ids = id_tail;
            }
        }
        parts
    }

    /// Full invariant check (debug asserts and tests).
    pub fn check_invariants(&self) -> bool {
        if self.index.len() != self.banks.iter().map(Bank::len).sum::<usize>() {
            return false;
        }
        for (b, bank) in self.banks.iter().enumerate() {
            if bank.controllers.len() != bank.ants.len() || bank.rngs.len() != bank.ants.len() {
                return false;
            }
            for (s, &id) in bank.ants.iter().enumerate() {
                if self.index.get(id as usize) != Some(&(b as u32, s as u32)) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antalloc_core::AntParams;

    fn mix_spec() -> ControllerSpec {
        ControllerSpec::Mix(vec![
            (2.0, ControllerSpec::Ant(AntParams::default())),
            (1.0, ControllerSpec::Trivial),
            (1.0, ControllerSpec::ExactGreedy(Default::default())),
        ])
    }

    #[test]
    fn quotas_are_exact_largest_remainder() {
        assert_eq!(mix_quotas(&[2.0, 1.0, 1.0], 100), vec![50, 25, 25]);
        assert_eq!(mix_quotas(&[1.0, 1.0, 1.0], 10), vec![4, 3, 3]);
        assert_eq!(mix_quotas(&[1.0], 7), vec![7]);
        let q = mix_quotas(&[0.7, 0.2, 0.1], 9);
        assert_eq!(q.iter().sum::<usize>(), 9);
    }

    #[test]
    fn membership_is_deterministic_and_matches_quotas() {
        let a = mix_members(7, &[2.0, 1.0, 1.0], 200);
        let b = mix_members(7, &[2.0, 1.0, 1.0], 200);
        assert_eq!(a, b);
        assert_eq!(a.iter().filter(|&&m| m == 0).count(), 100);
        assert_eq!(a.iter().filter(|&&m| m == 1).count(), 50);
        // A different seed shuffles differently.
        assert_ne!(a, mix_members(8, &[2.0, 1.0, 1.0], 200));
        // ... but not sorted: the shuffle interleaves.
        assert!(a.windows(2).any(|w| w[0] > w[1]));
    }

    #[test]
    fn build_upholds_invariants_through_kill_and_spawn() {
        let spec = mix_spec();
        let mut p = Population::build(&spec, 3, 2, 40);
        assert!(p.check_invariants());
        assert_eq!(p.banks().len(), 3);
        assert_eq!(p.len(), 40);
        // Kill a few ants from the middle and the end.
        p.remove(5);
        p.remove(30);
        p.remove(p.len() - 1);
        assert_eq!(p.len(), 37);
        assert!(p.check_invariants());
        // Spawn back; membership picks stay in range.
        let seeder = StreamSeeder::new(3);
        for stream in 40..45u64 {
            p.spawn(2, stream, seeder.stream(stream));
        }
        assert_eq!(p.len(), 42);
        assert!(p.check_invariants());
    }

    #[test]
    fn members_roundtrip_through_from_members() {
        let spec = mix_spec();
        let p = Population::build(&spec, 11, 2, 30);
        let members = p.members();
        let q = Population::from_members(&spec, 11, 2, &members);
        assert_eq!(q.members(), members);
        assert!(q.check_invariants());
    }
}
