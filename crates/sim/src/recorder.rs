//! Downsampled trace recording and CSV output for the figure benches.

use std::io::Write as _;
use std::path::Path;

use antalloc_metrics::SeriesDownsampler;

use crate::engine::RoundRecord;
use crate::observer::Observer;

/// Records per-task deficit traces and the regret series, downsampled by
/// a fixed stride so multi-million-round runs stay small, plus an exact
/// (non-downsampled) head of the run for phase-level figures.
pub struct TraceRecorder {
    deficit_series: Vec<SeriesDownsampler>,
    regret_series: SeriesDownsampler,
    head_rounds: u64,
    head: Vec<Vec<i64>>,
    head_loads: Vec<Vec<u32>>,
    rounds: u64,
}

impl TraceRecorder {
    /// `num_tasks` tasks, averaging blocks of `stride` rounds, keeping
    /// the first `head_rounds` rounds exactly.
    pub fn new(num_tasks: usize, stride: u64, head_rounds: u64) -> Self {
        Self {
            deficit_series: (0..num_tasks)
                .map(|_| SeriesDownsampler::new(stride))
                .collect(),
            regret_series: SeriesDownsampler::new(stride),
            head_rounds,
            head: Vec::new(),
            head_loads: Vec::new(),
            rounds: 0,
        }
    }

    /// Rounds recorded.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The exact deficit vectors of the first `head_rounds` rounds.
    pub fn head(&self) -> &[Vec<i64>] {
        &self.head
    }

    /// The exact load vectors of the first `head_rounds` rounds.
    pub fn head_loads(&self) -> &[Vec<u32>] {
        &self.head_loads
    }

    /// Downsampled deficit trace of task `j`.
    pub fn deficit_trace(&self, j: usize) -> &[f64] {
        self.deficit_series[j].points()
    }

    /// Downsampled regret trace.
    pub fn regret_trace(&self) -> &[f64] {
        self.regret_series.points()
    }

    /// Writes the downsampled traces as CSV:
    /// `block,regret,deficit_0,…,deficit_{k−1}`.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        write!(out, "block,regret")?;
        for j in 0..self.deficit_series.len() {
            write!(out, ",deficit_{j}")?;
        }
        writeln!(out)?;
        let blocks = self.regret_series.points().len();
        for b in 0..blocks {
            write!(out, "{b},{}", self.regret_series.points()[b])?;
            for series in &self.deficit_series {
                let v = series.points().get(b).copied().unwrap_or(f64::NAN);
                write!(out, ",{v}")?;
            }
            writeln!(out)?;
        }
        out.flush()
    }
}

impl Observer for TraceRecorder {
    fn on_round(&mut self, record: &RoundRecord<'_>) {
        self.rounds += 1;
        if self.rounds <= self.head_rounds {
            self.head.push(record.deficits.to_vec());
            self.head_loads.push(record.loads.to_vec());
        }
        for (series, &delta) in self.deficit_series.iter_mut().zip(record.deficits) {
            series.push(delta as f64);
        }
        self.regret_series.push(record.instant_regret() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record<'a>(deficits: &'a [i64], demands: &'a [u64], loads: &'a [u32]) -> RoundRecord<'a> {
        RoundRecord {
            round: 1,
            deficits,
            demands,
            loads,
            idle: 0,
            switches: 0,
        }
    }

    #[test]
    fn records_head_and_downsamples() {
        let mut r = TraceRecorder::new(2, 2, 3);
        for i in 0..6i64 {
            r.on_round(&record(&[i, -i], &[10, 10], &[5, 5]));
        }
        assert_eq!(r.rounds(), 6);
        assert_eq!(r.head().len(), 3);
        assert_eq!(r.head()[2], vec![2, -2]);
        assert_eq!(r.head_loads()[0], vec![5, 5]);
        // Blocks of 2: deficits averaged pairwise.
        assert_eq!(r.deficit_trace(0), &[0.5, 2.5, 4.5]);
        assert_eq!(r.deficit_trace(1), &[-0.5, -2.5, -4.5]);
        // Regret = 2i per round → block averages 1, 5, 9.
        assert_eq!(r.regret_trace(), &[1.0, 5.0, 9.0]);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut r = TraceRecorder::new(1, 1, 0);
        r.on_round(&record(&[3], &[10], &[7]));
        r.on_round(&record(&[-2], &[10], &[12]));
        let dir = std::env::temp_dir().join("antalloc_test_recorder");
        let path = dir.join("trace.csv");
        r.write_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("block,regret,deficit_0"));
        assert_eq!(lines.next(), Some("0,3,3"));
        assert_eq!(lines.next(), Some("1,2,-2"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
