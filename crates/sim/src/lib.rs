//! Simulation engines and the scenario layer for *Self-Stabilizing Task
//! Allocation In Spite of Noise*.
//!
//! ## Describing a run
//!
//! Scenarios are built fluently and validated up front — everything
//! that used to panic mid-run is a typed [`ConfigError`] at build time:
//!
//! ```
//! use antalloc_core::AntParams;
//! use antalloc_noise::NoiseModel;
//! use antalloc_sim::{ControllerSpec, NullObserver, SimConfig};
//!
//! let config = SimConfig::builder(800, vec![100, 150])
//!     .noise(NoiseModel::Sigmoid { lambda: 2.0 })
//!     .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
//!     .seed(7)
//!     .build()
//!     .expect("valid scenario");
//! let mut engine = config.build();
//! engine.run(100, &mut NullObserver);
//! assert_eq!(engine.round(), 100);
//! ```
//!
//! The same scenario is a declarative TOML (or JSON) document via
//! [`Scenario`], and [`Batch`]/[`Sweep`] fan a scenario out over seed
//! lists and parameter grids on OS threads with per-seed results
//! bit-identical to serial runs. See the [`scenario`] module docs.
//!
//! ## Running
//!
//! * [`SyncEngine`] — the paper's synchronous model (§2.1): every round,
//!   all ants observe feedback frozen at the end of the previous round,
//!   then act simultaneously. Supports deterministic multi-threaded
//!   stepping ([`SyncEngine::run_parallel`]) whose results are
//!   bit-identical to the serial path for any thread count.
//! * [`SequentialEngine`] — Appendix D.1's model: one uniformly random
//!   ant acts per round.
//! * [`Observer`] — per-round measurement hook; [`BasicObserver`]
//!   bundles the standard metrics, [`TraceRecorder`] stores downsampled
//!   series and writes CSV.
//! * [`Checkpoint`] — versioned binary snapshots, exact at phase
//!   boundaries (see `checkpoint` module docs); restored engines carry
//!   their full [`SimConfig`], so a checkpoint can always be re-encoded
//!   as a scenario file.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod checkpoint;
mod config;
mod engine;
mod observer;
mod population;
mod recorder;
pub mod scenario;
mod sequential;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use config::{ControllerSpec, SimConfig};
pub use engine::{BankCensus, RoundRecord, SyncEngine};
pub use observer::{BasicObserver, Both, FnObserver, NullObserver, Observer, RunSummary};
pub use recorder::TraceRecorder;
pub use scenario::{
    AxisValue, Batch, CapturePolicy, ConfigError, CsvSink, JsonlSink, RunOutcome, RunSink,
    Scenario, ScenarioBuilder, Sweep, UsePolicy, MAX_TASKS,
};
pub use sequential::SequentialEngine;
