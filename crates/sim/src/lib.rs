//! Simulation engines for *Self-Stabilizing Task Allocation In Spite of
//! Noise*.
//!
//! * [`SyncEngine`] — the paper's synchronous model (§2.1): every round,
//!   all ants observe feedback frozen at the end of the previous round,
//!   then act simultaneously. Supports deterministic multi-threaded
//!   stepping ([`SyncEngine::run_parallel`]) whose results are
//!   bit-identical to the serial path for any thread count.
//! * [`SequentialEngine`] — Appendix D.1's model: one uniformly random
//!   ant acts per round.
//! * [`Observer`] — per-round measurement hook; [`BasicObserver`]
//!   bundles the standard metrics, [`TraceRecorder`] stores downsampled
//!   series and writes CSV.
//! * [`Checkpoint`] — versioned binary snapshots, exact at phase
//!   boundaries (see `checkpoint` module docs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod config;
mod engine;
mod observer;
mod recorder;
mod sequential;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use config::{ControllerSpec, SimConfig};
pub use engine::{RoundRecord, SyncEngine};
pub use observer::{BasicObserver, Both, FnObserver, NullObserver, Observer, RunSummary};
pub use recorder::TraceRecorder;
pub use sequential::SequentialEngine;
