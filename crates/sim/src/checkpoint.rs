//! Versioned binary checkpoints.
//!
//! A checkpoint captures everything a [`SyncEngine`] needs to continue a
//! run bit-identically: the config (including noise model, controller
//! spec and the full event timeline — triggers and generators
//! included), the current demands, the noise model currently in force,
//! the timeline cursor, the runtime state of every trigger, every
//! ant's assignment and RNG state, and the round counter — so a
//! capture taken *mid-timeline* (after kills, spawns, demand steps,
//! noise switches or trigger firings) resumes exactly where the script
//! left off. The byte layout, the v2 → v3 → v4 version history and the
//! read-compat policy live in `docs/CHECKPOINTS.md`.
//!
//! **Exactness contract.** Controllers are rebuilt from their spec and
//! `reset_to(assignment)`, plus — since format v5 — a per-kind
//! **scratch section** carrying mid-phase state for kinds that
//! serialize it: Precise Sigmoid's half-phase counters
//! ([`SigmoidScratch`]), whose `2m = O(1/ε)`-round phases previously
//! restricted captures to every 2m-th round (and a restore landing
//! mid-phase silently idled out the partial phase), and — since v6 —
//! Precise Adversarial's phase trackers
//! ([`antalloc_core::AdversarialScratch`]), closing the last long-phase
//! capture gap. Kinds *without* a
//! scratch codec still capture only at their phase boundaries
//! (`round % capture_phase == 0`, see
//! [`crate::ControllerSpec::capture_phase_len`]), where their per-phase
//! scratch is empty by construction; [`Checkpoint::capture`] refuses to
//! snapshot anywhere else. Restored runs replay exactly
//! (`tests/checkpoint_replay.rs` and `tests/banks.rs` assert
//! bit-identical trajectories, including mid-phase Precise Sigmoid
//! restores).
//!
//! Exceptions: `ControllerSpec::AntDesync` has, by construction, no
//! global phase boundary — the offset half of the colony is always
//! mid-phase — so its restores are *approximate* (the offset half skips
//! one decision and self-stabilizes); likewise kill-perturbations
//! reshuffle which index carries which offset.

use std::path::Path;

use antalloc_core::{
    AdversarialScratch, AntParams, ControllerScratch, ExactGreedyParams, PreciseAdversarialParams,
    PreciseSigmoidParams, ProportionalParams, SigmoidScratch,
};
use antalloc_env::{
    ArenaConfig, Assignment, Condition, Cycle, DemandSchedule, DemandVector, Event, GenShock,
    InitialConfig, TimedEvent, Timeline, TimelineGen, Trigger, TriggerState,
};
use antalloc_noise::{GreyZonePolicy, NoiseModel};
use bytes::{Buf, BufMut};

use crate::config::{ControllerSpec, SimConfig};
use crate::engine::SyncEngine;

const MAGIC: u32 = 0x414E_5441; // "ANTA"
/// The current format version. The v2 → … → v7 evolution, what each
/// version carries, and the read-compat policy are documented in
/// `docs/CHECKPOINTS.md`; in short: v7 added the spatial-arena section
/// (arena config after the initial configuration, per-ant site/travel
/// columns at the tail), the Proportional controller spec and scratch
/// tags, the deficit condition tags, the `set-task-demand` event tag,
/// and per-trigger `prev_deficits`; v6 added the Precise Adversarial
/// scratch tag to the scratch section (every shipped long-phase kind
/// now captures mid-phase), v5 appended the per-kind controller
/// scratch section (Precise Sigmoid mid-phase counters), v4 added
/// timeline triggers and generators to the timeline codec plus the
/// per-trigger runtime state section, v3 replaced the demand schedule
/// with the event timeline (plus live noise model and cursor), v2
/// appended mixed-colony bank membership. Writers always emit the
/// current version; readers accept everything back to [`MIN_VERSION`].
const VERSION: u32 = 7;
const MIN_VERSION: u32 = 2;

/// Why a checkpoint could not be captured or decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Capture attempted off a phase boundary.
    NotAtPhaseBoundary {
        /// The engine's round.
        round: u64,
        /// The controller's phase length.
        phase: u64,
    },
    /// The byte stream is not a valid checkpoint.
    Corrupt(String),
}

impl core::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CheckpointError::NotAtPhaseBoundary { round, phase } => write!(
                f,
                "checkpoint requires round % phase == 0 (round {round}, phase {phase})"
            ),
            CheckpointError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A captured simulation state.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    config: SimConfig,
    current_demands: Vec<u64>,
    /// The noise model in force at capture time (a timeline `SetNoise`
    /// event may have switched it away from `config.noise`).
    current_noise: NoiseModel,
    /// One-shot timeline events consumed before the captured round
    /// (indexes the *compiled* stream: scripted plus generated events).
    cursor: u64,
    /// Runtime state of every timeline trigger (v4; empty before).
    trigger_states: Vec<TriggerState>,
    assignments: Vec<Assignment>,
    rng_states: Vec<[u64; 4]>,
    round: u64,
    next_stream: u64,
    /// Per-ant bank membership for `ControllerSpec::Mix` colonies
    /// (which sub-spec each global ant id runs); empty otherwise.
    members: Vec<u16>,
    /// Mid-phase controller scratch in ascending global-ant order (v5;
    /// empty before). Only kinds with a scratch codec — Precise
    /// Sigmoid counters (v5), Precise Adversarial phase trackers (v6)
    /// and Proportional overload/lack streaks (v7) — produce entries.
    scratch: Vec<(u32, ControllerScratch)>,
    /// Per-ant arena site column (v7; empty unless the config pins
    /// tasks to arena sites).
    arena_site: Vec<u32>,
    /// Per-ant remaining travel rounds (v7; same shape as
    /// `arena_site`).
    arena_travel: Vec<u32>,
}

impl Checkpoint {
    /// Snapshots the engine. Fails off *capture* phase boundaries —
    /// kinds whose mid-phase state is serialized (Precise Sigmoid) can
    /// capture at any round; the rest only where their per-phase
    /// scratch is empty (see module docs).
    pub fn capture(engine: &SyncEngine) -> Result<Self, CheckpointError> {
        let state = engine.state_parts();
        let phase = state
            .config
            .controller
            .capture_phase_len(state.colony.num_tasks());
        if !state.round.is_multiple_of(phase) {
            return Err(CheckpointError::NotAtPhaseBoundary {
                round: state.round,
                phase,
            });
        }
        Ok(Self {
            config: state.config.clone(),
            current_demands: state.colony.demands().as_slice().to_vec(),
            current_noise: state.noise.clone(),
            cursor: state.cursor,
            trigger_states: state.trigger_states,
            assignments: state.colony.assignments(),
            rng_states: state.rng_states,
            round: state.round,
            next_stream: state.next_stream,
            members: state.members.unwrap_or_default(),
            scratch: state.scratch,
            arena_site: state.arena_site,
            arena_travel: state.arena_travel,
        })
    }

    /// Rebuilds a running engine.
    pub fn restore(&self) -> SyncEngine {
        let mut engine = SyncEngine::new(
            self.config.clone(),
            DemandVector::new(self.config.demands.clone()),
        );
        self.restore_into(&mut engine);
        engine
    }

    /// Restores the captured state into an existing engine in place,
    /// reusing its allocations (the sweep fast path's engine-reuse
    /// counterpart for resumed runs). Bit-identical to
    /// [`Checkpoint::restore`] regardless of what the engine ran
    /// before.
    pub fn restore_into(&self, engine: &mut SyncEngine) {
        engine.restore_parts_in(
            &self.config,
            &self.current_demands,
            &self.current_noise,
            &self.assignments,
            &self.rng_states,
            self.round,
            self.next_stream,
            self.cursor,
            &self.members,
            &self.trigger_states,
            &self.scratch,
            self.arena_columns(),
        );
    }

    /// The captured arena site/travel columns, if any.
    fn arena_columns(&self) -> Option<(&[u32], &[u32])> {
        (!self.arena_site.is_empty())
            .then_some((self.arena_site.as_slice(), self.arena_travel.as_slice()))
    }

    /// Rebases the captured state onto a *different* configuration —
    /// the sweep warm-start path (`Sweep::from_round`): one prefix run
    /// of the base scenario is captured once, then forked into every
    /// grid point, whose parameters take effect from the captured
    /// round onward.
    ///
    /// Callers must have prechecked the fork (the sweep does): same
    /// controller, colony size, initial configuration and task count,
    /// same triggers and generators, identical timeline prefix through
    /// the captured round, and the same seed as the prefix run. Within
    /// that envelope the rebase is mechanical: swept `demands`/`noise`
    /// replace the captured values only when the fork config actually
    /// changes them from the *base* config (a prefix timeline event
    /// that already overrode them wins otherwise, exactly as it would
    /// in an uninterrupted run), and the one-shot cursor is recomputed
    /// against the fork's compiled timeline. With an unchanged config
    /// this is [`Checkpoint::restore_into`] bit for bit.
    pub fn fork_into(&self, config: &SimConfig, engine: &mut SyncEngine) {
        let demands = if config.demands != self.config.demands {
            &config.demands
        } else {
            &self.current_demands
        };
        let noise = if config.noise != self.config.noise {
            &config.noise
        } else {
            &self.current_noise
        };
        let compiled = config
            .timeline
            .compile(config.seed, config.n, &config.demands);
        let cursor = compiled.cursor_at(self.round) as u64;
        engine.restore_parts_in(
            config,
            demands,
            noise,
            &self.assignments,
            &self.rng_states,
            self.round,
            self.next_stream,
            cursor,
            &self.members,
            &self.trigger_states,
            &self.scratch,
            self.arena_columns(),
        );
    }

    /// The captured round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The configuration embedded in this checkpoint.
    ///
    /// Together with [`crate::SimConfig::to_toml`] this lets a
    /// checkpoint publish the scenario that produced it verbatim.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Serializes to the versioned binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.assignments.len() * 36);
        out.put_u32_le(MAGIC);
        out.put_u32_le(VERSION);
        out.put_u64_le(self.round);
        out.put_u64_le(self.next_stream);
        out.put_u64_le(self.config.seed);
        out.put_u64_le(self.config.n as u64);
        put_u64s(&mut out, &self.config.demands);
        put_u64s(&mut out, &self.current_demands);
        put_noise(&mut out, &self.config.noise);
        // v3: the live noise model and the timeline (with its cursor)
        // replace v2's demand schedule.
        put_noise(&mut out, &self.current_noise);
        put_spec(&mut out, &self.config.controller);
        put_timeline(&mut out, &self.config.timeline);
        out.put_u64_le(self.cursor);
        // v4: the runtime state of every trigger, in timeline order.
        out.put_u64_le(self.trigger_states.len() as u64);
        for state in &self.trigger_states {
            out.put_u64_le(u64::from(state.firings));
            out.put_u64_le(state.last_fired);
            out.put_u8(u8::from(state.pending));
            out.put_u64_le(state.streaks.len() as u64);
            for &streak in &state.streaks {
                out.put_u32_le(streak);
            }
            // v7: last observed deficits of the rate leaves.
            out.put_u64_le(state.prev_deficits.len() as u64);
            for &prev in &state.prev_deficits {
                out.put_i64_le(prev);
            }
        }
        put_initial(&mut out, &self.config.initial);
        // v7: the spatial arena, if the scenario pins tasks to sites.
        match &self.config.arena {
            None => out.put_u8(0),
            Some(arena) => {
                out.put_u8(1);
                out.put_u64_le(arena.site_of_task.len() as u64);
                for &site in &arena.site_of_task {
                    out.put_u32_le(site);
                }
                out.put_u32_le(arena.travel_rounds);
                out.put_f64_le(arena.wander_probability);
            }
        }
        out.put_u64_le(self.assignments.len() as u64);
        for a in &self.assignments {
            out.put_u32_le(match a {
                Assignment::Idle => u32::MAX,
                Assignment::Task(j) => *j,
            });
        }
        for s in &self.rng_states {
            for &w in s {
                out.put_u64_le(w);
            }
        }
        // v2: per-ant bank membership, present iff the spec is a Mix.
        if matches!(self.config.controller, ControllerSpec::Mix(_)) {
            out.put_u64_le(self.members.len() as u64);
            for &m in &self.members {
                out.put_u16_le(m);
            }
        }
        // v5: per-kind controller scratch, ascending global-ant order.
        out.put_u64_le(self.scratch.len() as u64);
        for (ant, scratch) in &self.scratch {
            out.put_u32_le(*ant);
            match scratch {
                ControllerScratch::PreciseSigmoid(s) => {
                    out.put_u8(0);
                    out.put_u32_le(match s.current_task {
                        Assignment::Idle => u32::MAX,
                        Assignment::Task(j) => j,
                    });
                    out.put_u8(u8::from(s.have_phase));
                    for &c in &s.count1 {
                        out.put_u16_le(c);
                    }
                    for &c in &s.count2 {
                        out.put_u16_le(c);
                    }
                    for &l in &s.shat1_lack {
                        out.put_u8(u8::from(l));
                    }
                }
                // v6: Precise Adversarial phase trackers.
                ControllerScratch::PreciseAdversarial(s) => {
                    out.put_u8(1);
                    out.put_u32_le(match s.current_task {
                        Assignment::Idle => u32::MAX,
                        Assignment::Task(j) => j,
                    });
                    out.put_u8(u8::from(s.have_phase));
                    out.put_u8(u8::from(s.all_overload));
                    out.put_u8(u8::from(s.frozen_working));
                    out.put_u8(u8::from(s.pending_first_lack));
                    out.put_u8(match s.working_at_first_lack {
                        None => 0,
                        Some(false) => 1,
                        Some(true) => 2,
                    });
                    for &l in &s.all_lack {
                        out.put_u8(u8::from(l));
                    }
                }
                // v7: Proportional overload/lack streak.
                ControllerScratch::Proportional(streak) => {
                    out.put_u8(2);
                    out.put_u16_le(*streak);
                }
            }
        }
        // v7: per-ant arena columns (site, then travel), present iff
        // the config carries an arena; lengths equal the ant count.
        if self.config.arena.is_some() {
            for &site in &self.arena_site {
                out.put_u32_le(site);
            }
            for &travel in &self.arena_travel {
                out.put_u32_le(travel);
            }
        }
        out
    }

    /// Deserializes from [`Checkpoint::to_bytes`] output.
    pub fn from_bytes(mut buf: &[u8]) -> Result<Self, CheckpointError> {
        let magic = get_u32(&mut buf)?;
        if magic != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = get_u32(&mut buf)?;
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(corrupt(format!("unsupported version {version}")));
        }
        let round = get_u64(&mut buf)?;
        let next_stream = get_u64(&mut buf)?;
        let seed = get_u64(&mut buf)?;
        let n = get_u64(&mut buf)? as usize;
        let demands = get_u64s(&mut buf)?;
        let current_demands = get_u64s(&mut buf)?;
        let noise = get_noise(&mut buf)?;
        let current_noise = if version >= 3 {
            get_noise(&mut buf)?
        } else {
            noise.clone()
        };
        let controller = get_spec(&mut buf)?;
        let (timeline, cursor) = if version >= 3 {
            let timeline = get_timeline(&mut buf, version)?;
            let cursor = get_u64(&mut buf)?;
            // Reject structurally invalid timelines *before* compiling:
            // any captured config passed build-time validation, so a
            // failure here means crafted or corrupted bytes — and a
            // crafted generator section (start = 0, absurd windows)
            // must never drive the expansion loop.
            timeline
                .validate(demands.len(), n)
                .and_then(|()| timeline.validate_triggers(demands.len()))
                .map_err(|e| corrupt(format!("invalid timeline: {e}")))?;
            // The cursor indexes the *compiled* stream (generated
            // events included), which re-expands deterministically.
            let compiled_events = timeline.compile(seed, n, &demands).events.len();
            if cursor as usize > compiled_events {
                return Err(corrupt(format!(
                    "timeline cursor {cursor} exceeds {compiled_events} compiled events"
                )));
            }
            (timeline, cursor)
        } else {
            // v2 stored a demand schedule; compile it to the equivalent
            // timeline and recompute the cursor from the round (both
            // fire at identical rounds, so the continuation is exact).
            let timeline: Timeline = get_schedule(&mut buf)?.into();
            let cursor = timeline.cursor_at(round) as u64;
            (timeline, cursor)
        };
        let trigger_states = if version >= 4 {
            let count = get_u64(&mut buf)? as usize;
            if count != timeline.triggers.len() {
                return Err(corrupt(format!(
                    "{count} trigger states for {} triggers",
                    timeline.triggers.len()
                )));
            }
            let mut states = Vec::with_capacity(count.min(1 << 10));
            for i in 0..count {
                let firings = get_u64(&mut buf)?;
                let firings = u32::try_from(firings)
                    .map_err(|_| corrupt(format!("implausible firing count {firings}")))?;
                let last_fired = get_u64(&mut buf)?;
                let pending = get_bool(&mut buf)?;
                let streak_len = get_u64(&mut buf)? as usize;
                if streak_len > 1 << 16 {
                    return Err(corrupt("implausible streak count"));
                }
                let mut streaks = Vec::with_capacity(streak_len.min(1 << 10));
                for _ in 0..streak_len {
                    streaks.push(get_u32(&mut buf)?);
                }
                // v7 appended the rate leaves' last observed deficits;
                // older captures cannot hold rate conditions, so the
                // fresh-state default (all unset) is exact.
                let prev_deficits = if version >= 7 {
                    let prev_len = get_u64(&mut buf)? as usize;
                    if prev_len > 1 << 16 {
                        return Err(corrupt("implausible prev-deficit count"));
                    }
                    let mut prevs = Vec::with_capacity(prev_len.min(1 << 10));
                    for _ in 0..prev_len {
                        prevs.push(get_i64(&mut buf)?);
                    }
                    prevs
                } else {
                    TriggerState::new(&timeline.triggers[i]).prev_deficits
                };
                let state = TriggerState {
                    streaks,
                    firings,
                    last_fired,
                    pending,
                    prev_deficits,
                };
                if !state.matches(&timeline.triggers[i]) {
                    return Err(corrupt(format!(
                        "trigger state {i} disagrees with its condition shape"
                    )));
                }
                states.push(state);
            }
            states
        } else {
            // Pre-v4 formats cannot encode triggers, so there is no
            // state to restore.
            Vec::new()
        };
        let initial = get_initial(&mut buf)?;
        // v7: the spatial arena (None before v7 — the mode predates it).
        let arena = if version >= 7 && get_bool(&mut buf)? {
            let len = get_u64(&mut buf)? as usize;
            if len != demands.len() {
                return Err(corrupt(format!(
                    "arena pins {len} tasks but the scenario has {}",
                    demands.len()
                )));
            }
            let mut site_of_task = Vec::with_capacity(len.min(1 << 16));
            for _ in 0..len {
                site_of_task.push(get_u32(&mut buf)?);
            }
            let arena = ArenaConfig {
                site_of_task,
                travel_rounds: get_u32(&mut buf)?,
                wander_probability: get_f64(&mut buf)?,
            };
            // Any captured arena passed build-time validation; failure
            // here means crafted or corrupted bytes.
            arena
                .validate(demands.len())
                .map_err(|e| corrupt(format!("invalid arena: {e}")))?;
            Some(arena)
        } else {
            None
        };
        let ants = get_u64(&mut buf)? as usize;
        // Validate the claimed count against the bytes actually present
        // (4 per assignment + 32 per RNG state) before any allocation —
        // a corrupted count must not drive `with_capacity` to OOM.
        let per_ant = 4usize + 32;
        if buf.remaining() / per_ant < ants {
            return Err(corrupt(format!(
                "ant count {ants} exceeds remaining payload"
            )));
        }
        let mut assignments = Vec::with_capacity(ants);
        for _ in 0..ants {
            let raw = get_u32(&mut buf)?;
            assignments.push(if raw == u32::MAX {
                Assignment::Idle
            } else {
                Assignment::Task(raw)
            });
        }
        let mut rng_states = Vec::with_capacity(ants);
        for _ in 0..ants {
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = get_u64(&mut buf)?;
            }
            rng_states.push(s);
        }
        let members = if let ControllerSpec::Mix(parts) = &controller {
            let len = get_u64(&mut buf)? as usize;
            if len != ants {
                return Err(corrupt(format!(
                    "membership length {len} disagrees with ant count {ants}"
                )));
            }
            let mut members = Vec::with_capacity(len);
            for _ in 0..len {
                need(&buf, 2)?;
                let m = buf.get_u16_le();
                if usize::from(m) >= parts.len() {
                    return Err(corrupt(format!(
                        "membership {m} references unknown sub-spec"
                    )));
                }
                members.push(m);
            }
            members
        } else {
            Vec::new()
        };
        let scratch = if version >= 5 {
            let k = demands.len();
            let count = get_u64(&mut buf)? as usize;
            // Minimum per-entry size across the scratch kinds: Precise
            // Sigmoid is ant id + tag + currentTask + have_phase + two
            // u16 counter rows + one median-bit row (10 + 5k); Precise
            // Adversarial is ant id + tag + currentTask + five flag
            // bytes + one lack-bit row (14 + k); Proportional is ant id
            // + tag + streak (7). Validate the claimed count against
            // the bytes present before any allocation.
            let per_entry = (4 + 1 + 4 + 1 + k * 5)
                .min(4 + 1 + 4 + 5 + k)
                .min(4 + 1 + 2);
            if count > ants || buf.remaining() / per_entry < count {
                return Err(corrupt(format!(
                    "scratch count {count} exceeds payload or ant count {ants}"
                )));
            }
            // Which ants may legally carry Precise Sigmoid scratch (and
            // the phase half-length m bounding their counters): crafted
            // bytes must fail here, not panic in `restore()`.
            let sigmoid_m_for = |ant: usize| -> Option<u64> {
                match &controller {
                    ControllerSpec::PreciseSigmoid(p) => Some(p.m()),
                    ControllerSpec::Mix(parts) => {
                        let b = usize::from(*members.get(ant)?);
                        match parts.get(b) {
                            Some((_, ControllerSpec::PreciseSigmoid(p))) => Some(p.m()),
                            _ => None,
                        }
                    }
                    _ => None,
                }
            };
            // Likewise for Precise Adversarial (v6 scratch): which ants
            // may legally carry its phase trackers.
            let adversarial_for = |ant: usize| -> bool {
                match &controller {
                    ControllerSpec::PreciseAdversarial(_) => true,
                    ControllerSpec::Mix(parts) => {
                        let Some(&m) = members.get(ant) else {
                            return false;
                        };
                        matches!(
                            parts.get(usize::from(m)),
                            Some((_, ControllerSpec::PreciseAdversarial(_)))
                        )
                    }
                    _ => false,
                }
            };
            // And for Proportional (v7 scratch): which ants may legally
            // carry a deadband streak.
            let proportional_for = |ant: usize| -> bool {
                match &controller {
                    ControllerSpec::Proportional(_) => true,
                    ControllerSpec::Mix(parts) => {
                        let Some(&m) = members.get(ant) else {
                            return false;
                        };
                        matches!(
                            parts.get(usize::from(m)),
                            Some((_, ControllerSpec::Proportional(_)))
                        )
                    }
                    _ => false,
                }
            };
            let mut scratch: Vec<(u32, ControllerScratch)> = Vec::with_capacity(count);
            for _ in 0..count {
                let ant = get_u32(&mut buf)?;
                if ant as usize >= ants {
                    return Err(corrupt(format!("scratch ant {ant} out of range")));
                }
                if let Some(&(prev, _)) = scratch.last() {
                    if ant <= prev {
                        return Err(corrupt("scratch entries out of order"));
                    }
                }
                match get_u8(&mut buf)? {
                    0 => {
                        let Some(m) = sigmoid_m_for(ant as usize) else {
                            return Err(corrupt(format!(
                                "scratch for ant {ant}, which runs no Precise Sigmoid"
                            )));
                        };
                        let raw = get_u32(&mut buf)?;
                        let current_task = if raw == u32::MAX {
                            Assignment::Idle
                        } else if (raw as usize) < k {
                            Assignment::Task(raw)
                        } else {
                            return Err(corrupt(format!("scratch task {raw} out of range")));
                        };
                        let have_phase = get_bool(&mut buf)?;
                        let mut counts = [Vec::with_capacity(k), Vec::with_capacity(k)];
                        for half in &mut counts {
                            for _ in 0..k {
                                need(&buf, 2)?;
                                let c = buf.get_u16_le();
                                if u64::from(c) > m {
                                    return Err(corrupt(format!(
                                        "scratch counter {c} exceeds half-phase length {m}"
                                    )));
                                }
                                half.push(c);
                            }
                        }
                        let [count1, count2] = counts;
                        let mut shat1_lack = Vec::with_capacity(k);
                        for _ in 0..k {
                            shat1_lack.push(get_u8(&mut buf)? != 0);
                        }
                        scratch.push((
                            ant,
                            ControllerScratch::PreciseSigmoid(SigmoidScratch {
                                current_task,
                                have_phase,
                                count1,
                                count2,
                                shat1_lack,
                            }),
                        ));
                    }
                    1 => {
                        if !adversarial_for(ant as usize) {
                            return Err(corrupt(format!(
                                "scratch for ant {ant}, which runs no Precise Adversarial"
                            )));
                        }
                        let raw = get_u32(&mut buf)?;
                        let current_task = if raw == u32::MAX {
                            Assignment::Idle
                        } else if (raw as usize) < k {
                            Assignment::Task(raw)
                        } else {
                            return Err(corrupt(format!("scratch task {raw} out of range")));
                        };
                        let have_phase = get_bool(&mut buf)?;
                        let all_overload = get_bool(&mut buf)?;
                        let frozen_working = get_bool(&mut buf)?;
                        let pending_first_lack = get_bool(&mut buf)?;
                        let working_at_first_lack = match get_u8(&mut buf)? {
                            0 => None,
                            1 => Some(false),
                            2 => Some(true),
                            t => return Err(corrupt(format!("unknown first-lack tri-state {t}"))),
                        };
                        let mut all_lack = Vec::with_capacity(k);
                        for _ in 0..k {
                            all_lack.push(get_u8(&mut buf)? != 0);
                        }
                        scratch.push((
                            ant,
                            ControllerScratch::PreciseAdversarial(AdversarialScratch {
                                current_task,
                                have_phase,
                                all_lack,
                                all_overload,
                                working_at_first_lack,
                                pending_first_lack,
                                frozen_working,
                            }),
                        ));
                    }
                    2 => {
                        if !proportional_for(ant as usize) {
                            return Err(corrupt(format!(
                                "scratch for ant {ant}, which runs no Proportional controller"
                            )));
                        }
                        need(&buf, 2)?;
                        let streak = buf.get_u16_le();
                        scratch.push((ant, ControllerScratch::Proportional(streak)));
                    }
                    t => return Err(corrupt(format!("unknown scratch tag {t}"))),
                }
            }
            scratch
        } else {
            // Pre-v5 captures were phase-boundary-only: no mid-phase
            // state existed to serialize.
            Vec::new()
        };
        // v7: the per-ant arena columns close the stream (present iff
        // the config carries an arena — decided above, so pre-v7 reads
        // never reach this branch).
        let (arena_site, arena_travel) = if let Some(cfg) = &arena {
            let num_sites = cfg.num_sites() as u32;
            let mut site = Vec::with_capacity(ants);
            for _ in 0..ants {
                let s = get_u32(&mut buf)?;
                if s >= num_sites {
                    return Err(corrupt(format!(
                        "arena site {s} out of range (the arena has {num_sites} sites)"
                    )));
                }
                site.push(s);
            }
            let mut travel = Vec::with_capacity(ants);
            for _ in 0..ants {
                let t = get_u32(&mut buf)?;
                if t > cfg.travel_rounds {
                    return Err(corrupt(format!(
                        "arena travel {t} exceeds the travel latency {}",
                        cfg.travel_rounds
                    )));
                }
                travel.push(t);
            }
            (site, travel)
        } else {
            (Vec::new(), Vec::new())
        };
        if !buf.is_empty() {
            return Err(corrupt("trailing bytes"));
        }
        Ok(Self {
            config: SimConfig {
                n,
                demands,
                noise,
                controller,
                seed,
                timeline,
                initial,
                arena,
            },
            current_demands,
            current_noise,
            cursor,
            trigger_states,
            assignments,
            rng_states,
            round,
            next_stream,
            members,
            scratch,
            arena_site,
            arena_travel,
        })
    }

    /// Writes the checkpoint to a file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_bytes())
    }

    /// Reads a checkpoint from a file.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let bytes =
            std::fs::read(path).map_err(|e| corrupt(format!("read {}: {e}", path.display())))?;
        Self::from_bytes(&bytes)
    }
}

fn corrupt(msg: impl Into<String>) -> CheckpointError {
    CheckpointError::Corrupt(msg.into())
}

// ---- primitive readers (length-checked) --------------------------------

fn need(buf: &&[u8], n: usize) -> Result<(), CheckpointError> {
    if buf.remaining() < n {
        Err(corrupt(format!("truncated: need {n} more bytes")))
    } else {
        Ok(())
    }
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, CheckpointError> {
    need(buf, 4)?;
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut &[u8]) -> Result<u64, CheckpointError> {
    need(buf, 8)?;
    Ok(buf.get_u64_le())
}

fn get_f64(buf: &mut &[u8]) -> Result<f64, CheckpointError> {
    need(buf, 8)?;
    Ok(buf.get_f64_le())
}

fn get_u8(buf: &mut &[u8]) -> Result<u8, CheckpointError> {
    need(buf, 1)?;
    Ok(buf.get_u8())
}

fn get_bool(buf: &mut &[u8]) -> Result<bool, CheckpointError> {
    Ok(get_u8(buf)? != 0)
}

fn get_i64(buf: &mut &[u8]) -> Result<i64, CheckpointError> {
    need(buf, 8)?;
    Ok(buf.get_i64_le())
}

fn put_u64s(out: &mut Vec<u8>, xs: &[u64]) {
    out.put_u64_le(xs.len() as u64);
    for &x in xs {
        out.put_u64_le(x);
    }
}

fn get_u64s(buf: &mut &[u8]) -> Result<Vec<u64>, CheckpointError> {
    let len = get_u64(buf)? as usize;
    if len > 1 << 32 {
        return Err(corrupt("implausible vector length"));
    }
    let mut xs = Vec::with_capacity(len.min(1 << 20));
    for _ in 0..len {
        xs.push(get_u64(buf)?);
    }
    Ok(xs)
}

// ---- enum codecs --------------------------------------------------------

fn put_noise(out: &mut Vec<u8>, noise: &NoiseModel) {
    match noise {
        NoiseModel::Sigmoid { lambda } => {
            out.put_u8(0);
            out.put_f64_le(*lambda);
        }
        NoiseModel::CorrelatedSigmoid { lambda, rho, seed } => {
            out.put_u8(1);
            out.put_f64_le(*lambda);
            out.put_f64_le(*rho);
            out.put_u64_le(*seed);
        }
        NoiseModel::Adversarial { gamma_ad, policy } => {
            out.put_u8(2);
            out.put_f64_le(*gamma_ad);
            put_policy(out, policy);
        }
        NoiseModel::Exact => out.put_u8(3),
    }
}

fn get_noise(buf: &mut &[u8]) -> Result<NoiseModel, CheckpointError> {
    Ok(match get_u8(buf)? {
        0 => NoiseModel::Sigmoid {
            lambda: get_f64(buf)?,
        },
        1 => NoiseModel::CorrelatedSigmoid {
            lambda: get_f64(buf)?,
            rho: get_f64(buf)?,
            seed: get_u64(buf)?,
        },
        2 => NoiseModel::Adversarial {
            gamma_ad: get_f64(buf)?,
            policy: get_policy(buf)?,
        },
        3 => NoiseModel::Exact,
        t => return Err(corrupt(format!("unknown noise tag {t}"))),
    })
}

fn put_policy(out: &mut Vec<u8>, policy: &GreyZonePolicy) {
    match policy {
        GreyZonePolicy::AlwaysLack => out.put_u8(0),
        GreyZonePolicy::AlwaysOverload => out.put_u8(1),
        GreyZonePolicy::Truthful => out.put_u8(2),
        GreyZonePolicy::Inverted => out.put_u8(3),
        GreyZonePolicy::AlternateByRound => out.put_u8(4),
        GreyZonePolicy::RandomLack(p) => {
            out.put_u8(5);
            out.put_f64_le(*p);
        }
        GreyZonePolicy::LoadThreshold(thresholds) => {
            out.put_u8(6);
            put_u64s(out, thresholds);
        }
    }
}

fn get_policy(buf: &mut &[u8]) -> Result<GreyZonePolicy, CheckpointError> {
    Ok(match get_u8(buf)? {
        0 => GreyZonePolicy::AlwaysLack,
        1 => GreyZonePolicy::AlwaysOverload,
        2 => GreyZonePolicy::Truthful,
        3 => GreyZonePolicy::Inverted,
        4 => GreyZonePolicy::AlternateByRound,
        5 => GreyZonePolicy::RandomLack(get_f64(buf)?),
        6 => GreyZonePolicy::LoadThreshold(get_u64s(buf)?),
        t => return Err(corrupt(format!("unknown policy tag {t}"))),
    })
}

fn put_spec(out: &mut Vec<u8>, spec: &ControllerSpec) {
    match spec {
        ControllerSpec::Ant(p) => {
            out.put_u8(0);
            out.put_f64_le(p.gamma);
            out.put_f64_le(p.cs);
            out.put_f64_le(p.cd);
        }
        ControllerSpec::PreciseSigmoid(p) => {
            out.put_u8(1);
            out.put_f64_le(p.gamma);
            out.put_f64_le(p.eps);
            out.put_f64_le(p.c_chi);
            out.put_f64_le(p.cs);
            out.put_f64_le(p.cd);
            out.put_u8(u8::from(p.paper_literal_leave_prob));
        }
        ControllerSpec::PreciseAdversarial(p) => {
            out.put_u8(2);
            out.put_f64_le(p.gamma);
            out.put_f64_le(p.eps);
        }
        ControllerSpec::Trivial => out.put_u8(3),
        ControllerSpec::ExactGreedy(p) => {
            out.put_u8(4);
            out.put_f64_le(p.p_join);
            out.put_f64_le(p.p_leave);
        }
        ControllerSpec::Hysteresis { depth, lazy } => {
            out.put_u8(5);
            out.put_u16_le(*depth);
            match lazy {
                None => out.put_u8(0),
                Some(p) => {
                    out.put_u8(1);
                    out.put_f64_le(*p);
                }
            }
        }
        ControllerSpec::AntDesync(p) => {
            out.put_u8(6);
            out.put_f64_le(p.gamma);
            out.put_f64_le(p.cs);
            out.put_f64_le(p.cd);
        }
        ControllerSpec::Mix(parts) => {
            out.put_u8(7);
            out.put_u64_le(parts.len() as u64);
            for (weight, sub) in parts {
                out.put_f64_le(*weight);
                put_spec(out, sub);
            }
        }
        // v7: the proportional-control rival.
        ControllerSpec::Proportional(p) => {
            out.put_u8(8);
            out.put_f64_le(p.gain);
            out.put_u16_le(p.deadband);
        }
    }
}

fn get_spec(buf: &mut &[u8]) -> Result<ControllerSpec, CheckpointError> {
    Ok(match get_u8(buf)? {
        0 => ControllerSpec::Ant(AntParams {
            gamma: get_f64(buf)?,
            cs: get_f64(buf)?,
            cd: get_f64(buf)?,
        }),
        1 => ControllerSpec::PreciseSigmoid(PreciseSigmoidParams {
            gamma: get_f64(buf)?,
            eps: get_f64(buf)?,
            c_chi: get_f64(buf)?,
            cs: get_f64(buf)?,
            cd: get_f64(buf)?,
            paper_literal_leave_prob: get_bool(buf)?,
        }),
        2 => ControllerSpec::PreciseAdversarial(PreciseAdversarialParams {
            gamma: get_f64(buf)?,
            eps: get_f64(buf)?,
        }),
        3 => ControllerSpec::Trivial,
        4 => ControllerSpec::ExactGreedy(ExactGreedyParams {
            p_join: get_f64(buf)?,
            p_leave: get_f64(buf)?,
        }),
        5 => {
            need(buf, 2)?;
            let depth = buf.get_u16_le();
            let lazy = if get_bool(buf)? {
                Some(get_f64(buf)?)
            } else {
                None
            };
            ControllerSpec::Hysteresis { depth, lazy }
        }
        6 => ControllerSpec::AntDesync(AntParams {
            gamma: get_f64(buf)?,
            cs: get_f64(buf)?,
            cd: get_f64(buf)?,
        }),
        7 => {
            let len = get_u64(buf)? as usize;
            if len == 0 || len > u16::MAX as usize {
                return Err(corrupt(format!("implausible mix arity {len}")));
            }
            let mut parts = Vec::with_capacity(len.min(1 << 10));
            for _ in 0..len {
                let weight = get_f64(buf)?;
                let sub = get_spec(buf)?;
                if matches!(sub, ControllerSpec::Mix(_)) {
                    return Err(corrupt("nested mix in checkpoint"));
                }
                parts.push((weight, sub));
            }
            ControllerSpec::Mix(parts)
        }
        8 => {
            let gain = get_f64(buf)?;
            need(buf, 2)?;
            let deadband = buf.get_u16_le();
            ControllerSpec::Proportional(ProportionalParams { gain, deadband })
        }
        t => return Err(corrupt(format!("unknown controller tag {t}"))),
    })
}

/// v2 read-compat only: v3 writes timelines instead.
fn get_schedule(buf: &mut &[u8]) -> Result<DemandSchedule, CheckpointError> {
    Ok(match get_u8(buf)? {
        0 => DemandSchedule::Static,
        1 => DemandSchedule::Step {
            at: get_u64(buf)?,
            demands: get_u64s(buf)?,
        },
        2 => {
            let len = get_u64(buf)? as usize;
            let mut steps = Vec::with_capacity(len.min(1 << 16));
            for _ in 0..len {
                steps.push((get_u64(buf)?, get_u64s(buf)?));
            }
            DemandSchedule::Steps(steps)
        }
        3 => DemandSchedule::Alternating {
            a: get_u64s(buf)?,
            b: get_u64s(buf)?,
            half_period: get_u64(buf)?,
        },
        t => return Err(corrupt(format!("unknown schedule tag {t}"))),
    })
}

fn put_event(out: &mut Vec<u8>, event: &Event) {
    match event {
        Event::SetDemands(demands) => {
            out.put_u8(0);
            put_u64s(out, demands);
        }
        Event::Kill { count } => {
            out.put_u8(1);
            out.put_u64_le(*count as u64);
        }
        Event::Spawn { count } => {
            out.put_u8(2);
            out.put_u64_le(*count as u64);
        }
        Event::Scramble => out.put_u8(3),
        Event::StampedeTo(j) => {
            out.put_u8(4);
            out.put_u64_le(*j as u64);
        }
        Event::SetNoise(model) => {
            out.put_u8(5);
            put_noise(out, model);
        }
        // v7: the arena experiments' site-local demand shock.
        Event::SetTaskDemand { task, demand } => {
            out.put_u8(6);
            out.put_u64_le(*task as u64);
            out.put_u64_le(*demand);
        }
    }
}

fn get_event(buf: &mut &[u8]) -> Result<Event, CheckpointError> {
    Ok(match get_u8(buf)? {
        0 => Event::SetDemands(get_u64s(buf)?),
        1 => Event::Kill {
            count: get_u64(buf)? as usize,
        },
        2 => Event::Spawn {
            count: get_u64(buf)? as usize,
        },
        3 => Event::Scramble,
        4 => Event::StampedeTo(get_u64(buf)? as usize),
        5 => Event::SetNoise(get_noise(buf)?),
        6 => Event::SetTaskDemand {
            task: get_u64(buf)? as usize,
            demand: get_u64(buf)?,
        },
        t => return Err(corrupt(format!("unknown event tag {t}"))),
    })
}

fn put_timeline(out: &mut Vec<u8>, timeline: &Timeline) {
    out.put_u64_le(timeline.events.len() as u64);
    for timed in &timeline.events {
        out.put_u64_le(timed.at);
        put_event(out, &timed.event);
    }
    out.put_u64_le(timeline.cycles.len() as u64);
    for cycle in &timeline.cycles {
        out.put_u64_le(cycle.start);
        out.put_u64_le(cycle.period);
        out.put_u64_le(cycle.events.len() as u64);
        for event in &cycle.events {
            put_event(out, event);
        }
    }
    // v4: triggers and generators follow the cycles.
    out.put_u64_le(timeline.triggers.len() as u64);
    for trigger in &timeline.triggers {
        put_condition(out, &trigger.when);
        put_event(out, &trigger.event);
        out.put_u64_le(trigger.cooldown);
        out.put_u64_le(u64::from(trigger.max_firings));
    }
    out.put_u64_le(timeline.generators.len() as u64);
    for generator in &timeline.generators {
        out.put_u64_le(generator.start);
        out.put_u64_le(generator.until);
        out.put_f64_le(generator.mean_gap);
        put_gen_shock(out, &generator.shock);
    }
}

fn get_timeline(buf: &mut &[u8], version: u32) -> Result<Timeline, CheckpointError> {
    let len = get_u64(buf)? as usize;
    if len > 1 << 32 {
        return Err(corrupt("implausible timeline length"));
    }
    let mut events = Vec::with_capacity(len.min(1 << 16));
    for _ in 0..len {
        events.push(TimedEvent {
            at: get_u64(buf)?,
            event: get_event(buf)?,
        });
    }
    let cycles_len = get_u64(buf)? as usize;
    if cycles_len > 1 << 20 {
        return Err(corrupt("implausible cycle count"));
    }
    let mut cycles = Vec::with_capacity(cycles_len.min(1 << 10));
    for _ in 0..cycles_len {
        let start = get_u64(buf)?;
        let period = get_u64(buf)?;
        let n_events = get_u64(buf)? as usize;
        if n_events > 1 << 20 {
            return Err(corrupt("implausible cycle event count"));
        }
        let mut cycle_events = Vec::with_capacity(n_events.min(1 << 10));
        for _ in 0..n_events {
            cycle_events.push(get_event(buf)?);
        }
        cycles.push(Cycle {
            start,
            period,
            events: cycle_events,
        });
    }
    // v3 timelines end here; v4 appended triggers and generators.
    let (triggers, generators) = if version >= 4 {
        let trigger_len = get_u64(buf)? as usize;
        if trigger_len > 1 << 16 {
            return Err(corrupt("implausible trigger count"));
        }
        let mut triggers = Vec::with_capacity(trigger_len.min(1 << 10));
        for _ in 0..trigger_len {
            let when = get_condition(buf, 0)?;
            let event = get_event(buf)?;
            let cooldown = get_u64(buf)?;
            let max_firings = get_u64(buf)?;
            let max_firings = u32::try_from(max_firings)
                .map_err(|_| corrupt(format!("implausible max_firings {max_firings}")))?;
            triggers.push(Trigger {
                when,
                event,
                cooldown,
                max_firings,
            });
        }
        let gen_len = get_u64(buf)? as usize;
        if gen_len > 1 << 16 {
            return Err(corrupt("implausible generator count"));
        }
        let mut generators = Vec::with_capacity(gen_len.min(1 << 10));
        for _ in 0..gen_len {
            generators.push(TimelineGen {
                start: get_u64(buf)?,
                until: get_u64(buf)?,
                mean_gap: get_f64(buf)?,
                shock: get_gen_shock(buf)?,
            });
        }
        (triggers, generators)
    } else {
        (Vec::new(), Vec::new())
    };
    Ok(Timeline {
        events,
        cycles,
        triggers,
        generators,
    })
}

fn put_condition(out: &mut Vec<u8>, condition: &Condition) {
    match condition {
        Condition::RegretAbove {
            threshold,
            for_rounds,
        } => {
            out.put_u8(0);
            out.put_u64_le(*threshold);
            out.put_u32_le(*for_rounds);
        }
        Condition::RegretBelow {
            threshold,
            for_rounds,
        } => {
            out.put_u8(1);
            out.put_u64_le(*threshold);
            out.put_u32_le(*for_rounds);
        }
        Condition::PopulationBelow { threshold } => {
            out.put_u8(2);
            out.put_u64_le(*threshold as u64);
        }
        Condition::RoundReached { round } => {
            out.put_u8(3);
            out.put_u64_le(*round);
        }
        Condition::And(a, b) => {
            out.put_u8(4);
            put_condition(out, a);
            put_condition(out, b);
        }
        Condition::Or(a, b) => {
            out.put_u8(5);
            put_condition(out, a);
            put_condition(out, b);
        }
        // v7: per-task deficit conditions.
        Condition::DeficitAbove {
            task,
            threshold,
            for_rounds,
        } => {
            out.put_u8(6);
            out.put_u64_le(*task as u64);
            out.put_i64_le(*threshold);
            out.put_u32_le(*for_rounds);
        }
        Condition::DeficitRateAbove {
            task,
            min_rise,
            for_rounds,
        } => {
            out.put_u8(7);
            out.put_u64_le(*task as u64);
            out.put_i64_le(*min_rise);
            out.put_u32_le(*for_rounds);
        }
    }
}

/// `depth` guards the recursion: a crafted byte stream of nested
/// `And` tags must error out, not blow the stack.
fn get_condition(buf: &mut &[u8], depth: u32) -> Result<Condition, CheckpointError> {
    if depth > 64 {
        return Err(corrupt("condition nesting too deep"));
    }
    Ok(match get_u8(buf)? {
        0 => Condition::RegretAbove {
            threshold: get_u64(buf)?,
            for_rounds: get_u32(buf)?,
        },
        1 => Condition::RegretBelow {
            threshold: get_u64(buf)?,
            for_rounds: get_u32(buf)?,
        },
        2 => Condition::PopulationBelow {
            threshold: get_u64(buf)? as usize,
        },
        3 => Condition::RoundReached {
            round: get_u64(buf)?,
        },
        4 => Condition::And(
            Box::new(get_condition(buf, depth + 1)?),
            Box::new(get_condition(buf, depth + 1)?),
        ),
        5 => Condition::Or(
            Box::new(get_condition(buf, depth + 1)?),
            Box::new(get_condition(buf, depth + 1)?),
        ),
        6 => Condition::DeficitAbove {
            task: get_u64(buf)? as usize,
            threshold: get_i64(buf)?,
            for_rounds: get_u32(buf)?,
        },
        7 => Condition::DeficitRateAbove {
            task: get_u64(buf)? as usize,
            min_rise: get_i64(buf)?,
            for_rounds: get_u32(buf)?,
        },
        t => return Err(corrupt(format!("unknown condition tag {t}"))),
    })
}

fn put_gen_shock(out: &mut Vec<u8>, shock: &GenShock) {
    match shock {
        GenShock::Kill { min_frac, max_frac } => {
            out.put_u8(0);
            out.put_f64_le(*min_frac);
            out.put_f64_le(*max_frac);
        }
        GenShock::Spawn { min_frac, max_frac } => {
            out.put_u8(1);
            out.put_f64_le(*min_frac);
            out.put_f64_le(*max_frac);
        }
        GenShock::Scramble => out.put_u8(2),
        GenShock::DemandStep {
            min_factor,
            max_factor,
        } => {
            out.put_u8(3);
            out.put_f64_le(*min_factor);
            out.put_f64_le(*max_factor);
        }
    }
}

fn get_gen_shock(buf: &mut &[u8]) -> Result<GenShock, CheckpointError> {
    Ok(match get_u8(buf)? {
        0 => GenShock::Kill {
            min_frac: get_f64(buf)?,
            max_frac: get_f64(buf)?,
        },
        1 => GenShock::Spawn {
            min_frac: get_f64(buf)?,
            max_frac: get_f64(buf)?,
        },
        2 => GenShock::Scramble,
        3 => GenShock::DemandStep {
            min_factor: get_f64(buf)?,
            max_factor: get_f64(buf)?,
        },
        t => return Err(corrupt(format!("unknown generator shock tag {t}"))),
    })
}

fn put_initial(out: &mut Vec<u8>, initial: &InitialConfig) {
    match initial {
        InitialConfig::AllIdle => out.put_u8(0),
        InitialConfig::AllOnTask(j) => {
            out.put_u8(1);
            out.put_u64_le(*j as u64);
        }
        InitialConfig::UniformRandom => out.put_u8(2),
        InitialConfig::Saturated => out.put_u8(3),
        InitialConfig::Inverted => out.put_u8(4),
        InitialConfig::SaturatedPlus { extra } => {
            out.put_u8(5);
            out.put_u64_le(*extra);
        }
    }
}

fn get_initial(buf: &mut &[u8]) -> Result<InitialConfig, CheckpointError> {
    Ok(match get_u8(buf)? {
        0 => InitialConfig::AllIdle,
        1 => InitialConfig::AllOnTask(get_u64(buf)? as usize),
        2 => InitialConfig::UniformRandom,
        3 => InitialConfig::Saturated,
        4 => InitialConfig::Inverted,
        5 => InitialConfig::SaturatedPlus {
            extra: get_u64(buf)?,
        },
        t => return Err(corrupt(format!("unknown initial-config tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::NullObserver;
    use antalloc_core::AntParams;

    fn config() -> SimConfig {
        SimConfig::builder(200, vec![30, 40])
            .noise(NoiseModel::Sigmoid { lambda: 2.0 })
            .controller(ControllerSpec::Ant(AntParams::default()))
            .seed(99)
            .build()
            .expect("valid scenario")
    }

    #[test]
    fn capture_requires_phase_boundary() {
        let mut e = config().build();
        let mut obs = NullObserver;
        e.step(&mut obs); // round 1, phase 2 → not a boundary.
        assert!(matches!(
            Checkpoint::capture(&e),
            Err(CheckpointError::NotAtPhaseBoundary { round: 1, phase: 2 })
        ));
        e.step(&mut obs); // round 2 → boundary.
        assert!(Checkpoint::capture(&e).is_ok());
    }

    #[test]
    fn bytes_roundtrip_exactly() {
        let mut e = config().build();
        let mut obs = NullObserver;
        e.run(10, &mut obs);
        let cp = Checkpoint::capture(&e).unwrap();
        let bytes = cp.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(cp, back);
        assert_eq!(back.round(), 10);
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        let mut e = config().build();
        let mut obs = NullObserver;
        e.run(2, &mut obs);
        let bytes = Checkpoint::capture(&e).unwrap().to_bytes();
        // Truncation.
        assert!(Checkpoint::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(Checkpoint::from_bytes(&bad).is_err());
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(Checkpoint::from_bytes(&long).is_err());
    }

    #[test]
    fn restore_then_run_matches_uninterrupted_run() {
        let mut full = config().build();
        let mut obs = NullObserver;
        full.run(40, &mut obs);

        let mut half = config().build();
        half.run(20, &mut obs);
        let cp = Checkpoint::capture(&half).unwrap();
        let mut resumed = Checkpoint::restore(&cp);
        resumed.run(20, &mut obs);

        assert_eq!(full.colony().loads(), resumed.colony().loads());
        assert_eq!(full.colony().assignments(), resumed.colony().assignments());
        assert_eq!(full.round(), resumed.round());
    }

    #[test]
    fn file_roundtrip() {
        let mut e = config().build();
        let mut obs = NullObserver;
        e.run(4, &mut obs);
        let cp = Checkpoint::capture(&e).unwrap();
        let dir = std::env::temp_dir().join("antalloc_ckpt_test");
        let path = dir.join("state.ckpt");
        cp.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(cp, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mix_checkpoints_roundtrip_with_membership() {
        let cfg = SimConfig::builder(60, vec![10, 10])
            .noise(NoiseModel::Sigmoid { lambda: 2.0 })
            .controller(ControllerSpec::Mix(vec![
                (1.0, ControllerSpec::Ant(AntParams::default())),
                (1.0, ControllerSpec::Trivial),
            ]))
            .seed(5)
            .build()
            .unwrap();
        let mut e = cfg.build();
        let mut obs = NullObserver;
        e.run(6, &mut obs); // phase lcm(2, 1) = 2 → boundary.
        let cp = Checkpoint::capture(&e).unwrap();
        let bytes = cp.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(cp, back);
        // Membership corruption is detected: an out-of-range bank index
        // must fail cleanly. The members vector is the last section, so
        // patch its final u16.
        let mut bad = bytes.clone();
        let last = bad.len() - 2;
        bad[last] = 0xFF;
        bad[last + 1] = 0xFF;
        assert!(Checkpoint::from_bytes(&bad).is_err());
    }

    #[test]
    fn random_byte_mutations_never_panic() {
        // Fuzz the decoder: flipping any single byte must yield either a
        // clean error or a decoded checkpoint — never a panic. (Length
        // fields are validated before allocation.)
        let mut e = config().build();
        let mut obs = NullObserver;
        e.run(4, &mut obs);
        let bytes = Checkpoint::capture(&e).unwrap().to_bytes();
        for i in 0..bytes.len().min(512) {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0x5A;
            let _ = Checkpoint::from_bytes(&mutated);
        }
        // Random truncations likewise.
        for len in [0usize, 1, 7, 8, 9, bytes.len() / 2, bytes.len() - 1] {
            let _ = Checkpoint::from_bytes(&bytes[..len]);
        }
    }

    #[test]
    fn scratch_for_non_sigmoid_colonies_is_rejected_not_panicked() {
        // A crafted v5 stream that claims Precise Sigmoid scratch for an
        // Ant colony must come back as a clean corrupt error — reaching
        // `restore()` would panic in `apply_scratch`.
        let mut e = config().build(); // Ant colony, 2 tasks
        let mut obs = NullObserver;
        e.run(2, &mut obs);
        let mut bytes = Checkpoint::capture(&e).unwrap().to_bytes();
        // The scratch section is the stream's tail: count (u64) then
        // entries. Rewrite the zero count to 1 and append one entry.
        let tail = bytes.len() - 8;
        bytes[tail..].copy_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes()); // ant 0
        bytes.push(0); // tag: precise sigmoid
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // currentTask idle
        bytes.push(1); // have_phase
        bytes.extend_from_slice(&[0u8; 2 * 2 + 2 * 2 + 2]); // counters + medians, k = 2
        let err = Checkpoint::from_bytes(&bytes).expect_err("must reject");
        assert!(err.to_string().contains("no Precise Sigmoid"), "{err}");
    }

    #[test]
    fn scratch_counters_beyond_the_half_phase_are_rejected() {
        // Counter values above m could overflow the bank's u16 adds
        // during later stepping; the decoder bounds them.
        let cfg = SimConfig::builder(50, vec![10])
            .noise(NoiseModel::Sigmoid { lambda: 2.0 })
            .controller(ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(
                0.05, 0.5,
            )))
            .seed(9)
            .build()
            .unwrap();
        let mut e = cfg.build();
        let mut obs = NullObserver;
        e.run(37, &mut obs); // mid-phase: every ant carries scratch
        let cp = Checkpoint::capture(&e).unwrap();
        let bytes = cp.to_bytes();
        assert_eq!(Checkpoint::from_bytes(&bytes).unwrap(), cp);
        // Patch ant 0's first counter (right after the scratch count,
        // ant id, tag, currentTask and have_phase) to u16::MAX.
        let k = 1usize;
        let entry_head = 4 + 1 + 4 + 1;
        let entries = 50 * (entry_head + k * 5);
        let first_counter = bytes.len() - entries - 8 + 8 + entry_head;
        let mut bad = bytes.clone();
        bad[first_counter..first_counter + 2].copy_from_slice(&u16::MAX.to_le_bytes());
        let err = Checkpoint::from_bytes(&bad).expect_err("must reject");
        assert!(err.to_string().contains("half-phase"), "{err}");
    }

    #[test]
    fn adversarial_scratch_roundtrips_and_restores_mid_phase() {
        // ε = 0.5 → phase 320. Capture deep inside the ramp and inside
        // the frozen sub-phase: both must roundtrip and continue
        // bit-identically to an uninterrupted run.
        let cfg = SimConfig::builder(80, vec![12, 18])
            .noise(NoiseModel::Sigmoid { lambda: 2.0 })
            .controller(ControllerSpec::PreciseAdversarial(
                PreciseAdversarialParams::new(0.05, 0.5),
            ))
            .seed(17)
            .build()
            .unwrap();
        let mut obs = NullObserver;
        for split in [37u64, 150, 319] {
            let mut full = cfg.build();
            full.run(split + 200, &mut obs);
            let mut head = cfg.build();
            head.run(split, &mut obs);
            let cp = Checkpoint::capture(&head).expect("mid-phase capture");
            let back = Checkpoint::from_bytes(&cp.to_bytes()).unwrap();
            assert_eq!(cp, back, "split {split}");
            let mut resumed = back.restore();
            resumed.run(200, &mut obs);
            assert_eq!(
                full.colony().assignments(),
                resumed.colony().assignments(),
                "split {split}"
            );
            assert_eq!(full.colony().loads(), resumed.colony().loads());
        }
    }

    #[test]
    fn adversarial_scratch_for_wrong_colony_is_rejected() {
        // Tag-1 scratch claimed for an Ant colony must error cleanly.
        let mut e = config().build(); // Ant colony, 2 tasks
        let mut obs = NullObserver;
        e.run(2, &mut obs);
        let mut bytes = Checkpoint::capture(&e).unwrap().to_bytes();
        let tail = bytes.len() - 8;
        bytes[tail..].copy_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes()); // ant 0
        bytes.push(1); // tag: precise adversarial
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // currentTask idle
        bytes.extend_from_slice(&[1, 1, 0, 0, 0]); // flags + tri-state
        bytes.extend_from_slice(&[1u8; 2]); // all_lack, k = 2
        let err = Checkpoint::from_bytes(&bytes).expect_err("must reject");
        assert!(err.to_string().contains("no Precise Adversarial"), "{err}");
    }

    #[test]
    fn trigger_state_roundtrips_and_rejects_shape_mismatch() {
        use antalloc_env::{Condition, GenShock, TimelineGen, Trigger};

        let cfg = SimConfig::builder(300, vec![40, 60])
            .noise(NoiseModel::Sigmoid { lambda: 2.0 })
            .controller(ControllerSpec::Ant(AntParams::default()))
            .seed(31)
            .trigger(Trigger {
                when: Condition::And(
                    Box::new(Condition::RegretBelow {
                        threshold: 30,
                        for_rounds: 4,
                    }),
                    Box::new(Condition::RoundReached { round: 10 }),
                ),
                event: Event::Scramble,
                cooldown: 25,
                max_firings: 3,
            })
            .generate(TimelineGen {
                start: 5,
                until: 500,
                mean_gap: 60.0,
                shock: GenShock::DemandStep {
                    min_factor: 0.5,
                    max_factor: 2.0,
                },
            })
            .build()
            .unwrap();
        let mut e = cfg.build();
        let mut obs = NullObserver;
        e.run(60, &mut obs);
        let cp = Checkpoint::capture(&e).unwrap();
        let bytes = cp.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(cp, back);
        assert_eq!(back.config(), &cfg, "triggers and generators survive");
        // The restored engine continues bit-identically through later
        // trigger firings and generated demand steps.
        let mut resumed = back.restore();
        e.run(120, &mut obs);
        resumed.run(120, &mut obs);
        assert_eq!(e.colony().assignments(), resumed.colony().assignments());
        assert_eq!(e.colony().demands(), resumed.colony().demands());
    }

    #[test]
    fn deeply_nested_condition_bytes_error_instead_of_overflowing() {
        // A byte stream of 100 nested `and` tags must come back as a
        // clean corrupt error, not a stack overflow.
        let mut e = {
            let cfg = SimConfig::builder(50, vec![10])
                .noise(NoiseModel::Exact)
                .controller(ControllerSpec::Trivial)
                .build()
                .unwrap();
            cfg.build()
        };
        let mut obs = NullObserver;
        e.run(2, &mut obs);
        let mut bytes = Checkpoint::capture(&e).unwrap().to_bytes();
        // Patch the timeline's trigger section: locate it by rebuilding
        // the prefix is brittle, so instead decode-and-cross-check via a
        // synthetic buffer fed straight to the condition reader.
        let mut cond = vec![4u8; 100]; // 100 nested `And` left arms
        cond.push(0xFF);
        let mut slice: &[u8] = &cond;
        assert!(super::get_condition(&mut slice, 0).is_err());
        // And a truncated tail still errors cleanly end-to-end.
        bytes.truncate(bytes.len() - 1);
        assert!(Checkpoint::from_bytes(&bytes).is_err());
    }

    #[test]
    fn all_enum_variants_roundtrip() {
        // Exercise every codec arm via synthetic configs.
        let specs = [
            ControllerSpec::Trivial,
            ControllerSpec::ExactGreedy(ExactGreedyParams::default()),
            ControllerSpec::Hysteresis {
                depth: 3,
                lazy: Some(0.5),
            },
            ControllerSpec::Hysteresis {
                depth: 1,
                lazy: None,
            },
            ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.03, 0.5)),
            ControllerSpec::PreciseAdversarial(PreciseAdversarialParams::new(0.03, 0.5)),
        ];
        let noises = [
            NoiseModel::Exact,
            NoiseModel::CorrelatedSigmoid {
                lambda: 1.0,
                rho: 0.3,
                seed: 5,
            },
            NoiseModel::Adversarial {
                gamma_ad: 0.1,
                policy: GreyZonePolicy::LoadThreshold(vec![9, 9]),
            },
            NoiseModel::Adversarial {
                gamma_ad: 0.1,
                policy: GreyZonePolicy::RandomLack(0.4),
            },
        ];
        let timelines: [Timeline; 3] = [
            DemandSchedule::Step {
                at: 5,
                demands: vec![4, 4],
            }
            .into(),
            Timeline::new()
                .at(3, Event::Kill { count: 2 })
                .at(9, Event::SetNoise(NoiseModel::Exact))
                .at(9, Event::StampedeTo(1))
                .at(11, Event::Spawn { count: 4 })
                .at(12, Event::Scramble),
            DemandSchedule::Alternating {
                a: vec![3, 3],
                b: vec![4, 4],
                half_period: 7,
            }
            .into(),
        ];
        for (i, spec) in specs.iter().enumerate() {
            let k = match spec {
                ControllerSpec::Hysteresis { .. } => 1,
                _ => 2,
            };
            let demands = vec![8u64; k];
            // Shape-dependent noise: threshold vectors must match k.
            let noise = match &noises[i % noises.len()] {
                NoiseModel::Adversarial {
                    gamma_ad,
                    policy: GreyZonePolicy::LoadThreshold(_),
                } => NoiseModel::Adversarial {
                    gamma_ad: *gamma_ad,
                    policy: GreyZonePolicy::LoadThreshold(vec![9; k]),
                },
                other => other.clone(),
            };
            let cfg = SimConfig {
                n: 20,
                demands: demands.clone(),
                noise,
                controller: spec.clone(),
                seed: i as u64,
                timeline: if k == 2 {
                    timelines[i % timelines.len()].clone()
                } else {
                    Timeline::new()
                },
                initial: [
                    InitialConfig::AllIdle,
                    InitialConfig::AllOnTask(0),
                    InitialConfig::UniformRandom,
                    InitialConfig::Saturated,
                    InitialConfig::Inverted,
                    InitialConfig::SaturatedPlus { extra: 2 },
                ][i % 6]
                    .clone(),
                arena: None,
            };
            let e = cfg.build();
            let cp = Checkpoint::capture(&e).unwrap();
            let back = Checkpoint::from_bytes(&cp.to_bytes()).unwrap();
            assert_eq!(cp, back, "spec {i}");
        }
    }
}
